//! # popular-matchings
//!
//! A reproduction of *Hu & Garg, "NC Algorithms for Popular Matchings in
//! One-Sided Preference Systems and Related Problems"* (2020) as a Rust
//! workspace: the NC popular-matching algorithms (Algorithms 1–4 of the
//! paper), every substrate they rely on (PRAM-style primitives, graph and
//! linear-algebra kernels, classical matching baselines), instance
//! generators, and a benchmark harness that regenerates every experiment
//! described in `EXPERIMENTS.md`.
//!
//! This facade crate re-exports the workspace crates under stable module
//! names and provides a [`prelude`] for the examples.
//!
//! ```
//! use popular_matchings::prelude::*;
//!
//! // Figure 1 of the paper.
//! let inst = pm_instances::paper::figure1_instance();
//! let tracker = DepthTracker::new();
//! let matching = popular_matching_nc(&inst, &tracker).unwrap();
//! assert!(is_popular_characterization(&inst, &matching));
//! assert_eq!(matching.size(&inst), 8);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use pm_graph as graph;
pub use pm_instances as instances;
pub use pm_linalg as linalg;
pub use pm_matching as matching;
pub use pm_popular as popular;
pub use pm_pram as pram;
pub use pm_serve as serve;
pub use pm_stable as stable;

/// Everything the examples and most downstream users need in one import.
pub mod prelude {
    pub use pm_graph::{BipartiteGraph, FunctionalGraph};
    pub use pm_instances::generators::{self, GeneratorConfig};
    pub use pm_instances::layout::optimize_layout;
    pub use pm_instances::{self, paper, ChurnConfig};
    pub use pm_popular::algorithm1::{popular_matching_nc, popular_matching_run};
    pub use pm_popular::delta::{Delta, DeltaMode, DeltaSolver, DeltaStats};
    pub use pm_popular::instance::{Assignment, PrefInstance};
    pub use pm_popular::max_cardinality::maximum_cardinality_popular_matching_nc;
    pub use pm_popular::optimal::{fair_popular_matching, rank_maximal_popular_matching};
    pub use pm_popular::profile::Profile;
    pub use pm_popular::relabel::{PostPermutation, Relabeled, RelabeledSolver};
    pub use pm_popular::sequential::popular_matching_sequential;
    pub use pm_popular::solver::PopularSolver;
    pub use pm_popular::switching::SwitchingGraph;
    pub use pm_popular::verify::{is_popular_characterization, more_popular};
    pub use pm_popular::PopularError;
    pub use pm_pram::{DepthTracker, Idx, PramStats, Workspace};
    pub use pm_serve::{
        DeltaRequest, DeltaResponse, Quality, Request, Response, ServeError, Server, ServerConfig,
    };
    pub use pm_stable::instance::{SmInstance, StableMatching};
    pub use pm_stable::lattice::all_stable_matchings;
    pub use pm_stable::next::{next_stable_matchings, NextStableOutcome};
}
