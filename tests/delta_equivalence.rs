//! Delta-path equivalence properties: across random delta sequences the
//! incremental solver must be indistinguishable — bit for bit — from
//! throwing the mutated instance at a from-scratch solver.
//!
//! Three layers of the claim are pinned here:
//!
//! * **Per-step result equivalence** — after every apply+flush, the
//!   incremental matching (or typed error) equals a fresh solve on a
//!   validated snapshot of the mutated instance, in both
//!   [`DeltaMode::Popular`] and [`DeltaMode::MaxCardinality`].
//! * **Executor-width determinism** — the entire trajectory (every
//!   intermediate matching, the solver's own [`DeltaStats`] counters, and
//!   the PRAM depth/work accounting) is identical under
//!   `ThreadPool::install(1)` and `install(4)`, the in-process equivalent
//!   of the CI `PM_THREADS` matrix.
//! * **Error paths** — `NoPopularMatching` surfaces exactly when the
//!   from-scratch solve errs and heals the same way, and a poisoned solver
//!   ([`PopularError::SolverPoisoned`]) refuses service until `recover`
//!   re-solves fully to the same matching a fresh solver produces.

use pm_instances::churn::{self, ChurnConfig};
use popular_matchings::prelude::*;
use rayon::ThreadPoolBuilder;

fn pool(threads: usize) -> rayon::ThreadPool {
    ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("shim pools always build")
}

fn base(n: usize, seed: u64) -> PrefInstance {
    generators::solvable(&GeneratorConfig {
        num_applicants: n,
        num_posts: n + n / 8 + 1,
        list_len: 5,
        seed,
    })
}

/// From-scratch reference: a cold solve of `inst` in the matching mode.
fn fresh_solve(mode: DeltaMode, inst: &PrefInstance) -> Result<Vec<Idx>, PopularError> {
    let mut solver = PopularSolver::new(0, 0);
    let m = match mode {
        DeltaMode::Popular => solver.solve(inst),
        DeltaMode::MaxCardinality => solver.solve_max_cardinality(inst),
    };
    m.map(|m| m.as_slice().to_vec())
}

#[test]
fn every_step_of_a_random_delta_sequence_matches_from_scratch() {
    for mode in [DeltaMode::Popular, DeltaMode::MaxCardinality] {
        for (seed, n) in [(11u64, 60usize), (12, 90), (13, 140)] {
            let inst = base(n, seed);
            let stream = churn::mixed_churn(
                &inst,
                &ChurnConfig {
                    deltas: 40,
                    seed: seed ^ 0xD17A,
                },
            );
            let mut ds = DeltaSolver::install(&inst, mode).expect("solvable base");
            for (i, d) in stream.iter().enumerate() {
                ds.apply(d).expect("mirror-validated deltas are valid");
                let got = ds.flush().map(|m| m.as_slice().to_vec());
                let snap = ds.snapshot_instance().expect("snapshot of live instance");
                let want = fresh_solve(mode, &snap);
                assert_eq!(got, want, "{mode:?} diverged at delta {i} (n = {n})");
            }
        }
    }
}

/// Everything observable from one incremental trajectory.
#[derive(Debug, PartialEq, Eq)]
struct Trace {
    steps: Vec<Result<Vec<Idx>, PopularError>>,
    stats: DeltaStats,
    pram: PramStats,
}

fn run_trace(threads: usize, inst: &PrefInstance, stream: &[Delta], mode: DeltaMode) -> Trace {
    pool(threads).install(|| {
        let mut ds = DeltaSolver::install(inst, mode).expect("solvable base");
        let steps = stream
            .iter()
            .map(|d| {
                ds.apply(d).expect("mirror-validated deltas are valid");
                ds.flush().map(|m| m.as_slice().to_vec())
            })
            .collect();
        Trace {
            steps,
            stats: ds.stats(),
            pram: ds.pram_stats(),
        }
    })
}

#[test]
fn delta_trajectories_are_identical_across_thread_counts() {
    for mode in [DeltaMode::Popular, DeltaMode::MaxCardinality] {
        for (seed, n) in [(21u64, 80usize), (22, 120)] {
            let inst = base(n, seed);
            let stream = churn::mixed_churn(
                &inst,
                &ChurnConfig {
                    deltas: 40,
                    seed: seed ^ 0x11,
                },
            );
            let t1 = run_trace(1, &inst, &stream, mode);
            let t4 = run_trace(4, &inst, &stream, mode);
            assert_eq!(
                t1, t4,
                "{mode:?} trajectory must be width-independent (n = {n})"
            );
        }
    }
}

#[test]
fn infeasibility_surfaces_and_heals_exactly_like_from_scratch() {
    // Two applicants sharing two posts is fine; a third fighting over the
    // same pair has no popular matching.  The incremental path must err and
    // heal in lock-step with the from-scratch reference at every width.
    let inst = PrefInstance::new_strict(2, vec![vec![0, 1], vec![0, 1]]).unwrap();
    let sequence = [
        Delta::AddApplicant { prefs: vec![0, 1] },
        Delta::RemoveApplicant { applicant: 2 },
    ];
    for threads in [1usize, 4] {
        pool(threads).install(|| {
            let mut ds = DeltaSolver::install(&inst, DeltaMode::Popular).unwrap();
            for d in &sequence {
                ds.apply(d).unwrap();
                let got = ds.flush().map(|m| m.as_slice().to_vec());
                let snap = ds.snapshot_instance().unwrap();
                assert_eq!(got, fresh_solve(DeltaMode::Popular, &snap));
            }
            assert!(
                ds.flush().is_ok(),
                "healed instance serves again at {threads} threads"
            );
        });
    }
}

#[test]
fn poisoned_solver_recovers_to_the_from_scratch_matching() {
    let inst = base(70, 31);
    let stream = churn::mixed_churn(
        &inst,
        &ChurnConfig {
            deltas: 10,
            seed: 7,
        },
    );
    let recovered: Vec<Vec<Idx>> = [1usize, 4]
        .into_iter()
        .map(|threads| {
            pool(threads).install(|| {
                let mut ds = DeltaSolver::install(&inst, DeltaMode::Popular).unwrap();
                for d in &stream {
                    ds.apply(d).unwrap();
                    ds.flush().unwrap();
                }
                ds.poison_for_tests();
                assert_eq!(ds.flush().unwrap_err(), PopularError::SolverPoisoned);
                assert_eq!(
                    ds.apply(&Delta::AddPost).unwrap_err(),
                    PopularError::SolverPoisoned
                );
                let m = ds.recover().unwrap().as_slice().to_vec();
                let snap = ds.snapshot_instance().unwrap();
                assert_eq!(
                    m,
                    fresh_solve(DeltaMode::Popular, &snap).unwrap(),
                    "recovery re-solves to the from-scratch matching"
                );
                m
            })
        })
        .collect();
    assert_eq!(recovered[0], recovered[1], "recovery is width-independent");
}
