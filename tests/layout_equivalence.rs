//! Layout equivalence: the locality layout pass (`pm_instances::layout`,
//! DESIGN.md §12) must change *where bytes live*, never *what is computed*.
//!
//! Popularity is label-invariant, but the relabeling legitimately shifts
//! every min-label tie-break the kernels take, so the layout path's answer
//! is a possibly *different* matching than a direct solve's.  The contract
//! these tests pin is therefore not answer equality but:
//!
//! * the mapped-back answer is **popular on the original instance** (brute
//!   force on small instances, the Theorem 1 characterisation at size);
//! * infeasibility is preserved exactly (`NoPopularMatching` on the twin
//!   iff on the original);
//! * the full pipeline — permutation, twin, solve, map-back — is
//!   **bit-identical across thread counts**;
//! * warm layout solves allocate nothing (the map-back buffer is pooled);
//! * the layout snapshot round-trips canonically.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use popular_matchings::prelude::*;
use rayon::ThreadPoolBuilder;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

struct CountingAllocator;

// SAFETY: delegates verbatim to `System`; the relaxed counter increment
// allocates nothing and does not affect the returned memory.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL_ALLOCATOR: CountingAllocator = CountingAllocator;

fn pool(threads: usize) -> rayon::ThreadPool {
    ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("shim pools always build")
}

#[test]
fn layout_answers_are_popular_on_the_original_small() {
    // Small instances, exhaustive oracle: whatever matching the layout
    // path returns, brute force confirms popularity on the ORIGINAL; when
    // it reports infeasible, brute force confirms no popular matching
    // exists.  Sweeping seeds covers both outcomes.
    use pm_popular::verify::{brute_force_popular_matching, is_popular_brute_force};
    let mut solved = 0u32;
    let mut infeasible = 0u32;
    for seed in 0..40u64 {
        let cfg = GeneratorConfig {
            num_applicants: 6,
            num_posts: 6,
            list_len: 3,
            seed,
        };
        let inst = generators::uniform_strict(&cfg);
        let r = optimize_layout(&inst).expect("valid instance relabels");
        let mut rs = RelabeledSolver::new(0, 0);
        match rs.solve(&r) {
            Ok(m) => {
                assert!(
                    is_popular_brute_force(&inst, m),
                    "layout answer not popular on the original (seed {seed})"
                );
                solved += 1;
            }
            Err(PopularError::NoPopularMatching) => {
                assert!(
                    brute_force_popular_matching(&inst).is_none(),
                    "layout path reported infeasible but a popular matching exists (seed {seed})"
                );
                infeasible += 1;
            }
            Err(e) => panic!("unexpected error (seed {seed}): {e}"),
        }
    }
    assert!(
        solved > 0 && infeasible > 0,
        "seed sweep must cover both outcomes"
    );
}

#[test]
fn layout_answers_are_popular_on_the_original_at_size() {
    // At sizes where brute force is unthinkable, the Theorem 1
    // characterisation is the oracle — run against the ORIGINAL instance,
    // for both the popular and the maximum-cardinality solve.
    for (seed, n) in [(5u64, 3_000usize), (9, 4_500)] {
        let cfg = GeneratorConfig {
            num_applicants: n,
            num_posts: n + n / 8 + 1,
            list_len: 5,
            seed,
        };
        let inst = generators::clustered_scattered(&cfg, 256);
        let r = optimize_layout(&inst).expect("valid instance relabels");
        let mut rs = RelabeledSolver::new(inst.num_applicants(), inst.num_posts());
        let m = rs.solve(&r).expect("solvable workload").clone();
        assert!(is_popular_characterization(&inst, &m));
        let mc = rs.solve_max_cardinality(&r).expect("solvable workload");
        assert!(is_popular_characterization(&inst, mc));
        // Max-cardinality popular matchings all have the same size; the
        // layout path must reach it too.
        let tracker = DepthTracker::new();
        let direct = maximum_cardinality_popular_matching_nc(&inst, &tracker).unwrap();
        assert_eq!(mc.size(&inst), direct.size(&inst));
    }
}

#[test]
fn infeasibility_is_preserved_exactly() {
    // Master-list contention usually admits no popular matching; the
    // layout path must report exactly what the direct path reports.
    for seed in [3u64, 13] {
        let cfg = GeneratorConfig {
            num_applicants: 2_000,
            num_posts: 200,
            list_len: 4,
            seed,
        };
        let inst = generators::master_list(&cfg, 30);
        let r = optimize_layout(&inst).expect("valid instance relabels");
        let mut direct = PopularSolver::new(0, 0);
        let mut layered = RelabeledSolver::new(0, 0);
        let d = direct.solve(&inst).map(|m| m.size(&inst));
        let l = layered.solve(&r).map(|m| m.size(&inst));
        assert_eq!(d, l, "direct and layout paths disagree (seed {seed})");
    }
}

#[test]
fn layout_pipeline_is_identical_across_thread_counts() {
    // The permutation (a BFS over the incidence), the twin's CSR arrays,
    // and the mapped-back answer must all be bit-identical at width 1 and
    // width 4 — the layout pass must not introduce the repo's first
    // scheduling-dependent result.
    for (seed, n) in [(1u64, 4_000usize), (2, 6_000)] {
        let cfg = GeneratorConfig {
            num_applicants: n,
            num_posts: n + n / 8 + 1,
            list_len: 5,
            seed,
        };
        let inst = generators::clustered_scattered(&cfg, 256);
        let run = |threads: usize| {
            pool(threads).install(|| {
                let r = optimize_layout(&inst).expect("valid instance relabels");
                let mut rs = RelabeledSolver::new(0, 0);
                let m = rs.solve(&r).expect("solvable workload").as_slice().to_vec();
                let (twin, perm) = r.into_parts();
                (twin, perm.forward().to_vec(), m)
            })
        };
        let one = run(1);
        let four = run(4);
        assert_eq!(one.0, four.0, "twin diverged across widths (seed {seed})");
        assert_eq!(
            one.1, four.1,
            "permutation diverged across widths (seed {seed})"
        );
        assert_eq!(one.2, four.2, "answer diverged across widths (seed {seed})");
    }
}

#[test]
fn warm_layout_solves_allocate_nothing() {
    // The RelabeledSolver owns both the twin-solve workspace and the
    // map-back buffer, so a warm solve must not touch the allocator at
    // all — the same gate the harness runs at n = 10^5..10^6, pinned here
    // at test size so `cargo test` catches regressions without the bench.
    let cfg = GeneratorConfig {
        num_applicants: 3_000,
        num_posts: 3_400,
        list_len: 5,
        seed: 77,
    };
    let inst = generators::clustered_scattered(&cfg, 256);
    let r = optimize_layout(&inst).expect("valid instance relabels");
    let mut rs = RelabeledSolver::new(inst.num_applicants(), inst.num_posts());
    let p1 = pool(1);
    // Warm to steady state (capacity growth settles within a few solves).
    let mut warmups = 0u32;
    loop {
        let before = ALLOCATIONS.load(Ordering::SeqCst);
        p1.install(|| {
            std::hint::black_box(rs.solve(&r).expect("solvable").num_applicants());
        });
        warmups += 1;
        if ALLOCATIONS.load(Ordering::SeqCst) == before || warmups >= 10 {
            break;
        }
    }
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    p1.install(|| {
        for _ in 0..3 {
            std::hint::black_box(rs.solve(&r).expect("solvable").num_applicants());
        }
    });
    let allocs = ALLOCATIONS.load(Ordering::SeqCst) - before;
    assert_eq!(
        allocs, 0,
        "warm layout solves performed {allocs} allocations after {warmups} warm-ups"
    );
}

#[test]
fn layout_snapshot_roundtrip_is_canonical() {
    use pm_instances::snapshot;
    let cfg = GeneratorConfig {
        num_applicants: 500,
        num_posts: 560,
        list_len: 5,
        seed: 21,
    };
    for inst in [
        generators::clustered_scattered(&cfg, 32),
        generators::with_ties(&cfg, 3),
    ] {
        let r = optimize_layout(&inst).expect("valid instance relabels");
        let bytes = snapshot::to_bytes_layout(r.instance(), r.permutation());
        let (twin, perm) = snapshot::from_bytes_layout(&bytes).expect("roundtrip");
        let perm = perm.expect("layout snapshot carries its permutation");
        assert_eq!(&twin, r.instance());
        assert_eq!(&perm, r.permutation());
        assert_eq!(
            snapshot::to_bytes_layout(&twin, &perm),
            bytes,
            "layout snapshots must be canonical"
        );
        // A reconstructed Relabeled keeps serving the original contract:
        // answers map back and verify popular on the original instance.
        let reloaded = Relabeled::new(twin, perm).expect("size contract holds");
        let mut rs = RelabeledSolver::new(0, 0);
        if let Ok(m) = rs.solve(&reloaded) {
            assert!(is_popular_characterization(&inst, m));
        }
    }
}
