//! Property-based integration tests (experiments E11 and E12): structural
//! invariants of the switching graph, popularity of every algorithm output,
//! and agreement between the parallel algorithms and their sequential
//! baselines, on randomly generated instances.
//!
//! These used to be `proptest` strategies; they are now plain seeded-`rand`
//! loops so the suite has no dependencies the offline build cannot provide.
//! Every case is deterministic per seed, so failures reproduce exactly.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use popular_matchings::popular::algorithm1::popular_matching_run;
use popular_matchings::popular::max_cardinality::{
    improve_to_maximum_cardinality, maximum_cardinality_popular_matching_nc,
};
use popular_matchings::popular::reduced::ReducedGraph;
use popular_matchings::popular::switching::ComponentKind;
use popular_matchings::popular::verify::{
    enumerate_assignments, is_popular_brute_force, is_popular_characterization,
};
use popular_matchings::prelude::*;

const CASES: usize = 96;

/// A random strict preference instance with up to `max_a` applicants and
/// `max_p` posts: every list is a random non-empty sequence of posts, deduped
/// keeping first occurrences so it is a valid strict preference list.
fn strict_instance(rng: &mut StdRng, max_a: usize, max_p: usize) -> PrefInstance {
    let n_a = rng.random_range(1..=max_a);
    let n_p = rng.random_range(1..=max_p);
    let lists: Vec<Vec<usize>> = (0..n_a)
        .map(|_| {
            let len = rng.random_range(1..=n_p);
            let mut seen = vec![false; n_p];
            let mut list = Vec::with_capacity(len);
            for _ in 0..len {
                let p = rng.random_range(0..n_p);
                if !seen[p] {
                    seen[p] = true;
                    list.push(p);
                }
            }
            list
        })
        .collect();
    PrefInstance::new_strict(n_p, lists).expect("deduped lists are valid")
}

/// E12 — every matching produced by Algorithm 1 is popular, both by the
/// Theorem 1 characterisation and by the definitional brute-force check.
#[test]
fn algorithm1_outputs_are_popular() {
    let mut rng = StdRng::seed_from_u64(0xE12);
    for case in 0..CASES {
        let inst = strict_instance(&mut rng, 5, 5);
        let tracker = DepthTracker::new();
        match popular_matching_nc(&inst, &tracker) {
            Ok(m) => {
                assert!(m.is_valid(&inst), "case {case}");
                assert!(is_popular_characterization(&inst, &m), "case {case}");
                assert!(is_popular_brute_force(&inst, &m), "case {case}");
            }
            Err(PopularError::NoPopularMatching) => {
                // No valid assignment may be popular.
                for cand in enumerate_assignments(&inst) {
                    assert!(!is_popular_brute_force(&inst, &cand), "case {case}");
                }
            }
            Err(e) => panic!("case {case}: unexpected error {e}"),
        }
    }
}

/// The parallel algorithm and the sequential baseline agree on feasibility,
/// and both outputs are popular (Algorithm 1 returns an *arbitrary* popular
/// matching, so only popularity and validity are compared).
#[test]
fn parallel_and_sequential_feasibility_agree() {
    let mut rng = StdRng::seed_from_u64(0xFEA5);
    for case in 0..CASES {
        let inst = strict_instance(&mut rng, 6, 6);
        let tracker = DepthTracker::new();
        let par = popular_matching_nc(&inst, &tracker);
        let seq = popular_matching_sequential(&inst);
        match (par, seq) {
            (Ok(p), Ok(s)) => {
                assert!(is_popular_characterization(&inst, &p), "case {case}");
                assert!(is_popular_characterization(&inst, &s), "case {case}");
            }
            (Err(PopularError::NoPopularMatching), Err(PopularError::NoPopularMatching)) => {}
            (p, s) => panic!("case {case}: disagreement: {p:?} vs {s:?}"),
        }
    }
}

/// The NC algorithm, the sequential baseline, and the definitional
/// brute-force check all agree on existence, and every produced matching is
/// popular by brute force, on random strict instances with up to 10
/// applicants and posts.
#[test]
fn nc_sequential_and_brute_force_agree_on_popularity() {
    let mut rng = StdRng::seed_from_u64(0xA62EE);
    for case in 0..CASES {
        // Brute force enumerates all assignments: keep the instance small
        // (the enumeration is exponential in the number of applicants).
        let inst = strict_instance(&mut rng, 4, 10);
        let tracker = DepthTracker::new();
        let nc = popular_matching_nc(&inst, &tracker);
        let seq = popular_matching_sequential(&inst);
        // Enumerate once and compare pairwise (is_popular_brute_force would
        // re-enumerate all assignments for every candidate).
        let candidates = enumerate_assignments(&inst);
        let brute_exists = candidates.iter().any(|m| {
            candidates
                .iter()
                .all(|other| !more_popular(&inst, other, m))
        });
        assert_eq!(
            nc.is_ok(),
            brute_exists,
            "case {case}: NC vs brute force existence"
        );
        assert_eq!(
            seq.is_ok(),
            brute_exists,
            "case {case}: sequential vs brute force existence"
        );
        if let Ok(m) = nc {
            assert!(
                is_popular_brute_force(&inst, &m),
                "case {case}: NC output popular"
            );
        }
        if let Ok(m) = seq {
            assert!(
                is_popular_brute_force(&inst, &m),
                "case {case}: sequential output popular"
            );
        }
    }
}

/// The flat-CSR instance storage is observationally identical to the nested
/// `Vec<Vec<Vec<usize>>>` layout it replaced: every accessor reproduces the
/// nested input, and the whole pipeline (reduced graph, matching, switching
/// components) is byte-identical to a reference computed straight from the
/// nested lists — on random strict *and* tied instances, including the
/// last-resort edge cases (lists whose every entry is an f-post).
#[test]
fn csr_layout_agrees_with_nested_reference() {
    let mut rng = StdRng::seed_from_u64(0xC52);
    for case in 0..CASES {
        // Random tied lists, nested form: the ground truth.
        let n_p = rng.random_range(1..=6usize);
        let n_a = rng.random_range(1..=6usize);
        let nested: Vec<Vec<Vec<usize>>> = (0..n_a)
            .map(|_| {
                let len = rng.random_range(1..=n_p);
                let mut seen = vec![false; n_p];
                let mut posts = Vec::new();
                for _ in 0..len {
                    let p = rng.random_range(0..n_p);
                    if !seen[p] {
                        seen[p] = true;
                        posts.push(p);
                    }
                }
                // Split into consecutive tie groups of random sizes.
                let mut groups = Vec::new();
                let mut rest = posts.as_slice();
                while !rest.is_empty() {
                    let take = rng.random_range(1..=rest.len());
                    groups.push(rest[..take].to_vec());
                    rest = &rest[take..];
                }
                groups
            })
            .collect();
        let inst = PrefInstance::new_with_ties(n_p, nested.clone()).expect("valid lists");

        // Accessors reproduce the nested layout exactly.
        for (a, list) in nested.iter().enumerate() {
            assert_eq!(inst.num_ranks(a), list.len(), "case {case}");
            let flat: Vec<usize> = list.iter().flatten().copied().collect();
            assert_eq!(inst.flat_list(a), flat.as_slice(), "case {case}");
            assert_eq!(inst.first_choice(a), list[0][0], "case {case}");
            for (r, group) in list.iter().enumerate() {
                assert_eq!(inst.group_slice(a, r), group.as_slice(), "case {case}");
                for &p in group {
                    assert_eq!(inst.rank(a, p), Some(r), "case {case}");
                }
            }
            let collected: Vec<&[pm_pram::Idx]> = inst.groups(a).collect();
            let expected: Vec<&[usize]> = list.iter().map(Vec::as_slice).collect();
            assert_eq!(collected, expected, "case {case}");
            // Unranked posts and foreign last resorts stay unranked.
            for p in 0..n_p {
                if !flat.contains(&p) {
                    assert_eq!(inst.rank(a, p), None, "case {case}");
                }
            }
            assert_eq!(inst.rank(a, inst.last_resort(a)), Some(list.len()));
        }

        // Strict projection: pipeline agreement against a reference reduced
        // graph computed directly from the nested lists (the seed semantics).
        let strict_lists: Vec<Vec<usize>> = nested
            .iter()
            .map(|list| list.iter().flatten().copied().collect())
            .collect();
        let strict = PrefInstance::new_strict(n_p, strict_lists.clone()).unwrap();
        let tracker = DepthTracker::new();
        let par = ReducedGraph::build_parallel(&strict, &tracker).unwrap();
        let seq = ReducedGraph::build_sequential(&strict).unwrap();
        assert_eq!(par, seq, "case {case}");
        // Reference f/s from the nested lists: f(a) is the list head; s(a)
        // is the first non-f entry, falling back to the last resort.
        let f_ref: Vec<usize> = strict_lists.iter().map(|l| l[0]).collect();
        for (a, list) in strict_lists.iter().enumerate() {
            assert_eq!(par.f(a), list[0], "case {case}");
            let s_ref = list
                .iter()
                .copied()
                .find(|p| !f_ref.contains(p))
                .unwrap_or_else(|| strict.last_resort(a));
            assert_eq!(par.s(a), s_ref, "case {case}");
        }

        // Matching and switching components are deterministic functions of
        // the reduced graph: identical across repeated runs and across the
        // parallel/sequential reduced-graph constructions.
        if let Ok(run) = popular_matching_run(&strict, &tracker) {
            let rerun = popular_matching_run(&strict, &DepthTracker::new()).unwrap();
            assert_eq!(run.matching, rerun.matching, "case {case}");
            let sg_par = SwitchingGraph::build(&run.reduced, &run.matching, &tracker);
            let sg_seq = SwitchingGraph::build(&seq, &run.matching, &tracker);
            let comps_par = sg_par.components(&tracker);
            let comps_seq = sg_seq.components(&tracker);
            assert_eq!(comps_par.len(), comps_seq.len(), "case {case}");
            for (cp, cs) in comps_par.iter().zip(comps_seq.iter()) {
                assert_eq!(cp.posts, cs.posts, "case {case}");
                assert_eq!(cp.kind, cs.kind, "case {case}");
            }
        }
    }

    // The ties path: the CSR-built rank-1 instance is identical to the one
    // built from nested single-group lists (the seed construction).
    let mut rng = StdRng::seed_from_u64(0xC53);
    for case in 0..CASES {
        let n_l = rng.random_range(1..=6usize);
        let n_r = rng.random_range(1..=6usize);
        let mut edges = Vec::new();
        for l in 0..n_l {
            edges.push((l, rng.random_range(0..n_r)));
            for r in 0..n_r {
                if rng.random_range(0..3) == 0 {
                    edges.push((l, r));
                }
            }
        }
        let g = BipartiteGraph::from_edges(n_l, n_r, &edges);
        let via_csr = popular_matchings::popular::ties::rank1_instance(&g).unwrap();
        let nested: Vec<Vec<Vec<usize>>> = (0..n_l)
            .map(|l| vec![g.neighbors_left(l).iter().map(|r| r.get()).collect()])
            .collect();
        let via_nested = PrefInstance::new_with_ties(n_r, nested).unwrap();
        assert_eq!(via_csr, via_nested, "case {case}");
    }
}

/// E11 — switching graph structural invariants (Lemma 4): out-degree at most
/// one, sinks are exactly the unmatched reduced posts and are all s-posts,
/// and every component contains a single sink or a single cycle.
#[test]
fn switching_graph_invariants() {
    let mut rng = StdRng::seed_from_u64(0xE11);
    for case in 0..CASES {
        let inst = strict_instance(&mut rng, 6, 6);
        let tracker = DepthTracker::new();
        let Ok(run) = popular_matching_run(&inst, &tracker) else {
            continue;
        };
        let sg = SwitchingGraph::build(&run.reduced, &run.matching, &tracker);

        // Sinks are unmatched s-posts.
        for p in sg.sinks() {
            assert!(sg.is_s_post(p), "case {case}");
            assert!(sg.applicant_at(p).is_none(), "case {case}");
        }

        // Each component: exactly one sink (tree) or exactly one cycle.
        for comp in sg.components(&tracker) {
            let sinks_inside = comp
                .posts
                .iter()
                .filter(|&&p| sg.successor(p).is_none())
                .count();
            match comp.kind {
                ComponentKind::Tree { .. } => assert_eq!(sinks_inside, 1, "case {case}"),
                ComponentKind::Cycle(ref cycle) => {
                    assert_eq!(sinks_inside, 0, "case {case}");
                    assert!(cycle.len() >= 2, "case {case}");
                    // The cycle is closed under successors.
                    for (i, &p) in cycle.iter().enumerate() {
                        let next = cycle[(i + 1) % cycle.len()];
                        assert_eq!(sg.successor(p), Some(next), "case {case}");
                    }
                }
            }
        }
    }
}

/// Algorithm 3 never decreases the size, its output is popular, and it
/// matches the brute-force maximum on small instances.
#[test]
fn algorithm3_maximises_cardinality() {
    let mut rng = StdRng::seed_from_u64(0xA13);
    for case in 0..CASES {
        let inst = strict_instance(&mut rng, 5, 5);
        let tracker = DepthTracker::new();
        let Ok(run) = popular_matching_run(&inst, &tracker) else {
            continue;
        };
        let improved = improve_to_maximum_cardinality(&run.reduced, &run.matching, &tracker);
        assert!(
            improved.size(&inst) >= run.matching.size(&inst),
            "case {case}"
        );
        assert!(is_popular_characterization(&inst, &improved), "case {case}");

        let best = enumerate_assignments(&inst)
            .into_iter()
            .filter(|m| is_popular_characterization(&inst, m))
            .map(|m| m.size(&inst))
            .max()
            .unwrap();
        assert_eq!(improved.size(&inst), best, "case {case}");

        let direct = maximum_cardinality_popular_matching_nc(&inst, &tracker).unwrap();
        assert_eq!(direct.size(&inst), best, "case {case}");
    }
}

/// Algorithm 4 invariants on random stable-marriage instances: every
/// produced matching is stable, strictly dominated by its predecessor, and
/// the woman-optimal matching is the unique fixed point.
#[test]
fn algorithm4_invariants() {
    let mut rng = StdRng::seed_from_u64(0xA14);
    for case in 0..CASES {
        let n = rng.random_range(1..8usize);
        let seed = rng.random_range(0..1000u64);
        let inst = generators::random_sm_instance(n, seed);
        let tracker = DepthTracker::new();
        let mut current = inst.man_optimal();
        let mz = inst.woman_optimal();
        let mut guard = 0;
        loop {
            match next_stable_matchings(&inst, &current, &tracker) {
                NextStableOutcome::WomanOptimal => {
                    assert_eq!(&current, &mz, "case {case}");
                    break;
                }
                NextStableOutcome::Next(results) => {
                    assert!(!results.is_empty(), "case {case}");
                    for (rotation, next) in &results {
                        assert!(rotation.len() >= 2, "case {case}");
                        assert!(inst.is_stable(next), "case {case}");
                        assert!(current.strictly_dominates(next, &inst), "case {case}");
                    }
                    current = results[0].1.clone();
                }
            }
            guard += 1;
            assert!(guard <= n * n + 2, "case {case}: lattice walk too long");
        }
    }
}

/// E18 — the 32-bit index funnel (DESIGN.md §7): instances whose entity or
/// edge counts would overflow the `u32` layer are rejected with the typed
/// [`PopularError::TooLarge`] *before* any proportional allocation, and
/// `Idx` round-trips never collide with the `Idx::NONE` sentinel.
#[test]
fn index_layer_rejects_overflow_and_preserves_sentinel() {
    use popular_matchings::popular::instance::{check_sizes, MAX_APPLICANTS, MAX_ENTITIES};

    // Every overflow branch, driven with fabricated counts — the cheap
    // mock; a real 4-billion-edge instance would not fit in memory.  The
    // constructors call the same funnel before allocating anything.
    assert!(matches!(
        check_sizes(MAX_APPLICANTS + 1, 0, 0),
        Err(PopularError::TooLarge {
            what: "applicants",
            ..
        })
    ));
    assert!(matches!(
        check_sizes(1, MAX_ENTITIES, 1),
        Err(PopularError::TooLarge {
            what: "extended posts",
            ..
        })
    ));
    assert!(matches!(
        check_sizes(1, 1, MAX_ENTITIES + 1),
        Err(PopularError::TooLarge {
            what: "preference edges",
            ..
        })
    ));
    assert!(check_sizes(1, 1, 1).is_ok());
    assert!(check_sizes(MAX_APPLICANTS, MAX_ENTITIES - MAX_APPLICANTS, MAX_ENTITIES).is_ok());
    // Saturating total: a usize-overflowing post count cannot wrap past
    // the check.
    assert!(check_sizes(2, usize::MAX - 1, 0).is_err());

    // Constructor wiring: a post count beyond the layer is rejected as
    // TooLarge (not a panic, not a truncation) by every entry point that
    // can express it without allocating.
    assert!(matches!(
        PrefInstance::new_strict(u32::MAX as usize, vec![vec![0]]),
        Err(PopularError::TooLarge { .. })
    ));
    assert!(matches!(
        PrefInstance::new_with_ties(usize::MAX / 2, vec![vec![vec![0]]]),
        Err(PopularError::TooLarge { .. })
    ));
    assert!(matches!(
        PrefInstance::new_rank1(u32::MAX as usize, &[0, 1], &[Idx::new(0)]),
        Err(PopularError::TooLarge { .. })
    ));

    // Sentinel discipline: no representable index ever equals Idx::NONE,
    // boundary values round-trip exactly, and the first unrepresentable
    // value is refused (it would alias the sentinel).
    for i in [0usize, 1, 12_345, Idx::MAX_INDEX - 1, Idx::MAX_INDEX] {
        let idx = Idx::try_new(i).expect("in range");
        assert!(idx.is_some() && !idx.is_none());
        assert_ne!(idx, Idx::NONE);
        assert_eq!(idx.get(), i);
        assert_eq!(idx.some(), Some(i));
    }
    assert_eq!(Idx::try_new(Idx::MAX_INDEX + 1), None);
    assert_eq!(Idx::try_new(usize::MAX), None);
    assert_eq!(Idx::NONE.some(), None);
    let mut rng = StdRng::seed_from_u64(0xE18);
    for _ in 0..10_000 {
        let i = rng.random_range(0..=Idx::MAX_INDEX);
        let idx = Idx::try_new(i).expect("in range");
        assert_eq!(idx.get(), i);
        assert_ne!(idx, Idx::NONE);
    }
}
