//! Property-based integration tests (experiments E11 and E12): structural
//! invariants of the switching graph, popularity of every algorithm output,
//! and agreement between the parallel algorithms and their sequential
//! baselines, on randomly generated instances.

use proptest::prelude::*;

use popular_matchings::popular::algorithm1::popular_matching_run;
use popular_matchings::popular::max_cardinality::{
    improve_to_maximum_cardinality, maximum_cardinality_popular_matching_nc,
};
use popular_matchings::popular::switching::ComponentKind;
use popular_matchings::popular::verify::{
    enumerate_assignments, is_popular_brute_force, is_popular_characterization,
};
use popular_matchings::prelude::*;

/// Strategy: a random strict preference instance with up to `max_a`
/// applicants and `max_p` posts.
fn strict_instance(max_a: usize, max_p: usize) -> impl Strategy<Value = PrefInstance> {
    (1..=max_a, 1..=max_p).prop_flat_map(move |(n_a, n_p)| {
        proptest::collection::vec(proptest::collection::vec(0..n_p, 1..=n_p), n_a).prop_map(
            move |raw_lists| {
                let lists: Vec<Vec<usize>> = raw_lists
                    .into_iter()
                    .map(|mut l| {
                        // Dedup while keeping first occurrences, so the list is
                        // a valid strict preference list.
                        let mut seen = vec![false; n_p];
                        l.retain(|&p| {
                            let keep = !seen[p];
                            seen[p] = true;
                            keep
                        });
                        l
                    })
                    .collect();
                PrefInstance::new_strict(n_p, lists).expect("deduped lists are valid")
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// E12 — every matching produced by Algorithm 1 is popular, both by the
    /// Theorem 1 characterisation and by the definitional brute-force check.
    #[test]
    fn algorithm1_outputs_are_popular(inst in strict_instance(5, 5)) {
        let tracker = DepthTracker::new();
        match popular_matching_nc(&inst, &tracker) {
            Ok(m) => {
                prop_assert!(m.is_valid(&inst));
                prop_assert!(is_popular_characterization(&inst, &m));
                prop_assert!(is_popular_brute_force(&inst, &m));
            }
            Err(PopularError::NoPopularMatching) => {
                // No valid assignment may be popular.
                for cand in enumerate_assignments(&inst) {
                    prop_assert!(!is_popular_brute_force(&inst, &cand));
                }
            }
            Err(e) => prop_assert!(false, "unexpected error {e}"),
        }
    }

    /// The parallel algorithm and the sequential baseline agree on
    /// feasibility, and their outputs have equal size (both are popular, and
    /// all popular matchings that Algorithm 1 produces are "arbitrary", so
    /// only the popularity and validity are compared, plus feasibility).
    #[test]
    fn parallel_and_sequential_feasibility_agree(inst in strict_instance(6, 6)) {
        let tracker = DepthTracker::new();
        let par = popular_matching_nc(&inst, &tracker);
        let seq = popular_matching_sequential(&inst);
        match (par, seq) {
            (Ok(p), Ok(s)) => {
                prop_assert!(is_popular_characterization(&inst, &p));
                prop_assert!(is_popular_characterization(&inst, &s));
            }
            (Err(PopularError::NoPopularMatching), Err(PopularError::NoPopularMatching)) => {}
            (p, s) => prop_assert!(false, "disagreement: {p:?} vs {s:?}"),
        }
    }

    /// E11 — switching graph structural invariants (Lemma 4): out-degree at
    /// most one, sinks are exactly the unmatched reduced posts and are all
    /// s-posts, and every component contains a single sink or a single cycle.
    #[test]
    fn switching_graph_invariants(inst in strict_instance(6, 6)) {
        let tracker = DepthTracker::new();
        if let Ok(run) = popular_matching_run(&inst, &tracker) {
            let sg = SwitchingGraph::build(&run.reduced, &run.matching, &tracker);

            // Sinks are unmatched s-posts.
            for p in sg.sinks() {
                prop_assert!(sg.is_s_post(p));
                prop_assert!(sg.applicant_at(p).is_none());
            }

            // Each component: exactly one sink (tree) or exactly one cycle.
            for comp in sg.components(&tracker) {
                let sinks_inside = comp
                    .posts
                    .iter()
                    .filter(|&&p| sg.successor(p).is_none())
                    .count();
                match comp.kind {
                    ComponentKind::Tree { .. } => prop_assert_eq!(sinks_inside, 1),
                    ComponentKind::Cycle(ref cycle) => {
                        prop_assert_eq!(sinks_inside, 0);
                        prop_assert!(cycle.len() >= 2);
                        // The cycle is closed under successors.
                        for (i, &p) in cycle.iter().enumerate() {
                            let next = cycle[(i + 1) % cycle.len()];
                            prop_assert_eq!(sg.successor(p), Some(next));
                        }
                    }
                }
            }
        }
    }

    /// Algorithm 3 never decreases the size, its output is popular, and it
    /// matches the brute-force maximum on small instances.
    #[test]
    fn algorithm3_maximises_cardinality(inst in strict_instance(5, 5)) {
        let tracker = DepthTracker::new();
        if let Ok(run) = popular_matching_run(&inst, &tracker) {
            let improved = improve_to_maximum_cardinality(&run.reduced, &run.matching, &tracker);
            prop_assert!(improved.size(&inst) >= run.matching.size(&inst));
            prop_assert!(is_popular_characterization(&inst, &improved));

            let best = enumerate_assignments(&inst)
                .into_iter()
                .filter(|m| is_popular_characterization(&inst, m))
                .map(|m| m.size(&inst))
                .max()
                .unwrap();
            prop_assert_eq!(improved.size(&inst), best);

            let direct = maximum_cardinality_popular_matching_nc(&inst, &tracker).unwrap();
            prop_assert_eq!(direct.size(&inst), best);
        }
    }

    /// Algorithm 4 invariants on random stable-marriage instances: every
    /// produced matching is stable, strictly dominated by its predecessor,
    /// and the woman-optimal matching is the unique fixed point.
    #[test]
    fn algorithm4_invariants(n in 1usize..8, seed in 0u64..1000) {
        let inst = generators::random_sm_instance(n, seed);
        let tracker = DepthTracker::new();
        let mut current = inst.man_optimal();
        let mz = inst.woman_optimal();
        let mut guard = 0;
        loop {
            match next_stable_matchings(&inst, &current, &tracker) {
                NextStableOutcome::WomanOptimal => {
                    prop_assert_eq!(&current, &mz);
                    break;
                }
                NextStableOutcome::Next(results) => {
                    prop_assert!(!results.is_empty());
                    for (rotation, next) in &results {
                        prop_assert!(rotation.len() >= 2);
                        prop_assert!(inst.is_stable(next));
                        prop_assert!(current.strictly_dominates(next, &inst));
                    }
                    current = results[0].1.clone();
                }
            }
            guard += 1;
            prop_assert!(guard <= n * n + 2, "lattice walk too long");
        }
    }
}
