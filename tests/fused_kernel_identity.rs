//! Fused-kernel bit-identity: the single-sweep fused primitives in
//! `pm_pram` must be **interchangeable** with their unfused two-pass
//! ancestors — identical outputs *and* identical `DepthTracker` depth/work
//! charges — at every input size and executor width.
//!
//! Same harness shape as `tests/parallel_determinism.rs`: each property
//! runs under `ThreadPool::install(1)` and `install(4)` (the in-process
//! equivalent of the CI `PM_THREADS` matrix) and the size sweep straddles
//! `SEQUENTIAL_CUTOFF` so the inline, boundary and blocked code paths are
//! all exercised.  Any divergence here means the fusion changed semantics
//! or accounting, which would silently skew every depth/work trajectory
//! the experiments record.

use pm_pram::compact::{compact_indices_fused_into_idx, compact_indices_into_idx};
use pm_pram::scan::{csr_offsets_census_into_u32, csr_offsets_into_u32, DegreeCensus};
use pm_pram::{DepthTracker, Idx, PramStats, Workspace, SEQUENTIAL_CUTOFF};
use rayon::ThreadPoolBuilder;

fn pool(threads: usize) -> rayon::ThreadPool {
    ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("shim pools always build")
}

/// Sizes straddling the sequential cutoff plus a blocked-path size large
/// enough for multi-chunk fan-out at width 4.
fn sizes() -> [usize; 7] {
    [
        0,
        1,
        17,
        SEQUENTIAL_CUTOFF - 1,
        SEQUENTIAL_CUTOFF,
        SEQUENTIAL_CUTOFF + 1,
        50_000,
    ]
}

/// Deterministic pseudo-random counts with plenty of zeros and ones, so the
/// census fields are all non-trivial.
fn counts(n: usize, seed: u64) -> Vec<u32> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..n)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) % 4) as u32
        })
        .collect()
}

/// Everything observable from one scan+census run.
#[derive(Debug, PartialEq, Eq)]
struct ScanFingerprint {
    offsets: Vec<u32>,
    alive: Vec<bool>,
    total: usize,
    census: DegreeCensus,
    stats: PramStats,
}

/// The unfused reference: the plain scan, then the separate census loop the
/// fused kernel replaced (which the callers never charged on the tracker).
fn unfused_scan(counts: &[u32]) -> ScanFingerprint {
    let tracker = DepthTracker::new();
    let mut offsets = Vec::new();
    let mut scratch = Vec::new();
    let total = csr_offsets_into_u32(counts, &mut offsets, &mut scratch, &tracker);
    let mut census = DegreeCensus::default();
    let alive: Vec<bool> = counts
        .iter()
        .map(|&c| {
            census.nonzero += usize::from(c != 0);
            census.ones += usize::from(c == 1);
            c != 0
        })
        .collect();
    ScanFingerprint {
        offsets,
        alive,
        total,
        census,
        stats: tracker.stats(),
    }
}

fn fused_scan(counts: &[u32]) -> ScanFingerprint {
    let tracker = DepthTracker::new();
    let mut offsets = Vec::new();
    let mut scratch = Vec::new();
    let mut alive = vec![true; counts.len()];
    let (total, census) =
        csr_offsets_census_into_u32(counts, &mut offsets, &mut scratch, &mut alive, &tracker);
    ScanFingerprint {
        offsets,
        alive,
        total,
        census,
        stats: tracker.stats(),
    }
}

#[test]
fn fused_scan_census_is_bit_identical_to_unfused_across_widths() {
    for seed in [1u64, 2, 3] {
        for n in sizes() {
            let cs = counts(n, seed);
            let reference = unfused_scan(&cs);
            for threads in [1usize, 4] {
                let fused = pool(threads).install(|| fused_scan(&cs));
                assert_eq!(
                    fused, reference,
                    "fused scan+census diverged from unfused (n = {n}, seed = {seed}, \
                     {threads} threads)"
                );
            }
            // The unfused reference itself must also be width-independent.
            let reference4 = pool(4).install(|| unfused_scan(&cs));
            assert_eq!(
                reference, reference4,
                "unfused scan width-dependent (n = {n})"
            );
        }
    }
}

/// Everything observable from one compaction run.
#[derive(Debug, PartialEq, Eq)]
struct CompactFingerprint {
    kept: Vec<Idx>,
    stats: PramStats,
}

fn compact<F>(n: usize, keep: F, fused: bool) -> CompactFingerprint
where
    F: Fn(usize) -> bool + Send + Sync,
{
    let tracker = DepthTracker::new();
    let mut ws = Workspace::new();
    let mut out = Vec::new();
    if fused {
        compact_indices_fused_into_idx(n, keep, &mut out, &mut ws, &tracker);
    } else {
        compact_indices_into_idx(n, keep, &mut out, &mut ws, &tracker);
    }
    CompactFingerprint {
        kept: out,
        stats: tracker.stats(),
    }
}

#[test]
fn fused_compaction_is_bit_identical_to_unfused_across_widths() {
    // A pure, cheap predicate with an irregular keep pattern (~37% kept).
    let keep = |i: usize| (i.wrapping_mul(2654435761) >> 7) % 8 < 3;
    for n in sizes() {
        let reference = compact(n, keep, false);
        for threads in [1usize, 4] {
            let fused = pool(threads).install(|| compact(n, keep, true));
            assert_eq!(
                fused.kept, reference.kept,
                "fused compaction output diverged (n = {n}, {threads} threads)"
            );
            assert_eq!(
                fused.stats, reference.stats,
                "fused compaction depth/work charges diverged (n = {n}, {threads} threads)"
            );
        }
        // Degenerate predicates: keep-all and keep-none.
        for (name, pred) in [("all", true), ("none", false)] {
            let r = compact(n, |_| pred, false);
            let f = pool(4).install(|| compact(n, |_| pred, true));
            assert_eq!(f, r, "fused compaction diverged on keep-{name} (n = {n})");
        }
    }
}
