//! Property test for the serving path: a `PopularSolver` reused across many
//! consecutive solves over *different* generated instances must be
//! observationally identical to the fresh free-function path — bit-identical
//! matchings, identical PRAM depth/work accounting, identical peel-round
//! counts — at every executor width.  This is the contract that makes the
//! warm zero-allocation path safe to serve from: reuse may never leak state
//! from one request into the next.

use pm_popular::ties::popular_matching_rank1;
use popular_matchings::prelude::*;
use rayon::ThreadPoolBuilder;

fn pool(threads: usize) -> rayon::ThreadPool {
    ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("shim pools always build")
}

fn generated_instances() -> Vec<PrefInstance> {
    // Ten instances of varying shapes: below and above the parallel cutoff,
    // solvable and unsolvable, tiny and mid-sized — sizes deliberately
    // zig-zag so the solver's pooled buffers shrink and regrow.
    let cfg = |n: usize, seed: u64| GeneratorConfig {
        num_applicants: n,
        num_posts: n + n / 8 + 1,
        list_len: 4,
        seed,
    };
    let mut out = vec![
        generators::solvable(&cfg(50, 1)),
        generators::solvable(&cfg(3000, 2)),
        generators::solvable(&cfg(120, 3)),
        generators::master_list(&cfg(400, 4), 8),
        generators::solvable(&cfg(2500, 5)),
        generators::last_resort_pressure(&cfg(800, 6), 0.4),
        generators::solvable(&cfg(64, 7)),
        generators::master_list(&cfg(150, 8), 5),
        generators::last_resort_pressure(&cfg(2048, 9), 0.25),
        generators::solvable(&cfg(999, 10)),
    ];
    // An instance whose popular matching does not exist.
    out.push(PrefInstance::new_strict(3, vec![vec![0, 2], vec![0, 2], vec![0, 2]]).unwrap());
    out
}

fn run_reuse_property(threads: usize) {
    pool(threads).install(|| {
        let insts = generated_instances();
        let mut solver = PopularSolver::new(0, 0);
        let mut max_solver = PopularSolver::new(0, 0);
        for (i, inst) in insts.iter().enumerate() {
            // Fresh free-function reference for this instance.
            let tracker = DepthTracker::new();
            let want = popular_matching_run(inst, &tracker);

            match (solver.solve(inst), want) {
                (Ok(got), Ok(want_run)) => {
                    assert_eq!(
                        got.as_slice(),
                        want_run.matching.as_slice(),
                        "instance {i}: reused solver diverged from the free function"
                    );
                    assert!(is_popular_characterization(inst, got), "instance {i}");
                    assert_eq!(
                        solver.peel_rounds(),
                        want_run.peel_rounds,
                        "instance {i}: peel rounds"
                    );
                    assert_eq!(
                        solver.stats(),
                        tracker.stats(),
                        "instance {i}: depth/work accounting"
                    );
                }
                (Err(e1), Err(e2)) => assert_eq!(e1, e2, "instance {i}"),
                (got, want) => panic!("instance {i}: disagreement {got:?} vs {want:?}"),
            }

            // Max-cardinality reuse against its free function.
            let tracker = DepthTracker::new();
            let want = maximum_cardinality_popular_matching_nc(inst, &tracker);
            match (max_solver.solve_max_cardinality(inst), want) {
                (Ok(got), Ok(want)) => {
                    assert_eq!(got.as_slice(), want.as_slice(), "instance {i}: max-card");
                    assert_eq!(
                        max_solver.stats(),
                        tracker.stats(),
                        "instance {i}: max-card accounting"
                    );
                }
                (Err(e1), Err(e2)) => assert_eq!(e1, e2),
                (got, want) => panic!("instance {i}: max-card disagreement {got:?} vs {want:?}"),
            }
        }
    });
}

#[test]
fn reused_solver_is_bit_identical_to_free_functions_at_width_1() {
    run_reuse_property(1);
}

#[test]
fn reused_solver_is_bit_identical_to_free_functions_at_width_4() {
    run_reuse_property(4);
}

#[test]
fn reused_solver_is_identical_across_widths() {
    // The same request stream at widths 1 and 4 must produce identical
    // matchings AND identical accounting (the executor chunking may differ;
    // the results may not).
    let collect = |threads: usize| {
        pool(threads).install(|| {
            let mut solver = PopularSolver::new(0, 0);
            generated_instances()
                .iter()
                .map(|inst| {
                    let result = solver.solve(inst).map(|m| m.as_slice().to_vec());
                    (result, solver.stats(), solver.peel_rounds())
                })
                .collect::<Vec<_>>()
        })
    };
    assert_eq!(collect(1), collect(4));
}

#[test]
fn batched_and_ties_serving_match_their_references() {
    let insts = generated_instances();
    let mut solver = PopularSolver::new(0, 0);
    let batch = solver.solve_batch(&insts);
    assert_eq!(batch.len(), insts.len());
    for (i, (inst, got)) in insts.iter().zip(&batch).enumerate() {
        let tracker = DepthTracker::new();
        match (got, popular_matching_nc(inst, &tracker)) {
            (Ok(got), Ok(want)) => assert_eq!(got.as_slice(), want.as_slice(), "instance {i}"),
            (Err(e1), Err(e2)) => assert_eq!(e1, &e2, "instance {i}"),
            (got, want) => panic!("instance {i}: batch disagreement {got:?} vs {want:?}"),
        }
    }

    // Ties oracle reuse across differently-shaped graphs.
    for seed in 0..6u64 {
        let n = 100 + (seed as usize) * 317;
        let g = generators::random_bipartite(n, n, 3.0 / n as f64, seed ^ 0xABCD);
        if (0..g.n_left()).any(|l| g.degree_left(l) == 0) {
            assert!(solver.solve_ties(&g).is_err());
            continue;
        }
        let got = solver.solve_ties(&g).unwrap();
        let want = popular_matching_rank1(&g);
        assert_eq!(got.left_assignment(), want.left_assignment(), "seed {seed}");
    }
}

fn run_batch_error_isolation(threads: usize) {
    // PR 7 satellite: a failing item inside a batch must not corrupt its
    // siblings or the pooled buffers.  The batch mixes solvable instances
    // with a NoPopularMatching instance and a TiesNotSupported instance;
    // each sibling's answer must be bit-identical to a fresh individual
    // solve, and the SAME warm solver must keep producing identical batches
    // across repeated rounds (pool integrity after error paths).
    pool(threads).install(|| {
        let cfg = |n: usize, seed: u64| GeneratorConfig {
            num_applicants: n,
            num_posts: n + n / 8 + 1,
            list_len: 4,
            seed,
        };
        let unsolvable =
            PrefInstance::new_strict(3, vec![vec![0, 2], vec![0, 2], vec![0, 2]]).unwrap();
        let tied = PrefInstance::new_with_ties(3, vec![vec![vec![0, 1]], vec![vec![2]]]).unwrap();
        let batch = vec![
            generators::solvable(&cfg(300, 21)),
            unsolvable,
            generators::solvable(&cfg(900, 22)),
            tied,
            generators::solvable(&cfg(150, 23)),
        ];

        // Fresh per-instance references.
        let want: Vec<_> = batch
            .iter()
            .map(|inst| PopularSolver::new(0, 0).solve(inst).cloned())
            .collect();
        assert!(matches!(want[1], Err(PopularError::NoPopularMatching)));
        assert!(matches!(want[3], Err(PopularError::TiesNotSupported)));

        let mut solver = PopularSolver::new(0, 0);
        for round in 0..3 {
            let got = solver.solve_batch(&batch);
            assert_eq!(got.len(), batch.len());
            for (i, (g, w)) in got.iter().zip(&want).enumerate() {
                match (g, w) {
                    (Ok(g), Ok(w)) => {
                        assert_eq!(
                            g.as_slice(),
                            w.as_slice(),
                            "round {round}, instance {i}: sibling corrupted by an error path"
                        );
                        assert!(is_popular_characterization(&batch[i], g));
                    }
                    (Err(e1), Err(e2)) => assert_eq!(e1, e2, "round {round}, instance {i}"),
                    (g, w) => panic!("round {round}, instance {i}: {g:?} vs {w:?}"),
                }
            }
        }

        // The pool survives the error rounds: a fresh solvable solve on the
        // same warm solver still matches its reference exactly.
        let extra = generators::solvable(&cfg(500, 24));
        let want_extra = PopularSolver::new(0, 0).solve(&extra).cloned();
        let got_extra = solver.solve(&extra).cloned();
        assert_eq!(got_extra, want_extra);
    });
}

#[test]
fn batch_error_paths_do_not_corrupt_siblings_at_width_1() {
    run_batch_error_isolation(1);
}

#[test]
fn batch_error_paths_do_not_corrupt_siblings_at_width_4() {
    run_batch_error_isolation(4);
}
