//! Parallel determinism: the full pipelines must be **bit-for-bit
//! identical** across thread counts.
//!
//! The executor in `shims/rayon` partitions work into chunks whose
//! boundaries depend on the thread count, so any order-dependence or data
//! race in the algorithms would show up as 1-thread vs 4-thread divergence.
//! These property tests run the popular-matching and ties pipelines on
//! seeded random instances under `ThreadPool::install(1)` and
//! `install(4)` (the in-process equivalent of `PM_THREADS=1` / `=4`, which
//! the CI matrix also exercises) and assert identical matchings, work
//! counts, and round counts.

use pm_popular::ties::popular_matching_rank1;
use pm_popular::PopularError;
use popular_matchings::prelude::*;
use rayon::ThreadPoolBuilder;

fn pool(threads: usize) -> rayon::ThreadPool {
    ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("shim pools always build")
}

/// Everything observable from one popular-matching pipeline run: the
/// assignment (or the error kind), the realised PRAM stats, and the peel
/// round count.
#[derive(Debug, PartialEq, Eq)]
struct PipelineFingerprint {
    outcome: Result<(Vec<usize>, u32), String>,
    stats: PramStats,
}

fn popular_fingerprint(inst: &PrefInstance) -> PipelineFingerprint {
    let tracker = DepthTracker::new();
    let outcome = match popular_matching_run(inst, &tracker) {
        Ok(run) => Ok((
            (0..inst.num_applicants())
                .map(|a| run.matching.post(a))
                .collect(),
            run.peel_rounds,
        )),
        Err(e) => Err(format!("{e:?}")),
    };
    PipelineFingerprint {
        outcome,
        stats: tracker.stats(),
    }
}

#[test]
fn popular_pipeline_is_identical_across_thread_counts() {
    // Sizes above pm_pram::SEQUENTIAL_CUTOFF so the parallel paths run.
    for (seed, n) in [(1u64, 4_000usize), (2, 6_000), (3, 5_000)] {
        let cfg = GeneratorConfig {
            num_applicants: n,
            num_posts: n,
            list_len: 5,
            seed,
        };
        let inst = generators::solvable(&cfg);
        let one = pool(1).install(|| popular_fingerprint(&inst));
        let four = pool(4).install(|| popular_fingerprint(&inst));
        assert_eq!(
            one, four,
            "popular pipeline diverged between 1 and 4 threads (seed {seed})"
        );
        assert!(one.outcome.is_ok(), "solvable workload must solve");
    }
}

#[test]
fn contended_pipeline_errors_identically_across_thread_counts() {
    // Master-list contention usually admits no popular matching; the
    // *error* path must be as deterministic as the success path.
    let cfg = GeneratorConfig {
        num_applicants: 4_000,
        num_posts: 400,
        list_len: 4,
        seed: 7,
    };
    let inst = generators::master_list(&cfg, 50);
    let one = pool(1).install(|| popular_fingerprint(&inst));
    let four = pool(4).install(|| popular_fingerprint(&inst));
    assert_eq!(one, four);
}

#[test]
fn max_cardinality_pipeline_is_identical_across_thread_counts() {
    let cfg = GeneratorConfig {
        num_applicants: 4_000,
        num_posts: 4_000,
        list_len: 5,
        seed: 11,
    };
    let inst = generators::solvable(&cfg);
    let run = |threads: usize| {
        pool(threads).install(|| {
            let tracker = DepthTracker::new();
            let m = maximum_cardinality_popular_matching_nc(&inst, &tracker).map(|m| {
                (0..inst.num_applicants())
                    .map(|a| m.post(a))
                    .collect::<Vec<_>>()
            });
            (m.map_err(|e| format!("{e:?}")), tracker.stats())
        })
    };
    assert_eq!(run(1), run(4));
}

#[test]
fn serving_pipeline_is_identical_across_thread_counts() {
    // The batched serving path re-chunks the request stream per width and
    // hands each chunk to a different warm sub-solver; results must not
    // depend on either.
    let insts: Vec<PrefInstance> = (0..9)
        .map(|i| {
            let cfg = GeneratorConfig {
                num_applicants: 2_000 + 700 * (i % 3),
                num_posts: 2_500 + 700 * (i % 3),
                list_len: 5,
                seed: 100 + i as u64,
            };
            generators::solvable(&cfg)
        })
        .collect();
    let run = |threads: usize| {
        pool(threads).install(|| {
            let mut solver = PopularSolver::new(0, 0);
            solver
                .solve_batch(&insts)
                .into_iter()
                .map(|r| {
                    r.map(|m| m.as_slice().to_vec())
                        .map_err(|e| format!("{e:?}"))
                })
                .collect::<Vec<_>>()
        })
    };
    assert_eq!(run(1), run(4));
}

#[test]
fn ties_pipeline_is_identical_across_thread_counts() {
    for seed in [21u64, 22] {
        let g = generators::random_bipartite(5_000, 5_000, 4.0 / 5_000.0, seed);
        let run = |threads: usize| {
            pool(threads).install(|| {
                let inst = pm_popular::ties::rank1_instance(&g)
                    .map_err(|e: PopularError| format!("{e:?}"))?;
                Ok::<_, String>((inst, popular_matching_rank1(&g).pairs()))
            })
        };
        let one = run(1);
        let four = run(4);
        assert_eq!(
            one, four,
            "ties pipeline diverged between 1 and 4 threads (seed {seed})"
        );
    }
}
