//! Integration tests reproducing every worked example of the paper
//! (experiments E1, E2, E3 of EXPERIMENTS.md) through the public facade.

use popular_matchings::popular::switching::ComponentKind;
use popular_matchings::popular::verify::is_popular_brute_force;
use popular_matchings::prelude::*;

/// Ground truth for E1, checked definitionally rather than through the
/// Theorem 1 characterisation: the size-8 matching printed in Section II of
/// the paper is popular under the brute-force "no assignment is preferred by
/// a majority" definition, and so is the matching Algorithm 1 computes.
/// This pins the assertions below to the paper, not to the implementation.
#[test]
fn e1_figure1_ground_truth_via_brute_force() {
    let inst = paper::figure1_instance();
    let paper_matching = pm_instances::paper::figure1_popular_matching();
    assert!(paper_matching.is_valid(&inst));
    assert_eq!(
        paper_matching.size(&inst),
        8,
        "the paper's matching is applicant-perfect"
    );
    assert!(is_popular_brute_force(&inst, &paper_matching));

    let tracker = DepthTracker::new();
    let run = popular_matching_run(&inst, &tracker).expect("Figure 1 is solvable");
    assert!(is_popular_brute_force(&inst, &run.matching));
}

/// E1 — Figures 1–3: reduced graph, Algorithm 2 peeling, popular matching.
#[test]
fn e1_figure1_to_figure3_pipeline() {
    let inst = paper::figure1_instance();
    let tracker = DepthTracker::new();

    // Figure 2: f-posts {p1,p4,p5,p7}, s-posts {p2,p3,p6,p8,p9} and the
    // reduced lists.
    let run = popular_matching_run(&inst, &tracker).expect("Figure 1 is solvable");
    assert_eq!(run.reduced.f_posts(), vec![0, 3, 4, 6]);
    assert_eq!(run.reduced.s_posts(), vec![1, 2, 5, 7, 8]);
    for (a, (f, s)) in pm_instances::paper::figure2_reduced_lists()
        .into_iter()
        .enumerate()
    {
        assert_eq!(run.reduced.f(a), f);
        assert_eq!(run.reduced.s(a), s);
    }

    // Section III-C: the while loop matches (a8,p9), (a6,p6), (a7,p8), (a5,p5).
    assert_eq!(run.matching.post(7), 8);
    assert_eq!(run.matching.post(5 - 1), 4); // a5 -> p5
    assert_eq!(run.matching.post(6 - 1), 6); // after promotion a6 ends on p7 or p6
                                             // (a6 is matched to p6 by peeling and may be the applicant promoted to p7;
                                             //  either way the matching is popular — checked below.)

    // Figure 3: after peeling, a1..a4 are matched within {p1..p4}.
    for a in 0..4 {
        assert!(run.matching.post(a) <= 3);
    }

    // The resulting matching is popular and applicant-perfect on real posts.
    assert!(is_popular_characterization(&inst, &run.matching));
    assert_eq!(run.matching.size(&inst), 8);

    // The exact matching printed in the paper is also popular.
    let paper_matching = pm_instances::paper::figure1_popular_matching();
    assert!(is_popular_characterization(&inst, &paper_matching));

    // Lemma 2: the peeling loop stays within ⌈log₂ n⌉ + 1 rounds.
    let bound = (inst.num_applicants() as f64).log2().ceil() as u32 + 1;
    assert!(run.peel_rounds <= bound);
}

/// E2 — Figure 4: the switching graph of the paper's matching has one
/// switching cycle (p1 p2 p4 p3) and two switching paths (from p8 and p9).
#[test]
fn e2_figure4_switching_graph() {
    let inst = paper::figure1_instance();
    let tracker = DepthTracker::new();
    let run = popular_matching_run(&inst, &tracker).unwrap();
    let m = pm_instances::paper::figure1_popular_matching();
    let sg = SwitchingGraph::build(&run.reduced, &m, &tracker);

    let components = sg.components(&tracker);
    assert_eq!(components.len(), 2, "Figure 4 has two components");

    let mut cycles = 0;
    let mut trees = 0;
    for c in &components {
        match &c.kind {
            ComponentKind::Cycle(cycle) => {
                cycles += 1;
                let mut sorted = cycle.clone();
                sorted.sort_unstable();
                assert_eq!(sorted, vec![0, 1, 2, 3], "the cycle is on p1..p4");
            }
            ComponentKind::Tree { sink } => {
                trees += 1;
                assert_eq!(*sink, 5, "the sink is p6");
            }
        }
    }
    assert_eq!((cycles, trees), (1, 1));

    // Two switching paths, starting at the s-posts p8 and p9.
    assert!(sg.switching_path(7).is_some());
    assert!(sg.switching_path(8).is_some());
    assert!(
        sg.switching_path(4).is_none(),
        "p5 is an f-post, not a path start"
    );

    // All margins are zero on this instance, so the matching is already
    // maximum-cardinality.
    let max = maximum_cardinality_popular_matching_nc(&inst, &tracker).unwrap();
    assert_eq!(max.size(&inst), m.size(&inst));
}

/// E3 — Figures 5–7: the stable marriage example, its reduced lists, the
/// switching graph H_M and the two exposed rotations.
#[test]
fn e3_figure5_to_figure7_pipeline() {
    let (inst, m) = paper::figure5_instance();
    let tracker = DepthTracker::new();
    assert!(inst.is_stable(&m));

    // Figure 6: the reduced lists (spot-check the full table).
    let reduced = popular_matchings::stable::next::reduced_men_lists(&inst, &m, &tracker);
    assert_eq!(reduced[0], vec![7, 2]); // m1: w8 w3
    assert_eq!(reduced[2], vec![4, 0, 5, 1]); // m3: w5 w1 w6 w2
    assert_eq!(reduced[7], vec![3, 1, 5]); // m8: w4 w2 w6

    // Figure 7: rotations (m1 m2 m4) and (m3 m6).
    let outcome = next_stable_matchings(&inst, &m, &tracker);
    let NextStableOutcome::Next(results) = outcome else {
        panic!("M is not woman-optimal");
    };
    let men: Vec<Vec<usize>> = results.iter().map(|(r, _)| r.men()).collect();
    assert_eq!(men, pm_instances::paper::figure7_rotation_men());

    // Every elimination is stable and immediately dominated by M.
    for (_, next) in &results {
        assert!(inst.is_stable(next));
        assert!(m.strictly_dominates(next, &inst));
    }

    // The woman-optimal matching exposes no rotation.
    assert_eq!(
        next_stable_matchings(&inst, &inst.woman_optimal(), &tracker),
        NextStableOutcome::WomanOptimal
    );
}
