//! Integration tests that exercise multiple crates together through the
//! public facade: the ties reduction against the Hopcroft–Karp referee
//! (E9), the pseudoforest cycle finders against each other (E7), the
//! optimal popular matchings against Algorithm 3 (E8), and the instance
//! text format round-trip through the full pipeline.

use popular_matchings::graph::cycle::{
    cycle_vertices_via_cc, cycle_vertices_via_closure, cycle_vertices_via_rank,
};
use popular_matchings::matching::hopcroft_karp::hopcroft_karp;
use popular_matchings::popular::optimal::{
    fair_popular_matching as fair, maximum_cardinality_via_weights,
    rank_maximal_popular_matching as rank_maximal,
};
use popular_matchings::popular::ties::{
    is_popular_rank1_brute, lemma12_holds, lemma13_holds, popular_matching_rank1, rank1_instance,
};
use popular_matchings::prelude::*;

/// E9 — the Section V reduction: on random bipartite graphs, the rank-1
/// popular matching oracle and Hopcroft–Karp agree on cardinality, and the
/// lemmas hold definitionally on small graphs.
#[test]
fn e9_ties_reduction_against_hopcroft_karp() {
    for seed in 0..10 {
        let g = generators::random_bipartite(7, 6, 0.25, seed);
        let inst = rank1_instance(&g).unwrap();
        assert!(!inst.is_strict());

        let oracle = popular_matching_rank1(&g);
        let hk = hopcroft_karp(&g);
        assert_eq!(oracle.size(), hk.size());
        assert!(lemma13_holds(&g, &oracle));
        assert!(lemma12_holds(&g, &oracle));
        assert!(is_popular_rank1_brute(&g, &oracle));
    }

    // Larger graphs: only the cardinality agreement (brute force is
    // exponential).
    for seed in 0..3 {
        let g = generators::random_bipartite(300, 280, 0.01, 100 + seed);
        let oracle = popular_matching_rank1(&g);
        assert_eq!(oracle.size(), hopcroft_karp(&g).size());
    }
}

/// E7 — all four cycle finders agree on random pseudoforests, including the
/// switching graphs produced by real popular matchings.
#[test]
fn e7_cycle_finders_agree() {
    let tracker = DepthTracker::new();
    for seed in 0..8 {
        let fg = generators::random_functional_graph(60, 0.2, seed);
        let reference = fg.on_cycle_sequential();
        assert_eq!(cycle_vertices_via_closure(&fg, &tracker), reference);
        assert_eq!(cycle_vertices_via_rank(&fg, &tracker), reference);
        assert_eq!(cycle_vertices_via_cc(&fg, &tracker), reference);
        assert_eq!(fg.on_cycle_parallel(&tracker), reference);
    }

    // Switching graphs of real instances are pseudoforests too.
    let cfg = GeneratorConfig {
        num_applicants: 40,
        num_posts: 45,
        list_len: 4,
        seed: 5,
    };
    let inst = generators::solvable(&cfg);
    let run = popular_matching_run(&inst, &tracker).unwrap();
    let sg = SwitchingGraph::build(&run.reduced, &run.matching, &tracker);
    let fg = sg.functional_graph();
    assert_eq!(fg.on_cycle_parallel(&tracker), fg.on_cycle_sequential());
    let undirected = popular_matchings::graph::cycle::undirected_view(&fg);
    assert!(undirected.is_pseudoforest());
}

/// E8 — the optimal popular matching family: weight-based maximum
/// cardinality equals Algorithm 3, fair matchings are maximum cardinality,
/// and rank-maximal matchings put at least as many applicants on their first
/// choice as any other popular matching the algorithms produce.
#[test]
fn e8_optimal_variants_are_consistent() {
    let tracker = DepthTracker::new();
    for seed in 0..6 {
        let cfg = GeneratorConfig {
            num_applicants: 60,
            num_posts: 70,
            list_len: 5,
            seed,
        };
        let inst = generators::last_resort_pressure(&cfg, 0.4);

        let alg3 = maximum_cardinality_popular_matching_nc(&inst, &tracker).unwrap();
        let weighted = maximum_cardinality_via_weights(&inst, &tracker).unwrap();
        assert_eq!(alg3.size(&inst), weighted.size(&inst));

        let fair_m = fair(&inst, &tracker).unwrap();
        assert_eq!(
            fair_m.size(&inst),
            alg3.size(&inst),
            "fair is maximum cardinality"
        );

        let rm = rank_maximal(&inst, &tracker).unwrap();
        let arbitrary = popular_matching_nc(&inst, &tracker).unwrap();
        let rm_profile = Profile::of(&inst, &rm);
        let arb_profile = Profile::of(&inst, &arbitrary);
        assert!(
            rm_profile.0[0] >= arb_profile.0[0],
            "rank-maximal maximises first choices"
        );
        assert!(is_popular_characterization(&inst, &rm));
        assert!(is_popular_characterization(&inst, &fair_m));
    }
}

/// The plain-text instance format survives a full round trip through the
/// solver pipeline.
#[test]
fn text_format_roundtrip_through_pipeline() {
    let inst = paper::figure1_instance();
    let text = popular_matchings::instances::io::text(&inst).to_string();
    let parsed = popular_matchings::instances::io::parse(&text).unwrap();
    assert_eq!(inst, parsed);

    let tracker = DepthTracker::new();
    let m1 = popular_matching_nc(&inst, &tracker).unwrap();
    let m2 = popular_matching_nc(&parsed, &tracker).unwrap();
    assert_eq!(m1, m2);
}

/// The work/depth tracker sees polylogarithmic depth for the popular
/// matching pipeline: doubling the instance size must not double the depth.
#[test]
fn depth_grows_sublinearly() {
    let depth_for = |n: usize| {
        let cfg = GeneratorConfig {
            num_applicants: n,
            num_posts: n + 8,
            list_len: 5,
            seed: 3,
        };
        let inst = generators::solvable(&cfg);
        let tracker = DepthTracker::new();
        let _ = maximum_cardinality_popular_matching_nc(&inst, &tracker).unwrap();
        tracker.stats().depth
    };
    let d1 = depth_for(1_000);
    let d2 = depth_for(16_000);
    assert!(
        (d2 as f64) < 2.0 * d1 as f64,
        "depth should grow logarithmically: depth(1k) = {d1}, depth(16k) = {d2}"
    );
}
