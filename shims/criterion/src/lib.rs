//! Minimal stand-in for the subset of the Criterion.rs benchmarking API this
//! workspace uses.
//!
//! The build environment has no network access to crates.io, so the real
//! `criterion` cannot be vendored.  This shim provides `Criterion`,
//! `BenchmarkGroup`, `BenchmarkId`, `Bencher`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros.  Benches compile unchanged
//! and, when run, report mean wall-clock time per iteration from a simple
//! fixed-sample loop — no statistics, plots, or baselines.  Swapping in the
//! real criterion is a one-line `Cargo.toml` change.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevent the optimiser from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver; mirrors `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            warm_up_time: Duration::from_millis(100),
            measurement_time: Duration::from_secs(2),
        }
    }
}

impl Criterion {
    /// Number of samples collected per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Time spent warming up before measurement.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Target time budget for measurement.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Benchmark a single function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) {
        let label = id.to_string();
        let mut b = Bencher {
            samples: Vec::new(),
        };
        f(&mut b);
        report(&label, &b.samples);
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Benchmark `f`, passing it a reference to `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        let mut b = Bencher {
            samples: Vec::new(),
        };
        // Warm-up: untimed calls (at least one) until the budget is spent.
        let warm_deadline = Instant::now() + self.criterion.warm_up_time;
        loop {
            f(&mut b, input);
            if Instant::now() >= warm_deadline {
                break;
            }
        }
        b.samples.clear();
        let deadline = Instant::now() + self.criterion.measurement_time;
        for _ in 0..self.criterion.sample_size {
            f(&mut b, input);
            if Instant::now() >= deadline {
                break;
            }
        }
        report(&label, &b.samples);
        self
    }

    /// Benchmark a function with no explicit input.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        let mut b = Bencher {
            samples: Vec::new(),
        };
        for _ in 0..self.criterion.sample_size {
            f(&mut b);
        }
        report(&label, &b.samples);
        self
    }

    /// Finish the group (no-op beyond parity with criterion).
    pub fn finish(self) {}
}

/// Identifier for one benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A `function_name/parameter` identifier.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }

    /// An identifier from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Passed to benchmark closures; times the routine under test.
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Time one execution of `routine`, recording it as a sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        let out = routine();
        self.samples.push(start.elapsed());
        drop(black_box(out));
    }
}

fn report(label: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{label:<60} (no samples)");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let min = samples.iter().min().unwrap();
    let max = samples.iter().max().unwrap();
    println!(
        "{label:<60} time: [{min:>12.3?} {mean:>12.3?} {max:>12.3?}]  ({} samples)",
        samples.len()
    );
}

/// Mirrors `criterion::criterion_group!`: defines a function running each
/// target with the given (or default) configuration.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Mirrors `criterion::criterion_main!`: a `main` that runs each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim_smoke");
        group.bench_with_input(BenchmarkId::new("sum", 100), &100u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    criterion_group! {
        name = smoke;
        config = Criterion::default().sample_size(3);
        targets = sample_bench
    }

    #[test]
    fn group_macro_compiles_and_runs() {
        smoke();
    }
}
