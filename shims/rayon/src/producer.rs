//! Chunk producers: the splittable data sources and lazy adaptors behind
//! [`ParIter`](crate::ParIter).
//!
//! A [`Producer`] spans `p_len()` *positions* and can materialise any
//! contiguous sub-range of them as a sequential iterator via
//! [`chunk`](Producer::chunk).  The executor partitions `0..p_len()` into
//! contiguous chunks, hands each chunk to one pool thread exactly once, and
//! combines the per-chunk results in chunk order — which is what makes every
//! combinator deterministic and order-preserving regardless of the thread
//! count.
//!
//! Adaptors (`Map`, `Filter`, `Enumerate`, `Zip`, `Cloned`, `Copied`) wrap a
//! base producer and transform its chunk iterators lazily; user closures are
//! shared across threads by reference, which is why the combinators demand
//! `Fn + Sync` rather than `FnMut`.
//!
//! [`IndexedProducer`] marks producers whose positions correspond 1:1 to
//! items (`chunk(s, e)` yields exactly `e - s` of them).  Position-sensitive
//! adaptors — `enumerate`, `zip` — are only available on indexed producers;
//! `filter` forfeits the marker.

use std::marker::PhantomData;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A splittable source of items: the executor materialises disjoint
/// sub-ranges of `0..p_len()` on different pool threads.
///
/// `Sync` is a supertrait because one producer is shared by reference with
/// every thread of a parallel call; `Item: Send` because chunk results move
/// back to the calling thread.
pub trait Producer: Sync {
    /// The element type produced.
    type Item: Send;

    /// The sequential iterator over one chunk of positions.
    type ChunkIter<'a>: Iterator<Item = Self::Item>
    where
        Self: 'a;

    /// Number of positions this producer spans.
    fn p_len(&self) -> usize;

    /// Whether `chunk(s, e)` yields exactly `e - s` items ([`Filter`] does
    /// not).  Exact producers allow write-in-place collection.
    fn exact(&self) -> bool {
        true
    }

    /// Materialises positions `start..end`.
    ///
    /// # Safety
    ///
    /// Over the lifetime of the producer, every position may be requested
    /// **at most once** across all calls (ranges must be disjoint).  Mutable
    /// and by-value sources rely on this to hand out exclusive references /
    /// owned items without synchronisation.
    unsafe fn chunk(&self, start: usize, end: usize) -> Self::ChunkIter<'_>;
}

/// Marker: positions correspond 1:1 to items, so global indices are
/// meaningful and equal-length pairing (`zip`) is well-defined.
pub trait IndexedProducer: Producer {}

// ------------------------------------------------------------------ sources

/// Producer for `Range<usize>`.
pub struct RangeProducer {
    pub(crate) start: usize,
    pub(crate) end: usize,
}

impl Producer for RangeProducer {
    type Item = usize;
    type ChunkIter<'a> = std::ops::Range<usize>;
    fn p_len(&self) -> usize {
        self.end - self.start
    }
    unsafe fn chunk(&self, start: usize, end: usize) -> Self::ChunkIter<'_> {
        self.start + start..self.start + end
    }
}
impl IndexedProducer for RangeProducer {}

/// Producer for `&[T]` (shared references).
pub struct SliceProducer<'d, T> {
    pub(crate) slice: &'d [T],
}

impl<'d, T: Sync> Producer for SliceProducer<'d, T> {
    type Item = &'d T;
    type ChunkIter<'a>
        = std::slice::Iter<'d, T>
    where
        Self: 'a;
    fn p_len(&self) -> usize {
        self.slice.len()
    }
    unsafe fn chunk(&self, start: usize, end: usize) -> Self::ChunkIter<'_> {
        self.slice[start..end].iter()
    }
}
impl<T: Sync> IndexedProducer for SliceProducer<'_, T> {}

/// Producer for `&mut [T]` (exclusive references).
///
/// Stored as a raw pointer so disjoint chunks can be materialised through a
/// shared `&self`; the [`Producer::chunk`] contract (each position at most
/// once) is exactly the no-aliasing argument.
pub struct SliceMutProducer<'d, T> {
    ptr: *mut T,
    len: usize,
    _marker: PhantomData<&'d mut [T]>,
}

impl<'d, T> SliceMutProducer<'d, T> {
    pub(crate) fn new(slice: &'d mut [T]) -> Self {
        Self {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
            _marker: PhantomData,
        }
    }
}

// SAFETY: sharing the producer only enables handing out `&'d mut T` to
// *disjoint* elements (chunk contract), which is the same capability
// `&mut [T]: Send` grants; it requires `T: Send`.
unsafe impl<T: Send> Sync for SliceMutProducer<'_, T> {}

impl<'d, T: Send + 'd> Producer for SliceMutProducer<'d, T> {
    type Item = &'d mut T;
    type ChunkIter<'a>
        = std::slice::IterMut<'d, T>
    where
        Self: 'a;
    fn p_len(&self) -> usize {
        self.len
    }
    unsafe fn chunk(&self, start: usize, end: usize) -> Self::ChunkIter<'_> {
        debug_assert!(start <= end && end <= self.len);
        // SAFETY: in-bounds by the executor's partition; exclusive by the
        // chunk contract; lifetime 'd matches the borrow we were built from.
        let sub: &'d mut [T] =
            unsafe { std::slice::from_raw_parts_mut(self.ptr.add(start), end - start) };
        sub.iter_mut()
    }
}
impl<'d, T: Send + 'd> IndexedProducer for SliceMutProducer<'d, T> {}

/// Producer for `Vec<T>`: hands items out *by value*.
///
/// Chunks move their items out with `ptr::read`; the high-water mark of
/// handed-out positions lets `Drop` release exactly the items never handed
/// to any chunk (e.g. the tail beyond a shorter `zip` partner).
pub struct VecProducer<T> {
    ptr: *mut T,
    len: usize,
    cap: usize,
    handed: AtomicUsize,
    _marker: PhantomData<T>,
}

impl<T> VecProducer<T> {
    pub(crate) fn new(v: Vec<T>) -> Self {
        let mut v = std::mem::ManuallyDrop::new(v);
        Self {
            ptr: v.as_mut_ptr(),
            len: v.len(),
            cap: v.capacity(),
            handed: AtomicUsize::new(0),
            _marker: PhantomData,
        }
    }
}

// SAFETY: shared access only moves disjoint items out to other threads
// (chunk contract), so `T: Send` suffices.
unsafe impl<T: Send> Sync for VecProducer<T> {}

impl<T: Send> Producer for VecProducer<T> {
    type Item = T;
    type ChunkIter<'a>
        = VecChunkIter<'a, T>
    where
        Self: 'a;
    fn p_len(&self) -> usize {
        self.len
    }
    unsafe fn chunk(&self, start: usize, end: usize) -> Self::ChunkIter<'_> {
        debug_assert!(start <= end && end <= self.len);
        self.handed.fetch_max(end, Ordering::AcqRel);
        VecChunkIter {
            ptr: self.ptr,
            idx: start,
            end,
            _marker: PhantomData,
        }
    }
}
impl<T: Send> IndexedProducer for VecProducer<T> {}

impl<T> Drop for VecProducer<T> {
    fn drop(&mut self) {
        let handed = *self.handed.get_mut();
        // SAFETY: positions `< handed` were moved out (or dropped) by their
        // chunk iterators; the rest are still live and dropped here.  The
        // buffer is then freed without running any destructors.
        unsafe {
            for i in handed..self.len {
                std::ptr::drop_in_place(self.ptr.add(i));
            }
            drop(Vec::from_raw_parts(self.ptr, 0, self.cap));
        }
    }
}

/// Moving chunk iterator over a [`VecProducer`] range; drops any items its
/// consumer leaves behind so every handed-out position is accounted for.
pub struct VecChunkIter<'a, T> {
    ptr: *mut T,
    idx: usize,
    end: usize,
    _marker: PhantomData<&'a T>,
}

impl<T> Iterator for VecChunkIter<'_, T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        if self.idx >= self.end {
            return None;
        }
        // SAFETY: each position is read exactly once (idx is advanced
        // first), and the producer outlives 'a.
        let item = unsafe { std::ptr::read(self.ptr.add(self.idx)) };
        self.idx += 1;
        Some(item)
    }
    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.end - self.idx;
        (n, Some(n))
    }
}

impl<T> Drop for VecChunkIter<'_, T> {
    fn drop(&mut self) {
        // SAFETY: positions idx..end were handed to this iterator only.
        unsafe {
            for i in self.idx..self.end {
                std::ptr::drop_in_place(self.ptr.add(i));
            }
        }
        self.idx = self.end;
    }
}

/// Producer for `slice.par_chunks(size)`: each position is one sub-slice.
pub struct ChunksProducer<'d, T> {
    pub(crate) slice: &'d [T],
    pub(crate) size: usize,
}

impl<'d, T: Sync> Producer for ChunksProducer<'d, T> {
    type Item = &'d [T];
    type ChunkIter<'a>
        = std::slice::Chunks<'d, T>
    where
        Self: 'a;
    fn p_len(&self) -> usize {
        self.slice.len().div_ceil(self.size)
    }
    unsafe fn chunk(&self, start: usize, end: usize) -> Self::ChunkIter<'_> {
        let lo = start * self.size;
        let hi = (end * self.size).min(self.slice.len());
        self.slice[lo..hi].chunks(self.size)
    }
}
impl<T: Sync> IndexedProducer for ChunksProducer<'_, T> {}

/// Producer for `slice.par_chunks_mut(size)`.
pub struct ChunksMutProducer<'d, T> {
    ptr: *mut T,
    len: usize,
    size: usize,
    _marker: PhantomData<&'d mut [T]>,
}

impl<'d, T> ChunksMutProducer<'d, T> {
    pub(crate) fn new(slice: &'d mut [T], size: usize) -> Self {
        assert!(size > 0, "chunk size must be non-zero");
        Self {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
            size,
            _marker: PhantomData,
        }
    }
}

// SAFETY: as for `SliceMutProducer` — disjoint exclusive sub-slices only.
unsafe impl<T: Send> Sync for ChunksMutProducer<'_, T> {}

impl<'d, T: Send + 'd> Producer for ChunksMutProducer<'d, T> {
    type Item = &'d mut [T];
    type ChunkIter<'a>
        = std::slice::ChunksMut<'d, T>
    where
        Self: 'a;
    fn p_len(&self) -> usize {
        self.len.div_ceil(self.size)
    }
    unsafe fn chunk(&self, start: usize, end: usize) -> Self::ChunkIter<'_> {
        let lo = start * self.size;
        let hi = (end * self.size).min(self.len);
        debug_assert!(lo <= hi);
        // SAFETY: disjoint in-bounds range (chunk contract), lifetime 'd.
        let sub: &'d mut [T] = unsafe { std::slice::from_raw_parts_mut(self.ptr.add(lo), hi - lo) };
        sub.chunks_mut(self.size)
    }
}
impl<'d, T: Send + 'd> IndexedProducer for ChunksMutProducer<'d, T> {}

// ----------------------------------------------------------------- adaptors

/// Lazy `map` adaptor; the closure is shared across threads by reference.
pub struct MapProducer<P, F> {
    pub(crate) base: P,
    pub(crate) f: F,
}

impl<P, F, B> Producer for MapProducer<P, F>
where
    P: Producer,
    F: Fn(P::Item) -> B + Sync,
    B: Send,
{
    type Item = B;
    type ChunkIter<'a>
        = std::iter::Map<P::ChunkIter<'a>, &'a F>
    where
        Self: 'a;
    fn p_len(&self) -> usize {
        self.base.p_len()
    }
    fn exact(&self) -> bool {
        self.base.exact()
    }
    unsafe fn chunk(&self, start: usize, end: usize) -> Self::ChunkIter<'_> {
        // SAFETY: forwards the contract unchanged.
        unsafe { self.base.chunk(start, end) }.map(&self.f)
    }
}
impl<P, F, B> IndexedProducer for MapProducer<P, F>
where
    P: IndexedProducer,
    F: Fn(P::Item) -> B + Sync,
    B: Send,
{
}

/// Lazy `filter` adaptor.  Positions still index the *base* items, so the
/// producer is no longer [`IndexedProducer`] and `exact()` is false.
pub struct FilterProducer<P, F> {
    pub(crate) base: P,
    pub(crate) f: F,
}

impl<P, F> Producer for FilterProducer<P, F>
where
    P: Producer,
    F: Fn(&P::Item) -> bool + Sync,
{
    type Item = P::Item;
    type ChunkIter<'a>
        = std::iter::Filter<P::ChunkIter<'a>, &'a F>
    where
        Self: 'a;
    fn p_len(&self) -> usize {
        self.base.p_len()
    }
    fn exact(&self) -> bool {
        false
    }
    unsafe fn chunk(&self, start: usize, end: usize) -> Self::ChunkIter<'_> {
        // SAFETY: forwards the contract unchanged.
        unsafe { self.base.chunk(start, end) }.filter(&self.f)
    }
}

/// `enumerate` adaptor: pairs every item with its **global** index, which is
/// why it exists only for indexed producers.
pub struct EnumerateProducer<P> {
    pub(crate) base: P,
}

impl<P: IndexedProducer> Producer for EnumerateProducer<P> {
    type Item = (usize, P::Item);
    type ChunkIter<'a>
        = std::iter::Zip<std::ops::Range<usize>, P::ChunkIter<'a>>
    where
        Self: 'a;
    fn p_len(&self) -> usize {
        self.base.p_len()
    }
    unsafe fn chunk(&self, start: usize, end: usize) -> Self::ChunkIter<'_> {
        // SAFETY: forwards the contract unchanged.
        (start..end).zip(unsafe { self.base.chunk(start, end) })
    }
}
impl<P: IndexedProducer> IndexedProducer for EnumerateProducer<P> {}

/// `zip` adaptor over two indexed producers, truncated to the shorter one.
pub struct ZipProducer<A, B> {
    pub(crate) a: A,
    pub(crate) b: B,
}

impl<A: IndexedProducer, B: IndexedProducer> Producer for ZipProducer<A, B> {
    type Item = (A::Item, B::Item);
    type ChunkIter<'a>
        = std::iter::Zip<A::ChunkIter<'a>, B::ChunkIter<'a>>
    where
        Self: 'a;
    fn p_len(&self) -> usize {
        self.a.p_len().min(self.b.p_len())
    }
    unsafe fn chunk(&self, start: usize, end: usize) -> Self::ChunkIter<'_> {
        // SAFETY: both sides receive the same disjoint ranges; indexed
        // producers yield exactly end-start items, so the pairing is exact.
        unsafe { self.a.chunk(start, end).zip(self.b.chunk(start, end)) }
    }
}
impl<A: IndexedProducer, B: IndexedProducer> IndexedProducer for ZipProducer<A, B> {}

/// `cloned` adaptor over a producer of references.
pub struct ClonedProducer<P> {
    pub(crate) base: P,
}

impl<'d, T, P> Producer for ClonedProducer<P>
where
    T: Clone + Send + Sync + 'd,
    P: Producer<Item = &'d T>,
{
    type Item = T;
    type ChunkIter<'a>
        = std::iter::Cloned<P::ChunkIter<'a>>
    where
        Self: 'a;
    fn p_len(&self) -> usize {
        self.base.p_len()
    }
    fn exact(&self) -> bool {
        self.base.exact()
    }
    unsafe fn chunk(&self, start: usize, end: usize) -> Self::ChunkIter<'_> {
        // SAFETY: forwards the contract unchanged.
        unsafe { self.base.chunk(start, end) }.cloned()
    }
}
impl<'d, T, P> IndexedProducer for ClonedProducer<P>
where
    T: Clone + Send + Sync + 'd,
    P: IndexedProducer<Item = &'d T>,
{
}

/// `copied` adaptor over a producer of references.
pub struct CopiedProducer<P> {
    pub(crate) base: P,
}

impl<'d, T, P> Producer for CopiedProducer<P>
where
    T: Copy + Send + Sync + 'd,
    P: Producer<Item = &'d T>,
{
    type Item = T;
    type ChunkIter<'a>
        = std::iter::Copied<P::ChunkIter<'a>>
    where
        Self: 'a;
    fn p_len(&self) -> usize {
        self.base.p_len()
    }
    fn exact(&self) -> bool {
        self.base.exact()
    }
    unsafe fn chunk(&self, start: usize, end: usize) -> Self::ChunkIter<'_> {
        // SAFETY: forwards the contract unchanged.
        unsafe { self.base.chunk(start, end) }.copied()
    }
}
impl<'d, T, P> IndexedProducer for CopiedProducer<P>
where
    T: Copy + Send + Sync + 'd,
    P: IndexedProducer<Item = &'d T>,
{
}
