//! Work-chunking multithreaded stand-in for the subset of [rayon] this
//! workspace uses.
//!
//! The build environment has no network access to crates.io, so the real
//! rayon cannot be vendored.  Until PR 3 this shim executed everything
//! sequentially; it is now a real shared-memory executor: a lazily spawned
//! global pool of [`std::thread`] workers (see [`mod@self`] internals in
//! `pool.rs`) runs every parallel call as a batch of contiguous chunks with
//! caller participation.  The crate mirrors the rayon API surface the
//! workspace calls — `par_iter`, `par_iter_mut`, `par_chunks`,
//! `par_chunks_mut`, `into_par_iter`, the map/filter/zip/enumerate
//! combinators with their for_each/collect/sum/reduce/min/max terminals,
//! [`join`], [`current_num_threads`], and a [`ThreadPoolBuilder`] —
//! so swapping in the real rayon remains a `Cargo.toml`-only change.
//!
//! # Execution model
//!
//! Combinators build a lazy [`Producer`] pipeline; a terminal partitions
//! the index space `0..len` into contiguous chunks (at most `threads × 4`,
//! never smaller than a minimum chunk length), runs each chunk's sequential
//! iterator on one pool thread, and combines the per-chunk results **in
//! chunk order**.  Three consequences:
//!
//! * **Determinism** — chunk boundaries depend only on the length and the
//!   thread count, and every combining operator the workspace uses is
//!   associative, so results are bit-for-bit identical across thread
//!   counts (a property test in the workspace asserts this end to end).
//! * **No nested fan-out** — a parallel call made from inside a chunk runs
//!   inline on that thread; the outermost call owns the parallelism.
//! * **Small inputs stay cheap** — a call whose length does not exceed the
//!   minimum chunk length (or when the pool width is 1) executes inline
//!   with no synchronisation at all.
//!
//! # Thread count
//!
//! The pool width defaults to `PM_THREADS` (falling back to
//! [`std::thread::available_parallelism`]).  A
//! [`ThreadPoolBuilder`]-built [`ThreadPool`] overrides it for the dynamic
//! extent of [`ThreadPool::install`], which is how the bench harness
//! sweeps thread counts and how the determinism tests pin 1 vs 4 threads
//! inside one process.  (The real rayon reads `RAYON_NUM_THREADS`
//! instead; the builder API is swap-compatible.)
//!
//! ```
//! use rayon::prelude::*;
//!
//! let pool = rayon::ThreadPoolBuilder::new().num_threads(4).build().unwrap();
//! let squares: Vec<usize> = pool.install(|| (0..10_000).into_par_iter().map(|x| x * x).collect());
//! assert_eq!(squares[9_999], 9_999 * 9_999);
//! ```
//!
//! [rayon]: https://docs.rs/rayon

mod pool;
mod producer;

pub use producer::{
    ChunksMutProducer, ChunksProducer, ClonedProducer, CopiedProducer, EnumerateProducer,
    FilterProducer, IndexedProducer, MapProducer, Producer, RangeProducer, SliceMutProducer,
    SliceProducer, VecProducer, ZipProducer,
};

/// The combinators and conversion traits, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{
        FromParallelIterator, IntoParallelIterator, ParIter, ParallelSlice, ParallelSliceMut,
    };
}

/// Chunks per thread a terminal aims for: mild over-partitioning smooths
/// out uneven per-item work without shrinking chunks below the minimum.
const OVERPARTITION: usize = 4;

/// Default minimum items per chunk for element-wise sources; below this,
/// fan-out costs more than it buys.  Sub-slice sources (`par_chunks*`)
/// use 1 — each of their items is already a block of work — and
/// [`ParIter::with_min_len`] overrides per call site.
const DEFAULT_MIN_LEN: usize = 1024;

/// Per-call fan-out work cutoff for element-wise pipelines: an element-wise
/// call shorter than this runs inline on the caller thread even when it
/// would split into more than one chunk.  Fanning a 2–4-chunk, few-µs
/// pipeline across the pool costs more in enqueue/wake/claim latency than
/// the chunks cost to run — the depth-2 low-work calls behind the
/// `ties_rank1` width-4 regression.  Heavy-item sources (`par_chunks*`,
/// explicit `with_min_len` below the default) keep their fan-out: their
/// per-item work is real.  Inline execution runs the identical chunks in
/// chunk order, so results are bit-identical either way.
const FANOUT_MIN_ITEMS: usize = 4 * DEFAULT_MIN_LEN;

/// Whether a parallel call over `len` items with the given per-chunk
/// minimum would fan out to the pool (rather than run inline) at the
/// current effective thread count.  Exposed for the crossover tests.
#[doc(hidden)]
pub fn would_fan_out(len: usize, min_len: usize) -> bool {
    let threads = pool::effective_threads();
    let chunk = len
        .div_ceil((threads * OVERPARTITION).max(1))
        .max(min_len)
        .max(1);
    let n_chunks = len.div_ceil(chunk).max(1);
    n_chunks > 1
        && threads > 1
        && !pool::in_parallel_context()
        && !(min_len >= DEFAULT_MIN_LEN && len < FANOUT_MIN_ITEMS)
}

/// Number of threads parallel calls currently fan out to: the innermost
/// [`ThreadPool::install`] override, else `PM_THREADS`, else
/// [`std::thread::available_parallelism`].
pub fn current_num_threads() -> usize {
    pool::effective_threads()
}

/// Runs `a` on the calling thread while offering `b` to the pool (the
/// caller runs `b` itself if no worker is free); returns both results.
/// Mirrors `rayon::join`.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    pool::join(a, b)
}

// ------------------------------------------------------------- thread pools

/// Builder for a [`ThreadPool`]; mirrors `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Creates a builder with the default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the number of threads; 0 (the default) means the process-wide
    /// default (`PM_THREADS` / available parallelism).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Builds the pool.  Never fails in the shim; the `Result` mirrors the
    /// real rayon signature.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            threads: if self.num_threads == 0 {
                current_num_threads()
            } else {
                self.num_threads
            },
        })
    }
}

/// A handle that pins the fan-out width of parallel calls; workers are
/// shared with the global pool (grown on demand), so building is cheap.
#[derive(Debug)]
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// Runs `op` with parallel calls fanning out to this pool's width.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        pool::with_threads(self.threads, op)
    }

    /// The width of this pool.
    pub fn current_num_threads(&self) -> usize {
        self.threads
    }
}

/// Error building a [`ThreadPool`]; never produced by the shim.
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("failed to build thread pool")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

// ------------------------------------------------------------ the iterator

/// A parallel iterator: a lazy [`Producer`] pipeline plus the minimum
/// chunk length its terminal will respect.
pub struct ParIter<P> {
    p: P,
    min_len: usize,
}

/// Types convertible into a [`ParIter`]; mirrors
/// `rayon::iter::IntoParallelIterator`.
pub trait IntoParallelIterator {
    /// Element type of the resulting iterator.
    type Item: Send;
    /// Producer backing the resulting iterator.
    type Producer: Producer<Item = Self::Item>;
    /// Convert `self` into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Producer>;
}

impl<P: Producer> IntoParallelIterator for ParIter<P> {
    type Item = P::Item;
    type Producer = P;
    fn into_par_iter(self) -> ParIter<P> {
        self
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    type Producer = RangeProducer;
    fn into_par_iter(self) -> ParIter<RangeProducer> {
        ParIter {
            p: RangeProducer {
                start: self.start,
                end: self.end.max(self.start),
            },
            min_len: DEFAULT_MIN_LEN,
        }
    }
}

impl<'d, T: Sync> IntoParallelIterator for &'d [T] {
    type Item = &'d T;
    type Producer = SliceProducer<'d, T>;
    fn into_par_iter(self) -> ParIter<SliceProducer<'d, T>> {
        ParIter {
            p: SliceProducer { slice: self },
            min_len: DEFAULT_MIN_LEN,
        }
    }
}

impl<'d, T: Send> IntoParallelIterator for &'d mut [T] {
    type Item = &'d mut T;
    type Producer = SliceMutProducer<'d, T>;
    fn into_par_iter(self) -> ParIter<SliceMutProducer<'d, T>> {
        ParIter {
            p: SliceMutProducer::new(self),
            min_len: DEFAULT_MIN_LEN,
        }
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Producer = VecProducer<T>;
    fn into_par_iter(self) -> ParIter<VecProducer<T>> {
        ParIter {
            p: VecProducer::new(self),
            min_len: DEFAULT_MIN_LEN,
        }
    }
}

/// `par_iter` / `par_chunks` on slices; mirrors `rayon::slice::ParallelSlice`
/// plus the by-reference iterator entry points.
pub trait ParallelSlice<T: Sync> {
    /// Parallel iterator over shared references.
    fn par_iter(&self) -> ParIter<SliceProducer<'_, T>>;
    /// Parallel iterator over non-overlapping chunks of length `size`.
    fn par_chunks(&self, size: usize) -> ParIter<ChunksProducer<'_, T>>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<SliceProducer<'_, T>> {
        ParIter {
            p: SliceProducer { slice: self },
            min_len: DEFAULT_MIN_LEN,
        }
    }
    fn par_chunks(&self, size: usize) -> ParIter<ChunksProducer<'_, T>> {
        assert!(size > 0, "chunk size must be non-zero");
        ParIter {
            p: ChunksProducer { slice: self, size },
            min_len: 1,
        }
    }
}

/// `par_iter_mut` / `par_chunks_mut` on slices; mirrors
/// `rayon::slice::ParallelSliceMut`.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator over exclusive references.
    fn par_iter_mut(&mut self) -> ParIter<SliceMutProducer<'_, T>>;
    /// Parallel iterator over non-overlapping mutable chunks of length `size`.
    fn par_chunks_mut(&mut self, size: usize) -> ParIter<ChunksMutProducer<'_, T>>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> ParIter<SliceMutProducer<'_, T>> {
        ParIter {
            p: SliceMutProducer::new(self),
            min_len: DEFAULT_MIN_LEN,
        }
    }
    fn par_chunks_mut(&mut self, size: usize) -> ParIter<ChunksMutProducer<'_, T>> {
        ParIter {
            p: ChunksMutProducer::new(self, size),
            min_len: 1,
        }
    }
}

/// Collections buildable from a parallel iterator; mirrors
/// `rayon::iter::FromParallelIterator`.
pub trait FromParallelIterator<T: Send>: Sized {
    /// Builds `Self` from the iterator, preserving item order.
    fn from_par_iter<P: Producer<Item = T>>(iter: ParIter<P>) -> Self;
}

/// Raw base pointer of a collect target, shared with the pool threads that
/// each write a disjoint sub-range of the buffer.
struct SendPtr<T>(*mut T);
// SAFETY: threads write disjoint in-bounds ranges (executor partition).
unsafe impl<T: Send> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// Accessor (rather than a field read) so closures capture the `Sync`
    /// wrapper, not the raw pointer inside it.
    fn get(&self) -> *mut T {
        self.0
    }
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<P: Producer<Item = T>>(iter: ParIter<P>) -> Self {
        let ParIter { p, min_len } = iter;
        let len = p.p_len();
        if p.exact() {
            // Exact length: every chunk writes its items straight into its
            // slot range of the output buffer — no intermediate vectors.
            // Unwind accounting mirrors real rayon: a panicking chunk drops
            // its own partial prefix (the guard below), completed chunks
            // register their range in `written`, and the catch_unwind arm
            // drops every registered range before re-raising — nothing
            // already written outlives the panic.
            let mut out: Vec<T> = Vec::with_capacity(len);
            let base = SendPtr(out.as_mut_ptr());
            let written: std::sync::Mutex<Vec<(usize, usize)>> = std::sync::Mutex::new(Vec::new());
            /// Drops `out[s..s + k]` unless disarmed by chunk completion.
            struct ChunkGuard<'a, T> {
                base: &'a SendPtr<T>,
                s: usize,
                k: usize,
                armed: bool,
            }
            impl<T> Drop for ChunkGuard<'_, T> {
                fn drop(&mut self) {
                    if self.armed {
                        // SAFETY: this chunk wrote exactly `k` items at `s..`
                        // and nobody else touches that range.
                        unsafe {
                            for i in 0..self.k {
                                std::ptr::drop_in_place(self.base.get().add(self.s + i));
                            }
                        }
                    }
                }
            }
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                run(&p, min_len, |s, e, it| {
                    let mut guard = ChunkGuard {
                        base: &base,
                        s,
                        k: 0,
                        armed: true,
                    };
                    for item in it {
                        assert!(guard.k < e - s, "exact producer yielded too many items");
                        // SAFETY: slot s + k is in-bounds and owned by this chunk.
                        unsafe { std::ptr::write(base.get().add(s + guard.k), item) };
                        guard.k += 1;
                    }
                    assert_eq!(guard.k, e - s, "exact producer yielded too few items");
                    guard.armed = false;
                    written.lock().unwrap().push((s, guard.k));
                    guard.k
                })
            }));
            let counts = match result {
                Ok(counts) => counts,
                Err(payload) => {
                    // SAFETY: the registered ranges are disjoint, fully
                    // written, and belong to no live chunk guard.
                    for (s, k) in written.lock().unwrap().drain(..) {
                        unsafe {
                            for i in 0..k {
                                std::ptr::drop_in_place(base.get().add(s + i));
                            }
                        }
                    }
                    std::panic::resume_unwind(payload);
                }
            };
            debug_assert_eq!(counts.iter().sum::<usize>(), len);
            // SAFETY: all `len` slots are initialised (asserted per chunk).
            unsafe { out.set_len(len) };
            out
        } else {
            // Inexact (filtered) length: collect per chunk, then append in
            // chunk order — order preservation without index bookkeeping.
            let parts: Vec<Vec<T>> = run(&p, min_len, |_, _, it| it.collect());
            let mut out = Vec::with_capacity(parts.iter().map(Vec::len).sum());
            for part in parts {
                out.extend(part);
            }
            out
        }
    }
}

/// Partitions the pipeline's index space and runs `f` once per chunk —
/// `f(start, end, items)` — returning per-chunk results in chunk order.
fn run<'p, P, R, F>(p: &'p P, min_len: usize, f: F) -> Vec<R>
where
    P: Producer,
    R: Send,
    F: Fn(usize, usize, P::ChunkIter<'p>) -> R + Sync,
{
    let len = p.p_len();
    let threads = pool::effective_threads();
    let chunk = len
        .div_ceil((threads * OVERPARTITION).max(1))
        .max(min_len)
        .max(1);
    let n_chunks = len.div_ceil(chunk).max(1);
    let run_one = move |i: usize| {
        let s = i * chunk;
        let e = ((i + 1) * chunk).min(len);
        // SAFETY: the executor (or the loop below) invokes every chunk
        // index exactly once, so the ranges are disjoint.
        f(s, e, unsafe { p.chunk(s, e) })
    };
    // The trailing condition is the fan-out work cutoff: element-wise
    // pipelines below [`FANOUT_MIN_ITEMS`] stay on the caller thread (see
    // the const docs; inline runs the identical chunks in chunk order).
    if n_chunks == 1
        || threads <= 1
        || pool::in_parallel_context()
        || (min_len >= DEFAULT_MIN_LEN && len < FANOUT_MIN_ITEMS)
    {
        (0..n_chunks).map(run_one).collect()
    } else {
        pool::run_chunks(n_chunks, run_one)
    }
}

impl<P: Producer> ParIter<P> {
    /// Map every element through `f`.
    pub fn map<B, F>(self, f: F) -> ParIter<MapProducer<P, F>>
    where
        F: Fn(P::Item) -> B + Sync,
        B: Send,
    {
        ParIter {
            p: MapProducer { base: self.p, f },
            min_len: self.min_len,
        }
    }

    /// Keep only elements matching the predicate.
    pub fn filter<F>(self, f: F) -> ParIter<FilterProducer<P, F>>
    where
        F: Fn(&P::Item) -> bool + Sync,
    {
        ParIter {
            p: FilterProducer { base: self.p, f },
            min_len: self.min_len,
        }
    }

    /// Pair every element with its global index.
    pub fn enumerate(self) -> ParIter<EnumerateProducer<P>>
    where
        P: IndexedProducer,
    {
        ParIter {
            p: EnumerateProducer { base: self.p },
            min_len: self.min_len,
        }
    }

    /// Zip with another parallel iterator (or anything convertible to one),
    /// truncated to the shorter side.
    pub fn zip<Z>(self, other: Z) -> ParIter<ZipProducer<P, Z::Producer>>
    where
        P: IndexedProducer,
        Z: IntoParallelIterator,
        Z::Producer: IndexedProducer,
    {
        let other = other.into_par_iter();
        ParIter {
            p: ZipProducer {
                a: self.p,
                b: other.p,
            },
            // The heavier side dominates per-item cost, so the *smaller*
            // minimum wins (a zipped `par_chunks` keeps its fan-out even
            // when paired with an element-wise source).
            min_len: self.min_len.min(other.min_len),
        }
    }

    /// Lower bound on items per chunk; larger values reduce fan-out
    /// overhead, smaller ones expose more parallelism for heavy items.
    pub fn with_min_len(self, min: usize) -> Self {
        ParIter {
            p: self.p,
            min_len: min.max(1),
        }
    }

    /// Run `f` on every element.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(P::Item) + Sync,
    {
        let ParIter { p, min_len } = self;
        run(&p, min_len, |_, _, it| {
            for item in it {
                f(item);
            }
        });
    }

    /// Collect into any [`FromParallelIterator`] collection, preserving
    /// item order.
    pub fn collect<C>(self) -> C
    where
        C: FromParallelIterator<P::Item>,
    {
        C::from_par_iter(self)
    }

    /// Sum the elements.
    pub fn sum<S>(self) -> S
    where
        S: Send + std::iter::Sum<P::Item> + std::iter::Sum<S>,
    {
        let ParIter { p, min_len } = self;
        run(&p, min_len, |_, _, it| it.sum::<S>()).into_iter().sum()
    }

    /// Count the elements.
    pub fn count(self) -> usize {
        let ParIter { p, min_len } = self;
        run(&p, min_len, |_, _, it| it.count()).into_iter().sum()
    }

    /// Minimum element, `None` if empty.  Ties resolve to the first
    /// occurrence, matching [`Iterator::min`] on the sequential order.
    pub fn min(self) -> Option<P::Item>
    where
        P::Item: Ord,
    {
        let ParIter { p, min_len } = self;
        run(&p, min_len, |_, _, it| it.min())
            .into_iter()
            .flatten()
            .min()
    }

    /// Maximum element, `None` if empty.  Ties resolve to the last
    /// occurrence, matching [`Iterator::max`] on the sequential order.
    pub fn max(self) -> Option<P::Item>
    where
        P::Item: Ord,
    {
        let ParIter { p, min_len } = self;
        run(&p, min_len, |_, _, it| it.max())
            .into_iter()
            .flatten()
            .max()
    }

    /// rayon-style reduce: fold from `identity()` with `op`.  `op` must be
    /// associative and `identity()` its identity, in which case the result
    /// is identical for every thread count (note the two-argument
    /// signature, unlike [`Iterator::reduce`]).
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> P::Item
    where
        ID: Fn() -> P::Item + Sync,
        OP: Fn(P::Item, P::Item) -> P::Item + Sync,
    {
        let ParIter { p, min_len } = self;
        run(&p, min_len, |_, _, it| it.fold(identity(), &op))
            .into_iter()
            .fold(identity(), op)
    }

    /// Reduce without an identity; `None` if empty.  `op` must be
    /// associative for thread-count-independent results.
    pub fn reduce_with<OP>(self, op: OP) -> Option<P::Item>
    where
        OP: Fn(P::Item, P::Item) -> P::Item + Sync,
    {
        let ParIter { p, min_len } = self;
        run(&p, min_len, |_, _, it| it.reduce(&op))
            .into_iter()
            .flatten()
            .reduce(op)
    }

    /// Split pair elements into two collections, preserving order.
    pub fn unzip<A, B, FromA, FromB>(self) -> (FromA, FromB)
    where
        P: Producer<Item = (A, B)>,
        A: Send,
        B: Send,
        FromA: Default + Extend<A>,
        FromB: Default + Extend<B>,
    {
        let ParIter { p, min_len } = self;
        let parts: Vec<(Vec<A>, Vec<B>)> = run(&p, min_len, |s, e, it| {
            let cap = e - s;
            let mut va = Vec::with_capacity(cap);
            let mut vb = Vec::with_capacity(cap);
            for (a, b) in it {
                va.push(a);
                vb.push(b);
            }
            (va, vb)
        });
        let mut fa = FromA::default();
        let mut fb = FromB::default();
        for (va, vb) in parts {
            fa.extend(va);
            fb.extend(vb);
        }
        (fa, fb)
    }
}

impl<'d, T, P> ParIter<P>
where
    T: Clone + Send + Sync + 'd,
    P: Producer<Item = &'d T>,
{
    /// Clone every referenced element.
    pub fn cloned(self) -> ParIter<ClonedProducer<P>> {
        ParIter {
            p: ClonedProducer { base: self.p },
            min_len: self.min_len,
        }
    }
}

impl<'d, T, P> ParIter<P>
where
    T: Copy + Send + Sync + 'd,
    P: Producer<Item = &'d T>,
{
    /// Copy every referenced element.
    pub fn copied(self) -> ParIter<CopiedProducer<P>> {
        ParIter {
            p: CopiedProducer { base: self.p },
            min_len: self.min_len,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// A pool wide enough that chunked fan-out actually happens even on a
    /// single-core machine.
    fn pool4() -> crate::ThreadPool {
        crate::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap()
    }

    #[test]
    fn map_collect_roundtrip() {
        let v: Vec<usize> = (0..10usize).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(v, (0..10).map(|x| x * 2).collect::<Vec<_>>());
        let v: Vec<usize> =
            pool4().install(|| (0..100_000).into_par_iter().map(|x| x * 2).collect());
        assert_eq!(v.len(), 100_000);
        assert!(v.iter().enumerate().all(|(i, &x)| x == i * 2));
    }

    #[test]
    fn two_arg_reduce_matches_fold() {
        let xs = [1u64, 2, 3, 4];
        let s = xs.par_iter().copied().reduce(|| 0, |a, b| a + b);
        assert_eq!(s, 10);
    }

    #[test]
    fn chunks_zip_unzip() {
        let mut out = vec![0u64; 8];
        let xs = [1u64; 8];
        out.par_chunks_mut(3)
            .zip(xs.par_chunks(3))
            .for_each(|(o, c)| {
                for (oi, x) in o.iter_mut().zip(c) {
                    *oi = *x + 1;
                }
            });
        assert_eq!(out, vec![2u64; 8]);
        let (a, b): (Vec<usize>, Vec<usize>) =
            (0..4usize).into_par_iter().map(|i| (i, i * i)).unzip();
        assert_eq!(a, vec![0, 1, 2, 3]);
        assert_eq!(b, vec![0, 1, 4, 9]);
    }

    #[test]
    fn parallel_results_match_sequential() {
        let n = 50_000usize;
        let xs: Vec<u64> = (0..n as u64).map(|i| i.wrapping_mul(2654435761)).collect();
        let seq_sum: u64 = xs.iter().sum();
        let seq_min = xs.iter().copied().min();
        let seq_max = xs.iter().copied().max();
        pool4().install(|| {
            assert_eq!(xs.par_iter().sum::<u64>(), seq_sum);
            assert_eq!(xs.par_iter().copied().min(), seq_min);
            assert_eq!(xs.par_iter().copied().max(), seq_max);
            assert_eq!(xs.par_iter().count(), n);
            let filtered: Vec<u64> = xs.par_iter().copied().filter(|x| x % 3 == 0).collect();
            let seq_filtered: Vec<u64> = xs.iter().copied().filter(|x| x % 3 == 0).collect();
            assert_eq!(filtered, seq_filtered);
        });
    }

    #[test]
    fn enumerate_yields_global_indices() {
        let xs = vec![7u32; 30_000];
        let idx: Vec<usize> = pool4().install(|| {
            xs.par_iter()
                .enumerate()
                .map(|(i, &x)| i + x as usize)
                .collect()
        });
        assert!(idx.iter().enumerate().all(|(i, &v)| v == i + 7));
    }

    #[test]
    fn par_iter_mut_writes_disjoint_elements() {
        let mut xs = vec![0usize; 40_000];
        pool4().install(|| {
            xs.par_iter_mut().enumerate().for_each(|(i, x)| *x = i * 3);
        });
        assert!(xs.iter().enumerate().all(|(i, &x)| x == i * 3));
    }

    #[test]
    fn non_commutative_reduce_preserves_order() {
        // String concatenation is associative but not commutative: any
        // chunking that combines out of order would scramble the digits.
        let parts: Vec<String> = (0..4000).map(|i| format!("{},", i % 10)).collect();
        let seq = parts.concat();
        let par = pool4().install(|| parts.par_iter().cloned().reduce(String::new, |a, b| a + &b));
        assert_eq!(par, seq);
    }

    #[test]
    fn same_results_across_thread_counts() {
        let xs: Vec<u64> = (0..30_000u64).map(|i| (i * 48271) % 65537).collect();
        let runs: Vec<(u64, Vec<u64>)> = [1usize, 2, 4, 7]
            .iter()
            .map(|&t| {
                let pool = crate::ThreadPoolBuilder::new()
                    .num_threads(t)
                    .build()
                    .unwrap();
                pool.install(|| {
                    let s = xs.par_iter().sum::<u64>();
                    let doubled: Vec<u64> = xs.par_iter().map(|&x| x * 2).collect();
                    (s, doubled)
                })
            })
            .collect();
        for pair in runs.windows(2) {
            assert_eq!(pair[0], pair[1]);
        }
    }

    #[test]
    fn vec_into_par_iter_moves_non_copy_items() {
        let v: Vec<String> = (0..5000).map(|i| i.to_string()).collect();
        let lens: Vec<usize> = pool4().install(|| v.into_par_iter().map(|s| s.len()).collect());
        assert_eq!(lens.len(), 5000);
        assert_eq!(lens[4999], 4);
    }

    #[test]
    fn vec_tail_beyond_zip_partner_is_dropped_not_leaked() {
        // 5000 owned strings zipped against 100 slots: the 4900 never
        // handed to a chunk must still be dropped by the producer.
        let v: Vec<String> = (0..5000).map(|i| i.to_string()).collect();
        let short = [0u8; 100];
        let n = pool4().install(|| v.into_par_iter().zip(short.par_iter()).count());
        assert_eq!(n, 100);
    }

    #[test]
    fn nested_parallel_calls_run_inline() {
        let hits = AtomicUsize::new(0);
        pool4().install(|| {
            (0..8_192usize).into_par_iter().for_each(|_| {
                // Nested call: must execute inline without deadlocking.
                let s: usize = (0..64usize).into_par_iter().sum();
                assert_eq!(s, 64 * 63 / 2);
                hits.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(hits.load(Ordering::Relaxed), 8_192);
    }

    #[test]
    fn join_returns_both_results() {
        let (a, b) = pool4().install(|| {
            crate::join(
                || (0..10_000u64).sum::<u64>(),
                || (0..1_000u64).product::<u64>(),
            )
        });
        assert_eq!(a, 10_000 * 9_999 / 2);
        assert_eq!(b, 0);
    }

    #[test]
    fn panics_propagate_to_the_caller() {
        let result = std::panic::catch_unwind(|| {
            pool4().install(|| {
                (0..50_000usize).into_par_iter().for_each(|i| {
                    assert!(i != 31_337, "boom at {i}");
                });
            });
        });
        assert!(result.is_err());
        // The pool survives a user panic: subsequent calls still work.
        let s: usize = pool4().install(|| (0..10_000usize).into_par_iter().sum());
        assert_eq!(s, 10_000 * 9_999 / 2);
    }

    #[test]
    fn collect_drops_written_items_when_a_chunk_panics() {
        static CREATED: AtomicUsize = AtomicUsize::new(0);
        static DROPPED: AtomicUsize = AtomicUsize::new(0);
        struct Counted;
        impl Drop for Counted {
            fn drop(&mut self) {
                DROPPED.fetch_add(1, Ordering::Relaxed);
            }
        }
        let result = std::panic::catch_unwind(|| {
            pool4().install(|| {
                (0..20_000usize)
                    .into_par_iter()
                    .map(|i| {
                        assert!(i != 15_000, "boom");
                        CREATED.fetch_add(1, Ordering::Relaxed);
                        Counted
                    })
                    .collect::<Vec<Counted>>()
            })
        });
        assert!(result.is_err());
        // Every item that was constructed — in completed chunks, and in the
        // panicking chunk's partial prefix — was dropped, not leaked in the
        // abandoned output buffer.
        assert_eq!(
            CREATED.load(Ordering::Relaxed),
            DROPPED.load(Ordering::Relaxed)
        );
        assert!(CREATED.load(Ordering::Relaxed) > 0);
    }

    #[test]
    fn with_min_len_fans_out_small_heavy_inputs() {
        // 64 items is below the default minimum chunk length; with_min_len(1)
        // must still produce the right answer (and allows fan-out).
        let total: usize = pool4().install(|| {
            (0..64usize)
                .into_par_iter()
                .with_min_len(1)
                .map(|i| (0..1000).map(|j| (i * j) % 7).sum::<usize>())
                .sum()
        });
        let seq: usize = (0..64)
            .map(|i| (0..1000).map(|j| (i * j) % 7).sum::<usize>())
            .sum();
        assert_eq!(total, seq);
    }

    #[test]
    fn install_width_bounds_worker_participation() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        // Grow the global pool to 4 workers first; a narrower install
        // afterwards must still be staffed by at most its own width.
        pool4().install(|| (0..100_000usize).into_par_iter().for_each(|_| {}));
        let pool2 = crate::ThreadPoolBuilder::new()
            .num_threads(2)
            .build()
            .unwrap();
        let tids: Mutex<HashSet<std::thread::ThreadId>> = Mutex::new(HashSet::new());
        pool2.install(|| {
            (0..64usize).into_par_iter().with_min_len(1).for_each(|i| {
                tids.lock().unwrap().insert(std::thread::current().id());
                // Enough per-chunk work that extra workers would have
                // time to (incorrectly) join the batch.
                std::hint::black_box((0..20_000u64).map(|j| j ^ i as u64).sum::<u64>());
            });
        });
        let distinct = tids.lock().unwrap().len();
        assert!(distinct <= 2, "width-2 install ran on {distinct} threads");
    }

    #[test]
    fn current_num_threads_inside_chunks_matches_install_width() {
        // Grow the pool beyond the width we then install.
        pool4().install(|| (0..100_000usize).into_par_iter().for_each(|_| {}));
        let pool2 = crate::ThreadPoolBuilder::new()
            .num_threads(2)
            .build()
            .unwrap();
        let widths: Vec<usize> = pool2.install(|| {
            (0..64usize)
                .into_par_iter()
                .with_min_len(1)
                .map(|_| crate::current_num_threads())
                .collect()
        });
        assert!(widths.iter().all(|&w| w == 2), "observed widths {widths:?}");
    }

    #[test]
    fn fanout_cutoff_crossover_is_pinned() {
        pool4().install(|| {
            // Element-wise pipelines: inline strictly below the cutoff,
            // fanned out at and above it.
            assert!(!crate::would_fan_out(
                crate::FANOUT_MIN_ITEMS - 1,
                crate::DEFAULT_MIN_LEN
            ));
            assert!(crate::would_fan_out(
                crate::FANOUT_MIN_ITEMS,
                crate::DEFAULT_MIN_LEN
            ));
            // Heavy-item sources (chunked / explicit small min_len) keep
            // their fan-out even for short lengths.
            assert!(crate::would_fan_out(64, 1));
        });
        // Width 1 never fans out regardless of length.
        let pool1 = crate::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap();
        pool1.install(|| assert!(!crate::would_fan_out(1 << 20, crate::DEFAULT_MIN_LEN)));
    }

    #[test]
    fn below_cutoff_elementwise_calls_stay_on_the_caller_thread() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let tids: Mutex<HashSet<std::thread::ThreadId>> = Mutex::new(HashSet::new());
        pool4().install(|| {
            (0..crate::FANOUT_MIN_ITEMS - 1)
                .into_par_iter()
                .for_each(|_| {
                    tids.lock().unwrap().insert(std::thread::current().id());
                });
        });
        let tids = tids.lock().unwrap();
        assert_eq!(tids.len(), 1, "below-cutoff call left the caller thread");
        assert!(tids.contains(&std::thread::current().id()));
    }

    #[test]
    fn results_identical_across_the_fanout_cutoff() {
        // The same computation just under and just over the cutoff, against
        // the sequential reference: the cutoff changes scheduling only.
        for n in [
            crate::FANOUT_MIN_ITEMS - 1,
            crate::FANOUT_MIN_ITEMS,
            crate::FANOUT_MIN_ITEMS + 1,
        ] {
            let want: Vec<usize> = (0..n).map(|i| i.wrapping_mul(2654435761)).collect();
            let got: Vec<usize> = pool4().install(|| {
                (0..n)
                    .into_par_iter()
                    .map(|i| i.wrapping_mul(2654435761))
                    .collect()
            });
            assert_eq!(got, want, "n = {n}");
        }
    }

    #[test]
    fn empty_inputs() {
        let v: Vec<usize> = (0..0usize).into_par_iter().map(|x| x).collect();
        assert!(v.is_empty());
        let empty: [u64; 0] = [];
        assert_eq!(empty.par_iter().sum::<u64>(), 0);
        assert_eq!(empty.par_iter().copied().min(), None);
        assert_eq!(empty.par_iter().copied().reduce_with(|a, b| a + b), None);
    }
}
