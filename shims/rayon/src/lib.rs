//! Sequential drop-in stand-in for the subset of [rayon] this workspace uses.
//!
//! The build environment has no network access to crates.io, so the real
//! rayon cannot be vendored.  This crate mirrors the rayon API surface the
//! workspace calls (`par_iter`, `par_iter_mut`, `par_chunks`,
//! `par_chunks_mut`, `into_par_iter`, the usual combinators, and
//! [`current_num_threads`]) and executes everything sequentially.  Results
//! are bit-for-bit identical to a one-thread rayon pool; only wall-clock
//! parallelism is lost.  Swapping in the real rayon is a one-line
//! `Cargo.toml` change — no source edits are required.
//!
//! [rayon]: https://docs.rs/rayon

/// The combinators and conversion traits, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParIter, ParallelSlice, ParallelSliceMut};
}

/// Number of worker threads in the (virtual) pool.  Always 1: this shim
/// executes everything on the calling thread.
pub fn current_num_threads() -> usize {
    1
}

/// A "parallel" iterator: a thin wrapper over a sequential [`Iterator`]
/// exposing rayon's method names (notably rayon's two-argument
/// [`reduce`](ParIter::reduce), which differs from `Iterator::reduce`).
pub struct ParIter<I>(I);

/// Types convertible into a [`ParIter`]; mirrors
/// `rayon::iter::IntoParallelIterator`.
pub trait IntoParallelIterator {
    /// Element type of the resulting iterator.
    type Item;
    /// Underlying sequential iterator type.
    type SeqIter: Iterator<Item = Self::Item>;
    /// Convert `self` into a (sequentially executed) parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::SeqIter>;
}

impl<I: Iterator> IntoParallelIterator for ParIter<I> {
    type Item = I::Item;
    type SeqIter = I;
    fn into_par_iter(self) -> ParIter<I> {
        self
    }
}

impl<T> IntoParallelIterator for Vec<T> {
    type Item = T;
    type SeqIter = std::vec::IntoIter<T>;
    fn into_par_iter(self) -> ParIter<Self::SeqIter> {
        ParIter(self.into_iter())
    }
}

impl<T> IntoParallelIterator for std::ops::Range<T>
where
    std::ops::Range<T>: Iterator<Item = T>,
{
    type Item = T;
    type SeqIter = std::ops::Range<T>;
    fn into_par_iter(self) -> ParIter<Self::SeqIter> {
        ParIter(self)
    }
}

impl<'a, T> IntoParallelIterator for &'a [T] {
    type Item = &'a T;
    type SeqIter = std::slice::Iter<'a, T>;
    fn into_par_iter(self) -> ParIter<Self::SeqIter> {
        ParIter(self.iter())
    }
}

impl<'a, T> IntoParallelIterator for &'a mut [T] {
    type Item = &'a mut T;
    type SeqIter = std::slice::IterMut<'a, T>;
    fn into_par_iter(self) -> ParIter<Self::SeqIter> {
        ParIter(self.iter_mut())
    }
}

/// `par_iter` / `par_chunks` on slices; mirrors `rayon::slice::ParallelSlice`
/// plus the by-reference iterator entry points.
pub trait ParallelSlice<T> {
    /// Parallel iterator over shared references.
    fn par_iter(&self) -> ParIter<std::slice::Iter<'_, T>>;
    /// Parallel iterator over non-overlapping chunks of length `size`.
    fn par_chunks(&self, size: usize) -> ParIter<std::slice::Chunks<'_, T>>;
}

impl<T> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<std::slice::Iter<'_, T>> {
        ParIter(self.iter())
    }
    fn par_chunks(&self, size: usize) -> ParIter<std::slice::Chunks<'_, T>> {
        ParIter(self.chunks(size))
    }
}

/// `par_iter_mut` / `par_chunks_mut` on slices; mirrors
/// `rayon::slice::ParallelSliceMut`.
pub trait ParallelSliceMut<T> {
    /// Parallel iterator over exclusive references.
    fn par_iter_mut(&mut self) -> ParIter<std::slice::IterMut<'_, T>>;
    /// Parallel iterator over non-overlapping mutable chunks of length `size`.
    fn par_chunks_mut(&mut self, size: usize) -> ParIter<std::slice::ChunksMut<'_, T>>;
}

impl<T> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> ParIter<std::slice::IterMut<'_, T>> {
        ParIter(self.iter_mut())
    }
    fn par_chunks_mut(&mut self, size: usize) -> ParIter<std::slice::ChunksMut<'_, T>> {
        ParIter(self.chunks_mut(size))
    }
}

impl<I: Iterator> ParIter<I> {
    /// Map every element through `f`.
    pub fn map<B, F: FnMut(I::Item) -> B>(self, f: F) -> ParIter<std::iter::Map<I, F>> {
        ParIter(self.0.map(f))
    }

    /// Keep only elements matching the predicate.
    pub fn filter<F: FnMut(&I::Item) -> bool>(self, f: F) -> ParIter<std::iter::Filter<I, F>> {
        ParIter(self.0.filter(f))
    }

    /// Pair every element with its index.
    pub fn enumerate(self) -> ParIter<std::iter::Enumerate<I>> {
        ParIter(self.0.enumerate())
    }

    /// Zip with another parallel iterator (or anything convertible to one).
    pub fn zip<Z: IntoParallelIterator>(self, other: Z) -> ParIter<std::iter::Zip<I, Z::SeqIter>> {
        ParIter(self.0.zip(other.into_par_iter().0))
    }

    /// Run `f` on every element.
    pub fn for_each<F: FnMut(I::Item)>(self, f: F) {
        self.0.for_each(f)
    }

    /// Collect into any `FromIterator` collection.
    pub fn collect<C: FromIterator<I::Item>>(self) -> C {
        self.0.collect()
    }

    /// Sum the elements.
    pub fn sum<S: std::iter::Sum<I::Item>>(self) -> S {
        self.0.sum()
    }

    /// Count the elements.
    pub fn count(self) -> usize {
        self.0.count()
    }

    /// Minimum element, `None` if empty.
    pub fn min(self) -> Option<I::Item>
    where
        I::Item: Ord,
    {
        self.0.min()
    }

    /// Maximum element, `None` if empty.
    pub fn max(self) -> Option<I::Item>
    where
        I::Item: Ord,
    {
        self.0.max()
    }

    /// rayon-style reduce: fold from `identity()` with `op`.  Note the
    /// two-argument signature, unlike `Iterator::reduce`.
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> I::Item
    where
        ID: Fn() -> I::Item,
        OP: FnMut(I::Item, I::Item) -> I::Item,
    {
        self.0.fold(identity(), op)
    }

    /// Reduce without an identity; `None` if empty.
    pub fn reduce_with<OP>(self, op: OP) -> Option<I::Item>
    where
        OP: FnMut(I::Item, I::Item) -> I::Item,
    {
        self.0.reduce(op)
    }

    /// Split pair elements into two collections.
    pub fn unzip<A, B, FromA, FromB>(self) -> (FromA, FromB)
    where
        I: Iterator<Item = (A, B)>,
        FromA: Default + Extend<A>,
        FromB: Default + Extend<B>,
    {
        self.0.unzip()
    }

    /// Chain another parallel iterator after this one.
    pub fn chain<Z>(self, other: Z) -> ParIter<std::iter::Chain<I, Z::SeqIter>>
    where
        Z: IntoParallelIterator<Item = I::Item>,
    {
        ParIter(self.0.chain(other.into_par_iter().0))
    }

    /// Hint ignored by the sequential shim; present for rayon parity.
    pub fn with_min_len(self, _min: usize) -> Self {
        self
    }
}

impl<'a, T: 'a + Clone, I: Iterator<Item = &'a T>> ParIter<I> {
    /// Clone every referenced element.
    pub fn cloned(self) -> ParIter<std::iter::Cloned<I>> {
        ParIter(self.0.cloned())
    }
}

impl<'a, T: 'a + Copy, I: Iterator<Item = &'a T>> ParIter<I> {
    /// Copy every referenced element.
    pub fn copied(self) -> ParIter<std::iter::Copied<I>> {
        ParIter(self.0.copied())
    }
}

/// Run two closures (sequentially here) and return both results; mirrors
/// `rayon::join`.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_roundtrip() {
        let v: Vec<usize> = (0..10usize).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(v, (0..10).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn two_arg_reduce_matches_fold() {
        let xs = [1u64, 2, 3, 4];
        let s = xs.par_iter().copied().reduce(|| 0, |a, b| a + b);
        assert_eq!(s, 10);
    }

    #[test]
    fn chunks_zip_unzip() {
        let mut out = vec![0u64; 8];
        let xs = [1u64; 8];
        out.par_chunks_mut(3)
            .zip(xs.par_chunks(3))
            .for_each(|(o, c)| {
                for (oi, x) in o.iter_mut().zip(c) {
                    *oi = *x + 1;
                }
            });
        assert_eq!(out, vec![2u64; 8]);
        let (a, b): (Vec<usize>, Vec<usize>) =
            (0..4usize).into_par_iter().map(|i| (i, i * i)).unzip();
        assert_eq!(a, vec![0, 1, 2, 3]);
        assert_eq!(b, vec![0, 1, 4, 9]);
    }
}
