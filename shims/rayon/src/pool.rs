//! The shared-memory executor behind every parallel combinator: a lazily
//! spawned global pool of [`std::thread`] workers fed fixed-size chunk
//! batches.
//!
//! # Architecture
//!
//! A *batch* is one parallel call (a `for_each`, `collect`, `sum`, …): a
//! type-erased chunk runner plus an atomic claim counter.  The calling
//! thread publishes the batch on a global queue, wakes the workers, and then
//! **participates**: it claims and runs chunks exactly like a worker, and
//! only blocks once every chunk has been claimed.  Because the caller can
//! always run its own chunks to completion, a parallel call never deadlocks
//! — even with zero workers, or with every worker busy on other batches.
//!
//! The chunk runner borrows the caller's stack (the producer, the user's
//! closures).  That borrow is erased to `'static` when the batch is
//! enqueued; soundness comes from the blocking protocol: [`execute`] does
//! not return until the completion count reaches the chunk count, and a
//! worker bumps that count only *after* its last touch of the borrowed
//! data.
//!
//! # Sizing and determinism
//!
//! The pool size is `PM_THREADS` (default: [`std::thread::available_parallelism`]).
//! [`with_threads`] installs a per-thread override — used by the bench
//! harness's thread sweep and the determinism property tests — growing the
//! pool on demand.  The override genuinely *bounds* parallelism, not just
//! the chunk count: each batch carries `width` staffing *slots*, a thread
//! must acquire a slot before touching the batch ([`Batch::try_join`]; the
//! caller pre-owns slot 0), and workers adopt the batch width as their
//! `current_num_threads` while running its chunks — so a width-2 sweep leg
//! stays width-2 even after an earlier leg grew the pool to 4.  Scheduling
//! never influences results: chunk boundaries are a pure function of
//! `(len, thread count, min chunk)`, chunk results are combined in chunk
//! order, and all combining operators the workspace uses are associative.
//!
//! # Sticky chunk→thread affinity
//!
//! Each slot owns a *contiguous* range of chunk indices (`n_chunks / width`,
//! rounded up); a runner drains its own slot's range first and steals from
//! other slots only once its own is empty.  Workers remember the slot they
//! held last ([`PREFERRED_SLOT`]) and re-acquire it on the next batch when
//! free, and the caller always holds slot 0 — so across the consecutive
//! parallel calls of a round-synchronous loop, the same thread keeps
//! touching the same contiguous array region round after round, preserving
//! per-thread cache/NUMA residency of the data it warmed.  This is pure
//! scheduling: which thread runs a chunk never affects any result.
//!
//! # Panics
//!
//! A panic inside a chunk is caught on the executing thread, the first
//! payload is stored on the batch, the remaining chunks still run, and the
//! payload is re-raised on the calling thread once the batch completes — the
//! pool itself never loses a worker to a user panic.

use std::any::Any;
use std::cell::Cell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// One staffing slot of a [`Batch`]: ownership flag plus the claim cursor
/// into the slot's contiguous chunk range.
struct SlotState {
    /// Whether a runner holds this slot (at most one ever does).
    taken: AtomicBool,
    /// Next unclaimed offset within the slot's chunk range; values past the
    /// range length mean the range is drained.  Any runner may bump this
    /// (stealing), so claims stay exactly-once without a global counter.
    cursor: AtomicUsize,
}

/// One parallel call: `job(i)` runs chunk `i` for `i < n_chunks`.
///
/// The `'static` on `job` is a lie told by [`execute`]; see the module docs
/// for why the blocking protocol makes it sound.
struct Batch {
    job: &'static (dyn Fn(usize) + Sync),
    n_chunks: usize,
    /// The effective thread width when the batch was submitted.  Workers
    /// running this batch's chunks adopt it as their `current_num_threads`
    /// so nested code observes the same width on every thread, and the slot
    /// count staffs the batch with at most `width` threads (caller
    /// included) — `install(n)` genuinely bounds parallelism even after the
    /// global pool has grown wider.
    width: usize,
    /// Chunks per slot range: slot `s` owns chunk indices
    /// `[s * per, min((s + 1) * per, n_chunks))` — contiguous, so a slot
    /// maps to a contiguous region of the underlying arrays.
    per: usize,
    /// One staffing slot per unit of width; slot 0 is pre-owned by the
    /// calling thread.
    slots: Box<[SlotState]>,
    /// Number of chunks that have finished running.
    done: AtomicUsize,
    finished: Mutex<bool>,
    finished_cv: Condvar,
    /// First panic payload raised by any chunk, re-raised by the caller.
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

impl Batch {
    fn new(job: &'static (dyn Fn(usize) + Sync), n_chunks: usize, width: usize) -> Arc<Self> {
        let width = width.max(1);
        let slots = (0..width)
            .map(|s| SlotState {
                taken: AtomicBool::new(s == 0),
                cursor: AtomicUsize::new(0),
            })
            .collect();
        Arc::new(Batch {
            job,
            n_chunks,
            width,
            per: n_chunks.div_ceil(width),
            slots,
            done: AtomicUsize::new(0),
            finished: Mutex::new(false),
            finished_cv: Condvar::new(),
            panic: Mutex::new(None),
        })
    }

    /// The contiguous chunk range owned by slot `s`.
    fn slot_range(&self, s: usize) -> (usize, usize) {
        (
            (s * self.per).min(self.n_chunks),
            ((s + 1) * self.per).min(self.n_chunks),
        )
    }

    /// Claims the next unclaimed chunk, preferring `slot`'s own contiguous
    /// range and stealing from the other slots (in circular order) only
    /// once it is drained.  Which thread claims a chunk never affects
    /// results; affinity is purely a locality optimisation.
    fn claim(&self, slot: usize) -> Option<usize> {
        let w = self.slots.len();
        for k in 0..w {
            let s = (slot + k) % w;
            let (start, end) = self.slot_range(s);
            let len = end - start;
            let st = &self.slots[s];
            // Cheap pre-check so fully drained ranges are skipped without
            // growing their cursors unboundedly.
            if st.cursor.load(Ordering::Acquire) >= len {
                continue;
            }
            let i = st.cursor.fetch_add(1, Ordering::AcqRel);
            if i < len {
                return Some(start + i);
            }
        }
        None
    }

    /// Acquires a staffing slot, preferring `preferred` (the slot this
    /// thread held on the previous batch) so chunk→thread affinity is
    /// stable across the consecutive calls of a round-synchronous loop.
    /// Returns the slot id, or `None` when the batch is fully staffed.
    fn try_join(&self, preferred: usize) -> Option<usize> {
        let w = self.slots.len();
        let first = if preferred < w { preferred } else { 0 };
        for k in 0..w {
            let s = (first + k) % w;
            if !self.slots[s].taken.swap(true, Ordering::AcqRel) {
                return Some(s);
            }
        }
        None
    }

    /// Whether every chunk has been claimed (not necessarily finished).
    fn exhausted(&self) -> bool {
        self.slots.iter().enumerate().all(|(s, st)| {
            let (start, end) = self.slot_range(s);
            st.cursor.load(Ordering::Acquire) >= end - start
        })
    }

    /// Runs one claimed chunk, capturing a panic instead of unwinding.
    fn run_chunk(&self, i: usize) {
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| (self.job)(i))) {
            self.panic.lock().unwrap().get_or_insert(payload);
        }
        // AcqRel: release our writes (results) to whoever observes the final
        // count, and acquire every earlier finisher's writes so the last
        // finisher's signal carries all of them to the caller.
        if self.done.fetch_add(1, Ordering::AcqRel) + 1 == self.n_chunks {
            *self.finished.lock().unwrap() = true;
            self.finished_cv.notify_all();
        }
    }

    /// Blocks until every chunk has finished.
    fn wait(&self) {
        let mut finished = self.finished.lock().unwrap();
        while !*finished {
            finished = self.finished_cv.wait(finished).unwrap();
        }
    }
}

/// State shared between the workers and every calling thread.
struct Shared {
    /// Batches with unclaimed chunks (exhausted ones are pruned lazily).
    queue: Mutex<VecDeque<Arc<Batch>>>,
    work_cv: Condvar,
    /// Number of workers spawned so far (monotone; workers never exit).
    spawned: Mutex<usize>,
    spawned_hint: AtomicUsize,
}

static SHARED: OnceLock<Arc<Shared>> = OnceLock::new();

fn shared() -> &'static Arc<Shared> {
    SHARED.get_or_init(|| {
        Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            work_cv: Condvar::new(),
            spawned: Mutex::new(0),
            spawned_hint: AtomicUsize::new(0),
        })
    })
}

thread_local! {
    /// Per-thread override of the pool width, installed by [`with_threads`].
    static OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
    /// True while this thread is running a chunk of some batch.  Parallel
    /// calls made in that state run inline (sequentially) instead of
    /// re-entering the pool: the outer call already owns the fan-out, and
    /// never blocking a worker on another batch rules out deadlock.
    static IN_PARALLEL: Cell<bool> = const { Cell::new(false) };
    /// The staffing slot this worker held on the last batch it ran.  Workers
    /// re-acquire the same slot when it is free, which keeps chunk→thread
    /// assignment stable across the batches of a round-synchronous loop
    /// (the sticky-affinity epoch; see the module docs).
    static PREFERRED_SLOT: Cell<usize> = const { Cell::new(usize::MAX) };
}

/// The process-wide default thread count: `PM_THREADS` if set to a positive
/// integer, otherwise [`std::thread::available_parallelism`].
pub(crate) fn configured_threads() -> usize {
    static CONFIGURED: OnceLock<usize> = OnceLock::new();
    *CONFIGURED.get_or_init(|| {
        match std::env::var("PM_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
        {
            Some(n) if n >= 1 => n,
            _ => std::thread::available_parallelism().map_or(1, |n| n.get()),
        }
    })
}

/// The thread count parallel calls on this thread currently fan out to.
pub(crate) fn effective_threads() -> usize {
    OVERRIDE
        .with(|o| o.get())
        .unwrap_or_else(configured_threads)
}

/// Whether this thread is inside a chunk of an active batch.
pub(crate) fn in_parallel_context() -> bool {
    IN_PARALLEL.with(|f| f.get())
}

/// Runs `f` with parallel calls fanning out to `n` threads, growing the
/// worker pool if needed, and restores the previous width afterwards (also
/// on panic).
pub(crate) fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    assert!(n >= 1, "thread count must be at least 1");
    if n > 1 {
        ensure_workers(n - 1);
    }
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            OVERRIDE.with(|o| o.set(self.0));
        }
    }
    let _restore = Restore(OVERRIDE.with(|o| o.replace(Some(n))));
    f()
}

/// Grows the pool to at least `target` workers (the calling thread is the
/// `+1` that brings the total to the configured thread count).
fn ensure_workers(target: usize) {
    let s = shared();
    if s.spawned_hint.load(Ordering::Relaxed) >= target {
        return;
    }
    let mut spawned = s.spawned.lock().unwrap();
    while *spawned < target {
        let worker_shared = Arc::clone(s);
        std::thread::Builder::new()
            .name(format!("pm-rayon-{spawned}"))
            .spawn(move || worker_loop(&worker_shared))
            .expect("failed to spawn pool worker");
        *spawned += 1;
    }
    s.spawned_hint.store(*spawned, Ordering::Relaxed);
}

fn worker_loop(shared: &Shared) -> ! {
    // Workers run every chunk in "nested" mode: anything parallel inside a
    // chunk executes inline on this thread.
    IN_PARALLEL.with(|f| f.set(true));
    loop {
        let (batch, slot) = {
            let mut queue = shared.queue.lock().unwrap();
            loop {
                queue.retain(|b| !b.exhausted());
                // Join the first batch with an open staffing slot — the slot
                // this worker held last time when free; fully staffed
                // batches are left to their current runners.
                let preferred = PREFERRED_SLOT.with(|p| p.get());
                if let Some(found) = queue
                    .iter()
                    .find_map(|b| b.try_join(preferred).map(|s| (Arc::clone(b), s)))
                {
                    break found;
                }
                queue = shared.work_cv.wait(queue).unwrap();
            }
        };
        PREFERRED_SLOT.with(|p| p.set(slot));
        // Adopt the batch's width so nested code observes the same
        // `current_num_threads` regardless of which thread runs the chunk.
        OVERRIDE.with(|o| o.set(Some(batch.width)));
        while let Some(i) = batch.claim(slot) {
            batch.run_chunk(i);
        }
        OVERRIDE.with(|o| o.set(None));
    }
}

/// Runs `job(0..n_chunks)` across the pool with caller participation and
/// blocks until every chunk has finished.  Inline (sequential, in order)
/// when the effective width is 1, when there is a single chunk, or when
/// already inside a chunk.  Re-raises the first chunk panic.
pub(crate) fn execute(job: &(dyn Fn(usize) + Sync), n_chunks: usize) {
    let width = effective_threads();
    if n_chunks <= 1 || width <= 1 || in_parallel_context() {
        for i in 0..n_chunks {
            job(i);
        }
        return;
    }
    ensure_workers(width - 1);

    // Erase the borrow; `execute` blocks until `done == n_chunks`, and no
    // thread touches `job` after bumping `done`, so the reference never
    // outlives the data (module docs).
    let job_static: &'static (dyn Fn(usize) + Sync) = unsafe {
        std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(job)
    };
    let batch = Batch::new(job_static, n_chunks, width);

    let s = shared();
    s.queue.lock().unwrap().push_back(Arc::clone(&batch));
    s.work_cv.notify_all();

    // Participate: run chunks on this thread until none are left to claim.
    // The caller always holds slot 0, so its chunk range — the front of the
    // arrays — stays on the calling thread across consecutive calls.
    IN_PARALLEL.with(|f| f.set(true));
    while let Some(i) = batch.claim(0) {
        batch.run_chunk(i);
    }
    IN_PARALLEL.with(|f| f.set(false));

    batch.wait();
    // Tidy up in case no worker pruned the exhausted batch yet.
    s.queue.lock().unwrap().retain(|b| !Arc::ptr_eq(b, &batch));
    let payload = batch.panic.lock().unwrap().take();
    if let Some(payload) = payload {
        resume_unwind(payload);
    }
}

/// Runs `f(i)` for every chunk index and returns the results in chunk
/// order.  The per-chunk results cross threads, hence `R: Send`.
pub(crate) fn run_chunks<R, F>(n_chunks: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    use std::cell::UnsafeCell;
    struct Slots<R>(Box<[UnsafeCell<Option<R>>]>);
    // Each slot is written by exactly one thread (its chunk's unique
    // claimer) and read only after the batch completes.
    unsafe impl<R: Send> Sync for Slots<R> {}
    impl<R> Slots<R> {
        /// # Safety
        /// Each index must be written by at most one thread at a time.
        unsafe fn put(&self, i: usize, r: R) {
            unsafe { *self.0[i].get() = Some(r) };
        }
    }

    let slots: Slots<R> = Slots((0..n_chunks).map(|_| UnsafeCell::new(None)).collect());
    let job = |i: usize| {
        let r = f(i);
        // SAFETY: chunk `i` has a unique claimer.
        unsafe { slots.put(i, r) };
    };
    execute(&job, n_chunks);
    slots
        .0
        .into_vec()
        .into_iter()
        .map(|cell| cell.into_inner().expect("pool: chunk result missing"))
        .collect()
}

/// Potentially-parallel [`rayon::join`]: runs `a` on the calling thread
/// while `b` is offered to the pool; if no worker picks `b` up, the caller
/// runs it after finishing `a`.
pub(crate) fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if effective_threads() <= 1 || in_parallel_context() {
        return (a(), b());
    }
    ensure_workers(effective_threads() - 1);

    let b_fn = Mutex::new(Some(b));
    let rb_slot = Mutex::new(None::<RB>);
    let job = |_i: usize| {
        let f = b_fn.lock().unwrap().take();
        if let Some(f) = f {
            *rb_slot.lock().unwrap() = Some(f());
        }
    };
    let job_static: &'static (dyn Fn(usize) + Sync) = unsafe {
        std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(&job)
    };
    // Width 2: the caller plus at most one worker for `b`.
    let batch = Batch::new(job_static, 1, 2);
    let s = shared();
    s.queue.lock().unwrap().push_back(Arc::clone(&batch));
    s.work_cv.notify_all();

    // `a` must not unwind past the enqueued batch (its job borrows this
    // stack frame); hold the payload until the batch has drained.
    let ra = catch_unwind(AssertUnwindSafe(a));
    IN_PARALLEL.with(|f| f.set(true));
    while let Some(i) = batch.claim(0) {
        batch.run_chunk(i);
    }
    IN_PARALLEL.with(|f| f.set(false));
    batch.wait();
    s.queue.lock().unwrap().retain(|b| !Arc::ptr_eq(b, &batch));

    let payload = batch.panic.lock().unwrap().take();
    if let Some(payload) = payload {
        resume_unwind(payload);
    }
    let ra = match ra {
        Ok(r) => r,
        Err(payload) => resume_unwind(payload),
    };
    let rb = rb_slot
        .into_inner()
        .unwrap()
        .expect("join: second closure did not run");
    (ra, rb)
}
