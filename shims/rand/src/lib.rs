//! Deterministic stand-in for the subset of the `rand` crate this workspace
//! uses (`rngs::StdRng`, `SeedableRng::seed_from_u64`, a `RngExt` extension
//! trait providing `random_range`, and `seq::SliceRandom::shuffle`).
//!
//! The build environment has no network access to crates.io, so the real
//! `rand` cannot be vendored.  The generator here is xoshiro256** seeded via
//! SplitMix64 — more than adequate for test-instance generation, and fully
//! deterministic per seed, which is what every caller in the workspace
//! relies on.

/// A source of random 64-bit words.
pub trait RngCore {
    /// Next raw 64-bit output of the generator.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seeding support, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Construct a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ranges a uniform value can be drawn from; mirrors
/// `rand::distr::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draw a uniform sample from the range.  Panics on an empty range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        // 53 uniform mantissa bits in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

/// Convenience sampling methods; stands in for the `rand::Rng` extension
/// trait (named `RngExt` throughout this workspace).
pub trait RngExt: RngCore {
    /// Uniform sample from `range`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// A uniformly random `bool`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random_range(0.0..1.0) < p
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256** seeded by SplitMix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Slice shuffling, mirroring `rand::seq::SliceRandom`.
pub mod seq {
    use super::{RngCore, RngExt};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;
        /// In-place Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
        /// A uniformly random element, `None` on an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.random_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(
                a.random_range(0..1_000_000u64),
                b.random_range(0..1_000_000u64)
            );
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.random_range(3..17usize);
            assert!((3..17).contains(&x));
            let y = rng.random_range(-5..=5i32);
            assert!((-5..=5).contains(&y));
            let f = rng.random_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn all_values_reachable() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[rng.random_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
