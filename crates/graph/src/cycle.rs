//! NC cycle finding in pseudoforests — the three approaches of Section IV-A.
//!
//! Given the switching graph (a directed pseudoforest, or its undirected
//! view), the paper needs the unique cycle of every component.  It sketches
//! three NC routes, all implemented here so experiment E7 can compare them:
//!
//! 1. **Transitive closure** ([`cycle_vertices_via_closure`]): compute `G*`
//!    and test pairs of vertices that reach each other (Theorem 5).
//! 2. **Incidence rank** ([`cycle_edges_via_rank`]): removing edge `e` keeps
//!    `rank(I_G) = n − cc(G)` unchanged iff `e` lies on a cycle (Lemma 6 +
//!    Theorem 7).
//! 3. **Component counting** ([`cycle_edges_via_cc`]): the same test phrased
//!    directly with a connected-components algorithm (Theorem 8).
//!
//! The fast pointer-doubling detector used by the production algorithms
//! lives on [`FunctionalGraph`](crate::functional::FunctionalGraph); the
//! routines here are the faithful reproductions of the paper's alternatives
//! and are cross-validated against it in the tests.

use rayon::prelude::*;

use pm_linalg::{BoolMatrix, Gf2Matrix};
use pm_pram::tracker::DepthTracker;

use crate::connected::count_components;
use crate::functional::FunctionalGraph;
use crate::pseudoforest::UndirectedGraph;

/// Marks the vertices of a directed pseudoforest that lie on a cycle, using
/// the transitive-closure criterion of the paper: `v` lies on a cycle iff
/// `G⁺(v, v)` holds (equivalently, iff there are `i ≠ j` with `G*(i, j)` and
/// `G*(j, i)`, plus self-loops).
pub fn cycle_vertices_via_closure(g: &FunctionalGraph, tracker: &DepthTracker) -> Vec<bool> {
    let n = g.n();
    if n == 0 {
        return Vec::new();
    }
    let adj = BoolMatrix::from_edges(n, &g.edges());
    let closure = adj.strict_transitive_closure(tracker);
    (0..n).map(|v| closure.get(v, v)).collect()
}

/// Marks the edges of an undirected pseudoforest that lie on a cycle using
/// the incidence-matrix rank criterion: `e` is a cycle edge iff
/// `rank(I_{G−e}) = rank(I_G)`.
///
/// All edge removals are tested in parallel (one rank computation each), as
/// the paper prescribes ("for each e in G_P, compute the rank of
/// I_{G_P −{e}} in parallel").
pub fn cycle_edges_via_rank(g: &UndirectedGraph, tracker: &DepthTracker) -> Vec<bool> {
    let incidence = Gf2Matrix::incidence(g.n(), g.edges());
    let base_rank = incidence.rank(tracker);
    tracker.round();
    tracker.work(g.num_edges() as u64);
    // One rank computation per edge: heavy items, so let even a handful of
    // edges fan out instead of waiting for the default minimum chunk size.
    (0..g.num_edges())
        .into_par_iter()
        .with_min_len(1)
        .map(|e| {
            let (u, v) = g.edges()[e];
            if u == v {
                // A self-loop is a cycle by itself and never affects the rank.
                return true;
            }
            incidence.without_column(e).rank(tracker) == base_rank
        })
        .collect()
}

/// Marks the edges of an undirected pseudoforest that lie on a cycle using
/// connected-component counting: `e` is a cycle edge iff
/// `cc(G − e) = cc(G)`.
pub fn cycle_edges_via_cc(g: &UndirectedGraph, tracker: &DepthTracker) -> Vec<bool> {
    let base = count_components(g.n(), g.edges());
    tracker.round();
    tracker.work((g.num_edges() * (g.n() + g.num_edges())) as u64);
    // One component count per edge — heavy items, as above.
    (0..g.num_edges())
        .into_par_iter()
        .with_min_len(1)
        .map(|e| {
            let (u, v) = g.edges()[e];
            if u == v {
                return true;
            }
            let remaining: Vec<(usize, usize)> = g
                .edges()
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != e)
                .map(|(_, &uv)| uv)
                .collect();
            count_components(g.n(), &remaining) == base
        })
        .collect()
}

/// Converts a directed pseudoforest into its undirected view, keeping edge
/// `e` in the same order as `g.edges()` so edge-indexed results line up.
pub fn undirected_view(g: &FunctionalGraph) -> UndirectedGraph {
    UndirectedGraph::from_edges(g.n(), &g.edges())
}

/// Convenience: cycle vertices of a directed pseudoforest via the rank
/// method (mapping cycle edges back to their endpoints).
pub fn cycle_vertices_via_rank(g: &FunctionalGraph, tracker: &DepthTracker) -> Vec<bool> {
    let ug = undirected_view(g);
    let edge_marks = cycle_edges_via_rank(&ug, tracker);
    vertices_from_edge_marks(&ug, &edge_marks)
}

/// Convenience: cycle vertices of a directed pseudoforest via the
/// component-counting method.
pub fn cycle_vertices_via_cc(g: &FunctionalGraph, tracker: &DepthTracker) -> Vec<bool> {
    let ug = undirected_view(g);
    let edge_marks = cycle_edges_via_cc(&ug, tracker);
    vertices_from_edge_marks(&ug, &edge_marks)
}

fn vertices_from_edge_marks(g: &UndirectedGraph, edge_marks: &[bool]) -> Vec<bool> {
    let mut out = vec![false; g.n()];
    for (e, &(u, v)) in g.edges().iter().enumerate() {
        if edge_marks[e] {
            out[u] = true;
            out[v] = true;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example_pseudoforest() -> FunctionalGraph {
        // Component 1: cycle 0 -> 1 -> 2 -> 0 with tails 3 -> 0, 4 -> 3.
        // Component 2: path to sink 5 -> 6 -> 7 (7 is a sink).
        // Component 3: self-loop 8 -> 8.
        FunctionalGraph::new(vec![
            Some(1),
            Some(2),
            Some(0),
            Some(0),
            Some(3),
            Some(6),
            Some(7),
            None,
            Some(8),
        ])
    }

    #[test]
    fn closure_matches_doubling() {
        let g = example_pseudoforest();
        let t = DepthTracker::new();
        assert_eq!(cycle_vertices_via_closure(&g, &t), g.on_cycle_parallel(&t));
        assert_eq!(cycle_vertices_via_closure(&g, &t), g.on_cycle_sequential());
    }

    #[test]
    fn rank_and_cc_methods_agree_with_pruning() {
        let g = example_pseudoforest();
        let ug = undirected_view(&g);
        assert!(ug.is_pseudoforest());
        let t = DepthTracker::new();
        let expected = ug.cycle_edges_sequential();
        assert_eq!(cycle_edges_via_rank(&ug, &t), expected);
        assert_eq!(cycle_edges_via_cc(&ug, &t), expected);
    }

    #[test]
    fn vertex_views_agree_across_all_methods() {
        let g = example_pseudoforest();
        let t = DepthTracker::new();
        let doubling = g.on_cycle_parallel(&t);
        assert_eq!(cycle_vertices_via_closure(&g, &t), doubling);
        assert_eq!(cycle_vertices_via_rank(&g, &t), doubling);
        assert_eq!(cycle_vertices_via_cc(&g, &t), doubling);
    }

    #[test]
    fn empty_and_sink_only_graphs() {
        let t = DepthTracker::new();
        let empty = FunctionalGraph::new(vec![]);
        assert!(cycle_vertices_via_closure(&empty, &t).is_empty());
        let sinks = FunctionalGraph::new(vec![None, None]);
        assert_eq!(cycle_vertices_via_closure(&sinks, &t), vec![false, false]);
        assert_eq!(cycle_vertices_via_rank(&sinks, &t), vec![false, false]);
    }

    #[test]
    fn two_cycle_is_detected_by_all_methods() {
        // 0 <-> 1 (a 2-cycle in the directed sense; two parallel edges in
        // the undirected view).
        let g = FunctionalGraph::new(vec![Some(1), Some(0)]);
        let t = DepthTracker::new();
        assert_eq!(cycle_vertices_via_closure(&g, &t), vec![true, true]);
        assert_eq!(cycle_vertices_via_rank(&g, &t), vec![true, true]);
        assert_eq!(cycle_vertices_via_cc(&g, &t), vec![true, true]);
        assert_eq!(g.on_cycle_parallel(&t), vec![true, true]);
    }

    #[test]
    fn random_pseudoforests_all_methods_agree() {
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(2024);
        for &n in &[3usize, 10, 40, 120] {
            let succ: Vec<Option<usize>> = (0..n)
                .map(|_| {
                    if rng.random_range(0..5) == 0 {
                        None
                    } else {
                        Some(rng.random_range(0..n))
                    }
                })
                .collect();
            let g = FunctionalGraph::new(succ);
            let t = DepthTracker::new();
            let reference = g.on_cycle_sequential();
            assert_eq!(
                cycle_vertices_via_closure(&g, &t),
                reference,
                "closure n={n}"
            );
            assert_eq!(cycle_vertices_via_rank(&g, &t), reference, "rank n={n}");
            assert_eq!(cycle_vertices_via_cc(&g, &t), reference, "cc n={n}");
        }
    }
}
