//! Undirected graphs and pseudoforest predicates.
//!
//! Definition 3 of the paper: a *pseudoforest* is an undirected graph in
//! which every connected component has at most one cycle.  The rank- and
//! component-counting cycle detectors of Section IV-A are stated for the
//! undirected view of the switching graph, so this module provides a small
//! undirected-graph type with edge identities plus the structural predicates
//! the property tests check (experiment E11).

use crate::connected::{connected_components_union_find, count_components};

/// A simple undirected graph with explicit edge identities (multi-edges are
/// allowed; they are meaningful for pseudoforest cycle structure).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct UndirectedGraph {
    n: usize,
    edges: Vec<(usize, usize)>,
    adj: Vec<Vec<(usize, usize)>>, // (neighbour, edge id)
}

impl UndirectedGraph {
    /// Creates an empty graph on `n` vertices.
    pub fn new(n: usize) -> Self {
        Self {
            n,
            edges: Vec::new(),
            adj: vec![Vec::new(); n],
        }
    }

    /// Builds a graph from an edge list.
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> Self {
        let mut g = Self::new(n);
        for &(u, v) in edges {
            g.add_edge(u, v);
        }
        g
    }

    /// Adds an edge and returns its id.
    pub fn add_edge(&mut self, u: usize, v: usize) -> usize {
        assert!(u < self.n && v < self.n, "edge endpoint out of range");
        let id = self.edges.len();
        self.edges.push((u, v));
        self.adj[u].push((v, id));
        if u != v {
            self.adj[v].push((u, id));
        }
        id
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The edge list.
    pub fn edges(&self) -> &[(usize, usize)] {
        &self.edges
    }

    /// Degree of vertex `v` (a self-loop counts twice).
    pub fn degree(&self, v: usize) -> usize {
        self.adj[v]
            .iter()
            .map(|&(u, _)| if u == v { 2 } else { 1 })
            .sum()
    }

    /// Neighbours of `v` as `(neighbour, edge id)` pairs.
    pub fn neighbors(&self, v: usize) -> &[(usize, usize)] {
        &self.adj[v]
    }

    /// True iff every connected component has at most one cycle, i.e. at
    /// most as many edges as vertices (Definition 3).
    pub fn is_pseudoforest(&self) -> bool {
        let labels = connected_components_union_find(self.n, &self.edges);
        let mut vertices_per = vec![0usize; self.n];
        let mut edges_per = vec![0usize; self.n];
        for v in 0..self.n {
            vertices_per[labels.label[v]] += 1;
        }
        for &(u, _v) in &self.edges {
            edges_per[labels.label[u]] += 1;
        }
        (0..self.n).all(|c| edges_per[c] <= vertices_per[c])
    }

    /// True iff the graph is a forest (no cycles at all).
    pub fn is_forest(&self) -> bool {
        // A graph is acyclic iff every component has exactly |V| - 1 edges,
        // i.e. m = n - cc overall and it has no self-loops / multi-edges
        // creating cycles — the component count identity covers those too.
        self.num_edges() + count_components(self.n, &self.edges) == self.n
    }

    /// Marks the edges that lie on some cycle, by iteratively pruning
    /// degree-≤1 vertices (sequential baseline for experiment E7; in a
    /// pseudoforest the surviving edges are exactly the unique cycles).
    pub fn cycle_edges_sequential(&self) -> Vec<bool> {
        let n = self.n;
        let mut alive_edge = vec![true; self.edges.len()];
        let mut degree: Vec<usize> = (0..n).map(|v| self.degree(v)).collect();
        let mut queue: Vec<usize> = (0..n).filter(|&v| degree[v] <= 1).collect();
        let mut removed = vec![false; n];

        while let Some(v) = queue.pop() {
            if removed[v] || degree[v] > 1 {
                continue;
            }
            removed[v] = true;
            for &(u, e) in &self.adj[v] {
                if alive_edge[e] && u != v {
                    alive_edge[e] = false;
                    degree[u] -= 1;
                    degree[v] = degree[v].saturating_sub(1);
                    if degree[u] <= 1 && !removed[u] {
                        queue.push(u);
                    }
                }
            }
        }
        alive_edge
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degrees_and_edges() {
        let mut g = UndirectedGraph::new(4);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        let loop_id = g.add_edge(3, 3);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.degree(3), 2);
        assert_eq!(loop_id, 2);
        assert_eq!(g.num_edges(), 3);
    }

    #[test]
    fn pseudoforest_predicates() {
        // A tree is a pseudoforest and a forest.
        let tree = UndirectedGraph::from_edges(4, &[(0, 1), (1, 2), (1, 3)]);
        assert!(tree.is_pseudoforest());
        assert!(tree.is_forest());

        // One cycle per component: pseudoforest but not a forest.
        let unicyclic = UndirectedGraph::from_edges(5, &[(0, 1), (1, 2), (2, 0), (3, 4)]);
        assert!(unicyclic.is_pseudoforest());
        assert!(!unicyclic.is_forest());

        // Two cycles in one component: not a pseudoforest.
        let theta = UndirectedGraph::from_edges(4, &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 0)]);
        assert!(!theta.is_pseudoforest());
    }

    #[test]
    fn multi_edge_counts_as_cycle() {
        let two_parallel = UndirectedGraph::from_edges(2, &[(0, 1), (0, 1)]);
        assert!(two_parallel.is_pseudoforest());
        assert!(!two_parallel.is_forest());
        let three_parallel = UndirectedGraph::from_edges(2, &[(0, 1), (0, 1), (0, 1)]);
        assert!(!three_parallel.is_pseudoforest());
    }

    #[test]
    fn cycle_edges_by_pruning() {
        // cycle 0-1-2-0 with pendant 3 attached to 0 and isolated 4.
        let g = UndirectedGraph::from_edges(5, &[(0, 1), (1, 2), (2, 0), (0, 3)]);
        assert_eq!(g.cycle_edges_sequential(), vec![true, true, true, false]);
    }

    #[test]
    fn cycle_edges_on_forest_is_all_false() {
        let g = UndirectedGraph::from_edges(6, &[(0, 1), (1, 2), (3, 4)]);
        assert!(g.cycle_edges_sequential().iter().all(|&b| !b));
    }

    #[test]
    fn cycle_edges_long_cycle() {
        let n = 100;
        let mut edges: Vec<(usize, usize)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        edges.push((0, n)); // pendant
        let g = UndirectedGraph::from_edges(n + 1, &edges);
        let marks = g.cycle_edges_sequential();
        assert!(marks[..n].iter().all(|&b| b));
        assert!(!marks[n]);
    }
}
