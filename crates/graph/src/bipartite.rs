//! Bipartite graphs over a left vertex set (applicants) and a right vertex
//! set (posts).
//!
//! The popular matching instance is a bipartite graph `G = (A ∪ P, E)`; the
//! reduced graph `G'` of Section III is another bipartite graph over the
//! same vertex sets.  Adjacency is stored in a flat CSR layout for *both*
//! sides — one offsets array plus one flat neighbour array per side — so
//! degree queries from either side are O(1), neighbourhoods are contiguous
//! slices, and Hopcroft–Karp's BFS/DFS sweeps stream through memory instead
//! of hopping between per-vertex heap allocations.  Both CSR arrays are
//! 32-bit ([`Idx`] neighbours, `u32` offsets — DESIGN.md §7): vertex and
//! edge counts are checked to fit at construction, and every sweep over the
//! adjacency moves half the bytes of the former `usize` layout.  Graphs are
//! built in one shot ([`from_edges`](BipartiteGraph::from_edges) or the
//! allocation-lean [`from_left_csr`](BipartiteGraph::from_left_csr)) and
//! are immutable afterwards.

use rayon::prelude::*;

use pm_pram::Idx;

/// A simple undirected bipartite graph with `n_left` left vertices and
/// `n_right` right vertices, in 32-bit CSR form.  Parallel edges are not
/// stored (duplicates in the input edge list are dropped).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BipartiteGraph {
    n_left: usize,
    n_right: usize,
    /// Left CSR: neighbours of `l` are `left_adj[left_off[l]..left_off[l+1]]`.
    left_off: Vec<u32>,
    left_adj: Vec<Idx>,
    /// Right CSR: neighbours of `r` are `right_adj[right_off[r]..right_off[r+1]]`.
    right_off: Vec<u32>,
    right_adj: Vec<Idx>,
}

impl BipartiteGraph {
    /// Creates an empty bipartite graph with the given side sizes.
    ///
    /// # Panics
    /// Panics if a side exceeds the 32-bit index range.
    pub fn new(n_left: usize, n_right: usize) -> Self {
        assert!(
            n_left <= Idx::MAX_INDEX && n_right <= Idx::MAX_INDEX,
            "side size exceeds the u32 index layer"
        );
        Self {
            n_left,
            n_right,
            left_off: vec![0; n_left + 1],
            left_adj: Vec::new(),
            right_off: vec![0; n_right + 1],
            right_adj: Vec::new(),
        }
    }

    /// Builds a graph from an edge list of `(left, right)` pairs.  Duplicate
    /// pairs are dropped; per-vertex neighbour order follows the first
    /// occurrence of each edge in the list.
    ///
    /// # Panics
    /// Panics if an endpoint is out of range or a count exceeds the 32-bit
    /// index range.
    pub fn from_edges(n_left: usize, n_right: usize, edges: &[(usize, usize)]) -> Self {
        assert!(
            n_left <= Idx::MAX_INDEX && n_right <= Idx::MAX_INDEX && edges.len() <= Idx::MAX_INDEX,
            "graph size exceeds the u32 index layer"
        );
        for &(l, r) in edges {
            assert!(l < n_left, "left endpoint {l} out of range");
            assert!(r < n_right, "right endpoint {r} out of range");
        }
        // Dedup keeping first occurrences, then two counting-sort passes.
        let mut seen = std::collections::HashSet::with_capacity(edges.len());
        let deduped: Vec<(usize, usize)> =
            edges.iter().copied().filter(|&e| seen.insert(e)).collect();

        let mut counts = vec![0u32; n_left];
        for &(l, _) in &deduped {
            counts[l] += 1;
        }
        let left_off = bounds_from_counts(&counts);
        let mut cursor = left_off[..n_left].to_vec();
        let mut left_adj = vec![Idx::ZERO; deduped.len()];
        for &(l, r) in &deduped {
            left_adj[cursor[l] as usize] = Idx::new(r);
            cursor[l] += 1;
        }
        let (right_off, right_adj) = transpose(n_right, &deduped);
        Self {
            n_left,
            n_right,
            left_off,
            left_adj,
            right_off,
            right_adj,
        }
    }

    /// Builds a graph directly from a left-side CSR adjacency: the
    /// neighbours of left vertex `l` are `flat[offsets[l]..offsets[l + 1]]`.
    /// This is the fast path for callers that already hold flat adjacency
    /// (the reduced graph, Algorithm 2's remainder, the ties reduction) —
    /// no edge-list materialisation and no dedup hashing.
    ///
    /// # Panics
    /// Panics if `offsets` is not a monotone boundary array over `flat`, or
    /// if a neighbour is out of range.  Duplicate neighbours within one left
    /// vertex are the caller's responsibility (checked in debug builds).
    pub fn from_left_csr(n_left: usize, n_right: usize, offsets: Vec<u32>, flat: Vec<Idx>) -> Self {
        assert!(
            n_right <= Idx::MAX_INDEX,
            "side size exceeds the u32 index layer"
        );
        assert_eq!(offsets.len(), n_left + 1, "offsets length mismatch");
        assert_eq!(
            *offsets.last().unwrap() as usize,
            flat.len(),
            "offsets/flat mismatch"
        );
        assert!(
            offsets.windows(2).all(|w| w[0] <= w[1]),
            "offsets must be monotone"
        );
        assert!(
            flat.iter().all(|&r| r.get() < n_right),
            "right endpoint out of range"
        );
        debug_assert!(
            (0..n_left).all(|l| {
                let s = &flat[offsets[l] as usize..offsets[l + 1] as usize];
                s.iter().all(|r| s.iter().filter(|&x| x == r).count() == 1)
            }),
            "duplicate neighbour in CSR input"
        );
        let mut counts = vec![0u32; n_right];
        for &r in &flat {
            counts[r] += 1;
        }
        let right_off = bounds_from_counts(&counts);
        let mut cursor = right_off[..n_right].to_vec();
        let mut right_adj = vec![Idx::ZERO; flat.len()];
        for l in 0..n_left {
            for &r in &flat[offsets[l] as usize..offsets[l + 1] as usize] {
                right_adj[cursor[r.get()] as usize] = Idx::new(l);
                cursor[r.get()] += 1;
            }
        }
        Self {
            n_left,
            n_right,
            left_off: offsets,
            left_adj: flat,
            right_off,
            right_adj,
        }
    }

    /// Number of left vertices (applicants).
    pub fn n_left(&self) -> usize {
        self.n_left
    }

    /// Number of right vertices (posts).
    pub fn n_right(&self) -> usize {
        self.n_right
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.left_adj.len()
    }

    /// Degree of a left vertex.
    pub fn degree_left(&self, l: usize) -> usize {
        (self.left_off[l + 1] - self.left_off[l]) as usize
    }

    /// Degree of a right vertex.
    pub fn degree_right(&self, r: usize) -> usize {
        (self.right_off[r + 1] - self.right_off[r]) as usize
    }

    /// Neighbours (right vertices) of a left vertex, in insertion order.
    pub fn neighbors_left(&self, l: usize) -> &[Idx] {
        &self.left_adj[self.left_off[l] as usize..self.left_off[l + 1] as usize]
    }

    /// Neighbours (left vertices) of a right vertex, in insertion order.
    pub fn neighbors_right(&self, r: usize) -> &[Idx] {
        &self.right_adj[self.right_off[r] as usize..self.right_off[r + 1] as usize]
    }

    /// The left-side CSR arrays `(offsets, flat)` — the raw 32-bit layout,
    /// for callers (like the ties reduction) that re-wrap the adjacency
    /// without materialising per-vertex vectors.
    pub fn left_csr(&self) -> (&[u32], &[Idx]) {
        (&self.left_off, &self.left_adj)
    }

    /// True iff the edge `(left, right)` is present.
    pub fn has_edge(&self, left: usize, right: usize) -> bool {
        self.neighbors_left(left).contains(&Idx::new(right))
    }

    /// All edges as `(left, right)` pairs, grouped by left vertex.
    pub fn edges(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::with_capacity(self.left_adj.len());
        for l in 0..self.n_left {
            for &r in self.neighbors_left(l) {
                out.push((l, r.get()));
            }
        }
        out
    }

    /// Checks that a candidate matching (given as `assignment[left] =
    /// Some(right)`) uses only edges of this graph and matches each right
    /// vertex at most once.
    pub fn is_valid_matching(&self, assignment: &[Option<usize>]) -> bool {
        if assignment.len() != self.n_left {
            return false;
        }
        let mut used = vec![false; self.n_right];
        for (l, &a) in assignment.iter().enumerate() {
            if let Some(r) = a {
                if r >= self.n_right || !self.has_edge(l, r) || used[r] {
                    return false;
                }
                used[r] = true;
            }
        }
        true
    }

    /// Number of matched left vertices in a candidate matching.
    pub fn matching_size(assignment: &[Option<usize>]) -> usize {
        assignment.iter().filter(|a| a.is_some()).count()
    }

    /// Right-vertex degrees computed in parallel (one PRAM round's worth of
    /// work); convenient for Algorithm 2's "some post has degree 1" tests.
    pub fn right_degrees(&self) -> Vec<usize> {
        if self.n_right >= pm_pram::SEQUENTIAL_CUTOFF {
            (0..self.n_right)
                .into_par_iter()
                .map(|r| (self.right_off[r + 1] - self.right_off[r]) as usize)
                .collect()
        } else {
            self.right_off
                .windows(2)
                .map(|w| (w[1] - w[0]) as usize)
                .collect()
        }
    }

    /// Resident heap bytes of the four CSR arrays — the footprint estimate
    /// the bench harness reports as `bytes_per_entity`.
    pub fn heap_bytes(&self) -> usize {
        (self.left_off.len() + self.right_off.len()) * std::mem::size_of::<u32>()
            + (self.left_adj.len() + self.right_adj.len()) * std::mem::size_of::<Idx>()
    }
}

/// `n + 1` CSR boundaries from per-vertex counts (sequential; the callers
/// charging PRAM rounds use `pm_pram::scan::csr_offsets` instead).
fn bounds_from_counts(counts: &[u32]) -> Vec<u32> {
    let mut off = Vec::with_capacity(counts.len() + 1);
    let mut acc = 0u32;
    off.push(0);
    for &c in counts {
        acc += c;
        off.push(acc);
    }
    off
}

/// Right-side CSR of a (deduplicated) edge list.
fn transpose(n_right: usize, edges: &[(usize, usize)]) -> (Vec<u32>, Vec<Idx>) {
    let mut counts = vec![0u32; n_right];
    for &(_, r) in edges {
        counts[r] += 1;
    }
    let off = bounds_from_counts(&counts);
    let mut cursor = off[..n_right].to_vec();
    let mut adj = vec![Idx::ZERO; edges.len()];
    for &(l, r) in edges {
        adj[cursor[r] as usize] = Idx::new(l);
        cursor[r] += 1;
    }
    (off, adj)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idxs(xs: &[usize]) -> Vec<Idx> {
        xs.iter().map(|&x| Idx::new(x)).collect()
    }

    #[test]
    fn empty_graph() {
        let g = BipartiteGraph::new(3, 2);
        assert_eq!(g.n_left(), 3);
        assert_eq!(g.n_right(), 2);
        assert_eq!(g.num_edges(), 0);
        assert!(g.edges().is_empty());
        assert_eq!(g.degree_left(2), 0);
        assert_eq!(g.degree_right(1), 0);
    }

    #[test]
    fn duplicate_edges_are_dropped() {
        let g = BipartiteGraph::from_edges(2, 2, &[(0, 0), (0, 1), (0, 0)]);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.degree_left(0), 2);
        assert_eq!(g.degree_left(1), 0);
        assert_eq!(g.degree_right(0), 1);
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(1, 1));
        assert_eq!(g.neighbors_left(0), idxs(&[0, 1]).as_slice());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        let _ = BipartiteGraph::from_edges(1, 1, &[(0, 5)]);
    }

    #[test]
    fn edge_list_roundtrip() {
        let edges = vec![(0, 1), (1, 0), (2, 1), (2, 2)];
        let g = BipartiteGraph::from_edges(3, 3, &edges);
        assert_eq!(g.edges(), edges);
        assert_eq!(g.right_degrees(), vec![1, 2, 1]);
        assert_eq!(g.neighbors_right(1), idxs(&[0, 2]).as_slice());
    }

    #[test]
    fn from_left_csr_matches_from_edges() {
        let edges = vec![(0, 1), (0, 2), (1, 0), (2, 2)];
        let via_edges = BipartiteGraph::from_edges(3, 3, &edges);
        let via_csr = BipartiteGraph::from_left_csr(3, 3, vec![0, 2, 3, 4], idxs(&[1, 2, 0, 2]));
        assert_eq!(via_edges, via_csr);
        let (off, flat) = via_csr.left_csr();
        assert_eq!(off, &[0, 2, 3, 4]);
        assert_eq!(flat, idxs(&[1, 2, 0, 2]).as_slice());
        assert!(via_csr.heap_bytes() > 0);
    }

    #[test]
    #[should_panic(expected = "offsets/flat mismatch")]
    fn from_left_csr_checks_boundaries() {
        let _ = BipartiteGraph::from_left_csr(1, 1, vec![0, 2], idxs(&[0]));
    }

    #[test]
    fn matching_validation() {
        let g = BipartiteGraph::from_edges(3, 3, &[(0, 0), (1, 0), (1, 1), (2, 2)]);
        // Valid matching.
        assert!(g.is_valid_matching(&[Some(0), Some(1), Some(2)]));
        // Uses a non-edge.
        assert!(!g.is_valid_matching(&[Some(1), Some(0), Some(2)]));
        // Post 0 used twice.
        assert!(!g.is_valid_matching(&[Some(0), Some(0), Some(2)]));
        // Partial matchings are fine.
        assert!(g.is_valid_matching(&[None, Some(0), None]));
        // Wrong length.
        assert!(!g.is_valid_matching(&[Some(0)]));
        assert_eq!(BipartiteGraph::matching_size(&[Some(0), None, Some(2)]), 2);
    }
}
