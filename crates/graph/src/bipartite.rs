//! Bipartite graphs over a left vertex set (applicants) and a right vertex
//! set (posts).
//!
//! The popular matching instance is a bipartite graph `G = (A ∪ P, E)`; the
//! reduced graph `G'` of Section III is another bipartite graph over the
//! same vertex sets.  This module stores adjacency for both sides so degree
//! queries from either side — Algorithm 2 constantly asks for post degrees —
//! are O(1).

use rayon::prelude::*;

/// A simple undirected bipartite graph with `n_left` left vertices and
/// `n_right` right vertices.  Parallel edges are not stored (inserting a
/// duplicate edge is a no-op).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BipartiteGraph {
    n_left: usize,
    n_right: usize,
    adj_left: Vec<Vec<usize>>,
    adj_right: Vec<Vec<usize>>,
    m: usize,
}

impl BipartiteGraph {
    /// Creates an empty bipartite graph with the given side sizes.
    pub fn new(n_left: usize, n_right: usize) -> Self {
        Self {
            n_left,
            n_right,
            adj_left: vec![Vec::new(); n_left],
            adj_right: vec![Vec::new(); n_right],
            m: 0,
        }
    }

    /// Builds a graph from an edge list of `(left, right)` pairs.
    ///
    /// # Panics
    /// Panics if an endpoint is out of range.
    pub fn from_edges(n_left: usize, n_right: usize, edges: &[(usize, usize)]) -> Self {
        let mut g = Self::new(n_left, n_right);
        for &(l, r) in edges {
            g.add_edge(l, r);
        }
        g
    }

    /// Adds the edge `(left, right)` if not already present.  Returns whether
    /// the edge was newly inserted.
    pub fn add_edge(&mut self, left: usize, right: usize) -> bool {
        assert!(left < self.n_left, "left endpoint {left} out of range");
        assert!(right < self.n_right, "right endpoint {right} out of range");
        if self.adj_left[left].contains(&right) {
            return false;
        }
        self.adj_left[left].push(right);
        self.adj_right[right].push(left);
        self.m += 1;
        true
    }

    /// Number of left vertices (applicants).
    pub fn n_left(&self) -> usize {
        self.n_left
    }

    /// Number of right vertices (posts).
    pub fn n_right(&self) -> usize {
        self.n_right
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.m
    }

    /// Degree of a left vertex.
    pub fn degree_left(&self, l: usize) -> usize {
        self.adj_left[l].len()
    }

    /// Degree of a right vertex.
    pub fn degree_right(&self, r: usize) -> usize {
        self.adj_right[r].len()
    }

    /// Neighbours (right vertices) of a left vertex, in insertion order.
    pub fn neighbors_left(&self, l: usize) -> &[usize] {
        &self.adj_left[l]
    }

    /// Neighbours (left vertices) of a right vertex, in insertion order.
    pub fn neighbors_right(&self, r: usize) -> &[usize] {
        &self.adj_right[r]
    }

    /// True iff the edge `(left, right)` is present.
    pub fn has_edge(&self, left: usize, right: usize) -> bool {
        self.adj_left[left].contains(&right)
    }

    /// All edges as `(left, right)` pairs, grouped by left vertex.
    pub fn edges(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::with_capacity(self.m);
        for (l, adj) in self.adj_left.iter().enumerate() {
            for &r in adj {
                out.push((l, r));
            }
        }
        out
    }

    /// Checks that a candidate matching (given as `assignment[left] =
    /// Some(right)`) uses only edges of this graph and matches each right
    /// vertex at most once.
    pub fn is_valid_matching(&self, assignment: &[Option<usize>]) -> bool {
        if assignment.len() != self.n_left {
            return false;
        }
        let mut used = vec![false; self.n_right];
        for (l, &a) in assignment.iter().enumerate() {
            if let Some(r) = a {
                if r >= self.n_right || !self.has_edge(l, r) || used[r] {
                    return false;
                }
                used[r] = true;
            }
        }
        true
    }

    /// Number of matched left vertices in a candidate matching.
    pub fn matching_size(assignment: &[Option<usize>]) -> usize {
        assignment.iter().filter(|a| a.is_some()).count()
    }

    /// Right-vertex degrees computed in parallel (one PRAM round's worth of
    /// work); convenient for Algorithm 2's "some post has degree 1" tests.
    pub fn right_degrees(&self) -> Vec<usize> {
        if self.n_right >= pm_pram::SEQUENTIAL_CUTOFF {
            self.adj_right.par_iter().map(Vec::len).collect()
        } else {
            self.adj_right.iter().map(Vec::len).collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph() {
        let g = BipartiteGraph::new(3, 2);
        assert_eq!(g.n_left(), 3);
        assert_eq!(g.n_right(), 2);
        assert_eq!(g.num_edges(), 0);
        assert!(g.edges().is_empty());
    }

    #[test]
    fn add_edges_and_duplicates() {
        let mut g = BipartiteGraph::new(2, 2);
        assert!(g.add_edge(0, 0));
        assert!(g.add_edge(0, 1));
        assert!(!g.add_edge(0, 0), "duplicate must be a no-op");
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.degree_left(0), 2);
        assert_eq!(g.degree_left(1), 0);
        assert_eq!(g.degree_right(0), 1);
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(1, 1));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        let mut g = BipartiteGraph::new(1, 1);
        g.add_edge(0, 5);
    }

    #[test]
    fn edge_list_roundtrip() {
        let edges = vec![(0, 1), (1, 0), (2, 1), (2, 2)];
        let g = BipartiteGraph::from_edges(3, 3, &edges);
        assert_eq!(g.edges(), edges);
        assert_eq!(g.right_degrees(), vec![1, 2, 1]);
    }

    #[test]
    fn matching_validation() {
        let g = BipartiteGraph::from_edges(3, 3, &[(0, 0), (1, 0), (1, 1), (2, 2)]);
        // Valid matching.
        assert!(g.is_valid_matching(&[Some(0), Some(1), Some(2)]));
        // Uses a non-edge.
        assert!(!g.is_valid_matching(&[Some(1), Some(0), Some(2)]));
        // Post 0 used twice.
        assert!(!g.is_valid_matching(&[Some(0), Some(0), Some(2)]));
        // Partial matchings are fine.
        assert!(g.is_valid_matching(&[None, Some(0), None]));
        // Wrong length.
        assert!(!g.is_valid_matching(&[Some(0)]));
        assert_eq!(BipartiteGraph::matching_size(&[Some(0), None, Some(2)]), 2);
    }
}
