//! Graph substrate for the NC popular-matching reproduction.
//!
//! The algorithms of Hu & Garg (2020) operate on three kinds of graphs:
//!
//! * the **bipartite graph** `G = (A ∪ P, E)` of applicants and posts and
//!   its *reduced graph* `G'` ([`bipartite`]);
//! * **directed pseudoforests** — the switching graph `G_M` of a popular
//!   matching (Lemma 4) and the switching graph `H_M` of a stable matching
//!   (Lemma 17) both have out-degree ≤ 1 per vertex ([`functional`],
//!   [`pseudoforest`]);
//! * generic undirected graphs for connected-component counting
//!   ([`connected`]).
//!
//! [`cycle`] implements the three NC approaches of Section IV-A for finding
//! the unique cycle of each pseudoforest component (transitive closure,
//! incidence-matrix rank, connected-component counting) plus a fast
//! pointer-doubling method and a sequential baseline, so the benchmark
//! harness can compare them (experiment E7).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bipartite;
pub mod connected;
pub mod cycle;
pub mod functional;
pub mod pseudoforest;

pub use bipartite::BipartiteGraph;
pub use connected::{
    connected_components_idx_ws, connected_components_parallel, connected_components_union_find,
    connected_components_ws, ComponentLabels, ComponentLabelsIdx,
};
pub use functional::{
    extract_cycles_marked, extract_cycles_marked_idx, on_cycle_of, on_cycle_of_idx, FunctionalGraph,
};
pub use pseudoforest::UndirectedGraph;
