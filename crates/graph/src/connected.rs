//! Connected components: a parallel O(log n)-round algorithm and a
//! sequential union–find baseline.
//!
//! Theorem 8 of the paper invokes the Cole–Vishkin connected-components
//! algorithm.  We substitute the deterministic min-label hooking +
//! shortcutting scheme (the "FastSV" formulation of Shiloach–Vishkin), which
//! also converges in `O(log n)` rounds; the round count is recorded on the
//! [`DepthTracker`] so experiment E7 can verify logarithmic behaviour.
//! Outputs are canonical: every vertex is labelled with the minimum vertex
//! id of its component, so the parallel and sequential routines agree
//! exactly.

use std::sync::atomic::Ordering;

use rayon::prelude::*;

use pm_pram::tracker::DepthTracker;
use pm_pram::{Idx, Workspace};

/// Canonical component labelling: `label[v]` is the smallest vertex id in
/// `v`'s component.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ComponentLabels {
    /// Per-vertex canonical label (minimum vertex id of the component).
    pub label: Vec<usize>,
    /// Number of distinct components.
    pub count: usize,
    /// Number of synchronous rounds the algorithm used (0 for union–find).
    pub rounds: u64,
}

impl ComponentLabels {
    /// Groups vertices by component, ordered by canonical label.
    pub fn groups(&self) -> Vec<Vec<usize>> {
        let mut by_label: Vec<Vec<usize>> = Vec::new();
        let mut index_of: Vec<Option<usize>> = vec![None; self.label.len()];
        for v in 0..self.label.len() {
            let root = self.label[v];
            let idx = match index_of[root] {
                Some(i) => i,
                None => {
                    by_label.push(Vec::new());
                    index_of[root] = Some(by_label.len() - 1);
                    by_label.len() - 1
                }
            };
            by_label[idx].push(v);
        }
        by_label
    }
}

/// Deterministic parallel connected components (min-label hooking +
/// shortcutting), `O(log n)` rounds.
pub fn connected_components_parallel(
    n: usize,
    edges: &[(usize, usize)],
    tracker: &DepthTracker,
) -> ComponentLabels {
    connected_components_ws(n, edges, &mut Workspace::new(), tracker)
}

/// Workspace-backed variant of [`connected_components_parallel`]: the
/// hooking forest, the two round-scratch snapshots and the output labelling
/// are all checked out of `ws`, so repeated calls against a long-lived
/// workspace allocate nothing (the caller may return `label` to the
/// workspace with `put_usize` when done with the result).
pub fn connected_components_ws(
    n: usize,
    edges: &[(usize, usize)],
    ws: &mut Workspace,
    tracker: &DepthTracker,
) -> ComponentLabels {
    if n == 0 {
        return ComponentLabels {
            label: Vec::new(),
            count: 0,
            rounds: 0,
        };
    }
    for &(u, v) in edges {
        assert!(u < n && v < n, "edge endpoint out of range");
    }

    let parent = ws.take_atomic_identity(n);
    let mut rounds = 0u64;

    // Round-scratch buffers, reused across all hooking rounds (every cell
    // is rewritten at the start of each round, so the checkouts skip the
    // fill).
    let mut snapshot = ws.take_usize_dirty(n, 0);
    let mut grand = ws.take_usize_dirty(n, 0);

    loop {
        rounds += 1;
        tracker.round();
        tracker.work((n + edges.len()) as u64);

        // Snapshot of the grandparent function at the start of the round
        // (CREW-style reads against a consistent state).
        for (s, p) in snapshot.iter_mut().zip(parent.iter()) {
            *s = p.load(Ordering::Relaxed);
        }
        for (g, &p) in grand.iter_mut().zip(snapshot.iter()) {
            *g = snapshot[p];
        }

        // Hooking: every edge tries to pull both endpoints' (grand)parents
        // down to the smaller grandparent; min-writes commute, so the result
        // is deterministic regardless of scheduling.
        edges.par_iter().for_each(|&(u, v)| {
            let (gu, gv) = (grand[u], grand[v]);
            let m = gu.min(gv);
            parent[snapshot[u]].fetch_min(m, Ordering::Relaxed);
            parent[snapshot[v]].fetch_min(m, Ordering::Relaxed);
            parent[u].fetch_min(m, Ordering::Relaxed);
            parent[v].fetch_min(m, Ordering::Relaxed);
        });

        // Shortcutting: parent[v] <- grandparent, read against a post-hook
        // snapshot (reusing `grand`, which is free after hooking).  Reading
        // live `parent[p]` here would race with p's own shortcut write and
        // make the per-round state — and hence the round count charged on
        // the tracker — depend on chunk scheduling; the snapshot keeps the
        // round a pure function of its inputs, so depth accounting stays
        // bit-for-bit identical across thread counts.
        for (g, p) in grand.iter_mut().zip(parent.iter()) {
            *g = p.load(Ordering::Relaxed);
        }
        (0..n).into_par_iter().for_each(|v| {
            let gp = grand[grand[v]];
            parent[v].fetch_min(gp, Ordering::Relaxed);
        });

        // Converged when every vertex points at a fixed point and hooking
        // changed nothing this round.
        let stable = parent
            .iter()
            .zip(snapshot.iter())
            .all(|(p, &s)| p.load(Ordering::Relaxed) == s);
        if stable {
            break;
        }
        assert!(
            rounds <= 4 * (usize::BITS as u64) + 8,
            "connected components failed to converge"
        );
    }

    let mut label = ws.take_usize(n, 0);
    for (l, p) in label.iter_mut().zip(parent.iter()) {
        *l = p.load(Ordering::Relaxed);
    }
    ws.put_atomic(parent);
    ws.put_usize(snapshot);
    ws.put_usize(grand);
    // After convergence the parent forest is a set of stars rooted at the
    // minimum vertex of each component.
    debug_assert!(label.iter().all(|&l| label[l] == l));
    let count = label.iter().enumerate().filter(|&(v, &l)| v == l).count();
    ComponentLabels {
        label,
        count,
        rounds,
    }
}

/// Canonical component labelling in the 32-bit index layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ComponentLabelsIdx {
    /// Per-vertex canonical label (minimum vertex id of the component).
    pub label: Vec<Idx>,
    /// Number of distinct components.
    pub count: usize,
    /// Number of synchronous rounds the algorithm used.
    pub rounds: u64,
}

/// The 32-bit twin of [`connected_components_ws`]: edges are `(Idx, Idx)`
/// pairs, the hooking forest is `AtomicU32` and the output labelling is
/// `Idx` — all the dense state of the min-label hooking loop at half the
/// byte width (DESIGN.md §7).  The labels are numerically identical to the
/// `usize` algorithm's (the caller may return `label` with `put_idx`).
pub fn connected_components_idx_ws(
    n: usize,
    edges: &[(Idx, Idx)],
    ws: &mut Workspace,
    tracker: &DepthTracker,
) -> ComponentLabelsIdx {
    if n == 0 {
        return ComponentLabelsIdx {
            label: Vec::new(),
            count: 0,
            rounds: 0,
        };
    }
    debug_assert!(n <= Idx::MAX_INDEX + 1);
    for &(u, v) in edges {
        assert!(u.get() < n && v.get() < n, "edge endpoint out of range");
    }

    let parent = ws.take_atomic_u32_identity(n);
    let mut rounds = 0u64;

    // Round-scratch buffers, reused across all hooking rounds (every cell
    // is rewritten at the start of each round, so the checkouts skip the
    // fill).
    let mut snapshot = ws.take_u32_dirty(n, 0);
    let mut grand = ws.take_u32_dirty(n, 0);

    loop {
        rounds += 1;
        tracker.round();
        tracker.work((n + edges.len()) as u64);

        // Snapshot of the grandparent function at the start of the round.
        for (s, p) in snapshot.iter_mut().zip(parent.iter()) {
            *s = p.load(Ordering::Relaxed);
        }
        for (g, &p) in grand.iter_mut().zip(snapshot.iter()) {
            *g = snapshot[p as usize];
        }

        // Hooking: min-writes commute, so the result is deterministic
        // regardless of scheduling.
        edges.par_iter().for_each(|&(u, v)| {
            let (u, v) = (u.get(), v.get());
            let (gu, gv) = (grand[u], grand[v]);
            let m = gu.min(gv);
            parent[snapshot[u] as usize].fetch_min(m, Ordering::Relaxed);
            parent[snapshot[v] as usize].fetch_min(m, Ordering::Relaxed);
            parent[u].fetch_min(m, Ordering::Relaxed);
            parent[v].fetch_min(m, Ordering::Relaxed);
        });

        // Shortcutting against a post-hook snapshot (see the usize variant
        // for why the snapshot keeps round counts schedule-independent).
        for (g, p) in grand.iter_mut().zip(parent.iter()) {
            *g = p.load(Ordering::Relaxed);
        }
        (0..n).into_par_iter().for_each(|v| {
            let gp = grand[grand[v] as usize];
            parent[v].fetch_min(gp, Ordering::Relaxed);
        });

        let stable = parent
            .iter()
            .zip(snapshot.iter())
            .all(|(p, &s)| p.load(Ordering::Relaxed) == s);
        if stable {
            break;
        }
        assert!(
            rounds <= 4 * (usize::BITS as u64) + 8,
            "connected components failed to converge"
        );
    }

    let mut label = ws.take_idx(n, Idx::ZERO);
    for (l, p) in label.iter_mut().zip(parent.iter()) {
        *l = Idx::from_raw(p.load(Ordering::Relaxed));
    }
    ws.put_atomic_u32(parent);
    ws.put_u32(snapshot);
    ws.put_u32(grand);
    debug_assert!(label.iter().all(|&l| label[l] == l));
    let count = label
        .iter()
        .enumerate()
        .filter(|&(v, &l)| v == l.get())
        .count();
    ComponentLabelsIdx {
        label,
        count,
        rounds,
    }
}

/// Sequential union–find baseline with canonical (min-vertex) labels.
pub fn connected_components_union_find(n: usize, edges: &[(usize, usize)]) -> ComponentLabels {
    let mut parent: Vec<usize> = (0..n).collect();

    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }

    for &(u, v) in edges {
        assert!(u < n && v < n, "edge endpoint out of range");
        let (ru, rv) = (find(&mut parent, u), find(&mut parent, v));
        if ru != rv {
            // Union by canonical label: the smaller id becomes the root so the
            // final labelling matches the parallel algorithm's.
            let (small, big) = if ru < rv { (ru, rv) } else { (rv, ru) };
            parent[big] = small;
        }
    }

    let mut label = vec![0usize; n];
    for (v, l) in label.iter_mut().enumerate() {
        *l = find(&mut parent, v);
    }
    let count = label.iter().enumerate().filter(|&(v, &l)| v == l).count();
    ComponentLabels {
        label,
        count,
        rounds: 0,
    }
}

/// Number of connected components (sequential).
pub fn count_components(n: usize, edges: &[(usize, usize)]) -> usize {
    connected_components_union_find(n, edges).count
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_agreement(n: usize, edges: &[(usize, usize)]) {
        let t = DepthTracker::new();
        let par = connected_components_parallel(n, edges, &t);
        let seq = connected_components_union_find(n, edges);
        assert_eq!(par.label, seq.label, "labels differ for n={n}");
        assert_eq!(par.count, seq.count);
    }

    #[test]
    fn empty_graph() {
        let t = DepthTracker::new();
        let c = connected_components_parallel(0, &[], &t);
        assert_eq!(c.count, 0);
        let c = connected_components_parallel(5, &[], &t);
        assert_eq!(c.count, 5);
        assert_eq!(c.label, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn simple_components() {
        // {0,1,2} via path, {3,4} via edge, {5} isolated
        let edges = [(0, 1), (1, 2), (3, 4)];
        check_agreement(6, &edges);
        let seq = connected_components_union_find(6, &edges);
        assert_eq!(seq.label, vec![0, 0, 0, 3, 3, 5]);
        assert_eq!(seq.count, 3);
        assert_eq!(seq.groups(), vec![vec![0, 1, 2], vec![3, 4], vec![5]]);
    }

    #[test]
    fn long_path_converges_in_logarithmic_rounds() {
        let n = 1 << 14;
        let edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        let t = DepthTracker::new();
        let c = connected_components_parallel(n, &edges, &t);
        assert_eq!(c.count, 1);
        assert!(c.label.iter().all(|&l| l == 0));
        assert!(c.rounds <= 20, "rounds = {}", c.rounds);
    }

    #[test]
    fn cycles_and_self_loops() {
        let edges = [(0, 1), (1, 2), (2, 0), (3, 3)];
        check_agreement(5, &edges);
        let seq = connected_components_union_find(5, &edges);
        assert_eq!(seq.count, 3); // {0,1,2}, {3}, {4}
    }

    #[test]
    fn random_graphs_agree() {
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(31);
        for &n in &[2usize, 10, 100, 1000] {
            for density in [1usize, 2, 4] {
                let m = n * density / 2;
                let edges: Vec<(usize, usize)> = (0..m)
                    .map(|_| (rng.random_range(0..n), rng.random_range(0..n)))
                    .collect();
                check_agreement(n, &edges);
            }
        }
    }

    #[test]
    fn ws_variant_agrees_and_reuses_buffers() {
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(77);
        let t = DepthTracker::new();
        let mut ws = Workspace::new();
        for &n in &[3usize, 50, 800] {
            let edges: Vec<(usize, usize)> = (0..n)
                .map(|_| (rng.random_range(0..n), rng.random_range(0..n)))
                .collect();
            let got = connected_components_ws(n, &edges, &mut ws, &t);
            let want = connected_components_union_find(n, &edges);
            assert_eq!(got.label, want.label, "n = {n}");
            assert_eq!(got.count, want.count);
            ws.put_usize(got.label);
        }
    }

    #[test]
    fn idx_variant_agrees_with_union_find() {
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(78);
        let t = DepthTracker::new();
        let mut ws = Workspace::new();
        for &n in &[0usize, 1, 3, 50, 800] {
            let edges: Vec<(usize, usize)> = (0..n)
                .map(|_| (rng.random_range(0..n), rng.random_range(0..n)))
                .collect();
            let edges_idx: Vec<(Idx, Idx)> = edges
                .iter()
                .map(|&(u, v)| (Idx::new(u), Idx::new(v)))
                .collect();
            let got = connected_components_idx_ws(n, &edges_idx, &mut ws, &t);
            let want = connected_components_union_find(n, &edges);
            let got_labels: Vec<usize> = got.label.iter().map(|l| l.get()).collect();
            assert_eq!(got_labels, want.label, "n = {n}");
            assert_eq!(got.count, want.count);
            ws.put_idx(got.label);
        }
    }

    #[test]
    fn count_components_helper() {
        assert_eq!(count_components(4, &[(0, 1), (2, 3)]), 2);
        assert_eq!(count_components(4, &[]), 4);
        assert_eq!(count_components(4, &[(0, 1), (1, 2), (2, 3)]), 1);
    }
}
