//! Directed pseudoforests (functional graphs with optional successors).
//!
//! Definition 3 of the paper: a *directed pseudoforest* is a directed graph
//! in which every vertex has out-degree at most one.  Both switching graphs
//! used by the paper are of this shape: the switching graph `G_M` of a
//! popular matching (Lemma 4) and the switching graph `H_M` of a stable
//! matching (Lemma 17).  Every weakly-connected component contains either a
//! single sink or a single cycle, and the algorithms need exactly two
//! queries answered in NC: *which vertices lie on a cycle* and *what is the
//! vertex sequence of each cycle*.

use rayon::prelude::*;

use pm_pram::tracker::DepthTracker;
use pm_pram::{Idx, Workspace, SEQUENTIAL_CUTOFF};

use crate::connected::{connected_components_parallel, ComponentLabels};

/// Marks the vertices of a raw successor slice that lie on a directed
/// cycle, writing into `out` (capacity reused) with all scratch checked out
/// of `ws` — the allocation-free core behind
/// [`FunctionalGraph::on_cycle_parallel`], usable without materialising a
/// `FunctionalGraph` (the switching-graph pipeline feeds its own successor
/// array straight in).
pub fn on_cycle_of(
    succ: &[Option<usize>],
    out: &mut Vec<bool>,
    ws: &mut Workspace,
    tracker: &DepthTracker,
) {
    let n = succ.len();
    out.clear();
    if n == 0 {
        return;
    }
    // Sinks become fixed points so iteration is total.  The doubling
    // ping-pongs two checked-out buffers; both are fully overwritten
    // before any read, so the checkouts skip the fill.
    let mut ptr = ws.take_usize_dirty(n, 0);
    for (v, p) in ptr.iter_mut().enumerate() {
        *p = succ[v].unwrap_or(v);
    }
    let mut scratch = ws.take_usize_dirty(n, 0);
    let rounds = if n <= 1 {
        0
    } else {
        usize::BITS - (n - 1).leading_zeros()
    };
    for _ in 0..rounds {
        tracker.round();
        tracker.work(n as u64);
        if n >= SEQUENTIAL_CUTOFF {
            scratch
                .par_iter_mut()
                .enumerate()
                .for_each(|(v, s)| *s = ptr[ptr[v]]);
        } else {
            for (v, s) in scratch.iter_mut().enumerate() {
                *s = ptr[ptr[v]];
            }
        }
        std::mem::swap(&mut ptr, &mut scratch);
    }

    // Image computation: one concurrent-write round.
    tracker.round();
    tracker.work(n as u64);
    let mut in_image = ws.take_bool(n, false);
    for &target in &ptr {
        in_image[target] = true;
    }
    out.resize(n, false);
    for (v, o) in out.iter_mut().enumerate() {
        *o = in_image[v] && succ[v].is_some();
    }
    ws.put_usize(ptr);
    ws.put_usize(scratch);
    ws.put_bool(in_image);
}

/// The [`Idx`]-sentinel twin of [`on_cycle_of`] — the form the narrowed
/// switching-graph pipeline feeds in (`Idx::NONE` marks a sink, replacing
/// the 16-byte `Option<usize>` cells with 4-byte indices).  Same doubling
/// structure, same round accounting, identical marking.
pub fn on_cycle_of_idx(
    succ: &[Idx],
    out: &mut Vec<bool>,
    ws: &mut Workspace,
    tracker: &DepthTracker,
) {
    let n = succ.len();
    out.clear();
    if n == 0 {
        return;
    }
    // Sinks become fixed points so iteration is total.
    let mut ptr = ws.take_idx_dirty(n, Idx::ZERO);
    for (v, p) in ptr.iter_mut().enumerate() {
        *p = if succ[v].is_none() {
            Idx::new(v)
        } else {
            succ[v]
        };
    }
    let mut scratch = ws.take_idx_dirty(n, Idx::ZERO);
    let rounds = if n <= 1 {
        0
    } else {
        usize::BITS - (n - 1).leading_zeros()
    };
    for _ in 0..rounds {
        tracker.round();
        tracker.work(n as u64);
        if n >= SEQUENTIAL_CUTOFF {
            scratch
                .par_iter_mut()
                .enumerate()
                .for_each(|(v, s)| *s = ptr[ptr[v]]);
        } else {
            for (v, s) in scratch.iter_mut().enumerate() {
                *s = ptr[ptr[v]];
            }
        }
        std::mem::swap(&mut ptr, &mut scratch);
    }

    // Image computation: one concurrent-write round.
    tracker.round();
    tracker.work(n as u64);
    let mut in_image = ws.take_bool(n, false);
    for &target in &ptr {
        in_image[target] = true;
    }
    out.resize(n, false);
    for (v, o) in out.iter_mut().enumerate() {
        *o = in_image[v] && succ[v].is_some();
    }
    ws.put_idx(ptr);
    ws.put_idx(scratch);
    ws.put_bool(in_image);
}

/// The [`Idx`]-sentinel twin of [`extract_cycles_marked`].
pub fn extract_cycles_marked_idx(succ: &[Idx], on_cycle: &[bool]) -> Vec<Vec<usize>> {
    let n = succ.len();
    let mut seen = vec![false; n];
    let mut cycles = Vec::new();
    for start in 0..n {
        if !on_cycle[start] || seen[start] {
            continue;
        }
        let mut cycle = Vec::new();
        let mut v = start;
        loop {
            seen[v] = true;
            cycle.push(v);
            let next = succ[v];
            debug_assert!(next.is_some(), "cycle vertex has a successor");
            v = next.get();
            if v == start {
                break;
            }
        }
        cycles.push(cycle);
    }
    cycles.sort_by_key(|c| c[0]);
    cycles
}

/// Extracts every directed cycle of a raw successor slice given its
/// cycle-vertex marking, each cycle in successor order starting from its
/// smallest vertex, sorted by that smallest vertex.
pub fn extract_cycles_marked(succ: &[Option<usize>], on_cycle: &[bool]) -> Vec<Vec<usize>> {
    let n = succ.len();
    let mut seen = vec![false; n];
    let mut cycles = Vec::new();
    for start in 0..n {
        if !on_cycle[start] || seen[start] {
            continue;
        }
        let mut cycle = Vec::new();
        let mut v = start;
        loop {
            seen[v] = true;
            cycle.push(v);
            v = succ[v].expect("cycle vertex has a successor");
            if v == start {
                break;
            }
        }
        cycles.push(cycle);
    }
    cycles.sort_by_key(|c| c[0]);
    cycles
}

/// A directed graph where every vertex has at most one outgoing edge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FunctionalGraph {
    succ: Vec<Option<usize>>,
}

impl FunctionalGraph {
    /// Creates a functional graph from the successor array.
    ///
    /// # Panics
    /// Panics if a successor index is out of range.
    pub fn new(succ: Vec<Option<usize>>) -> Self {
        let n = succ.len();
        for (v, s) in succ.iter().enumerate() {
            if let Some(s) = s {
                assert!(*s < n, "successor of {v} out of range");
            }
        }
        Self { succ }
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.succ.len()
    }

    /// The successor of `v`, if any.
    pub fn successor(&self, v: usize) -> Option<usize> {
        self.succ[v]
    }

    /// The successor array.
    pub fn successors(&self) -> &[Option<usize>] {
        &self.succ
    }

    /// Vertices with no outgoing edge (the sinks of the pseudoforest).
    pub fn sinks(&self) -> Vec<usize> {
        (0..self.n()).filter(|&v| self.succ[v].is_none()).collect()
    }

    /// The directed edges `(v, succ(v))`.
    pub fn edges(&self) -> Vec<(usize, usize)> {
        self.succ
            .iter()
            .enumerate()
            .filter_map(|(v, s)| s.map(|s| (v, s)))
            .collect()
    }

    /// Marks the vertices that lie on a (directed) cycle, using function
    /// composition by pointer doubling: after `⌈log₂ n⌉` squarings the array
    /// holds `succ^N` with `N ≥ n`, and a vertex is on a cycle iff it is in
    /// the image of `succ^N` restricted to non-sinks.
    pub fn on_cycle_parallel(&self, tracker: &DepthTracker) -> Vec<bool> {
        let mut out = Vec::new();
        on_cycle_of(&self.succ, &mut out, &mut Workspace::new(), tracker);
        out
    }

    /// Sequential cycle-vertex detection (three-colour walk), the baseline
    /// the parallel method is validated against.
    pub fn on_cycle_sequential(&self) -> Vec<bool> {
        let n = self.n();
        let mut state = vec![0u8; n]; // 0 unvisited, 1 on stack, 2 done
        let mut on_cycle = vec![false; n];
        for start in 0..n {
            if state[start] != 0 {
                continue;
            }
            // Walk the unique path from `start` until a visited vertex or sink.
            let mut path = Vec::new();
            let mut v = start;
            loop {
                if state[v] == 1 {
                    // Found a new cycle: it is the suffix of `path` from `v`.
                    let pos = path.iter().position(|&u| u == v).expect("on stack");
                    for &u in &path[pos..] {
                        on_cycle[u] = true;
                    }
                    break;
                }
                if state[v] == 2 {
                    break;
                }
                state[v] = 1;
                path.push(v);
                match self.succ[v] {
                    Some(next) => v = next,
                    None => break,
                }
            }
            for &u in &path {
                state[u] = 2;
            }
        }
        on_cycle
    }

    /// Extracts every directed cycle, each given in successor order starting
    /// from its smallest vertex, sorted by that smallest vertex.
    ///
    /// Cycle membership is determined in parallel
    /// ([`on_cycle_parallel`](Self::on_cycle_parallel)); the canonical
    /// representative of each cycle is found by min-label pointer doubling;
    /// the final vertex sequences are read off by walking each cycle once
    /// (total `O(n)` work).
    pub fn cycles_parallel(&self, tracker: &DepthTracker) -> Vec<Vec<usize>> {
        let on_cycle = self.on_cycle_parallel(tracker);
        self.extract_cycles(&on_cycle)
    }

    /// Sequential counterpart of [`cycles_parallel`](Self::cycles_parallel).
    pub fn cycles_sequential(&self) -> Vec<Vec<usize>> {
        let on_cycle = self.on_cycle_sequential();
        self.extract_cycles(&on_cycle)
    }

    fn extract_cycles(&self, on_cycle: &[bool]) -> Vec<Vec<usize>> {
        extract_cycles_marked(&self.succ, on_cycle)
    }

    /// Weakly-connected components of the pseudoforest (parallel).
    pub fn weak_components(&self, tracker: &DepthTracker) -> ComponentLabels {
        connected_components_parallel(self.n(), &self.edges(), tracker)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fg(succ: Vec<Option<usize>>) -> FunctionalGraph {
        FunctionalGraph::new(succ)
    }

    #[test]
    fn empty_graph() {
        let g = fg(vec![]);
        let t = DepthTracker::new();
        assert!(g.on_cycle_parallel(&t).is_empty());
        assert!(g.cycles_parallel(&t).is_empty());
        assert!(g.sinks().is_empty());
    }

    #[test]
    fn single_sink_and_self_loop() {
        let t = DepthTracker::new();
        // vertex 0 is a sink; vertex 1 is a self-loop (a cycle of length 1)
        let g = fg(vec![None, Some(1)]);
        assert_eq!(g.sinks(), vec![0]);
        assert_eq!(g.on_cycle_parallel(&t), vec![false, true]);
        assert_eq!(g.on_cycle_sequential(), vec![false, true]);
        assert_eq!(g.cycles_parallel(&t), vec![vec![1]]);
    }

    #[test]
    fn simple_cycle_with_tail() {
        let t = DepthTracker::new();
        // 3 -> 0 -> 1 -> 2 -> 0, 4 -> 3, sink 5
        let g = fg(vec![Some(1), Some(2), Some(0), Some(0), Some(3), None]);
        let on = g.on_cycle_parallel(&t);
        assert_eq!(on, vec![true, true, true, false, false, false]);
        assert_eq!(on, g.on_cycle_sequential());
        assert_eq!(g.cycles_parallel(&t), vec![vec![0, 1, 2]]);
        assert_eq!(g.cycles_sequential(), vec![vec![0, 1, 2]]);
    }

    #[test]
    fn two_cycles_and_tree_component() {
        let t = DepthTracker::new();
        // cycle A: 0 -> 1 -> 0; cycle B: 2 -> 3 -> 4 -> 2;
        // tree component: 5 -> 6, 6 sink; tail onto cycle A: 7 -> 0
        let g = fg(vec![
            Some(1),
            Some(0),
            Some(3),
            Some(4),
            Some(2),
            Some(6),
            None,
            Some(0),
        ]);
        let cycles = g.cycles_parallel(&t);
        assert_eq!(cycles, vec![vec![0, 1], vec![2, 3, 4]]);
        assert_eq!(cycles, g.cycles_sequential());
        assert_eq!(g.sinks(), vec![6]);
        let comps = g.weak_components(&t);
        assert_eq!(comps.count, 3);
    }

    #[test]
    fn cycle_order_follows_successors() {
        let t = DepthTracker::new();
        // 2 -> 5 -> 1 -> 2 is a cycle; canonical start is 1.
        let g = fg(vec![None, Some(2), Some(5), None, None, Some(1)]);
        assert_eq!(g.cycles_parallel(&t), vec![vec![1, 2, 5]]);
    }

    #[test]
    fn long_path_no_cycle() {
        let t = DepthTracker::new();
        let n = 50_000;
        let succ: Vec<Option<usize>> = (0..n)
            .map(|v| if v + 1 < n { Some(v + 1) } else { None })
            .collect();
        let g = fg(succ);
        assert!(g.on_cycle_parallel(&t).iter().all(|&b| !b));
        assert!(g.cycles_parallel(&t).is_empty());
    }

    #[test]
    fn idx_sentinel_twins_match_option_forms() {
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(555);
        let t = DepthTracker::new();
        let mut ws = Workspace::new();
        let (mut out_opt, mut out_idx) = (Vec::new(), Vec::new());
        for &n in &[0usize, 1, 2, 40, 3000] {
            let succ: Vec<Option<usize>> = (0..n)
                .map(|_| {
                    if rng.random_range(0..6) == 0 {
                        None
                    } else {
                        Some(rng.random_range(0..n))
                    }
                })
                .collect();
            let succ_idx: Vec<Idx> = succ.iter().map(|&s| Idx::from_option(s)).collect();
            on_cycle_of(&succ, &mut out_opt, &mut ws, &t);
            on_cycle_of_idx(&succ_idx, &mut out_idx, &mut ws, &t);
            assert_eq!(out_opt, out_idx, "n = {n}");
            assert_eq!(
                extract_cycles_marked(&succ, &out_opt),
                extract_cycles_marked_idx(&succ_idx, &out_idx),
                "n = {n}"
            );
        }
    }

    #[test]
    fn large_random_functional_graphs_match_sequential() {
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(1234);
        for &n in &[2usize, 17, 400, 5000] {
            let succ: Vec<Option<usize>> = (0..n)
                .map(|_| {
                    if rng.random_range(0..8) == 0 {
                        None
                    } else {
                        Some(rng.random_range(0..n))
                    }
                })
                .collect();
            let g = fg(succ);
            let t = DepthTracker::new();
            assert_eq!(g.on_cycle_parallel(&t), g.on_cycle_sequential(), "n={n}");
            assert_eq!(g.cycles_parallel(&t), g.cycles_sequential(), "n={n}");
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_successor_panics() {
        let _ = fg(vec![Some(3)]);
    }
}
