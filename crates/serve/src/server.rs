//! The long-lived serving front end: worker threads holding warm
//! [`PopularSolver`]s behind the bounded queue, with panic isolation and
//! the degradation policy wired in (see the crate docs for the failure
//! model).

use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use pm_popular::delta::{Delta, DeltaMode, DeltaSolver, DeltaStats};
use pm_popular::instance::{Assignment, PrefInstance};
use pm_popular::solver::PopularSolver;
use pm_popular::PopularError;

use crate::degrade::{serial_dictatorship, FailureDisposition, Gate, HealthMap};
use crate::faults::{InjectedFault, Spec};
use crate::queue::{BoundedQueue, PushError};

/// Which pipeline a request wants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SolveMode {
    /// Algorithm 1: any popular matching.
    #[default]
    Popular,
    /// Algorithms 1 + 3: a maximum-cardinality popular matching.
    MaxCardinality,
}

/// A solve request.
///
/// `instance_id` keys the degradation state and the last-good cache:
/// requests sharing an id are treated as traffic against one logical
/// instance (the id is the client's to choose — e.g. a tenant or snapshot
/// id).  The instance itself travels as an `Arc` so a queue full of
/// requests against one big instance costs one allocation, not many.
#[derive(Debug, Clone)]
pub struct Request {
    /// The (validated) instance to solve.
    pub instance: Arc<PrefInstance>,
    /// Degradation/cache key; see the type docs.
    pub instance_id: u64,
    /// Which pipeline to run.
    pub mode: SolveMode,
    /// Latest useful completion time.  `None` means no deadline.
    pub deadline: Option<Instant>,
}

impl Request {
    /// A [`SolveMode::Popular`] request with no deadline.
    pub fn new(instance: Arc<PrefInstance>, instance_id: u64) -> Self {
        Self {
            instance,
            instance_id,
            mode: SolveMode::Popular,
            deadline: None,
        }
    }

    /// Sets the pipeline.
    pub fn with_mode(mut self, mode: SolveMode) -> Self {
        self.mode = mode;
        self
    }

    /// Sets the deadline as a timeout from now.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.deadline = Some(Instant::now() + timeout);
        self
    }
}

/// How trustworthy a [`Response`]'s matching is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Quality {
    /// A fresh solve of the submitted instance: popular (or
    /// maximum-cardinality popular) as requested.
    Full,
    /// The cached matching of this id's last *successful* solve — possibly
    /// computed against an older snapshot of the instance.
    Stale,
    /// A serial-dictatorship approximation: valid, but with no popularity
    /// guarantee.
    Fallback,
}

/// A successful (possibly degraded) answer.
#[derive(Debug, Clone)]
pub struct Response {
    /// The matching.
    pub matching: Assignment,
    /// Full, stale or fallback — degraded answers are always flagged.
    pub quality: Quality,
    /// True iff the solve finished after the request's deadline (the
    /// answer is delivered anyway; the overrun is also counted in
    /// [`StatsSnapshot::deadline_overruns`]).
    pub overran_deadline: bool,
}

impl Response {
    /// True iff this answer came from the degradation path rather than a
    /// fresh solve of the submitted instance.
    pub fn is_degraded(&self) -> bool {
        self.quality != Quality::Full
    }
}

/// Why a request got no (full or degraded) matching.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The bounded queue was full — backpressure.  Retry later, shed load
    /// upstream, or widen the deployment; the server never buffers without
    /// limit.
    Overloaded {
        /// The configured queue capacity that was exhausted.
        capacity: usize,
    },
    /// The deadline passed while the request waited; it was shed without
    /// touching a solver.
    DeadlineExpired {
        /// How long the request had been queued when it was shed.
        queued_for: Duration,
    },
    /// The solver answered with a typed error (no popular matching, ties
    /// not supported, …) — a deterministic property of the input, not a
    /// server failure, so it never triggers degradation.
    Solve(PopularError),
    /// The solve failed (panic or injected fault) and the instance has not
    /// yet crossed the degradation threshold `K`.
    Faulted,
    /// The server is shut down (or the worker serving this request died).
    Closed,
    /// A delta was submitted for an instance id that was never installed
    /// with [`Server::install_delta`] (or was installed and since removed).
    UnknownInstance {
        /// The id the delta was addressed to.
        instance_id: u64,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Overloaded { capacity } => {
                write!(
                    f,
                    "overloaded: the request queue (capacity {capacity}) is full"
                )
            }
            ServeError::DeadlineExpired { queued_for } => {
                write!(f, "deadline expired after queueing for {queued_for:?}")
            }
            ServeError::Solve(e) => write!(f, "solve error: {e}"),
            ServeError::Faulted => write!(f, "solve failed (panic or injected fault)"),
            ServeError::Closed => write!(f, "server closed"),
            ServeError::UnknownInstance { instance_id } => {
                write!(f, "no delta solver installed for instance id {instance_id}")
            }
        }
    }
}

impl std::error::Error for ServeError {}

/// Server tuning knobs.  `Default` is a sensible single-machine deployment;
/// every field can be overridden before [`Server::start`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads, each holding one warm [`PopularSolver`] (≥ 1).
    pub workers: usize,
    /// Bounded queue capacity; a full queue rejects with
    /// [`ServeError::Overloaded`].
    pub queue_capacity: usize,
    /// Consecutive failures on one instance id before the server degrades
    /// it (`K`; clamped to ≥ 1).
    pub degrade_after: u32,
    /// First re-promotion probe delay after degrading.
    pub backoff_initial: Duration,
    /// Backoff ceiling (doubling stops here).
    pub backoff_max: Duration,
    /// Fault-injection spec.  `Default` reads [`PM_FAULTS`]; pass
    /// [`Spec::none`] for a deterministic server regardless of the
    /// environment.
    ///
    /// [`PM_FAULTS`]: crate::faults::ENV_VAR
    pub faults: Spec,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            workers: 1,
            queue_capacity: 64,
            degrade_after: 3,
            backoff_initial: Duration::from_millis(50),
            backoff_max: Duration::from_secs(2),
            faults: Spec::from_env(),
        }
    }
}

/// Counter snapshot (monotonic since [`Server::start`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    /// Requests answered by a fresh solve (including typed solve errors —
    /// the solver ran and produced its deterministic answer).
    pub served: u64,
    /// Requests rejected at submit because the queue was full.
    pub rejected: u64,
    /// Requests shed because their deadline expired before a solver picked
    /// them up.
    pub shed: u64,
    /// Solve panics trapped by `catch_unwind` (each also discards and
    /// rebuilds the worker's solver).
    pub panics_recovered: u64,
    /// Degraded answers served (stale last-good or fallback).
    pub degraded_responses: u64,
    /// Solves that finished after their request's deadline.
    pub deadline_overruns: u64,
    /// Typed solver errors passed through to clients (subset of `served`).
    pub solve_errors: u64,
    /// Delta scheduling ticks that found work (each is one coalesced
    /// apply-and-flush round on an incremental solver).
    pub delta_ticks: u64,
    /// Deltas applied through [`Server::submit_delta`] (so
    /// `deltas_coalesced / delta_ticks` is the mean coalescing factor).
    pub deltas_coalesced: u64,
}

#[derive(Debug, Default)]
struct Stats {
    served: AtomicU64,
    rejected: AtomicU64,
    shed: AtomicU64,
    panics_recovered: AtomicU64,
    degraded_responses: AtomicU64,
    deadline_overruns: AtomicU64,
    solve_errors: AtomicU64,
    delta_ticks: AtomicU64,
    deltas_coalesced: AtomicU64,
}

impl Stats {
    fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            served: self.served.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            panics_recovered: self.panics_recovered.load(Ordering::Relaxed),
            degraded_responses: self.degraded_responses.load(Ordering::Relaxed),
            deadline_overruns: self.deadline_overruns.load(Ordering::Relaxed),
            solve_errors: self.solve_errors.load(Ordering::Relaxed),
            delta_ticks: self.delta_ticks.load(Ordering::Relaxed),
            deltas_coalesced: self.deltas_coalesced.load(Ordering::Relaxed),
        }
    }
}

/// A queued request plus its reply slot.
struct SolveJob {
    req: Request,
    enqueued_at: Instant,
    reply: mpsc::Sender<Result<Response, ServeError>>,
}

/// What travels through the bounded queue: a one-shot solve, or a
/// scheduling tick telling a worker to drain one instance's pending deltas
/// in a single coalesced apply-and-flush round.
enum Job {
    Solve(SolveJob),
    DeltaTick { instance_id: u64 },
}

/// The handle for an in-flight request; [`wait`](Ticket::wait) blocks for
/// the outcome.
#[derive(Debug)]
pub struct Ticket {
    rx: mpsc::Receiver<Result<Response, ServeError>>,
}

impl Ticket {
    /// Blocks until the server answers.  A worker that died without
    /// replying (process-fatal conditions only — solve panics are trapped)
    /// surfaces as [`ServeError::Closed`].
    pub fn wait(self) -> Result<Response, ServeError> {
        self.rx.recv().unwrap_or(Err(ServeError::Closed))
    }

    /// Like [`wait`](Self::wait) with an upper bound; `None` on timeout
    /// (the request stays in flight and can be waited on again).
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Result<Response, ServeError>> {
        match self.rx.recv_timeout(timeout) {
            Ok(r) => Some(r),
            Err(mpsc::RecvTimeoutError::Timeout) => None,
            Err(mpsc::RecvTimeoutError::Disconnected) => Some(Err(ServeError::Closed)),
        }
    }
}

/// A preference mutation against an installed incremental instance (see
/// [`Server::install_delta`]).
#[derive(Debug, Clone)]
pub struct DeltaRequest {
    /// The id [`Server::install_delta`] registered the instance under.
    pub instance_id: u64,
    /// The mutation to apply.
    pub delta: Delta,
    /// Latest useful completion time.  `None` means no deadline.
    pub deadline: Option<Instant>,
}

impl DeltaRequest {
    /// A delta with no deadline.
    pub fn new(instance_id: u64, delta: Delta) -> Self {
        Self {
            instance_id,
            delta,
            deadline: None,
        }
    }

    /// Sets the deadline as a timeout from now.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.deadline = Some(Instant::now() + timeout);
        self
    }
}

/// The answer to a delta: the instance's post-mutation matching.
///
/// Every delta coalesced into the same scheduling tick receives the *same*
/// matching — the result of one incremental solve after all of them were
/// applied (deltas are applied in submission order, so the matching
/// reflects each submitter's mutation).
#[derive(Debug, Clone)]
pub struct DeltaResponse {
    /// The matching of the mutated instance.
    pub matching: Assignment,
    /// Full, stale or fallback — degraded answers are always flagged.
    pub quality: Quality,
    /// True iff the solve finished after this delta's deadline.
    pub overran_deadline: bool,
    /// How many deltas were answered by this solve round (≥ 1).
    pub coalesced: usize,
}

impl DeltaResponse {
    /// True iff this answer came from the degradation path rather than a
    /// fresh incremental solve.
    pub fn is_degraded(&self) -> bool {
        self.quality != Quality::Full
    }
}

/// The handle for an in-flight delta; [`wait`](DeltaTicket::wait) blocks
/// for the outcome.
#[derive(Debug)]
pub struct DeltaTicket {
    rx: mpsc::Receiver<Result<DeltaResponse, ServeError>>,
}

impl DeltaTicket {
    /// Blocks until the server answers (or [`ServeError::Closed`] if it
    /// shut down first).
    pub fn wait(self) -> Result<DeltaResponse, ServeError> {
        self.rx.recv().unwrap_or(Err(ServeError::Closed))
    }

    /// Like [`wait`](Self::wait) with an upper bound; `None` on timeout.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Result<DeltaResponse, ServeError>> {
        match self.rx.recv_timeout(timeout) {
            Ok(r) => Some(r),
            Err(mpsc::RecvTimeoutError::Timeout) => None,
            Err(mpsc::RecvTimeoutError::Disconnected) => Some(Err(ServeError::Closed)),
        }
    }
}

/// A submitted delta waiting for its scheduling tick.
struct PendingDelta {
    seq: u64,
    delta: Delta,
    deadline: Option<Instant>,
    enqueued_at: Instant,
    reply: mpsc::Sender<Result<DeltaResponse, ServeError>>,
}

/// One installed incremental instance: the warm [`DeltaSolver`], its queue
/// of not-yet-applied deltas, and the tick-scheduling latch.
struct DeltaState {
    solver: Mutex<DeltaSolver>,
    pending: Mutex<VecDeque<PendingDelta>>,
    /// True while a [`Job::DeltaTick`] for this instance is queued (or a
    /// worker is between clearing the latch and draining `pending`).  The
    /// swap-to-true in [`Server::submit_delta`] makes sure at most one tick
    /// is in the queue per instance, which is what turns a burst of deltas
    /// into one coalesced solve round.
    scheduled: AtomicBool,
    seq: AtomicU64,
}

impl DeltaState {
    fn lock_solver(&self) -> MutexGuard<'_, DeltaSolver> {
        self.solver
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    fn lock_pending(&self) -> MutexGuard<'_, VecDeque<PendingDelta>> {
        self.pending
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

struct Shared {
    queue: BoundedQueue<Job>,
    health: HealthMap,
    stats: Stats,
    faults: Spec,
    queue_capacity: usize,
    deltas: Mutex<HashMap<u64, Arc<DeltaState>>>,
}

impl Shared {
    fn delta_state(&self, instance_id: u64) -> Option<Arc<DeltaState>> {
        self.deltas
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .get(&instance_id)
            .cloned()
    }
}

/// The serving front end (see the crate docs).  Dropping the server closes
/// the queue, lets the workers drain it, and joins them.
pub struct Server {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Starts the worker threads and returns the handle.
    pub fn start(cfg: ServerConfig) -> Self {
        let shared = Arc::new(Shared {
            queue: BoundedQueue::new(cfg.queue_capacity),
            health: HealthMap::new(cfg.degrade_after, cfg.backoff_initial, cfg.backoff_max),
            stats: Stats::default(),
            faults: cfg.faults.clone(),
            queue_capacity: cfg.queue_capacity.max(1),
            deltas: Mutex::new(HashMap::new()),
        });
        let workers = (0..cfg.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("pm-serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawning a serve worker")
            })
            .collect();
        Self { shared, workers }
    }

    /// Submits a request; returns immediately with a [`Ticket`] or a typed
    /// rejection ([`Overloaded`](ServeError::Overloaded) under
    /// backpressure, [`DeadlineExpired`](ServeError::DeadlineExpired) if
    /// the deadline already passed).
    pub fn submit(&self, req: Request) -> Result<Ticket, ServeError> {
        let now = Instant::now();
        if req.deadline.is_some_and(|d| now >= d) {
            self.shared.stats.shed.fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::DeadlineExpired {
                queued_for: Duration::ZERO,
            });
        }
        let (tx, rx) = mpsc::channel();
        let job = Job::Solve(SolveJob {
            req,
            enqueued_at: now,
            reply: tx,
        });
        match self.shared.queue.try_push(job) {
            Ok(_) => Ok(Ticket { rx }),
            Err(PushError::Full(_)) => {
                self.shared.stats.rejected.fetch_add(1, Ordering::Relaxed);
                Err(ServeError::Overloaded {
                    capacity: self.shared.queue_capacity,
                })
            }
            Err(PushError::Closed(_)) => Err(ServeError::Closed),
        }
    }

    /// Submit + wait, for callers that want a blocking RPC shape.
    pub fn call(&self, req: Request) -> Result<Response, ServeError> {
        self.submit(req)?.wait()
    }

    /// Installs (or reinstalls) an incremental solver for `instance_id`:
    /// one full solve now, then [`submit_delta`](Self::submit_delta)
    /// mutations pay only for their dirty components.
    ///
    /// Runs the installing solve on the caller's thread — it is setup, not
    /// serving traffic — and replaces any previous solver under the same id
    /// (the documented recovery for an instance whose solver got stuck).
    ///
    /// # Errors
    /// [`ServeError::Solve`] if the instance is rejected up front (e.g.
    /// tied lists).  An instance with *no* popular matching installs fine:
    /// infeasibility is a per-component property the delta layer tracks,
    /// and deltas that heal it start answering again.
    pub fn install_delta(
        &self,
        instance_id: u64,
        inst: &PrefInstance,
        mode: SolveMode,
    ) -> Result<(), ServeError> {
        let mode = match mode {
            SolveMode::Popular => DeltaMode::Popular,
            SolveMode::MaxCardinality => DeltaMode::MaxCardinality,
        };
        let solver = DeltaSolver::install(inst, mode).map_err(ServeError::Solve)?;
        let state = Arc::new(DeltaState {
            solver: Mutex::new(solver),
            pending: Mutex::new(VecDeque::new()),
            scheduled: AtomicBool::new(false),
            seq: AtomicU64::new(0),
        });
        self.shared
            .deltas
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .insert(instance_id, state);
        Ok(())
    }

    /// Submits a preference mutation; returns immediately with a
    /// [`DeltaTicket`].  Deltas submitted while a scheduling tick is
    /// already queued for the same instance are *coalesced*: one worker
    /// applies them all in submission order and runs a single incremental
    /// solve, and every submitter gets that solve's matching.
    ///
    /// # Errors
    /// * [`ServeError::UnknownInstance`] — no [`install_delta`](Self::install_delta)
    ///   for this id.
    /// * [`ServeError::Overloaded`] — the instance's pending-delta queue or
    ///   the server queue is full.
    /// * [`ServeError::DeadlineExpired`] — the deadline already passed.
    pub fn submit_delta(&self, req: DeltaRequest) -> Result<DeltaTicket, ServeError> {
        let now = Instant::now();
        if req.deadline.is_some_and(|d| now >= d) {
            self.shared.stats.shed.fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::DeadlineExpired {
                queued_for: Duration::ZERO,
            });
        }
        let Some(state) = self.shared.delta_state(req.instance_id) else {
            return Err(ServeError::UnknownInstance {
                instance_id: req.instance_id,
            });
        };
        let (tx, rx) = mpsc::channel();
        let seq = state.seq.fetch_add(1, Ordering::Relaxed);
        {
            let mut pending = state.lock_pending();
            if pending.len() >= self.shared.queue_capacity {
                self.shared.stats.rejected.fetch_add(1, Ordering::Relaxed);
                return Err(ServeError::Overloaded {
                    capacity: self.shared.queue_capacity,
                });
            }
            pending.push_back(PendingDelta {
                seq,
                delta: req.delta,
                deadline: req.deadline,
                enqueued_at: now,
                reply: tx,
            });
        }
        // At most one tick per instance sits in the server queue: the first
        // submitter after a tick drained (or none existed) schedules it,
        // later ones ride along.
        if !state.scheduled.swap(true, Ordering::AcqRel) {
            let push = self.shared.queue.try_push(Job::DeltaTick {
                instance_id: req.instance_id,
            });
            if let Err(e) = push {
                // Roll back: un-latch, and withdraw our delta unless a
                // concurrently running tick already claimed it (then the
                // ticket is live and the scheduling failure is moot).
                state.scheduled.store(false, Ordering::Release);
                let withdrawn = {
                    let mut pending = state.lock_pending();
                    let before = pending.len();
                    pending.retain(|p| p.seq != seq);
                    pending.len() < before
                };
                if withdrawn {
                    return match e {
                        PushError::Full(_) => {
                            self.shared.stats.rejected.fetch_add(1, Ordering::Relaxed);
                            Err(ServeError::Overloaded {
                                capacity: self.shared.queue_capacity,
                            })
                        }
                        PushError::Closed(_) => Err(ServeError::Closed),
                    };
                }
            }
        }
        Ok(DeltaTicket { rx })
    }

    /// Submit + wait for a delta, for callers that want a blocking RPC
    /// shape (no coalescing benefit: the next delta is only submitted after
    /// this one's round completed).
    pub fn apply_delta(&self, req: DeltaRequest) -> Result<DeltaResponse, ServeError> {
        self.submit_delta(req)?.wait()
    }

    /// Counters of `instance_id`'s incremental solver (`None` if not
    /// installed).  Briefly locks the solver — don't poll in a tight loop.
    pub fn delta_stats(&self, instance_id: u64) -> Option<DeltaStats> {
        let state = self.shared.delta_state(instance_id)?;
        let stats = state.lock_solver().stats();
        Some(stats)
    }

    /// Current counter values.
    pub fn stats(&self) -> StatsSnapshot {
        self.shared.stats.snapshot()
    }

    /// Current queue depth (for load shedding decisions upstream).
    pub fn queue_len(&self) -> usize {
        self.shared.queue.len()
    }

    /// Forces `instance_id` into the degraded state with the probe window
    /// pushed `backoff_max` out — the ops/bench hook for exercising and
    /// measuring the degraded path without injecting failures.
    pub fn force_degrade(&self, instance_id: u64) {
        self.shared
            .health
            .force_degrade(instance_id, Instant::now());
    }

    /// Closes the queue, drains outstanding requests, joins the workers.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.shared.queue.close();
        for w in self.workers.drain(..) {
            // A worker that somehow died still closed its reply channels;
            // nothing useful to do with its panic payload here.
            let _ = w.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// What one isolated solve attempt produced.
enum Attempt {
    Ok(Assignment),
    TypedError(PopularError),
    /// Panic (true) or injected I/O fault (false).
    Failed {
        panicked: bool,
    },
}

fn worker_loop(shared: &Shared) {
    let mut solver = PopularSolver::new(0, 0);
    while let Some(job) = shared.queue.pop() {
        match job {
            Job::Solve(job) => handle(shared, &mut solver, job),
            Job::DeltaTick { instance_id } => handle_delta_tick(shared, instance_id),
        }
    }
}

fn handle(shared: &Shared, solver: &mut PopularSolver, job: SolveJob) {
    let now = Instant::now();
    let SolveJob {
        req,
        enqueued_at,
        reply,
    } = job;

    // Deadline shedding: an expired request never touches a solver.
    if req.deadline.is_some_and(|d| now >= d) {
        shared.stats.shed.fetch_add(1, Ordering::Relaxed);
        let _ = reply.send(Err(ServeError::DeadlineExpired {
            queued_for: now - enqueued_at,
        }));
        return;
    }

    // Degradation gate: a degraded id inside its backoff window is answered
    // without solver traffic.
    let probing = match shared.health.gate(req.instance_id, now) {
        Gate::Solve { probe } => probe,
        Gate::Stale(matching) => {
            respond_degraded(shared, &reply, matching, Quality::Stale, &req);
            return;
        }
        Gate::Fallback => {
            let matching = serial_dictatorship(&req.instance);
            respond_degraded(shared, &reply, matching, Quality::Fallback, &req);
            return;
        }
    };

    // The isolated solve: fail point, then the pipeline, under
    // `catch_unwind`.  Only the solver and the instance cross the unwind
    // boundary — the reply channel stays out here so every path answers.
    let attempt = {
        let instance = &req.instance;
        let mode = req.mode;
        let faults = &shared.faults;
        match catch_unwind(AssertUnwindSafe(
            || -> Result<Result<Assignment, PopularError>, InjectedFault> {
                faults.fail_solve()?;
                Ok(match mode {
                    SolveMode::Popular => solver.solve(instance).cloned(),
                    SolveMode::MaxCardinality => solver.solve_max_cardinality(instance).cloned(),
                })
            },
        )) {
            Ok(Ok(Ok(matching))) => Attempt::Ok(matching),
            Ok(Ok(Err(e))) => Attempt::TypedError(e),
            Ok(Err(InjectedFault::Io)) => Attempt::Failed { panicked: false },
            Err(payload) => {
                drop(payload);
                Attempt::Failed { panicked: true }
            }
        }
    };

    match attempt {
        Attempt::Ok(matching) => {
            let finished = Instant::now();
            let overran = req.deadline.is_some_and(|d| finished > d);
            if overran {
                shared
                    .stats
                    .deadline_overruns
                    .fetch_add(1, Ordering::Relaxed);
            }
            shared.health.record_success(req.instance_id, &matching);
            shared.stats.served.fetch_add(1, Ordering::Relaxed);
            let _ = reply.send(Ok(Response {
                matching,
                quality: Quality::Full,
                overran_deadline: overran,
            }));
        }
        Attempt::TypedError(e) => {
            // A deterministic property of the input: answered, not a
            // failure.  `SolverPoisoned` cannot reach here: panics rebuild
            // the solver below before the next request.  A *probe* landing
            // here proves the solver healthy, so the id is re-promoted
            // (with nothing to cache).
            if probing {
                shared.health.record_healthy(req.instance_id);
            }
            shared.stats.served.fetch_add(1, Ordering::Relaxed);
            shared.stats.solve_errors.fetch_add(1, Ordering::Relaxed);
            let _ = reply.send(Err(ServeError::Solve(e)));
        }
        Attempt::Failed { panicked } => {
            if panicked {
                shared
                    .stats
                    .panics_recovered
                    .fetch_add(1, Ordering::Relaxed);
                // A panic mid-solve leaves the solver poisoned (workspace
                // epoch check); a panic at the fail point may not.  Either
                // way the warm state is discarded wholesale, so no later
                // request can observe dirty buffers.
                *solver = PopularSolver::new(0, 0);
            }
            match shared
                .health
                .record_failure(req.instance_id, Instant::now())
            {
                FailureDisposition::Error => {
                    let _ = reply.send(Err(ServeError::Faulted));
                }
                FailureDisposition::Stale(matching) => {
                    respond_degraded(shared, &reply, matching, Quality::Stale, &req);
                }
                FailureDisposition::Fallback => {
                    let matching = serial_dictatorship(&req.instance);
                    respond_degraded(shared, &reply, matching, Quality::Fallback, &req);
                }
            }
        }
    }
}

/// Drains one instance's pending deltas and answers them all from a single
/// coalesced apply-and-flush round on its incremental solver.
///
/// The §9 failure semantics of [`handle`] carry over delta-for-request:
/// expired deltas are shed without solver traffic, a degraded id is
/// answered stale/fallback without flushing, the flush runs under
/// `catch_unwind` behind the fault injection point, and a panic counts one
/// failure toward degradation.  The one asymmetry: a panic does not discard
/// the incremental solver wholesale (that would lose the warm component
/// decomposition for good) — the solver's workspace poisoning latch trips,
/// and [`DeltaSolver::recover`] rebuilds the scratch and re-solves the
/// whole instance from its intact raw preference lists, which is exactly
/// the "poisoned shard re-solves fully" rule from DESIGN.md §10.
fn handle_delta_tick(shared: &Shared, instance_id: u64) {
    let Some(state) = shared.delta_state(instance_id) else {
        return; // uninstalled since the tick was queued
    };
    // The solver lock serialises rounds per instance (a redundant tick just
    // finds an empty queue).  Clear the scheduled latch *before* draining:
    // a submit landing after the drain must schedule a fresh tick; one
    // landing in between is coalesced into this round and its redundant
    // tick drains nothing.
    let mut solver = state.lock_solver();
    state.scheduled.store(false, Ordering::Release);
    let batch: Vec<PendingDelta> = {
        let mut pending = state.lock_pending();
        pending.drain(..).collect()
    };
    if batch.is_empty() {
        return;
    }
    shared.stats.delta_ticks.fetch_add(1, Ordering::Relaxed);

    // Shed expired deltas, apply the rest in submission order.  A rejected
    // delta (validation error) is a typed answer for that submitter only —
    // the rest of the round proceeds without it.
    let now = Instant::now();
    let mut applied: Vec<PendingDelta> = Vec::with_capacity(batch.len());
    for p in batch {
        if p.deadline.is_some_and(|d| now >= d) {
            shared.stats.shed.fetch_add(1, Ordering::Relaxed);
            let _ = p.reply.send(Err(ServeError::DeadlineExpired {
                queued_for: now - p.enqueued_at,
            }));
            continue;
        }
        let ds = &mut *solver;
        match catch_unwind(AssertUnwindSafe(|| ds.apply(&p.delta))) {
            Ok(Ok(())) => applied.push(p),
            Ok(Err(e)) => {
                shared.stats.served.fetch_add(1, Ordering::Relaxed);
                shared.stats.solve_errors.fetch_add(1, Ordering::Relaxed);
                let _ = p.reply.send(Err(ServeError::Solve(e)));
            }
            Err(payload) => {
                // A panic mid-apply latches the solver's poisoning guard;
                // recover (full re-solve from the intact raw lists) so the
                // rest of the round isn't answered `SolverPoisoned`.
                drop(payload);
                shared
                    .stats
                    .panics_recovered
                    .fetch_add(1, Ordering::Relaxed);
                let ds = &mut *solver;
                let _ = catch_unwind(AssertUnwindSafe(|| ds.recover().map(|_| ())));
                let _ = p.reply.send(Err(ServeError::Faulted));
            }
        }
    }
    if applied.is_empty() {
        return;
    }
    shared
        .stats
        .deltas_coalesced
        .fetch_add(applied.len() as u64, Ordering::Relaxed);
    let coalesced = applied.len();

    // Degradation gate.  The mutations are already applied to the raw
    // instance state (they will be picked up by the next full-quality
    // round); a degraded id is answered without solver traffic.
    let probing = match shared.health.gate(instance_id, now) {
        Gate::Solve { probe } => probe,
        Gate::Stale(matching) => {
            for p in &applied {
                respond_degraded_delta(shared, p, matching.clone(), Quality::Stale, coalesced);
            }
            return;
        }
        Gate::Fallback => {
            respond_fallback_delta(shared, &mut solver, &applied, coalesced);
            return;
        }
    };

    // The isolated flush: fail point, then the incremental solve, under
    // `catch_unwind`.  Reply channels stay out here so every path answers.
    let attempt = {
        let faults = &shared.faults;
        let ds = &mut *solver;
        match catch_unwind(AssertUnwindSafe(
            || -> Result<Result<Assignment, PopularError>, InjectedFault> {
                faults.fail_solve()?;
                Ok(ds.flush().cloned())
            },
        )) {
            Ok(Ok(Ok(matching))) => Attempt::Ok(matching),
            Ok(Ok(Err(e))) => Attempt::TypedError(e),
            Ok(Err(InjectedFault::Io)) => Attempt::Failed { panicked: false },
            Err(payload) => {
                drop(payload);
                Attempt::Failed { panicked: true }
            }
        }
    };

    match attempt {
        Attempt::Ok(matching) => {
            let finished = Instant::now();
            shared.health.record_success(instance_id, &matching);
            shared
                .stats
                .served
                .fetch_add(coalesced as u64, Ordering::Relaxed);
            for p in applied {
                let overran = p.deadline.is_some_and(|d| finished > d);
                if overran {
                    shared
                        .stats
                        .deadline_overruns
                        .fetch_add(1, Ordering::Relaxed);
                }
                let _ = p.reply.send(Ok(DeltaResponse {
                    matching: matching.clone(),
                    quality: Quality::Full,
                    overran_deadline: overran,
                    coalesced,
                }));
            }
        }
        Attempt::TypedError(e) => {
            // Deterministic property of the mutated instance (e.g. a
            // component with no popular matching): answered, not a failure.
            if probing {
                shared.health.record_healthy(instance_id);
            }
            shared
                .stats
                .served
                .fetch_add(coalesced as u64, Ordering::Relaxed);
            shared
                .stats
                .solve_errors
                .fetch_add(coalesced as u64, Ordering::Relaxed);
            for p in applied {
                let _ = p.reply.send(Err(ServeError::Solve(e.clone())));
            }
        }
        Attempt::Failed { panicked } => {
            if panicked {
                shared
                    .stats
                    .panics_recovered
                    .fetch_add(1, Ordering::Relaxed);
                // A poisoned shard re-solves fully: rebuild the scratch and
                // the matching from the intact raw lists.  Recovery repairs
                // state for the *next* round; this round still counts as a
                // failure for degradation purposes.  If recovery itself
                // panics the solver stays poisoned and later flushes return
                // `SolverPoisoned` as a typed error (the reinstall path in
                // `install_delta` is the ultimate backstop).
                let ds = &mut *solver;
                let _ = catch_unwind(AssertUnwindSafe(|| ds.recover().map(|_| ())));
            }
            match shared.health.record_failure(instance_id, Instant::now()) {
                FailureDisposition::Error => {
                    for p in applied {
                        let _ = p.reply.send(Err(ServeError::Faulted));
                    }
                }
                FailureDisposition::Stale(matching) => {
                    for p in &applied {
                        respond_degraded_delta(
                            shared,
                            p,
                            matching.clone(),
                            Quality::Stale,
                            coalesced,
                        );
                    }
                }
                FailureDisposition::Fallback => {
                    respond_fallback_delta(shared, &mut solver, &applied, coalesced);
                }
            }
        }
    }
}

/// Answers every delta in `applied` with a serial-dictatorship matching of
/// the solver's *current* (post-mutation) raw instance — or
/// [`ServeError::Faulted`] if even the snapshot is unavailable (poisoned
/// solver that failed to recover).
fn respond_fallback_delta(
    shared: &Shared,
    solver: &mut DeltaSolver,
    applied: &[PendingDelta],
    coalesced: usize,
) {
    match solver.snapshot_instance() {
        Ok(snap) => {
            let matching = serial_dictatorship(&snap);
            for p in applied {
                respond_degraded_delta(shared, p, matching.clone(), Quality::Fallback, coalesced);
            }
        }
        Err(_) => {
            for p in applied {
                let _ = p.reply.send(Err(ServeError::Faulted));
            }
        }
    }
}

fn respond_degraded_delta(
    shared: &Shared,
    p: &PendingDelta,
    matching: Assignment,
    quality: Quality,
    coalesced: usize,
) {
    shared
        .stats
        .degraded_responses
        .fetch_add(1, Ordering::Relaxed);
    let overran = p.deadline.is_some_and(|d| Instant::now() > d);
    if overran {
        shared
            .stats
            .deadline_overruns
            .fetch_add(1, Ordering::Relaxed);
    }
    let _ = p.reply.send(Ok(DeltaResponse {
        matching,
        quality,
        overran_deadline: overran,
        coalesced,
    }));
}

fn respond_degraded(
    shared: &Shared,
    reply: &mpsc::Sender<Result<Response, ServeError>>,
    matching: Assignment,
    quality: Quality,
    req: &Request,
) {
    shared
        .stats
        .degraded_responses
        .fetch_add(1, Ordering::Relaxed);
    let overran = req.deadline.is_some_and(|d| Instant::now() > d);
    if overran {
        shared
            .stats
            .deadline_overruns
            .fetch_add(1, Ordering::Relaxed);
    }
    let _ = reply.send(Ok(Response {
        matching,
        quality,
        overran_deadline: overran,
    }));
}
