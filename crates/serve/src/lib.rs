//! A fault-tolerant, std-only serving front end for the popular-matching
//! solver.
//!
//! PRs 4–6 made the solve pipeline fast (zero-allocation warm solves) and
//! ingest hostile-input-safe; this crate makes the *request layer* survive
//! the failure modes a long-lived deployment hits first:
//!
//! * **Backpressure, never unbounded growth** — requests enter through a
//!   [bounded MPSC queue](queue::BoundedQueue); when it is full, [`submit`]
//!   rejects immediately with a typed [`ServeError::Overloaded`] instead of
//!   queueing without limit.
//! * **Deadlines** — a request whose deadline expires while it waits is
//!   *shed* before it ever touches a solver ([`ServeError::DeadlineExpired`]);
//!   a solve that finishes past its deadline is delivered but recorded as a
//!   deadline overrun ([`Response::overran_deadline`]).
//! * **Panic isolation** — every solve runs under `catch_unwind`.  A panic
//!   is trapped inside the worker, the poisoned [`PopularSolver`] (whose
//!   `Workspace` epoch check has latched, see `pm_pram`) is discarded and
//!   rebuilt, and no other request ever observes the corrupted warm state.
//! * **Graceful degradation** — after `K` consecutive failures on one
//!   instance the server answers from the last-good matching (flagged
//!   [`Quality::Stale`]) or a cheap [serial-dictatorship
//!   fallback](degrade::serial_dictatorship) (flagged
//!   [`Quality::Fallback`]) instead of erroring, and re-promotes the full
//!   solver with bounded exponential backoff probes.
//! * **Incremental serving** — [`Server::install_delta`] pins a warm
//!   [`DeltaSolver`](pm_popular::delta::DeltaSolver) per instance id;
//!   [`Server::submit_delta`] queues typed preference mutations, and a
//!   scheduling tick *coalesces* every delta queued for one instance into a
//!   single apply-and-flush round that re-solves only the dirty components
//!   (deadlines, degradation and panic-poisoning semantics carry over; a
//!   poisoned incremental solver re-solves fully on recovery).
//! * **Fault injection** — the [`faults`] module provides env-driven fail
//!   points (`PM_FAULTS=panic:0.05,delay:10ms,io:0.01`) that power the
//!   chaos-test suite; without the `faults` cargo feature every fail point
//!   compiles to an inlined no-op.
//!
//! The failure model — what can panic, what degrades, what rejects — is
//! documented in `DESIGN.md` §9.
//!
//! ```
//! use std::sync::Arc;
//! use pm_popular::instance::PrefInstance;
//! use pm_serve::{Request, Server, ServerConfig};
//!
//! let inst = Arc::new(PrefInstance::new_strict(3, vec![
//!     vec![0, 1],
//!     vec![0, 2],
//! ]).unwrap());
//!
//! // Explicit inert fault spec: examples must not inherit `PM_FAULTS`.
//! let mut cfg = ServerConfig::default();
//! cfg.faults = pm_serve::faults::Spec::none();
//! let server = Server::start(cfg);
//! let resp = server.call(Request::new(inst, 1)).unwrap();
//! assert!(!resp.is_degraded());
//! server.shutdown();
//! ```
//!
//! [`submit`]: Server::submit
//! [`PopularSolver`]: pm_popular::solver::PopularSolver

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod degrade;
pub mod faults;
pub mod queue;
pub mod server;

pub use server::{
    DeltaRequest, DeltaResponse, DeltaTicket, Quality, Request, Response, ServeError, Server,
    ServerConfig, SolveMode, StatsSnapshot, Ticket,
};
