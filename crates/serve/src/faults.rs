//! Env-driven fail points for chaos testing.
//!
//! A [`Spec`] describes what to inject at the server's solve fail point:
//!
//! ```text
//! PM_FAULTS=panic:0.05,delay:10ms,io:0.01
//! ```
//!
//! * `panic:P` — panic with probability `P` (a real unwinding panic, the
//!   kind the server must isolate with `catch_unwind`);
//! * `io:P` — return an injected I/O-style error with probability `P`
//!   (counts as a failure toward degradation, like a panic, but without
//!   unwinding);
//! * `delay:DUR` — sleep `DUR` (`10ms`, `500us`, `1s`) on every passage,
//!   simulating a slow backend so deadline shedding and overrun accounting
//!   have something to bite on.
//!
//! Decisions are **deterministic**: a per-spec atomic counter is hashed
//! (SplitMix64) against a fixed seed, so a given spec produces the same
//! fault sequence in every run — thread interleaving, not the RNG, is the
//! only source of nondeterminism in the chaos tests.
//!
//! # Compiled out by default
//!
//! Without the `faults` cargo feature, [`Spec::fail_solve`] is an
//! `#[inline(always)]` no-op and [`Spec::is_active`] is `false` — the
//! production serving path carries **zero** injection overhead, which the
//! bench harness's zero-allocation / warm-latency gates verify.  The spec
//! *parser* is always compiled (it is cheap, and config errors should be
//! caught even in production builds); only the evaluation is gated.
//!
//! The probabilities and delay live in atomics shared by all clones of a
//! `Spec`, so a test can hold one handle, hand a clone to the server, and
//! later [`set`](Spec::set) or [`disable`](Spec::disable) injection at
//! runtime — that is how "recovers once injection stops" is exercised.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

/// The environment variable [`Spec::from_env`] reads.
pub const ENV_VAR: &str = "PM_FAULTS";

/// Probabilities are stored in parts-per-million.
const PPM: u64 = 1_000_000;

/// Default hash seed (overridden by `PM_FAULTS_SEED` in [`Spec::from_env`]).
const DEFAULT_SEED: u64 = 0x9E37_79B9_7F4A_7C15;

/// An injected, non-panicking fault returned by a fail point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectedFault {
    /// A simulated I/O failure on the solve path.
    Io,
}

impl std::fmt::Display for InjectedFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InjectedFault::Io => write!(f, "injected I/O fault"),
        }
    }
}

/// A fault-injection specification (see the module docs).  Clones share
/// state, so injection can be retargeted at runtime through any handle.
#[derive(Debug, Clone)]
pub struct Spec {
    inner: Arc<Inner>,
}

#[derive(Debug)]
#[cfg_attr(not(feature = "faults"), allow(dead_code))]
struct Inner {
    panic_ppm: AtomicU32,
    io_ppm: AtomicU32,
    delay_us: AtomicU64,
    seed: AtomicU64,
    counter: AtomicU64,
}

impl Default for Spec {
    fn default() -> Self {
        Self::none()
    }
}

impl Spec {
    /// True iff this build carries real fail points (the `faults` cargo
    /// feature); false means every fail point is an inlined no-op.
    pub const fn compiled_in() -> bool {
        cfg!(feature = "faults")
    }

    /// An inert spec: nothing is ever injected.
    pub fn none() -> Self {
        Self {
            inner: Arc::new(Inner {
                panic_ppm: AtomicU32::new(0),
                io_ppm: AtomicU32::new(0),
                delay_us: AtomicU64::new(0),
                seed: AtomicU64::new(DEFAULT_SEED),
                counter: AtomicU64::new(0),
            }),
        }
    }

    /// Builds a spec from the [`PM_FAULTS`](ENV_VAR) environment variable
    /// (inert when unset or empty; `PM_FAULTS_SEED` overrides the hash
    /// seed).
    ///
    /// # Panics
    /// Panics on a malformed spec — a configuration error should stop the
    /// server at startup, not silently disable chaos in a chaos run.
    pub fn from_env() -> Self {
        let spec = match std::env::var(ENV_VAR) {
            Ok(s) if !s.trim().is_empty() => {
                Self::parse(&s).unwrap_or_else(|e| panic!("malformed {ENV_VAR}: {e}"))
            }
            _ => Self::none(),
        };
        if let Ok(seed) = std::env::var("PM_FAULTS_SEED") {
            let seed: u64 = seed
                .trim()
                .parse()
                .unwrap_or_else(|_| panic!("malformed PM_FAULTS_SEED: {seed:?}"));
            spec.inner.seed.store(seed, Ordering::Relaxed);
        }
        spec
    }

    /// Parses `panic:P,delay:DUR,io:P` (any subset, any order; empty means
    /// inert).  Returns a description of the first malformed clause.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let out = Self::none();
        out.set(spec)?;
        Ok(out)
    }

    /// Re-targets this spec (and every clone sharing its state) in place.
    /// The previous values are only replaced if the whole string parses.
    pub fn set(&self, spec: &str) -> Result<(), String> {
        let mut panic_ppm = 0u32;
        let mut io_ppm = 0u32;
        let mut delay_us = 0u64;
        for clause in spec.split(',') {
            let clause = clause.trim();
            if clause.is_empty() {
                continue;
            }
            let (kind, value) = clause
                .split_once(':')
                .ok_or_else(|| format!("clause {clause:?} is not kind:value"))?;
            match kind.trim() {
                "panic" => panic_ppm = parse_probability(value)?,
                "io" => io_ppm = parse_probability(value)?,
                "delay" => delay_us = parse_duration_us(value)?,
                other => {
                    return Err(format!(
                        "unknown fault kind {other:?} (expected panic, io or delay)"
                    ))
                }
            }
        }
        self.inner.panic_ppm.store(panic_ppm, Ordering::Relaxed);
        self.inner.io_ppm.store(io_ppm, Ordering::Relaxed);
        self.inner.delay_us.store(delay_us, Ordering::Relaxed);
        Ok(())
    }

    /// Turns all injection off (equivalent to `set("")`).
    pub fn disable(&self) {
        self.set("").expect("the empty spec always parses");
    }

    /// True iff any injection is currently configured *and* compiled in.
    pub fn is_active(&self) -> bool {
        #[cfg(feature = "faults")]
        {
            self.inner.panic_ppm.load(Ordering::Relaxed) > 0
                || self.inner.io_ppm.load(Ordering::Relaxed) > 0
                || self.inner.delay_us.load(Ordering::Relaxed) > 0
        }
        #[cfg(not(feature = "faults"))]
        {
            false
        }
    }

    /// The solve fail point: possibly sleeps, possibly returns an injected
    /// fault, possibly panics (in that order).  Compiled to an inlined
    /// no-op without the `faults` feature.
    ///
    /// # Panics
    /// By design, with probability `panic:P` when injection is compiled in
    /// and configured.
    #[inline(always)]
    pub fn fail_solve(&self) -> Result<(), InjectedFault> {
        #[cfg(feature = "faults")]
        {
            self.eval()
        }
        #[cfg(not(feature = "faults"))]
        {
            Ok(())
        }
    }

    #[cfg(feature = "faults")]
    fn eval(&self) -> Result<(), InjectedFault> {
        let delay_us = self.inner.delay_us.load(Ordering::Relaxed);
        let panic_ppm = self.inner.panic_ppm.load(Ordering::Relaxed) as u64;
        let io_ppm = self.inner.io_ppm.load(Ordering::Relaxed) as u64;
        if delay_us == 0 && panic_ppm == 0 && io_ppm == 0 {
            return Ok(());
        }
        if delay_us > 0 {
            std::thread::sleep(std::time::Duration::from_micros(delay_us));
        }
        if panic_ppm > 0 || io_ppm > 0 {
            let tick = self.inner.counter.fetch_add(1, Ordering::Relaxed);
            let roll = splitmix64(self.inner.seed.load(Ordering::Relaxed) ^ tick) % PPM;
            if roll < panic_ppm {
                panic!("injected fault: panic (tick {tick})");
            }
            if roll < panic_ppm + io_ppm {
                return Err(InjectedFault::Io);
            }
        }
        Ok(())
    }
}

/// `"0.05"` → 50 000 ppm.  Accepts `0..=1`.
fn parse_probability(value: &str) -> Result<u32, String> {
    let p: f64 = value
        .trim()
        .parse()
        .map_err(|_| format!("probability {value:?} is not a number"))?;
    if !(0.0..=1.0).contains(&p) {
        return Err(format!("probability {value:?} is outside 0..=1"));
    }
    Ok((p * PPM as f64).round() as u32)
}

/// `"10ms"` / `"500us"` / `"1s"` → microseconds.
fn parse_duration_us(value: &str) -> Result<u64, String> {
    let v = value.trim();
    let (digits, scale) = if let Some(d) = v.strip_suffix("ms") {
        (d, 1_000)
    } else if let Some(d) = v.strip_suffix("us") {
        (d, 1)
    } else if let Some(d) = v.strip_suffix('s') {
        (d, 1_000_000)
    } else {
        return Err(format!("duration {value:?} needs a unit (us, ms or s)"));
    };
    let n: u64 = digits
        .trim()
        .parse()
        .map_err(|_| format!("duration {value:?} is not an integer plus unit"))?;
    Ok(n * scale)
}

/// SplitMix64: the standard 64-bit finalizer, good enough to turn a counter
/// into an unbiased fault roll.
#[cfg(feature = "faults")]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parser_accepts_the_documented_format() {
        for good in [
            "",
            "panic:0.05",
            "panic:0.05,delay:10ms",
            "panic:0.05,delay:10ms,io:0.01",
            "delay:500us",
            "delay:1s",
            " io:1.0 , panic:0 ",
        ] {
            assert!(Spec::parse(good).is_ok(), "should parse: {good:?}");
        }
        for bad in [
            "panic",
            "panic:1.5",
            "panic:-0.1",
            "delay:10",
            "delay:fast",
            "oops:0.5",
            "panic:yes",
        ] {
            assert!(Spec::parse(bad).is_err(), "should reject: {bad:?}");
        }
    }

    #[test]
    fn inert_spec_never_injects() {
        let spec = Spec::none();
        assert!(!spec.is_active());
        for _ in 0..100 {
            assert_eq!(spec.fail_solve(), Ok(()));
        }
    }

    // The remaining behaviour only exists with injection compiled in (which
    // the self-dev-dependency guarantees for this crate's own tests).
    #[cfg(feature = "faults")]
    mod injecting {
        use super::*;
        use std::panic::{catch_unwind, AssertUnwindSafe};

        #[test]
        fn certain_panic_panics_and_certain_io_errors() {
            let spec = Spec::parse("panic:1.0").unwrap();
            assert!(spec.is_active());
            assert!(catch_unwind(AssertUnwindSafe(|| spec.fail_solve())).is_err());

            let spec = Spec::parse("io:1.0").unwrap();
            assert_eq!(spec.fail_solve(), Err(InjectedFault::Io));
        }

        #[test]
        fn probability_is_roughly_respected_and_deterministic() {
            let a = Spec::parse("io:0.2").unwrap();
            let b = Spec::parse("io:0.2").unwrap();
            let run = |s: &Spec| (0..2000).filter(|_| s.fail_solve().is_err()).count();
            let (ca, cb) = (run(&a), run(&b));
            assert_eq!(ca, cb, "same spec, same seed, same sequence");
            assert!((200..600).contains(&ca), "0.2 of 2000 ± slack, got {ca}");
        }

        #[test]
        fn runtime_retarget_through_a_clone() {
            let spec = Spec::parse("io:1.0").unwrap();
            let server_handle = spec.clone();
            assert_eq!(server_handle.fail_solve(), Err(InjectedFault::Io));
            spec.disable();
            assert_eq!(server_handle.fail_solve(), Ok(()));
            assert!(!server_handle.is_active());
            spec.set("io:1.0").unwrap();
            assert_eq!(server_handle.fail_solve(), Err(InjectedFault::Io));
        }

        #[test]
        fn delay_sleeps() {
            let spec = Spec::parse("delay:5ms").unwrap();
            let t0 = std::time::Instant::now();
            spec.fail_solve().unwrap();
            assert!(t0.elapsed() >= std::time::Duration::from_millis(5));
        }
    }
}
