//! A bounded multi-producer single/multi-consumer FIFO with *rejecting*
//! backpressure.
//!
//! The serving layer's first line of defence: the queue has a hard capacity
//! fixed at construction, and a producer that finds it full gets its item
//! **back immediately** ([`PushError::Full`]) instead of blocking or
//! growing the buffer — overload surfaces as a typed rejection at the edge,
//! never as unbounded memory growth or rising latency for everyone behind
//! it.  Consumers block on [`pop`](BoundedQueue::pop) and drain remaining
//! items after [`close`](BoundedQueue::close), so shutdown is graceful.
//!
//! The implementation is deliberately plain `std`: one mutex around a
//! `VecDeque` plus a condvar for consumers.  Producers never wait on the
//! condvar (they only ever fail fast), so a stalled consumer cannot strand
//! a producer.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// A bounded FIFO shared by cloning the handle (see the module docs).
#[derive(Debug)]
pub struct BoundedQueue<T> {
    inner: Arc<Inner<T>>,
}

// Derived `Clone` would require `T: Clone`; handles share the queue.
impl<T> Clone for BoundedQueue<T> {
    fn clone(&self) -> Self {
        Self {
            inner: Arc::clone(&self.inner),
        }
    }
}

#[derive(Debug)]
struct Inner<T> {
    state: Mutex<State<T>>,
    not_empty: Condvar,
}

#[derive(Debug)]
struct State<T> {
    buf: VecDeque<T>,
    capacity: usize,
    closed: bool,
}

/// Why a [`try_push`](BoundedQueue::try_push) was refused; the item comes
/// back to the caller in both cases.
#[derive(Debug)]
pub enum PushError<T> {
    /// The queue is at capacity — the overload signal.  Callers translate
    /// this into the typed `Overloaded` rejection.
    Full(T),
    /// The queue was closed; no further items are accepted.
    Closed(T),
}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `capacity` items (clamped to ≥ 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Arc::new(Inner {
                state: Mutex::new(State {
                    buf: VecDeque::with_capacity(capacity.max(1)),
                    capacity: capacity.max(1),
                    closed: false,
                }),
                not_empty: Condvar::new(),
            }),
        }
    }

    /// A poisoned mutex here only means another thread panicked while
    /// holding the lock; the `VecDeque` operations inside the critical
    /// sections cannot leave it logically inconsistent, so the queue keeps
    /// serving rather than cascading the panic to every producer.
    fn lock(&self) -> MutexGuard<'_, State<T>> {
        self.inner
            .state
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Non-blocking push: `Ok(depth)` (the queue length including the new
    /// item) on success, the item back in a [`PushError`] otherwise.
    pub fn try_push(&self, item: T) -> Result<usize, PushError<T>> {
        let mut state = self.lock();
        if state.closed {
            return Err(PushError::Closed(item));
        }
        if state.buf.len() >= state.capacity {
            return Err(PushError::Full(item));
        }
        state.buf.push_back(item);
        let depth = state.buf.len();
        drop(state);
        self.inner.not_empty.notify_one();
        Ok(depth)
    }

    /// Blocking pop: waits for an item, returns `None` only once the queue
    /// is closed **and** drained (remaining items are still handed out
    /// after close, so consumers finish queued work before exiting).
    pub fn pop(&self) -> Option<T> {
        let mut state = self.lock();
        loop {
            if let Some(item) = state.buf.pop_front() {
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self
                .inner
                .not_empty
                .wait(state)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }

    /// Closes the queue: producers are refused from now on, consumers drain
    /// what is left and then observe `None`.
    pub fn close(&self) {
        self.lock().closed = true;
        self.inner.not_empty.notify_all();
    }

    /// Current queue depth.
    pub fn len(&self) -> usize {
        self.lock().buf.len()
    }

    /// True iff no items are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The fixed capacity.
    pub fn capacity(&self) -> usize {
        self.lock().capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn rejects_when_full_and_hands_the_item_back() {
        let q = BoundedQueue::new(2);
        assert_eq!(q.try_push(1).unwrap(), 1);
        assert_eq!(q.try_push(2).unwrap(), 2);
        match q.try_push(3) {
            Err(PushError::Full(item)) => assert_eq!(item, 3),
            other => panic!("expected Full, got {other:?}"),
        }
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.try_push(3).unwrap(), 2, "room again after a pop");
    }

    #[test]
    fn close_drains_then_ends() {
        let q = BoundedQueue::new(4);
        q.try_push("a").unwrap();
        q.try_push("b").unwrap();
        q.close();
        match q.try_push("c") {
            Err(PushError::Closed(item)) => assert_eq!(item, "c"),
            other => panic!("expected Closed, got {other:?}"),
        }
        assert_eq!(q.pop(), Some("a"));
        assert_eq!(q.pop(), Some("b"));
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop(), None, "stays ended");
    }

    #[test]
    fn blocking_pop_wakes_on_push_and_on_close() {
        let q = BoundedQueue::new(1);
        let q2 = q.clone();
        let consumer = thread::spawn(move || (q2.pop(), q2.pop()));
        thread::sleep(Duration::from_millis(20));
        q.try_push(42).unwrap();
        thread::sleep(Duration::from_millis(20));
        q.close();
        let (first, second) = consumer.join().unwrap();
        assert_eq!(first, Some(42));
        assert_eq!(second, None);
    }

    #[test]
    fn capacity_is_clamped_to_one() {
        let q: BoundedQueue<u8> = BoundedQueue::new(0);
        assert_eq!(q.capacity(), 1);
        q.try_push(1).unwrap();
        assert!(matches!(q.try_push(2), Err(PushError::Full(2))));
    }

    #[test]
    fn many_producers_one_consumer() {
        let q = BoundedQueue::new(64);
        let mut producers = Vec::new();
        for t in 0..4 {
            let q = q.clone();
            producers.push(thread::spawn(move || {
                let mut accepted = 0u32;
                for i in 0..200 {
                    // Spin on Full: the consumer is draining concurrently.
                    let mut item = t * 1000 + i;
                    loop {
                        match q.try_push(item) {
                            Ok(_) => break,
                            Err(PushError::Full(back)) => {
                                item = back;
                                thread::yield_now();
                            }
                            Err(PushError::Closed(_)) => panic!("closed early"),
                        }
                    }
                    accepted += 1;
                }
                accepted
            }));
        }
        let qc = q.clone();
        let consumer = thread::spawn(move || {
            let mut got = Vec::new();
            while let Some(item) = qc.pop() {
                got.push(item);
            }
            got
        });
        let accepted: u32 = producers.into_iter().map(|p| p.join().unwrap()).sum();
        q.close();
        let got = consumer.join().unwrap();
        assert_eq!(accepted, 800);
        assert_eq!(got.len(), 800, "every accepted item is delivered");
    }
}
