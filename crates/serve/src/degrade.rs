//! Graceful degradation: per-instance health tracking, the last-good
//! matching cache, and the serial-dictatorship fallback.
//!
//! The policy (DESIGN.md §9): failures here mean *solve panics and injected
//! I/O faults* — a typed [`PopularError`](pm_popular::PopularError) is a
//! legitimate deterministic answer and never counts.  After `K`
//! **consecutive** failures on one instance id the server stops sending its
//! traffic to the solver and answers degraded instead:
//!
//! * the **last-good matching** cached from the most recent successful
//!   solve of the same id, flagged stale; or, if none exists yet,
//! * a **serial-dictatorship** matching computed fresh — the classic
//!   mechanism baseline (each applicant in index order takes their most
//!   preferred still-free post).  It is not popular in general, but it is
//!   O(|E|), allocation-light, trivially panic-free, and always a *valid*
//!   assignment — a designed answer of last resort, not an accident.
//!
//! Re-promotion is by bounded exponential backoff: once degraded, a single
//! probe request per backoff window is allowed through to the real solver;
//! a success resets the instance to full service, a failure doubles the
//! backoff up to the configured ceiling.

use std::collections::HashMap;
use std::sync::{Mutex, MutexGuard};
use std::time::{Duration, Instant};

use pm_popular::instance::{Assignment, PrefInstance};

/// Serial dictatorship over the instance's preference lists: applicants in
/// index order each take their most preferred still-unclaimed real post,
/// falling back to their own last resort.  Ties are broken by list order
/// (the flat CSR order), so the result is deterministic.
///
/// The output is always a valid assignment
/// ([`Assignment::is_valid`]) but carries no popularity guarantee — it is
/// the serving layer's cheap degraded answer, flagged as such.
pub fn serial_dictatorship(inst: &PrefInstance) -> Assignment {
    let mut taken = vec![false; inst.num_posts()];
    let mut out = Assignment::all_last_resort(inst);
    for a in 0..inst.num_applicants() {
        for &p in inst.flat_list(a) {
            let p = p.get();
            if !taken[p] {
                taken[p] = true;
                out.set_post(a, p);
                break;
            }
        }
    }
    out
}

/// What the health gate tells the worker to do with a request.
#[derive(Debug)]
pub(crate) enum Gate {
    /// Run the real solver.  `probe` marks the single bounded-backoff retry
    /// of a degraded instance.
    Solve {
        /// True iff this request is the re-promotion probe of a degraded id.
        probe: bool,
    },
    /// Answer from the cached last-good matching, flagged stale.
    Stale(Assignment),
    /// Answer with a fresh serial-dictatorship fallback (computed by the
    /// caller, outside the health lock).
    Fallback,
}

/// What to tell the client after a recorded failure.
#[derive(Debug)]
pub(crate) enum FailureDisposition {
    /// Fewer than `K` consecutive failures: surface the error.
    Error,
    /// Degraded, last-good available: serve it stale.
    Stale(Assignment),
    /// Degraded, nothing cached: serve the serial-dictatorship fallback.
    Fallback,
}

#[derive(Debug)]
struct Health {
    consecutive_failures: u32,
    last_good: Option<Assignment>,
    backoff: Duration,
    retry_at: Option<Instant>,
}

/// Shared per-instance health state (see the module docs for the policy).
#[derive(Debug)]
pub(crate) struct HealthMap {
    map: Mutex<HashMap<u64, Health>>,
    k: u32,
    backoff_initial: Duration,
    backoff_max: Duration,
}

impl HealthMap {
    pub(crate) fn new(
        degrade_after: u32,
        backoff_initial: Duration,
        backoff_max: Duration,
    ) -> Self {
        Self {
            map: Mutex::new(HashMap::new()),
            k: degrade_after.max(1),
            backoff_initial,
            backoff_max: backoff_max.max(backoff_initial),
        }
    }

    fn lock(&self) -> MutexGuard<'_, HashMap<u64, Health>> {
        // The critical sections below are pure map bookkeeping; a panic
        // mid-update cannot leave them logically torn, so a poisoned lock
        // keeps serving.
        self.map
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    fn fresh(&self) -> Health {
        Health {
            consecutive_failures: 0,
            last_good: None,
            backoff: self.backoff_initial,
            retry_at: None,
        }
    }

    /// Routes a request: solve, or answer degraded without touching the
    /// solver.  Claiming the probe slot moves `retry_at` forward *here*, so
    /// concurrent workers cannot all probe at once.
    pub(crate) fn gate(&self, id: u64, now: Instant) -> Gate {
        let mut map = self.lock();
        let Some(h) = map.get_mut(&id) else {
            return Gate::Solve { probe: false };
        };
        if h.consecutive_failures < self.k {
            return Gate::Solve { probe: false };
        }
        match h.retry_at {
            Some(t) if now >= t => {
                h.retry_at = Some(now + h.backoff);
                h.backoff = (h.backoff * 2).min(self.backoff_max);
                Gate::Solve { probe: true }
            }
            _ => match &h.last_good {
                Some(m) => Gate::Stale(m.clone()),
                None => Gate::Fallback,
            },
        }
    }

    /// A successful solve: reset the failure streak, cache the matching,
    /// re-promote to full service.
    pub(crate) fn record_success(&self, id: u64, matching: &Assignment) {
        let mut map = self.lock();
        let h = map.entry(id).or_insert_with(|| self.fresh());
        h.consecutive_failures = 0;
        h.backoff = self.backoff_initial;
        h.retry_at = None;
        h.last_good = Some(matching.clone());
    }

    /// The solver completed without panicking but produced a typed error
    /// (e.g. no popular matching exists).  That is a *healthy* solver, so a
    /// probe reaching this outcome re-promotes the instance to full
    /// service — there is just no matching to cache.
    pub(crate) fn record_healthy(&self, id: u64) {
        let mut map = self.lock();
        let h = map.entry(id).or_insert_with(|| self.fresh());
        h.consecutive_failures = 0;
        h.backoff = self.backoff_initial;
        h.retry_at = None;
    }

    /// A solve panic or injected fault: bump the streak; once it reaches
    /// `K`, arm the backoff window and tell the caller to answer degraded.
    pub(crate) fn record_failure(&self, id: u64, now: Instant) -> FailureDisposition {
        let mut map = self.lock();
        let h = map.entry(id).or_insert_with(|| self.fresh());
        h.consecutive_failures = h.consecutive_failures.saturating_add(1);
        if h.consecutive_failures < self.k {
            return FailureDisposition::Error;
        }
        if h.retry_at.is_none() {
            h.retry_at = Some(now + h.backoff);
            h.backoff = (h.backoff * 2).min(self.backoff_max);
        }
        match &h.last_good {
            Some(m) => FailureDisposition::Stale(m.clone()),
            None => FailureDisposition::Fallback,
        }
    }

    /// Forces the id into the degraded state with the probe window pushed a
    /// full `backoff_max` out — the ops/bench hook for measuring the
    /// degraded path without injecting failures.
    pub(crate) fn force_degrade(&self, id: u64, now: Instant) {
        let mut map = self.lock();
        let h = map.entry(id).or_insert_with(|| self.fresh());
        h.consecutive_failures = h.consecutive_failures.max(self.k);
        h.backoff = self.backoff_max;
        h.retry_at = Some(now + self.backoff_max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inst() -> PrefInstance {
        // a0: p0 > p1; a1: p0 > p2; a2: p2 > p0.
        PrefInstance::new_strict(3, vec![vec![0, 1], vec![0, 2], vec![2, 0]]).unwrap()
    }

    #[test]
    fn serial_dictatorship_is_valid_and_greedy() {
        let inst = inst();
        let m = serial_dictatorship(&inst);
        assert!(m.is_valid(&inst));
        assert_eq!(m.post(0), 0, "a0 takes its first choice");
        assert_eq!(m.post(1), 2, "a1's first choice is taken, takes p2");
        assert_eq!(
            m.post(2),
            inst.last_resort(2),
            "both of a2's choices are taken"
        );
    }

    #[test]
    fn serial_dictatorship_handles_ties_and_tiny_instances() {
        let tied =
            PrefInstance::new_with_ties(3, vec![vec![vec![0, 1], vec![2]], vec![vec![1]]]).unwrap();
        let m = serial_dictatorship(&tied);
        assert!(m.is_valid(&tied));
        assert_eq!(m.post(0), 0, "tie broken by flat order");
        assert_eq!(m.post(1), 1);
    }

    #[test]
    fn degrades_after_k_and_probes_with_backoff() {
        let inst = inst();
        let h = HealthMap::new(2, Duration::from_millis(10), Duration::from_millis(40));
        let t0 = Instant::now();
        // Healthy id goes straight to the solver.
        assert!(matches!(h.gate(7, t0), Gate::Solve { probe: false }));
        // First failure: still an error; second reaches K and degrades.
        assert!(matches!(h.record_failure(7, t0), FailureDisposition::Error));
        assert!(matches!(
            h.record_failure(7, t0),
            FailureDisposition::Fallback
        ));
        // Inside the backoff window: degraded answers, no solver traffic.
        assert!(matches!(h.gate(7, t0), Gate::Fallback));
        // After the window: exactly one probe is let through...
        let later = t0 + Duration::from_millis(15);
        assert!(matches!(h.gate(7, later), Gate::Solve { probe: true }));
        // ...and a concurrent second request stays degraded.
        assert!(matches!(h.gate(7, later), Gate::Fallback));
        // Probe succeeds: full service, and the matching is cached.
        let m = serial_dictatorship(&inst);
        h.record_success(7, &m);
        assert!(matches!(h.gate(7, later), Gate::Solve { probe: false }));
        // New failures now serve the cached matching stale.
        h.record_failure(7, later);
        match h.record_failure(7, later) {
            FailureDisposition::Stale(stale) => assert_eq!(stale, m),
            other => panic!("expected Stale, got {other:?}"),
        }
        match h.gate(7, later) {
            Gate::Stale(stale) => assert_eq!(stale, m),
            other => panic!("expected Stale, got {other:?}"),
        }
    }

    #[test]
    fn backoff_doubles_up_to_the_ceiling() {
        let h = HealthMap::new(1, Duration::from_millis(10), Duration::from_millis(25));
        let t0 = Instant::now();
        h.record_failure(9, t0); // arms retry at t0+10, backoff -> 20
        let mut t = t0;
        // Walk three probe windows; each failure re-arms from the doubled
        // (then clamped) backoff.
        for expected_ms in [10u64, 20, 25] {
            let before = t + Duration::from_millis(expected_ms - 5);
            assert!(
                matches!(h.gate(9, before), Gate::Fallback),
                "window of {expected_ms}ms must hold"
            );
            t += Duration::from_millis(expected_ms);
            assert!(matches!(h.gate(9, t), Gate::Solve { probe: true }));
            // Probe fails: streak continues, next window armed.
            h.record_failure(9, t);
        }
    }

    #[test]
    fn force_degrade_is_immediate_and_sticky() {
        let h = HealthMap::new(3, Duration::from_millis(1), Duration::from_secs(60));
        let t0 = Instant::now();
        h.force_degrade(11, t0);
        assert!(matches!(h.gate(11, t0), Gate::Fallback));
        assert!(matches!(
            h.gate(11, t0 + Duration::from_secs(1)),
            Gate::Fallback
        ));
    }
}
