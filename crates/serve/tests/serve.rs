//! Functional tests for the serving layer under *controlled* conditions:
//! every server here gets an explicit fault spec (inert unless the test is
//! about injection), so the suite is deterministic even when the
//! environment exports `PM_FAULTS` (as the CI chaos leg does).

use std::sync::Arc;
use std::time::Duration;

use pm_instances::generators::{self, GeneratorConfig};
use pm_popular::{is_popular_characterization, PopularError, PopularSolver, PrefInstance};
use pm_serve::faults::Spec;
use pm_serve::{Quality, Request, ServeError, Server, ServerConfig, SolveMode};

fn gen(n: usize, seed: u64) -> Arc<PrefInstance> {
    Arc::new(generators::solvable(&GeneratorConfig {
        num_applicants: n,
        num_posts: n + n / 8 + 1,
        list_len: 4,
        seed,
    }))
}

fn quiet_config() -> ServerConfig {
    ServerConfig {
        faults: Spec::none(),
        ..ServerConfig::default()
    }
}

#[test]
fn serves_matchings_identical_to_a_direct_solver() {
    let mut cfg = quiet_config();
    cfg.workers = 2;
    let server = Server::start(cfg);
    let mut direct = PopularSolver::new(0, 0);
    for seed in 0..6u64 {
        let inst = gen(80 + seed as usize * 130, seed);
        let resp = server.call(Request::new(Arc::clone(&inst), seed)).unwrap();
        assert_eq!(resp.quality, Quality::Full);
        assert!(!resp.is_degraded());
        assert!(!resp.overran_deadline);
        let want = direct.solve(&inst).unwrap();
        assert_eq!(resp.matching.as_slice(), want.as_slice());
        assert!(is_popular_characterization(&inst, &resp.matching));
    }
    let stats = server.stats();
    assert_eq!(stats.served, 6);
    assert_eq!(stats.rejected, 0);
    assert_eq!(stats.shed, 0);
    assert_eq!(stats.panics_recovered, 0);
    assert_eq!(stats.degraded_responses, 0);
    server.shutdown();
}

#[test]
fn max_cardinality_mode_routes_to_the_right_pipeline() {
    let server = Server::start(quiet_config());
    let mut direct = PopularSolver::new(0, 0);
    let inst = gen(200, 99);
    let resp = server
        .call(Request::new(Arc::clone(&inst), 1).with_mode(SolveMode::MaxCardinality))
        .unwrap();
    let want = direct.solve_max_cardinality(&inst).unwrap();
    assert_eq!(resp.matching.as_slice(), want.as_slice());
}

#[test]
fn typed_solver_errors_pass_through_and_never_degrade() {
    // No popular matching exists: the solver's answer is deterministic and
    // legitimate, so even K+ consecutive requests must keep returning the
    // typed error instead of flipping the id into degraded mode.
    let unsolvable =
        Arc::new(PrefInstance::new_strict(3, vec![vec![0, 2], vec![0, 2], vec![0, 2]]).unwrap());
    let mut cfg = quiet_config();
    cfg.degrade_after = 2;
    let server = Server::start(cfg);
    for _ in 0..6 {
        match server.call(Request::new(Arc::clone(&unsolvable), 7)) {
            Err(ServeError::Solve(PopularError::NoPopularMatching)) => {}
            other => panic!("expected the typed solve error, got {other:?}"),
        }
    }
    let stats = server.stats();
    assert_eq!(stats.served, 6, "typed errors still count as served");
    assert_eq!(stats.solve_errors, 6);
    assert_eq!(stats.degraded_responses, 0);
    server.shutdown();
}

#[test]
fn full_queue_rejects_with_typed_overload() {
    // One worker, slowed by an injected delay, queue of 2: flooding with
    // submits must produce typed Overloaded rejections, and every accepted
    // ticket must still be answered.
    let mut cfg = quiet_config();
    cfg.workers = 1;
    cfg.queue_capacity = 2;
    cfg.faults = Spec::parse("delay:20ms").unwrap();
    let server = Server::start(cfg);
    let inst = gen(60, 5);

    let mut tickets = Vec::new();
    let mut rejected = 0u32;
    for _ in 0..20 {
        match server.submit(Request::new(Arc::clone(&inst), 1)) {
            Ok(t) => tickets.push(t),
            Err(ServeError::Overloaded { capacity }) => {
                assert_eq!(capacity, 2);
                rejected += 1;
            }
            Err(other) => panic!("unexpected rejection {other:?}"),
        }
    }
    assert!(
        rejected > 0,
        "20 instant submits must overflow a queue of 2"
    );
    let accepted = tickets.len() as u64;
    for t in tickets {
        let resp = t.wait().expect("accepted requests are served");
        assert_eq!(resp.quality, Quality::Full);
    }
    let stats = server.stats();
    assert_eq!(stats.rejected, u64::from(rejected));
    assert_eq!(stats.served, accepted);
    server.shutdown();
}

#[test]
fn expired_requests_are_shed_before_touching_a_solver() {
    let mut cfg = quiet_config();
    cfg.workers = 1;
    cfg.faults = Spec::parse("delay:30ms").unwrap();
    let server = Server::start(cfg);
    let inst = gen(60, 6);

    // Already expired at submit: shed at the door.
    match server.submit(Request::new(Arc::clone(&inst), 1).with_timeout(Duration::ZERO)) {
        Err(ServeError::DeadlineExpired { queued_for }) => {
            assert_eq!(queued_for, Duration::ZERO);
        }
        other => panic!("expected DeadlineExpired at submit, got {other:?}"),
    }

    // Expired while queued behind a slow solve: shed by the worker, with
    // the queue latency reported.
    let head = server
        .submit(Request::new(Arc::clone(&inst), 1))
        .expect("the first request is accepted");
    let doomed = server
        .submit(Request::new(Arc::clone(&inst), 1).with_timeout(Duration::from_millis(5)))
        .expect("the queue has room");
    match doomed.wait() {
        Err(ServeError::DeadlineExpired { queued_for }) => {
            assert!(queued_for >= Duration::from_millis(5));
        }
        other => panic!("expected a queued shed, got {other:?}"),
    }
    head.wait().expect("the slow head request still completes");
    assert_eq!(server.stats().shed, 2);
    server.shutdown();
}

#[test]
fn late_solves_are_delivered_but_recorded_as_overruns() {
    let mut cfg = quiet_config();
    cfg.faults = Spec::parse("delay:30ms").unwrap();
    let server = Server::start(cfg);
    let inst = gen(60, 7);
    let resp = server
        .call(Request::new(inst, 1).with_timeout(Duration::from_millis(5)))
        .expect("an in-flight overrun still delivers the matching");
    assert!(resp.overran_deadline);
    assert_eq!(resp.quality, Quality::Full);
    assert_eq!(server.stats().deadline_overruns, 1);
    server.shutdown();
}

#[test]
fn force_degrade_serves_fallback_then_stale() {
    let mut cfg = quiet_config();
    cfg.backoff_max = Duration::from_secs(60);
    let server = Server::start(cfg);
    let inst = gen(120, 8);

    // No last-good yet: the degraded answer is the serial-dictatorship
    // fallback, flagged as such and still a valid assignment.
    server.force_degrade(1);
    let resp = server.call(Request::new(Arc::clone(&inst), 1)).unwrap();
    assert_eq!(resp.quality, Quality::Fallback);
    assert!(resp.is_degraded());
    assert!(resp.matching.is_valid(&inst));

    // A different id solves normally, then degrades: its cached last-good
    // matching is served stale, bit-identical to the full answer.
    let full = server.call(Request::new(Arc::clone(&inst), 2)).unwrap();
    assert_eq!(full.quality, Quality::Full);
    server.force_degrade(2);
    let stale = server.call(Request::new(Arc::clone(&inst), 2)).unwrap();
    assert_eq!(stale.quality, Quality::Stale);
    assert_eq!(stale.matching, full.matching);

    assert_eq!(server.stats().degraded_responses, 2);
    server.shutdown();
}

#[test]
fn shutdown_drains_accepted_requests() {
    let mut cfg = quiet_config();
    cfg.workers = 1;
    cfg.queue_capacity = 16;
    cfg.faults = Spec::parse("delay:5ms").unwrap();
    let server = Server::start(cfg);
    let inst = gen(60, 9);
    let tickets: Vec<_> = (0..8)
        .map(|_| server.submit(Request::new(Arc::clone(&inst), 1)).unwrap())
        .collect();
    server.shutdown();
    for t in tickets {
        t.wait().expect("queued requests are drained, not dropped");
    }
}
