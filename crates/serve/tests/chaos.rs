//! The chaos suite: concurrent load against a server with real fault
//! injection compiled in (the self-dev-dependency turns the `faults`
//! feature on for this target).
//!
//! The CI chaos leg runs this with `PM_FAULTS=panic:0.05,delay:10ms` in the
//! environment; locally it falls back to a built-in spec of the same shape,
//! so `cargo test -p pm_serve` exercises injection either way.  The
//! invariants pinned here are the PR's acceptance bar:
//!
//! * no deadlock — every accepted request gets exactly one answer;
//! * no corrupted matchings — every [`Quality::Full`] response passes the
//!   §2 popularity characterization, every degraded response is a valid
//!   assignment and is *flagged* degraded;
//! * expired requests are shed, never solved;
//! * after `K` consecutive failures the server degrades instead of
//!   erroring, and recovers once injection stops.

use std::sync::Arc;
use std::time::Duration;

use pm_instances::generators::{self, GeneratorConfig};
use pm_popular::{is_popular_characterization, PrefInstance};
use pm_serve::faults::Spec;
use pm_serve::{Quality, Request, ServeError, Server, ServerConfig};

fn gen(n: usize, seed: u64) -> Arc<PrefInstance> {
    Arc::new(generators::solvable(&GeneratorConfig {
        num_applicants: n,
        num_posts: n + n / 8 + 1,
        list_len: 4,
        seed,
    }))
}

/// The environment's spec when `PM_FAULTS` is set (the CI chaos leg), a
/// built-in chaotic default otherwise.  Returns whether panics are part of
/// the mix, which gates the "panics actually happened" assertion.
fn chaos_spec() -> (Spec, bool) {
    assert!(
        Spec::compiled_in(),
        "the chaos suite must build with the faults feature"
    );
    match std::env::var(pm_serve::faults::ENV_VAR) {
        Ok(s) if !s.trim().is_empty() => {
            let has_panics = s.contains("panic");
            (Spec::from_env(), has_panics)
        }
        _ => (Spec::parse("panic:0.05,delay:1ms").unwrap(), true),
    }
}

#[test]
fn concurrent_chaos_load_never_deadlocks_or_corrupts() {
    let (spec, has_panics) = chaos_spec();
    let server = Arc::new(Server::start(ServerConfig {
        workers: 4,
        queue_capacity: 8,
        degrade_after: 3,
        backoff_initial: Duration::from_millis(5),
        backoff_max: Duration::from_millis(50),
        faults: spec,
    }));

    // A small pool of solvable instances cycled across a few ids, so the
    // degradation machinery sees repeated traffic per id.
    let pool: Vec<_> = (0..4).map(|s| gen(120 + s as usize * 90, s)).collect();

    let producers: Vec<_> = (0..8)
        .map(|t| {
            let server = Arc::clone(&server);
            let pool = pool.clone();
            std::thread::spawn(move || {
                let mut outcomes = Outcomes::default();
                for i in 0..60u64 {
                    let which = ((t + i) % pool.len() as u64) as usize;
                    let inst = Arc::clone(&pool[which]);
                    let mut req = Request::new(inst, which as u64);
                    // Every fourth request carries a tight deadline so the
                    // shedding path sees chaos traffic too.
                    if i % 4 == 0 {
                        req = req.with_timeout(Duration::from_millis(2));
                    }
                    match server.submit(req) {
                        Ok(ticket) => {
                            // The deadlock bound: every accepted ticket must
                            // resolve. 10s is orders of magnitude above any
                            // legitimate solve under injection delays.
                            let resp = ticket
                                .wait_timeout(Duration::from_secs(10))
                                .expect("accepted request timed out: serving deadlocked");
                            outcomes.record(which, resp, &pool);
                        }
                        Err(ServeError::Overloaded { .. }) => outcomes.rejected += 1,
                        Err(ServeError::DeadlineExpired { .. }) => outcomes.shed += 1,
                        Err(other) => panic!("unexpected submit error: {other:?}"),
                    }
                }
                outcomes
            })
        })
        .collect();

    let mut total = Outcomes::default();
    for p in producers {
        total.merge(p.join().expect("producer threads must not die"));
    }

    assert_eq!(
        total.full + total.degraded + total.shed + total.faulted + total.rejected,
        8 * 60,
        "every request is accounted for exactly once"
    );
    assert!(
        total.full > 0,
        "chaos must not starve full service entirely"
    );
    let stats = server.stats();
    if has_panics {
        assert!(
            stats.panics_recovered > 0,
            "a 5% panic rate over 480 requests must trip at least once"
        );
    }
    // Consistency between the client-side tally and the server counters.
    assert_eq!(stats.rejected, total.rejected);
    assert_eq!(stats.degraded_responses, total.degraded);

    let server = Arc::try_unwrap(server).unwrap_or_else(|_| panic!("all clones joined"));
    server.shutdown();
}

#[derive(Default)]
struct Outcomes {
    full: u64,
    degraded: u64,
    shed: u64,
    faulted: u64,
    rejected: u64,
}

impl Outcomes {
    fn record(
        &mut self,
        which: usize,
        resp: Result<pm_serve::Response, ServeError>,
        pool: &[Arc<PrefInstance>],
    ) {
        match resp {
            Ok(r) => {
                let inst = &pool[which];
                assert!(
                    r.matching.is_valid(inst),
                    "a served matching must always be a valid assignment"
                );
                if r.quality == Quality::Full {
                    // The no-corruption bar: a panic on a neighbouring
                    // request must never leak dirty buffers into a full
                    // answer.
                    assert!(
                        is_popular_characterization(inst, &r.matching),
                        "full response failed the popularity characterization"
                    );
                    self.full += 1;
                } else {
                    self.degraded += 1;
                }
            }
            Err(ServeError::DeadlineExpired { .. }) => self.shed += 1,
            Err(ServeError::Faulted) => self.faulted += 1,
            Err(other) => panic!("unexpected response: {other:?}"),
        }
    }

    fn merge(&mut self, other: Outcomes) {
        self.full += other.full;
        self.degraded += other.degraded;
        self.shed += other.shed;
        self.faulted += other.faulted;
        self.rejected += other.rejected;
    }
}

#[test]
fn degrades_after_k_failures_and_recovers_when_injection_stops() {
    // Deterministic walk through the whole degradation lifecycle, driven by
    // a programmatic spec handle (runtime retargeting through a clone).
    let spec = Spec::none();
    let server = Server::start(ServerConfig {
        workers: 1,
        degrade_after: 2,
        backoff_initial: Duration::from_millis(10),
        backoff_max: Duration::from_millis(40),
        faults: spec.clone(),
        ..ServerConfig::default()
    });
    let inst = gen(100, 42);

    // Healthy first: caches the last-good matching for id 1.
    let full = server.call(Request::new(Arc::clone(&inst), 1)).unwrap();
    assert_eq!(full.quality, Quality::Full);

    // Certain panics from here on.
    spec.set("panic:1.0").unwrap();

    // Failure 1 of K=2: surfaced as a typed fault.
    match server.call(Request::new(Arc::clone(&inst), 1)) {
        Err(ServeError::Faulted) => {}
        other => panic!("below K must surface the fault, got {other:?}"),
    }
    // Failure 2 reaches K: degraded from now on, serving the cached
    // matching stale — bit-identical to the last full answer.
    for _ in 0..3 {
        let resp = server.call(Request::new(Arc::clone(&inst), 1)).unwrap();
        assert_eq!(resp.quality, Quality::Stale);
        assert_eq!(resp.matching, full.matching);
    }

    // Injection stops; after the backoff window a probe goes through, the
    // solver answers, and the id is re-promoted to full service.
    spec.disable();
    std::thread::sleep(Duration::from_millis(60));
    let mut recovered = false;
    for _ in 0..10 {
        let resp = server.call(Request::new(Arc::clone(&inst), 1)).unwrap();
        if resp.quality == Quality::Full {
            recovered = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(recovered, "the server must re-promote once injection stops");
    // Once recovered it stays recovered.
    let resp = server.call(Request::new(Arc::clone(&inst), 1)).unwrap();
    assert_eq!(resp.quality, Quality::Full);

    let stats = server.stats();
    assert!(stats.panics_recovered >= 2);
    assert!(stats.degraded_responses >= 3);
    server.shutdown();
}

#[test]
fn fresh_id_with_no_last_good_degrades_to_fallback() {
    let spec = Spec::parse("panic:1.0").unwrap();
    let server = Server::start(ServerConfig {
        workers: 1,
        degrade_after: 1,
        backoff_initial: Duration::from_secs(60),
        backoff_max: Duration::from_secs(60),
        faults: spec,
        ..ServerConfig::default()
    });
    let inst = gen(90, 11);

    // K=1: the very first panic degrades, and with nothing cached the
    // answer is the serial-dictatorship fallback.
    let resp = server.call(Request::new(Arc::clone(&inst), 5)).unwrap();
    assert_eq!(resp.quality, Quality::Fallback);
    assert!(resp.is_degraded());
    assert!(resp.matching.is_valid(&inst));

    // Inside the (long) backoff window no solver traffic happens at all:
    // the panic counter stays where it was.
    let panics_before = server.stats().panics_recovered;
    for _ in 0..3 {
        let resp = server.call(Request::new(Arc::clone(&inst), 5)).unwrap();
        assert_eq!(resp.quality, Quality::Fallback);
    }
    assert_eq!(server.stats().panics_recovered, panics_before);
    server.shutdown();
}
