//! Functional tests for the incremental (delta) serving path: install,
//! round-trip equivalence with a direct [`DeltaSolver`], burst coalescing,
//! typed error pass-through, and the degradation interaction.
//!
//! Every server gets an explicit fault spec so the suite stays
//! deterministic even when the environment exports `PM_FAULTS`.

use std::sync::Arc;
use std::time::Duration;

use pm_instances::generators::{self, GeneratorConfig};
use pm_popular::delta::{Delta, DeltaMode, DeltaSolver};
use pm_popular::{PopularError, PrefInstance};
use pm_serve::faults::Spec;
use pm_serve::{DeltaRequest, Quality, Request, ServeError, Server, ServerConfig, SolveMode};

fn gen(n: usize, seed: u64) -> PrefInstance {
    generators::solvable(&GeneratorConfig {
        num_applicants: n,
        num_posts: n + n / 8 + 1,
        list_len: 4,
        seed,
    })
}

fn quiet_config() -> ServerConfig {
    ServerConfig {
        faults: Spec::none(),
        ..ServerConfig::default()
    }
}

/// An edit of applicant `a` that keeps the list's members but reverses the
/// tail (valid against any instance with list length ≥ 2).
fn tail_reversal(inst: &PrefInstance, a: usize) -> Delta {
    let mut prefs: Vec<usize> = inst.flat_list(a).iter().map(|p| p.get()).collect();
    prefs[1..].reverse();
    Delta::EditPrefList {
        applicant: a,
        prefs,
    }
}

#[test]
fn delta_round_trip_matches_direct_incremental_solver() {
    let server = Server::start(quiet_config());
    let inst = gen(500, 3);
    server.install_delta(9, &inst, SolveMode::Popular).unwrap();
    let mut direct = DeltaSolver::install(&inst, DeltaMode::Popular).unwrap();
    for a in [0usize, 7, 123] {
        let d = tail_reversal(&inst, a);
        let resp = server.apply_delta(DeltaRequest::new(9, d.clone())).unwrap();
        assert_eq!(resp.quality, Quality::Full);
        assert_eq!(resp.coalesced, 1);
        assert!(!resp.overran_deadline);
        direct.apply(&d).unwrap();
        assert_eq!(resp.matching.as_slice(), direct.flush().unwrap().as_slice());
    }
    let stats = server.stats();
    assert_eq!(stats.served, 3);
    assert_eq!(stats.delta_ticks, 3);
    assert_eq!(stats.deltas_coalesced, 3);
    server.shutdown();
}

#[test]
fn max_cardinality_mode_is_respected() {
    let server = Server::start(quiet_config());
    let inst = gen(300, 11);
    server
        .install_delta(2, &inst, SolveMode::MaxCardinality)
        .unwrap();
    let mut direct = DeltaSolver::install(&inst, DeltaMode::MaxCardinality).unwrap();
    let d = tail_reversal(&inst, 42);
    let resp = server.apply_delta(DeltaRequest::new(2, d.clone())).unwrap();
    direct.apply(&d).unwrap();
    assert_eq!(resp.matching.as_slice(), direct.flush().unwrap().as_slice());
    server.shutdown();
}

#[test]
fn bursts_coalesce_into_one_solve_round() {
    let spec = Spec::none();
    let mut cfg = quiet_config();
    cfg.workers = 1;
    cfg.faults = spec.clone();
    let server = Server::start(cfg);
    let inst = gen(300, 5);
    server.install_delta(1, &inst, SolveMode::Popular).unwrap();

    // Stall the single worker on a plain solve; the burst of deltas below
    // queues behind one scheduling tick while it sleeps.
    spec.set("delay:200ms").unwrap();
    let stall = server
        .submit(Request::new(Arc::new(gen(50, 6)), 77))
        .unwrap();
    let tickets: Vec<_> = (0..6)
        .map(|a| {
            server
                .submit_delta(DeltaRequest::new(1, tail_reversal(&inst, a)))
                .unwrap()
        })
        .collect();
    spec.disable();
    assert!(stall.wait().is_ok());

    let mut direct = DeltaSolver::install(&inst, DeltaMode::Popular).unwrap();
    for a in 0..6 {
        direct.apply(&tail_reversal(&inst, a)).unwrap();
    }
    let want = direct.flush().unwrap().as_slice().to_vec();
    for t in tickets {
        let resp = t.wait().unwrap();
        assert_eq!(resp.quality, Quality::Full);
        assert_eq!(
            resp.coalesced, 6,
            "all six deltas must land in one coalesced round"
        );
        assert_eq!(resp.matching.as_slice(), want.as_slice());
    }
    let stats = server.stats();
    assert_eq!(stats.delta_ticks, 1);
    assert_eq!(stats.deltas_coalesced, 6);
    server.shutdown();
}

#[test]
fn unknown_instance_is_a_typed_rejection() {
    let server = Server::start(quiet_config());
    match server.submit_delta(DeltaRequest::new(42, Delta::AddPost)) {
        Err(ServeError::UnknownInstance { instance_id: 42 }) => {}
        other => panic!("expected UnknownInstance, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn infeasible_delta_returns_typed_error_and_heals() {
    // Two applicants on two posts is fine; a third fighting over the same
    // pair makes the component infeasible.  The typed error must pass
    // through without degrading the id, and the healing delta must restore
    // full-quality service.
    let base = PrefInstance::new_strict(2, vec![vec![0, 1], vec![0, 1]]).unwrap();
    let mut cfg = quiet_config();
    cfg.degrade_after = 1; // hair trigger: any *failure* would degrade
    let server = Server::start(cfg);
    server.install_delta(5, &base, SolveMode::Popular).unwrap();
    match server.apply_delta(DeltaRequest::new(
        5,
        Delta::AddApplicant { prefs: vec![0, 1] },
    )) {
        Err(ServeError::Solve(PopularError::NoPopularMatching)) => {}
        other => panic!("expected NoPopularMatching, got {other:?}"),
    }
    let resp = server
        .apply_delta(DeltaRequest::new(
            5,
            Delta::RemoveApplicant { applicant: 2 },
        ))
        .unwrap();
    assert_eq!(resp.quality, Quality::Full, "typed errors never degrade");
    assert_eq!(server.stats().solve_errors, 1);
    assert_eq!(server.stats().degraded_responses, 0);
    server.shutdown();
}

#[test]
fn invalid_deltas_are_rejected_individually() {
    let server = Server::start(quiet_config());
    let inst = gen(50, 9);
    server.install_delta(4, &inst, SolveMode::Popular).unwrap();
    match server.apply_delta(DeltaRequest::new(
        4,
        Delta::RemoveApplicant { applicant: 10_000 },
    )) {
        Err(ServeError::Solve(PopularError::InvalidInstance(_))) => {}
        other => panic!("expected InvalidInstance, got {other:?}"),
    }
    // The rejection left the instance untouched and serviceable.
    let resp = server
        .apply_delta(DeltaRequest::new(4, tail_reversal(&inst, 0)))
        .unwrap();
    assert_eq!(resp.quality, Quality::Full);
    server.shutdown();
}

#[test]
fn degraded_instance_answers_deltas_stale_without_flushing() {
    let server = Server::start(quiet_config());
    let inst = gen(100, 8);
    server.install_delta(3, &inst, SolveMode::Popular).unwrap();

    // One successful round caches a last-good matching for the id.
    let first = server
        .apply_delta(DeltaRequest::new(3, tail_reversal(&inst, 0)))
        .unwrap();
    assert_eq!(first.quality, Quality::Full);
    let before = server.delta_stats(3).unwrap();

    server.force_degrade(3);
    let resp = server
        .apply_delta(DeltaRequest::new(3, tail_reversal(&inst, 1)))
        .unwrap();
    assert_eq!(resp.quality, Quality::Stale);
    assert_eq!(
        resp.matching.as_slice(),
        first.matching.as_slice(),
        "stale answers come from the last-good cache"
    );
    let after = server.delta_stats(3).unwrap();
    assert_eq!(
        after.flushes, before.flushes,
        "a degraded id is answered without solver traffic"
    );
    assert_eq!(
        after.deltas_applied,
        before.deltas_applied + 1,
        "the mutation still lands, to be picked up by the next full round"
    );
    assert_eq!(server.stats().degraded_responses, 1);
    server.shutdown();
}

#[test]
fn delta_deadlines_shed_before_applying() {
    let server = Server::start(quiet_config());
    let inst = gen(50, 12);
    server.install_delta(6, &inst, SolveMode::Popular).unwrap();
    // Already expired at submit: shed without touching the queue.
    let req = DeltaRequest::new(6, tail_reversal(&inst, 0)).with_timeout(Duration::ZERO);
    match server.submit_delta(req) {
        Err(ServeError::DeadlineExpired { .. }) => {}
        other => panic!("expected DeadlineExpired, got {other:?}"),
    }
    let stats = server.delta_stats(6).unwrap();
    assert_eq!(stats.deltas_applied, 0);
    server.shutdown();
}
