//! Stable marriage substrate and the NC "next" stable matching algorithm.
//!
//! Section VI of Hu & Garg (2020): finding the *first* stable matching fast
//! in parallel is obstructed by CC-completeness (Mayr–Subramanian), but
//! given a stable matching `M`, all of its successors in the stable-matching
//! lattice — the matchings `M\ρ` for every rotation `ρ` exposed in `M` —
//! can be produced in NC (Theorem 16, Algorithm 4).  The key objects:
//!
//! * [`instance`] — the stable marriage instance (preference and ranking
//!   matrices `mp`, `wp`, `mr`, `wr`) and the [`StableMatching`] value type
//!   with the dominance order of Definition 6;
//! * [`rotations`] — rotations (Definition 7), their elimination
//!   (Definition 8), and a sequential exposed-rotation finder used as the
//!   baseline;
//! * [`next`] — Algorithm 4: reduced preference lists by parallel
//!   soft-deletion + prefix-sum compaction, the switching graph `H_M`
//!   (a functional graph over the men), cycle finding in NC, and the
//!   elimination of every exposed rotation in one parallel step;
//! * [`lattice`] — repeated application of Algorithm 4 to walk the entire
//!   lattice from the man-optimal to the woman-optimal matching
//!   (the "enumerate stable matchings in parallel, with small parallel time
//!   per matching" application the paper quotes from Gusfield–Irving).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod instance;
pub mod lattice;
pub mod next;
pub mod rotations;

pub use instance::{SmInstance, StableMatching};
pub use lattice::all_stable_matchings;
pub use next::{next_stable_matchings, NextStableOutcome};
pub use rotations::Rotation;
