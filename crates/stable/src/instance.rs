//! Stable marriage instances, the preference/ranking matrices of the paper,
//! and the dominance partial order on stable matchings.

use pm_matching::gale_shapley::{
    gale_shapley_man_optimal, gale_shapley_woman_optimal, is_stable, rank_matrix,
};

/// A stable marriage instance with `n` men and `n` women, each with a
/// complete, strictly-ordered preference list over the other side.
///
/// The four matrices of Section VI-B are all available: `mp`/`wp` (the
/// preference matrices: who is ranked at position `i`) and `mr`/`wr` (the
/// ranking matrices: at what position is person `q` ranked).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmInstance {
    men_prefs: Vec<Vec<usize>>,
    women_prefs: Vec<Vec<usize>>,
    men_rank: Vec<Vec<usize>>,
    women_rank: Vec<Vec<usize>>,
}

impl SmInstance {
    /// Builds an instance from the two preference matrices.
    ///
    /// # Panics
    /// Panics if the lists are not permutations of `0..n` (delegated to the
    /// Gale–Shapley validation when first used; checked eagerly here too).
    pub fn new(men_prefs: Vec<Vec<usize>>, women_prefs: Vec<Vec<usize>>) -> Self {
        let n = men_prefs.len();
        assert_eq!(women_prefs.len(), n, "instance must be square");
        for (who, prefs) in [("man", &men_prefs), ("woman", &women_prefs)] {
            for (i, list) in prefs.iter().enumerate() {
                assert_eq!(list.len(), n, "{who} {i} has a short list");
                let mut seen = vec![false; n];
                for &q in list {
                    assert!(q < n && !seen[q], "{who} {i}'s list is not a permutation");
                    seen[q] = true;
                }
            }
        }
        let men_rank = rank_matrix(&men_prefs);
        let women_rank = rank_matrix(&women_prefs);
        Self {
            men_prefs,
            women_prefs,
            men_rank,
            women_rank,
        }
    }

    /// Number of men (= number of women).
    pub fn n(&self) -> usize {
        self.men_prefs.len()
    }

    /// `mp[m, i]`: the woman ranked at position `i` by man `m` (0-based).
    pub fn mp(&self, m: usize, i: usize) -> usize {
        self.men_prefs[m][i]
    }

    /// `wp[w, i]`: the man ranked at position `i` by woman `w` (0-based).
    pub fn wp(&self, w: usize, i: usize) -> usize {
        self.women_prefs[w][i]
    }

    /// `mr[m, w]`: the position of woman `w` on man `m`'s list.
    pub fn mr(&self, m: usize, w: usize) -> usize {
        self.men_rank[m][w]
    }

    /// `wr[w, m]`: the position of man `m` on woman `w`'s list.
    pub fn wr(&self, w: usize, m: usize) -> usize {
        self.women_rank[w][m]
    }

    /// Man `m`'s full preference list.
    pub fn man_list(&self, m: usize) -> &[usize] {
        &self.men_prefs[m]
    }

    /// Woman `w`'s full preference list.
    pub fn woman_list(&self, w: usize) -> &[usize] {
        &self.women_prefs[w]
    }

    /// The men's preference matrix.
    pub fn men_prefs(&self) -> &[Vec<usize>] {
        &self.men_prefs
    }

    /// The women's preference matrix.
    pub fn women_prefs(&self) -> &[Vec<usize>] {
        &self.women_prefs
    }

    /// True iff man `m` prefers woman `w1` to woman `w2`.
    pub fn man_prefers(&self, m: usize, w1: usize, w2: usize) -> bool {
        self.men_rank[m][w1] < self.men_rank[m][w2]
    }

    /// True iff woman `w` prefers man `m1` to man `m2`.
    pub fn woman_prefers(&self, w: usize, m1: usize, m2: usize) -> bool {
        self.women_rank[w][m1] < self.women_rank[w][m2]
    }

    /// The man-optimal stable matching `M₀` (Gale–Shapley, men proposing).
    pub fn man_optimal(&self) -> StableMatching {
        StableMatching::new(gale_shapley_man_optimal(&self.men_prefs, &self.women_prefs))
    }

    /// The woman-optimal stable matching `M_z` (women proposing).
    pub fn woman_optimal(&self) -> StableMatching {
        StableMatching::new(gale_shapley_woman_optimal(
            &self.men_prefs,
            &self.women_prefs,
        ))
    }

    /// True iff `matching` is stable for this instance (Definition 5).
    pub fn is_stable(&self, matching: &StableMatching) -> bool {
        is_stable(&self.men_prefs, &self.women_prefs, matching.as_slice())
    }
}

/// A perfect matching between men and women, stored as `man → woman`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StableMatching {
    man_to_woman: Vec<usize>,
}

impl StableMatching {
    /// Wraps a `man → woman` vector.
    pub fn new(man_to_woman: Vec<usize>) -> Self {
        Self { man_to_woman }
    }

    /// Number of men/women.
    pub fn n(&self) -> usize {
        self.man_to_woman.len()
    }

    /// The partner of man `m`.
    pub fn wife(&self, m: usize) -> usize {
        self.man_to_woman[m]
    }

    /// The partner of woman `w`.
    pub fn husband(&self, w: usize) -> usize {
        self.man_to_woman
            .iter()
            .position(|&x| x == w)
            .expect("every woman is matched in a perfect matching")
    }

    /// Inverse map `woman → man` computed in one pass.
    pub fn husbands(&self) -> Vec<usize> {
        let mut inv = vec![usize::MAX; self.man_to_woman.len()];
        for (m, &w) in self.man_to_woman.iter().enumerate() {
            inv[w] = m;
        }
        inv
    }

    /// The underlying `man → woman` slice.
    pub fn as_slice(&self) -> &[usize] {
        &self.man_to_woman
    }

    /// Dominance (Definition 6): `self ⪯ other` iff every man weakly prefers
    /// `self` to `other`.
    pub fn dominates(&self, other: &StableMatching, inst: &SmInstance) -> bool {
        (0..self.n()).all(|m| inst.mr(m, self.wife(m)) <= inst.mr(m, other.wife(m)))
    }

    /// Strict dominance: `self ≺ other`.
    pub fn strictly_dominates(&self, other: &StableMatching, inst: &SmInstance) -> bool {
        self != other && self.dominates(other, inst)
    }
}

/// The stable marriage instance of Figure 5 in the paper (8 men, 8 women,
/// 0-indexed), together with the stable matching `M` marked by underlining
/// (reconstructed from the reduced lists of Figure 6, whose first entries
/// are the partners in `M`).
pub fn figure5_instance() -> (SmInstance, StableMatching) {
    let men = vec![
        vec![4, 6, 0, 1, 5, 7, 3, 2], // m1: w5 w7 w1 w2 w6 w8 w4 w3
        vec![1, 2, 6, 4, 3, 0, 7, 5], // m2: w2 w3 w7 w5 w4 w1 w8 w6
        vec![7, 4, 0, 3, 5, 1, 2, 6], // m3: w8 w5 w1 w4 w6 w2 w3 w7
        vec![2, 1, 6, 3, 0, 5, 7, 4], // m4: w3 w2 w7 w4 w1 w6 w8 w5
        vec![6, 1, 4, 0, 2, 5, 7, 3], // m5: w7 w2 w5 w1 w3 w6 w8 w4
        vec![0, 5, 6, 4, 7, 3, 1, 2], // m6: w1 w6 w7 w5 w8 w4 w2 w3
        vec![1, 4, 6, 5, 2, 3, 7, 0], // m7: w2 w5 w7 w6 w3 w4 w8 w1
        vec![2, 7, 3, 4, 6, 1, 5, 0], // m8: w3 w8 w4 w5 w7 w2 w6 w1
    ];
    let women = vec![
        vec![4, 2, 6, 5, 0, 1, 7, 3], // w1: m5 m3 m7 m6 m1 m2 m8 m4
        vec![7, 5, 2, 4, 6, 1, 0, 3], // w2: m8 m6 m3 m5 m7 m2 m1 m4
        vec![0, 4, 5, 1, 3, 7, 6, 2], // w3: m1 m5 m6 m2 m4 m8 m7 m3
        vec![7, 6, 2, 1, 3, 0, 4, 5], // w4: m8 m7 m3 m2 m4 m1 m5 m6
        vec![5, 3, 6, 2, 7, 0, 1, 4], // w5: m6 m4 m7 m3 m8 m1 m2 m5
        vec![1, 7, 4, 2, 3, 5, 6, 0], // w6: m2 m8 m5 m3 m4 m6 m7 m1
        vec![6, 4, 1, 0, 7, 5, 3, 2], // w7: m7 m5 m2 m1 m8 m6 m4 m3
        vec![6, 3, 0, 4, 1, 2, 5, 7], // w8: m7 m4 m1 m5 m2 m3 m6 m8
    ];
    let inst = SmInstance::new(men, women);
    // M from Figure 6: m1-w8, m2-w3, m3-w5, m4-w6, m5-w7, m6-w1, m7-w2, m8-w4.
    let m = StableMatching::new(vec![7, 2, 4, 5, 6, 0, 1, 3]);
    (inst, m)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure5_matching_is_stable() {
        let (inst, m) = figure5_instance();
        assert!(
            inst.is_stable(&m),
            "the matching underlined in Figure 5 must be stable"
        );
    }

    #[test]
    fn matrices_are_consistent() {
        let (inst, _) = figure5_instance();
        for m in 0..inst.n() {
            for i in 0..inst.n() {
                assert_eq!(inst.mr(m, inst.mp(m, i)), i);
            }
        }
        for w in 0..inst.n() {
            for i in 0..inst.n() {
                assert_eq!(inst.wr(w, inst.wp(w, i)), i);
            }
        }
        // Spot checks against the figure: m1's favourite is w5 (id 4),
        // w1's favourite is m5 (id 4).
        assert_eq!(inst.mp(0, 0), 4);
        assert_eq!(inst.wp(0, 0), 4);
    }

    #[test]
    fn optimal_matchings_and_dominance() {
        let (inst, m) = figure5_instance();
        let m0 = inst.man_optimal();
        let mz = inst.woman_optimal();
        assert!(inst.is_stable(&m0));
        assert!(inst.is_stable(&mz));
        // The lattice extremes dominate / are dominated by every stable matching.
        assert!(m0.dominates(&m, &inst));
        assert!(m.dominates(&mz, &inst));
        assert!(m0.dominates(&mz, &inst));
        // Figure 5's matching is strictly between them for this instance.
        assert!(m0.strictly_dominates(&m, &inst));
        assert!(m.strictly_dominates(&mz, &inst));
    }

    #[test]
    fn husbands_inverse() {
        let (_, m) = figure5_instance();
        let inv = m.husbands();
        for man in 0..m.n() {
            assert_eq!(inv[m.wife(man)], man);
            assert_eq!(m.husband(m.wife(man)), man);
        }
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn malformed_instance_panics() {
        let men = vec![vec![0, 0], vec![0, 1]];
        let women = vec![vec![0, 1], vec![1, 0]];
        let _ = SmInstance::new(men, women);
    }
}
