//! Walking the stable-matching lattice with Algorithm 4.
//!
//! The set of stable matchings forms a distributive lattice under the
//! dominance order (Definition 6), with the man-optimal matching `M₀` at the
//! bottom and the woman-optimal matching `M_z` at the top.  Section VI's
//! motivation (quoting Gusfield–Irving) is that "after sufficient
//! preprocessing, the stable matchings could be enumerated in parallel,
//! with small parallel time per matching": starting from any stable
//! matching, repeatedly applying Algorithm 4 yields all of its successors,
//! and the closure of that process from `M₀` is the entire lattice.

use std::collections::BTreeSet;

use pm_pram::tracker::DepthTracker;

use crate::instance::{SmInstance, StableMatching};
use crate::next::{next_stable_matchings, NextStableOutcome};

/// Enumerates **all** stable matchings of the instance by breadth-first
/// closure of Algorithm 4 starting from the man-optimal matching.  The
/// matchings are returned in the (deterministic) order of discovery, with
/// `M₀` first.
///
/// The number of stable matchings can be exponential in `n`; this is an
/// enumeration routine, so its cost is proportional to the output size times
/// the per-matching cost of Algorithm 4 (polylog depth per matching — the
/// "small parallel time per matching" of the paper).
pub fn all_stable_matchings(inst: &SmInstance, tracker: &DepthTracker) -> Vec<StableMatching> {
    let m0 = inst.man_optimal();
    let mut seen: BTreeSet<Vec<usize>> = BTreeSet::new();
    let mut order = Vec::new();
    let mut frontier = vec![m0];

    while let Some(current) = frontier.pop() {
        if !seen.insert(current.as_slice().to_vec()) {
            continue;
        }
        order.push(current.clone());
        if let NextStableOutcome::Next(results) = next_stable_matchings(inst, &current, tracker) {
            for (_, next) in results {
                if !seen.contains(next.as_slice()) {
                    frontier.push(next);
                }
            }
        }
    }
    order
}

/// Counts the stable matchings (convenience wrapper over
/// [`all_stable_matchings`]).
pub fn count_stable_matchings(inst: &SmInstance) -> usize {
    let tracker = DepthTracker::new();
    all_stable_matchings(inst, &tracker).len()
}

/// Enumerates all stable matchings by brute force over permutations —
/// usable only for `n ≤ 7`, as the ground truth for the lattice walk.
pub fn brute_force_stable_matchings(inst: &SmInstance) -> Vec<StableMatching> {
    let n = inst.n();
    let mut out = Vec::new();
    let mut current: Vec<usize> = Vec::with_capacity(n);
    let mut used = vec![false; n];

    fn rec(
        inst: &SmInstance,
        current: &mut Vec<usize>,
        used: &mut Vec<bool>,
        out: &mut Vec<StableMatching>,
    ) {
        let n = inst.n();
        if current.len() == n {
            let m = StableMatching::new(current.clone());
            if inst.is_stable(&m) {
                out.push(m);
            }
            return;
        }
        for w in 0..n {
            if !used[w] {
                used[w] = true;
                current.push(w);
                rec(inst, current, used, out);
                current.pop();
                used[w] = false;
            }
        }
    }

    rec(inst, &mut current, &mut used, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::figure5_instance;

    #[test]
    fn lattice_walk_finds_every_stable_matching_small() {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        for n in [1usize, 2, 3, 4, 5] {
            for _ in 0..10 {
                let mut gen = || {
                    (0..n)
                        .map(|_| {
                            let mut l: Vec<usize> = (0..n).collect();
                            l.shuffle(&mut rng);
                            l
                        })
                        .collect::<Vec<_>>()
                };
                let inst = SmInstance::new(gen(), gen());
                let t = DepthTracker::new();
                let mut walked: Vec<Vec<usize>> = all_stable_matchings(&inst, &t)
                    .into_iter()
                    .map(|m| m.as_slice().to_vec())
                    .collect();
                let mut brute: Vec<Vec<usize>> = brute_force_stable_matchings(&inst)
                    .into_iter()
                    .map(|m| m.as_slice().to_vec())
                    .collect();
                walked.sort();
                brute.sort();
                assert_eq!(walked, brute, "n={n}");
            }
        }
    }

    #[test]
    fn walk_starts_at_man_optimal_and_contains_both_extremes() {
        let (inst, m) = figure5_instance();
        let t = DepthTracker::new();
        let all = all_stable_matchings(&inst, &t);
        assert_eq!(all[0], inst.man_optimal());
        assert!(all.contains(&inst.woman_optimal()));
        assert!(all.contains(&m), "Figure 5's matching is in the lattice");
        // Every enumerated matching is stable and dominated by M0.
        let m0 = inst.man_optimal();
        for s in &all {
            assert!(inst.is_stable(s));
            assert!(m0.dominates(s, &inst));
        }
        assert_eq!(count_stable_matchings(&inst), all.len());
    }

    #[test]
    fn single_stable_matching_instance() {
        // Everyone agrees on the ranking: exactly one stable matching.
        let men = vec![vec![0, 1, 2], vec![0, 1, 2], vec![0, 1, 2]];
        let women = vec![vec![0, 1, 2], vec![0, 1, 2], vec![0, 1, 2]];
        let inst = SmInstance::new(men, women);
        assert_eq!(count_stable_matchings(&inst), 1);
        assert_eq!(inst.man_optimal(), inst.woman_optimal());
    }

    #[test]
    fn latin_square_instance_has_many_stable_matchings() {
        // The classic 4x4 "cyclic" instance with 2^(n/2) = ... several stable
        // matchings; at minimum, the man- and woman-optimal ones differ and
        // the walk finds more than two.
        let men = vec![
            vec![0, 1, 2, 3],
            vec![1, 0, 3, 2],
            vec![2, 3, 0, 1],
            vec![3, 2, 1, 0],
        ];
        let women = vec![
            vec![3, 2, 1, 0],
            vec![2, 3, 0, 1],
            vec![1, 0, 3, 2],
            vec![0, 1, 2, 3],
        ];
        let inst = SmInstance::new(men, women);
        let t = DepthTracker::new();
        let all = all_stable_matchings(&inst, &t);
        assert!(all.len() >= 3, "found {}", all.len());
        let brute = brute_force_stable_matchings(&inst);
        assert_eq!(all.len(), brute.len());
    }
}
