//! Rotations (Definition 7), their elimination (Definition 8), and a
//! sequential exposed-rotation finder used as the baseline for Algorithm 4.

use crate::instance::{SmInstance, StableMatching};

/// A rotation `ρ = ((m₀, w₀), …, (m_{k−1}, w_{k−1}))` exposed in some stable
/// matching: the pairs are matched, and `w_{i+1}` is the highest-ranked
/// woman on `m_i`'s list (below `w_i`) who prefers `m_i` to her partner.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rotation {
    /// The matched pairs of the rotation, in rotation order.
    pub pairs: Vec<(usize, usize)>,
}

impl Rotation {
    /// The men of the rotation, in rotation order.
    pub fn men(&self) -> Vec<usize> {
        self.pairs.iter().map(|&(m, _)| m).collect()
    }

    /// Number of pairs (`k ≥ 2`).
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True iff the rotation has no pairs (never produced by the finders;
    /// provided for API completeness).
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// True iff this rotation is exposed in `matching` (Definition 7): every
    /// pair is matched and `w_{i+1} = s_M(m_i)` with `next_M(m_i) = m_{i+1}`.
    pub fn is_exposed_in(&self, inst: &SmInstance, matching: &StableMatching) -> bool {
        if self.pairs.len() < 2 {
            return false;
        }
        let k = self.pairs.len();
        for i in 0..k {
            let (m, w) = self.pairs[i];
            if matching.wife(m) != w {
                return false;
            }
            let (m_next, w_next) = self.pairs[(i + 1) % k];
            match s_m(inst, matching, m) {
                Some(expected_w) if expected_w == w_next => {
                    if matching.husband(w_next) != m_next {
                        return false;
                    }
                }
                _ => return false,
            }
        }
        true
    }

    /// Eliminates the rotation from `matching` (Definition 8): each `m_i` is
    /// re-matched to `w_{(i+1) mod k}`; all other pairs are unchanged.
    pub fn eliminate(&self, matching: &StableMatching) -> StableMatching {
        let mut out = matching.as_slice().to_vec();
        let k = self.pairs.len();
        for i in 0..k {
            let (m, _) = self.pairs[i];
            let (_, w_next) = self.pairs[(i + 1) % k];
            out[m] = w_next;
        }
        StableMatching::new(out)
    }
}

/// `s_M(m)`: the highest-ranked woman on `m`'s list who prefers `m` to her
/// partner in `M` (Section VI-B).  `None` if no such woman exists.
pub fn s_m(inst: &SmInstance, matching: &StableMatching, m: usize) -> Option<usize> {
    let husbands = matching.husbands();
    inst.man_list(m)
        .iter()
        .copied()
        .filter(|&w| w != matching.wife(m))
        .find(|&w| inst.woman_prefers(w, m, husbands[w]))
}

/// `next_M(m)`: the partner in `M` of `s_M(m)`.
pub fn next_m(inst: &SmInstance, matching: &StableMatching, m: usize) -> Option<usize> {
    s_m(inst, matching, m).map(|w| matching.husband(w))
}

/// Finds every rotation exposed in `matching` with the straightforward
/// sequential method: build the successor function `m → next_M(m)` and walk
/// it to extract its cycles.  This is the baseline Algorithm 4 is compared
/// against in experiment E10.
pub fn exposed_rotations_sequential(inst: &SmInstance, matching: &StableMatching) -> Vec<Rotation> {
    let n = inst.n();
    let succ: Vec<Option<usize>> = (0..n).map(|m| next_m(inst, matching, m)).collect();

    // Cycle extraction with a three-colour walk.
    let mut state = vec![0u8; n];
    let mut rotations = Vec::new();
    for start in 0..n {
        if state[start] != 0 {
            continue;
        }
        let mut path = Vec::new();
        let mut v = start;
        loop {
            if state[v] == 1 {
                let pos = path.iter().position(|&u| u == v).expect("on current path");
                let men: Vec<usize> = path[pos..].to_vec();
                rotations.push(Rotation {
                    pairs: men.iter().map(|&m| (m, matching.wife(m))).collect(),
                });
                break;
            }
            if state[v] == 2 {
                break;
            }
            state[v] = 1;
            path.push(v);
            match succ[v] {
                Some(next) => v = next,
                None => break,
            }
        }
        for &u in &path {
            state[u] = 2;
        }
    }
    // Canonical order: rotate each cycle to start at its smallest man, then
    // sort rotations by that man.
    let mut canonical: Vec<Rotation> = rotations
        .into_iter()
        .map(|r| {
            let min_pos = r
                .pairs
                .iter()
                .enumerate()
                .min_by_key(|&(_, &(m, _))| m)
                .map(|(i, _)| i)
                .expect("non-empty rotation");
            let mut pairs = r.pairs.clone();
            pairs.rotate_left(min_pos);
            Rotation { pairs }
        })
        .collect();
    canonical.sort_by_key(|r| r.pairs[0].0);
    canonical
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::figure5_instance;

    #[test]
    fn figure6_s_and_next_values() {
        // The second column of Figure 6 is s_M(m) for each man.
        let (inst, m) = figure5_instance();
        let expected_s = [2usize, 5, 0, 7, 1, 4, 4, 1]; // w3 w6 w1 w8 w2 w5 w5 w2
        for (man, &w) in expected_s.iter().enumerate() {
            assert_eq!(s_m(&inst, &m, man), Some(w), "s_M(m{})", man + 1);
        }
        // next_M follows the partners: m1->m2, m2->m4, m3->m6, m4->m1,
        // m5->m7, m6->m3, m7->m3, m8->m7.
        let expected_next = [1usize, 3, 5, 0, 6, 2, 2, 6];
        for (man, &nm) in expected_next.iter().enumerate() {
            assert_eq!(next_m(&inst, &m, man), Some(nm), "next_M(m{})", man + 1);
        }
    }

    #[test]
    fn figure7_rotations_are_found() {
        // H_M of Figure 7 has two cycles: (m1 m2 m4) and (m3 m6).
        let (inst, m) = figure5_instance();
        let rotations = exposed_rotations_sequential(&inst, &m);
        assert_eq!(rotations.len(), 2);
        assert_eq!(rotations[0].men(), vec![0, 1, 3]);
        assert_eq!(rotations[1].men(), vec![2, 5]);
        for r in &rotations {
            assert!(r.is_exposed_in(&inst, &m));
        }
    }

    #[test]
    fn elimination_gives_stable_dominated_matchings() {
        let (inst, m) = figure5_instance();
        for rotation in exposed_rotations_sequential(&inst, &m) {
            let next = rotation.eliminate(&m);
            assert!(inst.is_stable(&next), "M\\ρ must be stable");
            assert!(m.strictly_dominates(&next, &inst), "M must dominate M\\ρ");
            // Each man in the rotation moves to s_M(m), i.e. strictly down
            // his list; all other men keep their partners.
            for man in 0..inst.n() {
                if rotation.men().contains(&man) {
                    assert!(inst.man_prefers(man, m.wife(man), next.wife(man)));
                    assert_eq!(next.wife(man), s_m(&inst, &m, man).unwrap());
                } else {
                    assert_eq!(next.wife(man), m.wife(man));
                }
            }
        }
    }

    #[test]
    fn man_optimal_of_small_instance_exposes_rotations() {
        // 3x3 instance with more than one stable matching.
        let men = vec![vec![0, 1, 2], vec![1, 2, 0], vec![2, 0, 1]];
        let women = vec![vec![1, 2, 0], vec![2, 0, 1], vec![0, 1, 2]];
        let inst = SmInstance::new(men, women);
        let m0 = inst.man_optimal();
        let mz = inst.woman_optimal();
        assert_ne!(m0, mz);
        let rotations = exposed_rotations_sequential(&inst, &m0);
        assert!(!rotations.is_empty());
        // Eliminating rotations repeatedly must eventually reach Mz.
        let mut current = m0;
        let mut steps = 0;
        while current != mz {
            let rs = exposed_rotations_sequential(&inst, &current);
            assert!(
                !rs.is_empty(),
                "non-woman-optimal matching must expose a rotation"
            );
            current = rs[0].eliminate(&current);
            assert!(inst.is_stable(&current));
            steps += 1;
            assert!(steps < 20);
        }
    }

    #[test]
    fn woman_optimal_exposes_no_rotation() {
        let (inst, _) = figure5_instance();
        let mz = inst.woman_optimal();
        assert!(exposed_rotations_sequential(&inst, &mz).is_empty());
    }

    #[test]
    fn non_exposed_rotation_is_rejected() {
        let (inst, m) = figure5_instance();
        let bogus = Rotation {
            pairs: vec![(0, m.wife(0)), (4, m.wife(4))],
        };
        assert!(!bogus.is_exposed_in(&inst, &m));
        let too_short = Rotation {
            pairs: vec![(0, m.wife(0))],
        };
        assert!(!too_short.is_exposed_in(&inst, &m));
        assert!(!too_short.is_empty());
        assert_eq!(too_short.len(), 1);
    }
}
