//! Algorithm 4: all "next" stable matchings of a given stable matching, in NC.
//!
//! Given a stable matching `M`, the algorithm produces `M\ρ` for every
//! rotation `ρ` exposed in `M`, or reports that `M` is the woman-optimal
//! matching (Theorem 16).  The steps mirror the paper exactly:
//!
//! 1. ranking matrices `mr`, `wr` — already part of [`SmInstance`]
//!    (constant parallel steps);
//! 2. *reduced preference lists*: for every woman soft-delete the men she
//!    ranks below her partner, then compress every man's list with a
//!    prefix-sum compaction ([`pm_pram::compact`]); after this pass
//!    `p_M(m)` is the first entry of `m`'s list and `s_M(m)` the second;
//! 3. build the switching graph `H_M` (one vertex per man, an edge
//!    `m → next_M(m)`), a functional graph;
//! 4. find all of its cycles with the NC cycle finder
//!    ([`FunctionalGraph::cycles_parallel`]) — each cycle is an exposed
//!    rotation (Lemma 17 / Definition 7);
//! 5. eliminate every rotation (one parallel step per rotation, all
//!    independent).

use rayon::prelude::*;

use pm_graph::functional::FunctionalGraph;
use pm_pram::compact::compact_indices;
use pm_pram::tracker::DepthTracker;
use pm_pram::SEQUENTIAL_CUTOFF;

use crate::instance::{SmInstance, StableMatching};
use crate::rotations::Rotation;

/// The result of Algorithm 4.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NextStableOutcome {
    /// `M` is the woman-optimal matching: no rotation is exposed.
    WomanOptimal,
    /// The exposed rotations and, for each, the stable matching `M\ρ`.
    Next(Vec<(Rotation, StableMatching)>),
}

impl NextStableOutcome {
    /// The successor matchings, if any.
    pub fn matchings(&self) -> Vec<StableMatching> {
        match self {
            NextStableOutcome::WomanOptimal => Vec::new(),
            NextStableOutcome::Next(v) => v.iter().map(|(_, m)| m.clone()).collect(),
        }
    }
}

/// The reduced preference lists of the men with respect to `M` (Figure 6 of
/// the paper): man `m`'s list keeps exactly the women `w` with
/// `w = p_M(m)` or `w` preferring `m` to `p_M(w)`, in `m`'s original order.
pub fn reduced_men_lists(
    inst: &SmInstance,
    matching: &StableMatching,
    tracker: &DepthTracker,
) -> Vec<Vec<usize>> {
    let n = inst.n();
    let husbands = matching.husbands();
    tracker.phase();

    let reduce_one = |m: usize| -> Vec<usize> {
        // Soft-deletion + compaction of one man's list: the keep-flags are
        // computed in parallel (conceptually one PRAM round over all n²
        // entries) and the surviving entries are compacted with a prefix sum.
        let list = inst.man_list(m);
        let keep = |i: usize| -> bool {
            let w = list[i];
            w == matching.wife(m) || inst.woman_prefers(w, m, husbands[w])
        };
        compact_indices(n, keep, tracker)
            .into_iter()
            .map(|i| list[i])
            .collect()
    };

    if n >= SEQUENTIAL_CUTOFF {
        // Each item compacts a full Θ(n) list — heavy enough that even a
        // few dozen men per chunk keep every pool thread busy.
        (0..n)
            .into_par_iter()
            .with_min_len(64)
            .map(reduce_one)
            .collect()
    } else {
        (0..n).map(reduce_one).collect()
    }
}

/// Builds the switching graph `H_M`: vertex `m` has an edge to
/// `next_M(m) = p_M(s_M(m))` whenever `s_M(m)` (the second entry of `m`'s
/// reduced list) exists.
pub fn switching_graph_hm(
    inst: &SmInstance,
    matching: &StableMatching,
    tracker: &DepthTracker,
) -> FunctionalGraph {
    let reduced = reduced_men_lists(inst, matching, tracker);
    let husbands = matching.husbands();
    tracker.round();
    tracker.work(inst.n() as u64);
    let succ: Vec<Option<usize>> = reduced
        .iter()
        .map(|list| list.get(1).map(|&w| husbands[w]))
        .collect();
    FunctionalGraph::new(succ)
}

/// Runs Algorithm 4: returns every exposed rotation together with `M\ρ`, or
/// [`NextStableOutcome::WomanOptimal`].
///
/// # Panics
/// Panics if `matching` is not stable for `inst` — the structures of
/// Section VI are only defined for stable matchings.
pub fn next_stable_matchings(
    inst: &SmInstance,
    matching: &StableMatching,
    tracker: &DepthTracker,
) -> NextStableOutcome {
    assert!(
        inst.is_stable(matching),
        "Algorithm 4 requires a stable matching as input"
    );
    let reduced = reduced_men_lists(inst, matching, tracker);
    let husbands = matching.husbands();

    // The first entry of every reduced list must be p_M(m) (as argued in the
    // paper: anything above it would be a blocking pair).
    for (m, list) in reduced.iter().enumerate() {
        debug_assert_eq!(list[0], matching.wife(m));
    }

    tracker.round();
    tracker.work(inst.n() as u64);
    let succ: Vec<Option<usize>> = reduced
        .iter()
        .map(|list| list.get(1).map(|&w| husbands[w]))
        .collect();
    let hm = FunctionalGraph::new(succ);

    let cycles = hm.cycles_parallel(tracker);
    if cycles.is_empty() {
        return NextStableOutcome::WomanOptimal;
    }

    // Each cycle of H_M is a rotation; eliminate all of them (independent
    // parallel steps — the rotations are vertex-disjoint).
    tracker.round();
    tracker.work(cycles.iter().map(Vec::len).sum::<usize>() as u64);
    let results: Vec<(Rotation, StableMatching)> = cycles
        .into_iter()
        .map(|men| {
            let rotation = Rotation {
                pairs: men.iter().map(|&m| (m, matching.wife(m))).collect(),
            };
            let next = rotation.eliminate(matching);
            (rotation, next)
        })
        .collect();
    NextStableOutcome::Next(results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::figure5_instance;
    use crate::rotations::exposed_rotations_sequential;

    #[test]
    fn figure6_reduced_lists_match_the_paper() {
        let (inst, m) = figure5_instance();
        let t = DepthTracker::new();
        let reduced = reduced_men_lists(&inst, &m, &t);
        // Figure 6 (0-indexed women):
        let expected: Vec<Vec<usize>> = vec![
            vec![7, 2],          // m1: w8 w3
            vec![2, 5],          // m2: w3 w6
            vec![4, 0, 5, 1],    // m3: w5 w1 w6 w2
            vec![5, 7, 4],       // m4: w6 w8 w5
            vec![6, 1, 0, 2, 5], // m5: w7 w2 w1 w3 w6
            vec![0, 4, 1, 2],    // m6: w1 w5 w2 w3
            vec![1, 4, 6, 7, 0], // m7: w2 w5 w7 w8 w1
            vec![3, 1, 5],       // m8: w4 w2 w6
        ];
        assert_eq!(reduced, expected);
    }

    #[test]
    fn figure7_switching_graph_structure() {
        let (inst, m) = figure5_instance();
        let t = DepthTracker::new();
        let hm = switching_graph_hm(&inst, &m, &t);
        // Every man has s_M(m) here, so out-degree is exactly one (Lemma 17 (i)).
        assert!((0..8).all(|v| hm.successor(v).is_some()));
        // Successors follow Figure 7: m1->m2, m2->m4, m3->m6, m4->m1,
        // m5->m7, m6->m3, m7->m3, m8->m7.
        let expected = [1usize, 3, 5, 0, 6, 2, 2, 6];
        for (man, &nm) in expected.iter().enumerate() {
            assert_eq!(hm.successor(man), Some(nm));
        }
        // Two cycles (Lemma 17 (ii) allows one per component; here there are
        // two components containing cycles).
        let cycles = hm.cycles_parallel(&t);
        assert_eq!(cycles.len(), 2);
        assert_eq!(cycles[0], vec![0, 1, 3]);
        assert_eq!(cycles[1], vec![2, 5]);
    }

    #[test]
    fn algorithm4_matches_sequential_rotation_finder_on_figure5() {
        let (inst, m) = figure5_instance();
        let t = DepthTracker::new();
        let outcome = next_stable_matchings(&inst, &m, &t);
        let NextStableOutcome::Next(results) = outcome else {
            panic!("Figure 5's matching is not woman-optimal");
        };
        let sequential = exposed_rotations_sequential(&inst, &m);
        assert_eq!(results.len(), sequential.len());
        for ((rot, next), seq_rot) in results.iter().zip(sequential.iter()) {
            assert_eq!(rot.men(), seq_rot.men());
            assert!(inst.is_stable(next));
            assert!(m.strictly_dominates(next, &inst));
        }
    }

    #[test]
    fn woman_optimal_is_detected() {
        let (inst, _) = figure5_instance();
        let t = DepthTracker::new();
        let mz = inst.woman_optimal();
        assert_eq!(
            next_stable_matchings(&inst, &mz, &t),
            NextStableOutcome::WomanOptimal
        );
        assert!(next_stable_matchings(&inst, &mz, &t).matchings().is_empty());
    }

    #[test]
    #[should_panic(expected = "requires a stable matching")]
    fn unstable_input_is_rejected() {
        let (inst, m) = figure5_instance();
        let t = DepthTracker::new();
        // Swap two wives to create a (very likely) unstable matching.
        let mut v = m.as_slice().to_vec();
        v.swap(0, 1);
        let bad = StableMatching::new(v);
        if inst.is_stable(&bad) {
            // In the unlikely event the swap stayed stable, force the panic
            // message the test expects.
            panic!("requires a stable matching (swap unexpectedly stable)");
        }
        let _ = next_stable_matchings(&inst, &bad, &t);
    }

    #[test]
    fn lemma15_no_stable_matching_strictly_between() {
        // On random small instances, check Lemma 15: M immediately dominates
        // M\ρ — brute-force all stable matchings and verify none sits
        // strictly between them.
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(31);
        for _ in 0..30 {
            let n = 5;
            let mut gen = || {
                (0..n)
                    .map(|_| {
                        let mut l: Vec<usize> = (0..n).collect();
                        l.shuffle(&mut rng);
                        l
                    })
                    .collect::<Vec<_>>()
            };
            let inst = SmInstance::new(gen(), gen());
            let all_stable = brute_force_stable(&inst);
            let t = DepthTracker::new();
            let m0 = inst.man_optimal();
            if let NextStableOutcome::Next(results) = next_stable_matchings(&inst, &m0, &t) {
                for (_, next) in results {
                    for other in &all_stable {
                        let strictly_between = m0.strictly_dominates(other, &inst)
                            && other.strictly_dominates(&next, &inst);
                        assert!(!strictly_between, "Lemma 15 violated");
                    }
                }
            }
        }
    }

    #[test]
    fn parallel_and_sequential_rotation_finders_agree_on_random_instances() {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(77);
        for n in [2usize, 4, 8, 16, 33] {
            for _ in 0..10 {
                let mut gen = || {
                    (0..n)
                        .map(|_| {
                            let mut l: Vec<usize> = (0..n).collect();
                            l.shuffle(&mut rng);
                            l
                        })
                        .collect::<Vec<_>>()
                };
                let inst = SmInstance::new(gen(), gen());
                let t = DepthTracker::new();
                // Walk a few steps down the lattice so we test interior
                // matchings, not just M0.
                let mut current = inst.man_optimal();
                loop {
                    let seq = exposed_rotations_sequential(&inst, &current);
                    match next_stable_matchings(&inst, &current, &t) {
                        NextStableOutcome::WomanOptimal => {
                            assert!(seq.is_empty(), "n={n}");
                            break;
                        }
                        NextStableOutcome::Next(results) => {
                            assert_eq!(
                                results.iter().map(|(r, _)| r.men()).collect::<Vec<_>>(),
                                seq.iter().map(|r| r.men()).collect::<Vec<_>>(),
                                "n={n}"
                            );
                            for (rot, next) in &results {
                                assert!(rot.is_exposed_in(&inst, &current));
                                assert!(inst.is_stable(next));
                            }
                            current = results[0].1.clone();
                        }
                    }
                }
            }
        }
    }

    /// All stable matchings by brute force (permutations), n ≤ 6 only.
    fn brute_force_stable(inst: &SmInstance) -> Vec<StableMatching> {
        fn permutations(n: usize) -> Vec<Vec<usize>> {
            if n == 0 {
                return vec![vec![]];
            }
            let mut out = Vec::new();
            for rest in permutations(n - 1) {
                for pos in 0..=rest.len() {
                    let mut p = rest.clone();
                    p.insert(pos, n - 1);
                    out.push(p);
                }
            }
            out
        }
        permutations(inst.n())
            .into_iter()
            .map(StableMatching::new)
            .filter(|m| inst.is_stable(m))
            .collect()
    }
}
