//! Matrices over a prime field GF(p) and their rank.
//!
//! Theorem 7 of the paper quotes Mulmuley's NC rank algorithm "over an
//! arbitrary field".  We provide a second rank oracle over GF(p) (default
//! p = 2³¹ − 1) alongside the GF(2) one so the oriented incidence matrix
//! (±1 entries) can also be used, exactly as Lemma 6 is classically stated
//! over fields of characteristic ≠ 2.  Both oracles give the same answer to
//! the "does removing this edge disconnect the component?" question.

use rayon::prelude::*;

use pm_pram::tracker::DepthTracker;

/// The default prime modulus: the Mersenne prime 2³¹ − 1.
pub const DEFAULT_PRIME: u64 = (1 << 31) - 1;

/// A dense matrix over GF(p).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GfpMatrix {
    rows: usize,
    cols: usize,
    p: u64,
    data: Vec<u64>,
}

impl GfpMatrix {
    /// Creates the `rows × cols` zero matrix over GF(p).
    ///
    /// # Panics
    /// Panics if `p < 2` (not a field) or `p >= 2^32` (entries must fit a
    /// multiplication in `u64` without overflow).
    pub fn zero(rows: usize, cols: usize, p: u64) -> Self {
        assert!(p >= 2, "modulus must be at least 2");
        assert!(p < (1 << 32), "modulus must fit in 32 bits");
        Self {
            rows,
            cols,
            p,
            data: vec![0; rows * cols],
        }
    }

    /// Creates the zero matrix over GF(2³¹ − 1).
    pub fn zero_default(rows: usize, cols: usize) -> Self {
        Self::zero(rows, cols, DEFAULT_PRIME)
    }

    /// Builds a matrix from signed integer entries (reduced mod p).
    pub fn from_fn(
        rows: usize,
        cols: usize,
        p: u64,
        mut f: impl FnMut(usize, usize) -> i64,
    ) -> Self {
        let mut m = Self::zero(rows, cols, p);
        for i in 0..rows {
            for j in 0..cols {
                m.set(i, j, f(i, j));
            }
        }
        m
    }

    /// Builds the *oriented* vertex × edge incidence matrix: column `e` for
    /// edge `(u, v)` has `+1` at row `u` and `−1` at row `v` (0 everywhere
    /// for a self-loop).  Over any field its rank is `n − cc(G)` (Lemma 6).
    pub fn oriented_incidence(n: usize, edges: &[(usize, usize)], p: u64) -> Self {
        let mut m = Self::zero(n, edges.len(), p);
        for (e, &(u, v)) in edges.iter().enumerate() {
            if u != v {
                m.set(u, e, 1);
                m.set(v, e, -1);
            }
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The field modulus.
    pub fn modulus(&self) -> u64 {
        self.p
    }

    /// Reads entry `(i, j)` as a canonical representative in `[0, p)`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> u64 {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j]
    }

    /// Writes entry `(i, j)` from a signed value (reduced mod p).
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, value: i64) {
        debug_assert!(i < self.rows && j < self.cols);
        let p = self.p as i64;
        let v = ((value % p) + p) % p;
        self.data[i * self.cols + j] = v as u64;
    }

    /// Returns a copy with column `col` zeroed out.
    pub fn without_column(&self, col: usize) -> Self {
        let mut m = self.clone();
        for i in 0..m.rows {
            m.data[i * m.cols + col] = 0;
        }
        m
    }

    fn inv_mod(&self, a: u64) -> u64 {
        // Fermat's little theorem: a^(p-2) mod p for prime p.
        let mut result = 1u64;
        let mut base = a % self.p;
        let mut exp = self.p - 2;
        while exp > 0 {
            if exp & 1 == 1 {
                result = result * base % self.p;
            }
            base = base * base % self.p;
            exp >>= 1;
        }
        result
    }

    /// Rank over GF(p) by Gaussian elimination, row-parallel per pivot.
    pub fn rank(&self, tracker: &DepthTracker) -> usize {
        let mut m = self.clone();
        let p = m.p;
        let cols = m.cols;
        let mut rank = 0usize;
        let mut row_start = 0usize;

        for col in 0..cols {
            let pivot = (row_start..m.rows).find(|&r| m.data[r * cols + col] != 0);
            let Some(pivot) = pivot else { continue };
            if pivot != row_start {
                for j in 0..cols {
                    m.data.swap(row_start * cols + j, pivot * cols + j);
                }
            }

            tracker.round();
            tracker.work((m.rows - row_start) as u64 * cols as u64);

            // Normalise the pivot row.
            let inv = m.inv_mod(m.data[row_start * cols + col]);
            for j in col..cols {
                let idx = row_start * cols + j;
                m.data[idx] = m.data[idx] * inv % p;
            }

            // Eliminate below the pivot (parallel over rows).
            let (pivot_rows, rest) = m.data.split_at_mut((row_start + 1) * cols);
            let pivot_row = &pivot_rows[row_start * cols..(row_start + 1) * cols];
            let eliminate = |row: &mut [u64]| {
                let factor = row[col];
                if factor != 0 {
                    for (r, &pv) in row.iter_mut().zip(pivot_row.iter()).skip(col) {
                        let sub = factor * pv % p;
                        *r = (*r + p - sub) % p;
                    }
                }
            };
            if rest.len() >= crate::PAR_CELLS_CUTOFF {
                rest.par_chunks_mut(cols).for_each(eliminate);
            } else {
                rest.chunks_mut(cols).for_each(eliminate);
            }

            rank += 1;
            row_start += 1;
            if row_start == m.rows {
                break;
            }
        }
        rank
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn count_components(n: usize, edges: &[(usize, usize)]) -> usize {
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(p: &mut Vec<usize>, x: usize) -> usize {
            if p[x] != x {
                let r = find(p, p[x]);
                p[x] = r;
            }
            p[x]
        }
        for &(u, v) in edges {
            let (ru, rv) = (find(&mut parent, u), find(&mut parent, v));
            if ru != rv {
                parent[ru] = rv;
            }
        }
        (0..n).filter(|&v| find(&mut parent, v) == v).count()
    }

    #[test]
    fn identity_full_rank() {
        let t = DepthTracker::new();
        let m = GfpMatrix::from_fn(5, 5, DEFAULT_PRIME, |i, j| i64::from(i == j));
        assert_eq!(m.rank(&t), 5);
    }

    #[test]
    fn singular_matrix() {
        let t = DepthTracker::new();
        // Third row is the sum of the first two.
        let rows: [[i64; 3]; 3] = [[1, 2, 3], [4, 5, 6], [5, 7, 9]];
        let m = GfpMatrix::from_fn(3, 3, DEFAULT_PRIME, |i, j| rows[i][j]);
        assert_eq!(m.rank(&t), 2);
    }

    #[test]
    fn negative_entries_reduce_correctly() {
        let m = GfpMatrix::from_fn(1, 1, 7, |_, _| -3);
        assert_eq!(m.get(0, 0), 4);
    }

    #[test]
    fn oriented_incidence_rank_is_n_minus_components() {
        let t = DepthTracker::new();
        let cases: Vec<(usize, Vec<(usize, usize)>)> = vec![
            (5, vec![(0, 1), (1, 2), (3, 4)]),
            (4, vec![(0, 1), (1, 2), (2, 0)]),
            (6, vec![(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]),
            (3, vec![]),
            (8, vec![(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (5, 6)]),
        ];
        for (n, edges) in cases {
            let m = GfpMatrix::oriented_incidence(n, &edges, DEFAULT_PRIME);
            assert_eq!(m.rank(&t), n - count_components(n, &edges), "n={n}");
        }
    }

    #[test]
    fn gf2_and_gfp_agree_on_incidence_rank() {
        use crate::gf2::Gf2Matrix;
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let t = DepthTracker::new();
        for n in [4usize, 12, 40] {
            let mut edges = Vec::new();
            for u in 0..n {
                for v in (u + 1)..n {
                    if rng.random_range(0..n) < 2 {
                        edges.push((u, v));
                    }
                }
            }
            let a = Gf2Matrix::incidence(n, &edges).rank(&t);
            let b = GfpMatrix::oriented_incidence(n, &edges, DEFAULT_PRIME).rank(&t);
            assert_eq!(a, b, "n={n}");
        }
    }

    #[test]
    fn small_prime_field() {
        let t = DepthTracker::new();
        // Over GF(5): [[2, 4], [1, 2]] — the second row is 3× the first, so rank 1.
        let m = GfpMatrix::from_fn(2, 2, 5, |i, j| [[2i64, 4], [1, 2]][i][j]);
        assert_eq!(m.rank(&t), 1);
    }
}
