//! Bit-packed boolean matrices and transitive closure.
//!
//! The transitive-closure route to cycle detection (paper Theorem 5) needs
//! boolean matrix multiplication.  Rows are packed 64 entries per `u64` word,
//! so one row-by-matrix product costs `n²/64` word operations, and the
//! closure of an `n × n` matrix costs `⌈log₂ n⌉` squarings — the practical
//! realisation of the `O(log² n)` CREW PRAM bound quoted in the paper.

use rayon::prelude::*;

use pm_pram::tracker::DepthTracker;

/// A dense square boolean matrix with bit-packed rows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BoolMatrix {
    n: usize,
    words_per_row: usize,
    rows: Vec<u64>,
}

impl BoolMatrix {
    /// Creates the `n × n` all-zero matrix.
    pub fn zero(n: usize) -> Self {
        let words_per_row = n.div_ceil(64);
        Self {
            n,
            words_per_row,
            rows: vec![0; n * words_per_row],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zero(n);
        for i in 0..n {
            m.set(i, i, true);
        }
        m
    }

    /// Builds a matrix from an adjacency predicate.
    pub fn from_fn(n: usize, mut f: impl FnMut(usize, usize) -> bool) -> Self {
        let mut m = Self::zero(n);
        for i in 0..n {
            for j in 0..n {
                if f(i, j) {
                    m.set(i, j, true);
                }
            }
        }
        m
    }

    /// Builds the adjacency matrix of a directed edge list.
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> Self {
        let mut m = Self::zero(n);
        for &(u, v) in edges {
            m.set(u, v, true);
        }
        m
    }

    /// Matrix dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Reads entry `(i, j)`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> bool {
        debug_assert!(i < self.n && j < self.n);
        let w = self.rows[i * self.words_per_row + j / 64];
        (w >> (j % 64)) & 1 == 1
    }

    /// Writes entry `(i, j)`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, value: bool) {
        debug_assert!(i < self.n && j < self.n);
        let idx = i * self.words_per_row + j / 64;
        let bit = 1u64 << (j % 64);
        if value {
            self.rows[idx] |= bit;
        } else {
            self.rows[idx] &= !bit;
        }
    }

    #[inline]
    fn row(&self, i: usize) -> &[u64] {
        &self.rows[i * self.words_per_row..(i + 1) * self.words_per_row]
    }

    /// Number of `true` entries.
    pub fn count_ones(&self) -> usize {
        self.rows.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Boolean matrix product `self × other` (logical OR of ANDs), computed
    /// row-parallel with rayon.  Charged as one round of `n³/64` work plus
    /// `O(log n)` depth on the tracker (the PRAM multiplication depth).
    pub fn multiply(&self, other: &BoolMatrix, tracker: &DepthTracker) -> BoolMatrix {
        assert_eq!(self.n, other.n, "dimension mismatch");
        let n = self.n;
        let wpr = self.words_per_row;
        let depth = if n <= 1 {
            1
        } else {
            (usize::BITS - (n - 1).leading_zeros()) as u64
        };
        tracker.rounds(depth);
        tracker.work((n as u64) * (n as u64) * (wpr as u64).max(1));

        let mut out = BoolMatrix::zero(n);
        let one_row = |(i, out_row): (usize, &mut [u64])| {
            let self_row = self.row(i);
            for k in 0..n {
                if (self_row[k / 64] >> (k % 64)) & 1 == 1 {
                    let other_row = other.row(k);
                    for (o, &w) in out_row.iter_mut().zip(other_row.iter()) {
                        *o |= w;
                    }
                }
            }
        };
        // The product touches n²·wpr words; fan out only when that pays.
        if n * n * wpr >= crate::PAR_CELLS_CUTOFF {
            out.rows.par_chunks_mut(wpr).enumerate().for_each(one_row);
        } else {
            out.rows.chunks_mut(wpr).enumerate().for_each(one_row);
        }
        out
    }

    /// Logical OR of two matrices.
    pub fn or(&self, other: &BoolMatrix) -> BoolMatrix {
        assert_eq!(self.n, other.n);
        let mut out = self.clone();
        for (o, &w) in out.rows.iter_mut().zip(other.rows.iter()) {
            *o |= w;
        }
        out
    }

    /// Reflexive-transitive closure `(I ∨ A)^n`, computed by at most
    /// `⌈log₂ n⌉` repeated squarings (paper Theorem 5).  Squaring stops as
    /// soon as the accumulator reaches a fixpoint — reachability closes
    /// after the longest shortest path is covered, which is usually far
    /// before `n` — so shallow graphs pay for only the squarings they need.
    pub fn transitive_closure(&self, tracker: &DepthTracker) -> BoolMatrix {
        let n = self.n;
        if n == 0 {
            return self.clone();
        }
        let mut acc = self.or(&BoolMatrix::identity(n));
        let mut power = 1usize;
        while power < n {
            let next = acc.multiply(&acc, tracker);
            power *= 2;
            if next == acc {
                break; // fixpoint: further squaring cannot add entries
            }
            acc = next;
        }
        acc
    }

    /// Strict transitive closure: `closure(i, j)` is true iff there is a path
    /// of length ≥ 1 from `i` to `j`.  This is the `G*` used by the paper's
    /// cycle test ("if `G*(i, j) = 1` and `G*(j, i) = 1` then both `i` and
    /// `j` are on the unique cycle", which relies on paths of length ≥ 1).
    pub fn strict_transitive_closure(&self, tracker: &DepthTracker) -> BoolMatrix {
        // A⁺ = A · (I ∨ A)^(n-1) = A · closure.
        let reflexive = self.transitive_closure(tracker);
        self.multiply(&reflexive, tracker)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[allow(clippy::needless_range_loop)] // triple index loop is the clearest Floyd-Warshall
    fn naive_closure(n: usize, edges: &[(usize, usize)]) -> Vec<Vec<bool>> {
        // Floyd–Warshall style strict closure.
        let mut reach = vec![vec![false; n]; n];
        for &(u, v) in edges {
            reach[u][v] = true;
        }
        for k in 0..n {
            for i in 0..n {
                if reach[i][k] {
                    for j in 0..n {
                        if reach[k][j] {
                            reach[i][j] = true;
                        }
                    }
                }
            }
        }
        reach
    }

    #[test]
    fn get_set_roundtrip() {
        let mut m = BoolMatrix::zero(70);
        m.set(3, 65, true);
        m.set(69, 0, true);
        assert!(m.get(3, 65));
        assert!(m.get(69, 0));
        assert!(!m.get(3, 64));
        m.set(3, 65, false);
        assert!(!m.get(3, 65));
        assert_eq!(m.count_ones(), 1);
    }

    #[test]
    fn identity_multiplication() {
        let t = DepthTracker::new();
        let a = BoolMatrix::from_edges(5, &[(0, 1), (1, 2), (4, 0)]);
        let i = BoolMatrix::identity(5);
        assert_eq!(a.multiply(&i, &t), a);
        assert_eq!(i.multiply(&a, &t), a);
    }

    #[test]
    fn small_multiplication() {
        let t = DepthTracker::new();
        // path 0 -> 1 -> 2: A² should contain exactly 0 -> 2.
        let a = BoolMatrix::from_edges(3, &[(0, 1), (1, 2)]);
        let a2 = a.multiply(&a, &t);
        assert!(a2.get(0, 2));
        assert_eq!(a2.count_ones(), 1);
    }

    #[test]
    fn closure_on_cycle_plus_tail() {
        let t = DepthTracker::new();
        // cycle 0 -> 1 -> 2 -> 0, tail 3 -> 0, isolated 4
        let edges = [(0, 1), (1, 2), (2, 0), (3, 0)];
        let a = BoolMatrix::from_edges(5, &edges);
        let closure = a.strict_transitive_closure(&t);
        let naive = naive_closure(5, &edges);
        for (i, naive_row) in naive.iter().enumerate() {
            for (j, &expected) in naive_row.iter().enumerate() {
                assert_eq!(closure.get(i, j), expected, "({i},{j})");
            }
        }
        // Cycle membership test from the paper: i on a cycle iff G*(i, i).
        assert!(closure.get(0, 0) && closure.get(1, 1) && closure.get(2, 2));
        assert!(!closure.get(3, 3) && !closure.get(4, 4));
    }

    #[test]
    fn closure_matches_naive_on_random_graphs() {
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for n in [1usize, 2, 17, 65, 130] {
            let mut edges = Vec::new();
            for u in 0..n {
                for v in 0..n {
                    if u != v && rng.random_range(0..10) == 0 {
                        edges.push((u, v));
                    }
                }
            }
            let t = DepthTracker::new();
            let a = BoolMatrix::from_edges(n, &edges);
            let closure = a.strict_transitive_closure(&t);
            let naive = naive_closure(n, &edges);
            for (i, naive_row) in naive.iter().enumerate() {
                for (j, &expected) in naive_row.iter().enumerate() {
                    assert_eq!(closure.get(i, j), expected, "n={n} ({i},{j})");
                }
            }
        }
    }

    #[test]
    fn empty_matrix() {
        let t = DepthTracker::new();
        let a = BoolMatrix::zero(0);
        assert_eq!(a.transitive_closure(&t).n(), 0);
    }

    #[test]
    fn closure_depth_is_logarithmic_in_squarings() {
        let t = DepthTracker::new();
        let a = BoolMatrix::from_edges(128, &[(0, 1)]);
        let _ = a.transitive_closure(&t);
        // At most 7 squarings × ⌈log₂ 128⌉ = 7 depth each; the fixpoint
        // early-exit may stop well before the full ⌈log₂ n⌉ squarings.
        assert!(t.stats().depth <= 49, "depth = {}", t.stats().depth);
    }

    #[test]
    fn closure_early_exits_at_fixpoint() {
        // A single edge closes after one squaring: (I ∨ A)² = I ∨ A, so the
        // loop must stop after detecting the fixpoint (2 multiplies of depth
        // 7 each) instead of running all 7 squarings.
        let t = DepthTracker::new();
        let a = BoolMatrix::from_edges(128, &[(0, 1)]);
        let closure = a.transitive_closure(&t);
        assert!(closure.get(0, 1) && closure.get(0, 0));
        assert_eq!(t.stats().depth, 7, "one squaring detects the fixpoint");

        // A long path needs the full ladder; the result stays exact.
        let t2 = DepthTracker::new();
        let edges: Vec<(usize, usize)> = (0..127).map(|i| (i, i + 1)).collect();
        let path = BoolMatrix::from_edges(128, &edges);
        let closure = path.transitive_closure(&t2);
        assert!(closure.get(0, 127));
        assert_eq!(
            t2.stats().depth,
            49,
            "a diameter-127 path needs 7 squarings"
        );
    }
}
