//! Linear-algebra substrate for the NC popular-matching reproduction.
//!
//! Section IV-A of Hu & Garg (2020) gives three NC routes to finding the
//! unique cycle of a pseudoforest component:
//!
//! 1. **Transitive closure** (Theorem 5, JaJa): `i` and `j` lie on the same
//!    cycle iff both `G*(i, j)` and `G*(j, i)` hold.  [`boolmat`] provides a
//!    bit-packed boolean matrix with rayon-parallel multiplication and
//!    closure by repeated squaring (`⌈log₂ n⌉` squarings).
//! 2. **Incidence-matrix rank** (Theorem 7, Mulmuley): removing an edge `e`
//!    keeps the number of connected components unchanged iff `e` lies on the
//!    cycle; Lemma 6 converts component counting into a rank computation.
//!    [`gf2`] and [`gfp`] provide the rank oracles.  (We substitute Gaussian
//!    elimination for Mulmuley's NC rank algorithm — the *value* of the rank
//!    is identical, see DESIGN.md.)
//! 3. **Connected components** (Theorem 8) — implemented in `pm_graph`.
//!
//! Section IV-E needs weights as large as `n₁^(n₂+1)` (Õ(n) bits) for the
//! rank-maximal and fair popular matching reductions; [`bigint`] provides the
//! unsigned big integers used to realise those weight assignments exactly.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bigint;
pub mod boolmat;
pub mod gf2;
pub mod gfp;

/// Minimum number of matrix cells (words for the bit-packed kernels) a
/// row-parallel pass must touch before it fans out to the thread pool;
/// below this, pool dispatch costs more than the elimination itself.
/// Matters since the rank oracles run one pass *per pivot*: a small
/// matrix would otherwise pay the fan-out `rank` times.
pub(crate) const PAR_CELLS_CUTOFF: usize = 1 << 14;

pub use bigint::BigUint;
pub use boolmat::BoolMatrix;
pub use gf2::Gf2Matrix;
pub use gfp::GfpMatrix;
