//! Matrices over GF(2) and their rank.
//!
//! Lemma 6 of the paper: an undirected graph with `k` connected components
//! has an incidence matrix of rank `n − k`.  Over GF(2) the vertex–edge
//! incidence matrix has exactly this rank, so a GF(2) rank oracle suffices
//! for the "remove an edge, did the component count change?" cycle test of
//! Section IV-A.  Rows are bit-packed and elimination is parallelised over
//! rows with rayon.

use rayon::prelude::*;

use pm_pram::tracker::DepthTracker;

/// A dense matrix over GF(2) with bit-packed rows (not necessarily square).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Gf2Matrix {
    rows: usize,
    cols: usize,
    words_per_row: usize,
    data: Vec<u64>,
}

impl Gf2Matrix {
    /// Creates the `rows × cols` zero matrix.
    pub fn zero(rows: usize, cols: usize) -> Self {
        let words_per_row = cols.div_ceil(64).max(1);
        Self {
            rows,
            cols,
            words_per_row,
            data: vec![0; rows * words_per_row],
        }
    }

    /// Builds a matrix from a predicate.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> bool) -> Self {
        let mut m = Self::zero(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                if f(i, j) {
                    m.set(i, j, true);
                }
            }
        }
        m
    }

    /// Builds the vertex × edge incidence matrix of an undirected graph with
    /// `n` vertices: column `e` has ones exactly in the rows of the two
    /// endpoints of edge `e` (a self-loop contributes a zero column over
    /// GF(2), matching the convention that a loop never disconnects anything).
    pub fn incidence(n: usize, edges: &[(usize, usize)]) -> Self {
        let mut m = Self::zero(n, edges.len());
        for (e, &(u, v)) in edges.iter().enumerate() {
            if u != v {
                m.set(u, e, true);
                m.set(v, e, true);
            }
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Reads entry `(i, j)`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> bool {
        debug_assert!(i < self.rows && j < self.cols);
        (self.data[i * self.words_per_row + j / 64] >> (j % 64)) & 1 == 1
    }

    /// Writes entry `(i, j)`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, value: bool) {
        debug_assert!(i < self.rows && j < self.cols);
        let idx = i * self.words_per_row + j / 64;
        let bit = 1u64 << (j % 64);
        if value {
            self.data[idx] |= bit;
        } else {
            self.data[idx] &= !bit;
        }
    }

    /// Returns a copy with column `col` zeroed out — used by the cycle test
    /// which compares `rank(I_G)` with `rank(I_{G − e})`.
    pub fn without_column(&self, col: usize) -> Self {
        let mut m = self.clone();
        for i in 0..m.rows {
            m.set(i, col, false);
        }
        m
    }

    /// Rank over GF(2) by Gaussian elimination.  Row reduction below the
    /// pivot is parallelised over rows; the depth charged on the tracker is
    /// one round per pivot (the sequential-elimination substitute for
    /// Mulmuley's NC rank algorithm — see DESIGN.md).
    pub fn rank(&self, tracker: &DepthTracker) -> usize {
        let mut m = self.clone();
        let wpr = m.words_per_row;
        let mut rank = 0usize;
        let mut row_start = 0usize;

        for col in 0..m.cols {
            // Find a pivot row with a 1 in `col` at or below `row_start`.
            let word = col / 64;
            let bit = 1u64 << (col % 64);
            let pivot = (row_start..m.rows).find(|&r| m.data[r * wpr + word] & bit != 0);
            let Some(pivot) = pivot else { continue };
            m.data.swap_chunks(row_start, pivot, wpr);

            tracker.round();
            tracker.work((m.rows - row_start) as u64 * wpr as u64);

            // Eliminate the column from every other row below the pivot.
            let (pivot_rows, rest) = m.data.split_at_mut((row_start + 1) * wpr);
            let pivot_row = &pivot_rows[row_start * wpr..(row_start + 1) * wpr];
            let eliminate = |row: &mut [u64]| {
                if row[word] & bit != 0 {
                    for (r, &p) in row.iter_mut().zip(pivot_row.iter()) {
                        *r ^= p;
                    }
                }
            };
            if rest.len() >= crate::PAR_CELLS_CUTOFF {
                rest.par_chunks_mut(wpr).for_each(eliminate);
            } else {
                rest.chunks_mut(wpr).for_each(eliminate);
            }

            rank += 1;
            row_start += 1;
            if row_start == m.rows {
                break;
            }
        }
        rank
    }
}

/// Helper trait to swap two equally-sized chunks of a flat buffer.
trait SwapChunks {
    fn swap_chunks(&mut self, a: usize, b: usize, chunk: usize);
}

impl SwapChunks for Vec<u64> {
    fn swap_chunks(&mut self, a: usize, b: usize, chunk: usize) {
        if a == b {
            return;
        }
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        let (first, second) = self.split_at_mut(hi * chunk);
        first[lo * chunk..(lo + 1) * chunk].swap_with_slice(&mut second[..chunk]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn count_components(n: usize, edges: &[(usize, usize)]) -> usize {
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(p: &mut Vec<usize>, x: usize) -> usize {
            if p[x] != x {
                let r = find(p, p[x]);
                p[x] = r;
            }
            p[x]
        }
        for &(u, v) in edges {
            let (ru, rv) = (find(&mut parent, u), find(&mut parent, v));
            if ru != rv {
                parent[ru] = rv;
            }
        }
        (0..n).filter(|&v| find(&mut parent, v) == v).count()
    }

    #[test]
    fn zero_matrix_has_rank_zero() {
        let t = DepthTracker::new();
        assert_eq!(Gf2Matrix::zero(4, 7).rank(&t), 0);
        assert_eq!(Gf2Matrix::zero(0, 0).rank(&t), 0);
    }

    #[test]
    fn identity_has_full_rank() {
        let t = DepthTracker::new();
        let m = Gf2Matrix::from_fn(6, 6, |i, j| i == j);
        assert_eq!(m.rank(&t), 6);
    }

    #[test]
    fn dependent_rows_reduce_rank() {
        let t = DepthTracker::new();
        // Row 2 = row 0 xor row 1.
        let rows = [
            [true, false, true, false],
            [false, true, true, true],
            [true, true, false, true],
        ];
        let m = Gf2Matrix::from_fn(3, 4, |i, j| rows[i][j]);
        assert_eq!(m.rank(&t), 2);
    }

    #[test]
    fn incidence_rank_is_n_minus_components() {
        let t = DepthTracker::new();
        // Lemma 6: rank(I_G) = n - cc(G).
        let cases: Vec<(usize, Vec<(usize, usize)>)> = vec![
            (5, vec![(0, 1), (1, 2), (3, 4)]),
            (4, vec![(0, 1), (1, 2), (2, 0)]), // triangle + isolated
            (6, vec![(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]), // two triangles
            (3, vec![]),
            (7, vec![(0, 1), (1, 2), (2, 3), (3, 0), (0, 2), (4, 5)]),
        ];
        for (n, edges) in cases {
            let m = Gf2Matrix::incidence(n, &edges);
            let cc = count_components(n, &edges);
            assert_eq!(m.rank(&t), n - cc, "n={n} edges={edges:?}");
        }
    }

    #[test]
    fn removing_cycle_edge_preserves_rank() {
        let t = DepthTracker::new();
        // Pseudotree: cycle 0-1-2-0 with a pendant 3-0.
        let edges = vec![(0, 1), (1, 2), (2, 0), (3, 0)];
        let inc = Gf2Matrix::incidence(4, &edges);
        let base = inc.rank(&t);
        // Edges 0,1,2 are on the cycle: removing them keeps the rank.
        for e in 0..3 {
            assert_eq!(inc.without_column(e).rank(&t), base, "cycle edge {e}");
        }
        // Edge 3 is a bridge: removing it drops the rank by one.
        assert_eq!(inc.without_column(3).rank(&t), base - 1);
    }

    #[test]
    fn random_incidence_matches_lemma6() {
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        let t = DepthTracker::new();
        for n in [2usize, 8, 33, 80] {
            let mut edges = Vec::new();
            for u in 0..n {
                for v in (u + 1)..n {
                    if rng.random_range(0..n) < 2 {
                        edges.push((u, v));
                    }
                }
            }
            let m = Gf2Matrix::incidence(n, &edges);
            assert_eq!(m.rank(&t), n - count_components(n, &edges), "n={n}");
        }
    }

    #[test]
    fn wide_and_tall_matrices() {
        let t = DepthTracker::new();
        let wide = Gf2Matrix::from_fn(2, 100, |i, j| (i + j) % 3 == 0);
        assert!(wide.rank(&t) <= 2);
        let tall = Gf2Matrix::from_fn(100, 2, |i, j| (i + j) % 3 == 0);
        assert!(tall.rank(&t) <= 2);
        assert_eq!(wide.rank(&t), tall.rank(&t));
    }
}
