//! Arbitrary-precision unsigned integers for optimal popular matching weights.
//!
//! Section IV-E reduces rank-maximal and fair popular matchings to maximum /
//! minimum *weight* popular matchings with weights as large as `n₁^(n₂−k+1)`
//! — numbers with Õ(n) bits, which the paper notes can still be summed and
//! compared in NC.  This module provides exactly the operations those
//! reductions need: construction from `u64`, `pow`, addition, subtraction,
//! multiplication by a word, comparison, and parallel summation of many
//! weights.

use std::cmp::Ordering;

use rayon::prelude::*;

use pm_pram::tracker::DepthTracker;

/// An arbitrary-precision unsigned integer stored as little-endian 64-bit
/// limbs (no leading zero limbs; zero is the empty limb vector).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BigUint {
    limbs: Vec<u64>,
}

impl BigUint {
    /// The value 0.
    pub fn zero() -> Self {
        Self { limbs: Vec::new() }
    }

    /// The value 1.
    pub fn one() -> Self {
        Self::from_u64(1)
    }

    /// Builds from a machine word.
    pub fn from_u64(v: u64) -> Self {
        if v == 0 {
            Self::zero()
        } else {
            Self { limbs: vec![v] }
        }
    }

    /// True iff the value is 0.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Number of significant bits.
    pub fn bits(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(&top) => 64 * (self.limbs.len() - 1) + (64 - top.leading_zeros() as usize),
        }
    }

    fn trim(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// `self + other`.
    pub fn add(&self, other: &BigUint) -> BigUint {
        let n = self.limbs.len().max(other.limbs.len());
        let mut out = Vec::with_capacity(n + 1);
        let mut carry = 0u64;
        for i in 0..n {
            let a = *self.limbs.get(i).unwrap_or(&0);
            let b = *other.limbs.get(i).unwrap_or(&0);
            let (s1, c1) = a.overflowing_add(b);
            let (s2, c2) = s1.overflowing_add(carry);
            out.push(s2);
            carry = u64::from(c1) + u64::from(c2);
        }
        if carry > 0 {
            out.push(carry);
        }
        let mut r = BigUint { limbs: out };
        r.trim();
        r
    }

    /// `self − other`.
    ///
    /// # Panics
    /// Panics if `other > self` (the result would be negative).
    pub fn sub(&self, other: &BigUint) -> BigUint {
        assert!(self >= other, "BigUint subtraction would underflow");
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0u64;
        for i in 0..self.limbs.len() {
            let a = self.limbs[i];
            let b = *other.limbs.get(i).unwrap_or(&0);
            let (d1, b1) = a.overflowing_sub(b);
            let (d2, b2) = d1.overflowing_sub(borrow);
            out.push(d2);
            borrow = u64::from(b1) + u64::from(b2);
        }
        debug_assert_eq!(borrow, 0);
        let mut r = BigUint { limbs: out };
        r.trim();
        r
    }

    /// `self × m` for a machine word `m`.
    pub fn mul_u64(&self, m: u64) -> BigUint {
        if m == 0 || self.is_zero() {
            return BigUint::zero();
        }
        let mut out = Vec::with_capacity(self.limbs.len() + 1);
        let mut carry = 0u128;
        for &limb in &self.limbs {
            let prod = limb as u128 * m as u128 + carry;
            out.push(prod as u64);
            carry = prod >> 64;
        }
        if carry > 0 {
            out.push(carry as u64);
        }
        BigUint { limbs: out }
    }

    /// `base^exp` for a machine-word base.
    pub fn pow_u64(base: u64, exp: u32) -> BigUint {
        let mut result = BigUint::one();
        for _ in 0..exp {
            result = result.mul_u64(base);
        }
        result
    }

    /// Parallel sum of many big integers (pairwise reduction tree, charged as
    /// `⌈log₂ n⌉` depth).  Used to total the weights along a switching cycle
    /// or path in the optimal-popular-matching algorithm.
    pub fn par_sum(values: &[BigUint], tracker: &DepthTracker) -> BigUint {
        let n = values.len();
        let depth = if n <= 1 {
            1
        } else {
            (usize::BITS - (n - 1).leading_zeros()) as u64
        };
        tracker.rounds(depth);
        tracker.work(n as u64);
        values
            .par_iter()
            .cloned()
            .reduce(BigUint::zero, |a, b| a.add(&b))
    }

    /// Converts to `u64` if the value fits.
    pub fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0]),
            _ => None,
        }
    }

    /// Decimal string representation (for reports and debugging).
    pub fn to_decimal(&self) -> String {
        if self.is_zero() {
            return "0".to_string();
        }
        // Repeated division by 10^19 (the largest power of ten below 2^64).
        const CHUNK: u64 = 10_000_000_000_000_000_000;
        let mut limbs = self.limbs.clone();
        let mut chunks = Vec::new();
        while !limbs.is_empty() {
            let mut rem = 0u128;
            for limb in limbs.iter_mut().rev() {
                let cur = (rem << 64) | *limb as u128;
                *limb = (cur / CHUNK as u128) as u64;
                rem = cur % CHUNK as u128;
            }
            while limbs.last() == Some(&0) {
                limbs.pop();
            }
            chunks.push(rem as u64);
        }
        let mut s = chunks.pop().unwrap().to_string();
        for c in chunks.into_iter().rev() {
            s.push_str(&format!("{c:019}"));
        }
        s
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        match self.limbs.len().cmp(&other.limbs.len()) {
            Ordering::Equal => {
                for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
                    match a.cmp(b) {
                        Ordering::Equal => continue,
                        ord => return ord,
                    }
                }
                Ordering::Equal
            }
            ord => ord,
        }
    }
}

impl From<u64> for BigUint {
    fn from(v: u64) -> Self {
        Self::from_u64(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_and_one() {
        assert!(BigUint::zero().is_zero());
        assert_eq!(BigUint::zero().bits(), 0);
        assert_eq!(BigUint::one().to_u64(), Some(1));
        assert_eq!(BigUint::from_u64(0), BigUint::zero());
    }

    #[test]
    fn add_with_carry() {
        let a = BigUint::from_u64(u64::MAX);
        let b = BigUint::from_u64(1);
        let s = a.add(&b);
        assert_eq!(s.bits(), 65);
        assert_eq!(s.to_decimal(), "18446744073709551616");
    }

    #[test]
    fn sub_roundtrip() {
        let a = BigUint::pow_u64(7, 30);
        let b = BigUint::pow_u64(3, 40);
        let s = a.add(&b);
        assert_eq!(s.sub(&b), a);
        assert_eq!(s.sub(&a), b);
        assert_eq!(a.sub(&a), BigUint::zero());
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = BigUint::from_u64(1).sub(&BigUint::from_u64(2));
    }

    #[test]
    fn mul_and_pow() {
        assert_eq!(BigUint::from_u64(12).mul_u64(12).to_u64(), Some(144));
        assert_eq!(BigUint::pow_u64(2, 64).to_decimal(), "18446744073709551616");
        assert_eq!(
            BigUint::pow_u64(10, 25).to_decimal(),
            "10000000000000000000000000"
        );
        assert_eq!(BigUint::pow_u64(5, 0).to_u64(), Some(1));
        assert_eq!(BigUint::pow_u64(0, 3).to_u64(), Some(0));
    }

    #[test]
    fn ordering() {
        let a = BigUint::pow_u64(10, 30);
        let b = BigUint::pow_u64(10, 31);
        assert!(a < b);
        assert!(b > a);
        assert_eq!(a.cmp(&a), Ordering::Equal);
        assert!(BigUint::zero() < BigUint::one());
    }

    #[test]
    fn parallel_sum_matches_sequential() {
        let t = DepthTracker::new();
        let values: Vec<BigUint> = (0..500u64)
            .map(|i| BigUint::pow_u64(3, (i % 20) as u32))
            .collect();
        let par = BigUint::par_sum(&values, &t);
        let seq = values.iter().fold(BigUint::zero(), |acc, v| acc.add(v));
        assert_eq!(par, seq);
    }

    #[test]
    fn paper_scale_weights() {
        // Rank-maximal weights: n1^(n2-k+1) for n1 = n2 = 64 must be exactly
        // representable and comparable.
        let w_top = BigUint::pow_u64(64, 65);
        let w_next = BigUint::pow_u64(64, 64);
        assert!(w_top > w_next.mul_u64(63)); // dominates any combination of lower ranks
        assert_eq!(w_top.bits(), 6 * 65 + 1);
    }

    #[test]
    fn decimal_of_simple_values() {
        assert_eq!(BigUint::zero().to_decimal(), "0");
        assert_eq!(BigUint::from_u64(42).to_decimal(), "42");
        assert_eq!(
            BigUint::from_u64(u64::MAX).to_decimal(),
            "18446744073709551615"
        );
    }
}
