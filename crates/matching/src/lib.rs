//! Baseline matching algorithms used as substrates and referees.
//!
//! The paper's NC algorithms lean on a few classical matching routines:
//!
//! * Algorithm 2 finishes on a 2-regular bipartite graph ("G′ decomposes
//!   into a family of disjoint even cycles … choosing all edges of even
//!   distance yields a perfect matching"); [`two_regular`] provides both a
//!   parallel (orientation-selection) and a sequential implementation, and
//!   [`regular`] extends to 2^k-regular graphs in the spirit of the
//!   Lev–Pippenger–Valiant routing result the paper cites.
//! * Theorem 11 reduces maximum-cardinality bipartite matching to popular
//!   matching; [`hopcroft_karp`] is the independent referee that experiment
//!   E9 uses to check cardinalities.
//! * Section VI builds on the stable-marriage model; [`gale_shapley`] is the
//!   classic sequential algorithm used to produce the stable matchings the
//!   NC "next"-matching algorithm starts from.
//!
//! [`matching::Matching`] is the shared bipartite-matching value type.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod gale_shapley;
pub mod hopcroft_karp;
pub mod matching;
pub mod regular;
pub mod two_regular;

pub use gale_shapley::{gale_shapley_man_optimal, gale_shapley_woman_optimal, is_stable};
pub use hopcroft_karp::hopcroft_karp;
pub use matching::Matching;
pub use regular::regular_perfect_matching;
pub use two_regular::{
    two_regular_perfect_matching_parallel, two_regular_perfect_matching_sequential,
};
