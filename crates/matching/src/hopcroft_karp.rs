//! Hopcroft–Karp maximum-cardinality bipartite matching.
//!
//! Used as the independent referee in experiment E9 (Theorem 11 reduces
//! maximum-cardinality bipartite matching to popular matching; Lemmas 12 and
//! 13 say the two problems have the same optimal size on the all-rank-1
//! construction, which the tests verify by comparing against this routine),
//! and by the brute-force popularity verifier for small instances.

use pm_graph::BipartiteGraph;
use pm_pram::phaseclock::{self, slot};
use pm_pram::prefetch::prefetch_read;
use pm_pram::Idx;

use crate::matching::Matching;

const INF: u32 = u32::MAX;

/// Sentinel for "unmatched" in the dense match arrays: the [`Idx::NONE`]
/// pattern — a quarter of the footprint of `Option<usize>` and half of the
/// former `usize::MAX` sentinel, which matters on the 10^6-vertex ties
/// workload where the BFS/DFS sweeps are bandwidth-bound.
const FREE: Idx = Idx::NONE;

/// Per-right-vertex state, fused into one 8-byte record.
///
/// The hot chain of both the BFS layering and the layered DFS is the
/// two-step gather `match_right[r]` → `dist[match_right[r]]`: the first load
/// lands on a random cache line and the second *depends on it*, so the
/// textbook two-array layout pays two serialized memory round-trips per edge
/// scan.  A left vertex is only ever reached through its unique matched
/// right vertex, so its BFS layer can live *on that right* — fusing the
/// match pointer and the layer into one aligned record makes the chain a
/// single random cache-line touch (DESIGN.md §11: fuse passes that share an
/// index space; here we fuse the *arrays* that share an access path).
#[derive(Clone, Copy, Debug)]
struct RightState {
    /// The left vertex matched to this right, or [`FREE`].
    left: Idx,
    /// The BFS layer of `left` in the current phase, maintained as exactly
    /// the `dist[match_right[r]]` of the textbook formulation
    /// (`INF` = undiscovered or exhausted this phase).
    dist: u32,
}

/// Computes a maximum-cardinality matching of `g` with the Hopcroft–Karp
/// algorithm in `O(E √V)` time.
pub fn hopcroft_karp(g: &BipartiteGraph) -> Matching {
    let mut out = Matching::empty(0, 0);
    hopcroft_karp_into(g, &mut out, &mut HkScratch::default());
    out
}

/// Caller-owned scratch for [`hopcroft_karp_into`]: the dense left-match
/// array, the fused per-right state, and the BFS queue.  Hold one per
/// serving solver and every warm call over a graph no larger than any
/// previous one performs no heap allocation.
#[derive(Debug, Default)]
pub struct HkScratch {
    match_left: Vec<Idx>,
    rights: Vec<RightState>,
    /// BFS queue of `(left vertex, its layer)`: carrying the layer in the
    /// (sequentially scanned) queue is what lets the left-indexed `dist`
    /// array disappear entirely.
    queue: Vec<(Idx, u32)>,
}

/// Allocation-free Hopcroft–Karp: all storage is caller-provided via
/// [`HkScratch`], and the result is written into `out` via
/// [`Matching::reset`].  The matching produced is bit-for-bit the one
/// [`hopcroft_karp`] returns.
pub fn hopcroft_karp_into(g: &BipartiteGraph, out: &mut Matching, ws: &mut HkScratch) {
    let n_left = g.n_left();
    let n_right = g.n_right();
    let HkScratch {
        match_left,
        rights,
        queue,
    } = ws;
    match_left.clear();
    match_left.resize(n_left, FREE);
    rights.clear();
    rights.resize(
        n_right,
        RightState {
            left: FREE,
            dist: INF,
        },
    );

    let pd = pm_pram::tune::prefetch_dist();
    loop {
        // BFS phase: layer the free left vertices.  The queue is a plain
        // vector with a read cursor (elements are never removed, so FIFO
        // order matches the textbook deque formulation exactly).
        let found_augmenting_layer;
        let free_before;
        {
            let _bfs = phaseclock::span(slot::HK_BFS);
            queue.clear();
            let mut head = 0usize;
            for st in rights.iter_mut() {
                st.dist = INF;
            }
            for (l, &m) in match_left.iter().enumerate() {
                if m == FREE {
                    queue.push((Idx::new(l), 0));
                }
            }
            free_before = queue.len();
            let mut found = false;
            while head < queue.len() {
                let (l, dl) = queue[head];
                head += 1;
                let nbrs = g.neighbors_left(l.get());
                for (i, &r) in nbrs.iter().enumerate() {
                    if let Some(&rn) = nbrs.get(i + pd) {
                        prefetch_read(rights, rn.get());
                    }
                    let st = rights[r];
                    if st.left == FREE {
                        found = true;
                    } else if st.dist == INF {
                        rights[r].dist = dl + 1;
                        queue.push((st.left, dl + 1));
                    }
                }
            }
            found_augmenting_layer = found;
        }
        if !found_augmenting_layer {
            break;
        }

        // DFS phase: find a maximal set of vertex-disjoint shortest
        // augmenting paths.  The path flips happen in place inside `dfs`,
        // so the `hk_dfs` span covers both the search and the augmenting
        // rewrites; `hk_augment` below is the final matching write-out.
        let _dfs = phaseclock::span(slot::HK_DFS);
        let mut augments = 0usize;
        for l in 0..n_left {
            if match_left[l] == FREE && dfs(l, 0, FREE, g, match_left, rights) {
                augments += 1;
            }
        }
        if free_before == augments {
            // Left-perfect: skip the final proving BFS sweep.
            break;
        }
    }

    let _aug = phaseclock::span(slot::HK_AUGMENT);
    out.reset(n_left, n_right);
    for (l, &r) in match_left.iter().enumerate() {
        if r != FREE {
            out.add(l, r.get());
        }
    }
}

/// Layered DFS from left vertex `l` at layer `dl`, entered through matched
/// right `entry` (or [`FREE`] for a phase root).  On exhaustion the layer
/// stored on `entry` is set to `INF` — the fused-record equivalent of the
/// textbook `dist[l] = INF` dead mark, written to a cache line the caller
/// touched one load ago.
fn dfs(
    l: usize,
    dl: u32,
    entry: Idx,
    g: &BipartiteGraph,
    match_left: &mut [Idx],
    rights: &mut [RightState],
) -> bool {
    for &r in g.neighbors_left(l) {
        let st = rights[r];
        if st.left == FREE {
            rights[r] = RightState {
                left: Idx::new(l),
                dist: dl,
            };
            match_left[l] = r;
            return true;
        }
        if st.dist == dl + 1 && dfs(st.left.get(), dl + 1, r, g, match_left, rights) {
            rights[r] = RightState {
                left: Idx::new(l),
                dist: dl,
            };
            match_left[l] = r;
            return true;
        }
    }
    if entry != FREE {
        rights[entry].dist = INF;
    }
    false
}

/// Exhaustive maximum-matching size for tiny graphs (used only in tests and
/// the brute-force verifiers); exponential in the number of left vertices.
pub fn brute_force_max_matching_size(g: &BipartiteGraph) -> usize {
    fn rec(g: &BipartiteGraph, l: usize, used: &mut Vec<bool>) -> usize {
        if l == g.n_left() {
            return 0;
        }
        // Option 1: leave l unmatched.
        let mut best = rec(g, l + 1, used);
        // Option 2: match l to any free neighbour.
        for &r in g.neighbors_left(l) {
            if !used[r] {
                used[r] = true;
                best = best.max(1 + rec(g, l + 1, used));
                used[r] = false;
            }
        }
        best
    }
    let mut used = vec![false; g.n_right()];
    rec(g, 0, &mut used)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph() {
        let g = BipartiteGraph::new(3, 3);
        assert_eq!(hopcroft_karp(&g).size(), 0);
    }

    #[test]
    fn perfect_matching_exists() {
        let g = BipartiteGraph::from_edges(3, 3, &[(0, 0), (0, 1), (1, 1), (1, 2), (2, 2)]);
        let m = hopcroft_karp(&g);
        assert_eq!(m.size(), 3);
        assert!(m.uses_only_edges_of(&g));
        assert!(m.is_left_perfect());
    }

    #[test]
    fn bottleneck_limits_size() {
        // Three left vertices all only like right vertex 0.
        let g = BipartiteGraph::from_edges(3, 2, &[(0, 0), (1, 0), (2, 0)]);
        assert_eq!(hopcroft_karp(&g).size(), 1);
    }

    #[test]
    fn requires_augmenting_paths() {
        // A graph where the greedy matching is not maximum.
        let g = BipartiteGraph::from_edges(3, 3, &[(0, 0), (1, 0), (1, 1), (2, 1), (2, 2)]);
        let m = hopcroft_karp(&g);
        assert_eq!(m.size(), 3);
    }

    #[test]
    fn into_variant_reuses_buffers_and_matches_plain() {
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(23);
        let mut out = Matching::empty(0, 0);
        let mut ws = HkScratch::default();
        for _ in 0..20 {
            let n = rng.random_range(1..40);
            let mut edges = Vec::new();
            for l in 0..n {
                edges.push((l, l % n));
                edges.push((l, rng.random_range(0..n)));
            }
            let g = BipartiteGraph::from_edges(n, n, &edges);
            hopcroft_karp_into(&g, &mut out, &mut ws);
            let want = hopcroft_karp(&g);
            assert_eq!(out.left_assignment(), want.left_assignment());
        }
    }

    #[test]
    fn matches_brute_force_on_random_graphs() {
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        for _ in 0..50 {
            let n_left = rng.random_range(1..7);
            let n_right = rng.random_range(1..7);
            let mut edges = Vec::new();
            for l in 0..n_left {
                for r in 0..n_right {
                    if rng.random_range(0..3) == 0 {
                        edges.push((l, r));
                    }
                }
            }
            let g = BipartiteGraph::from_edges(n_left, n_right, &edges);
            let hk = hopcroft_karp(&g);
            assert!(hk.uses_only_edges_of(&g));
            assert_eq!(hk.size(), brute_force_max_matching_size(&g));
        }
    }

    #[test]
    fn large_bipartite_cycle() {
        // A single cycle of length 2n has a perfect matching.
        let n = 5000;
        let mut edges = Vec::new();
        for i in 0..n {
            edges.push((i, i));
            edges.push((i, (i + 1) % n));
        }
        let g = BipartiteGraph::from_edges(n, n, &edges);
        assert_eq!(hopcroft_karp(&g).size(), n);
    }
}
