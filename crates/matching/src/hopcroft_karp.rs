//! Hopcroft–Karp maximum-cardinality bipartite matching.
//!
//! Used as the independent referee in experiment E9 (Theorem 11 reduces
//! maximum-cardinality bipartite matching to popular matching; Lemmas 12 and
//! 13 say the two problems have the same optimal size on the all-rank-1
//! construction, which the tests verify by comparing against this routine),
//! and by the brute-force popularity verifier for small instances.

use std::collections::VecDeque;

use pm_graph::BipartiteGraph;

use crate::matching::Matching;

const INF: u32 = u32::MAX;

/// Computes a maximum-cardinality matching of `g` with the Hopcroft–Karp
/// algorithm in `O(E √V)` time.
pub fn hopcroft_karp(g: &BipartiteGraph) -> Matching {
    let n_left = g.n_left();
    let n_right = g.n_right();
    let mut match_left: Vec<Option<usize>> = vec![None; n_left];
    let mut match_right: Vec<Option<usize>> = vec![None; n_right];
    let mut dist = vec![INF; n_left];

    loop {
        // BFS phase: layer the free left vertices.
        let mut queue = VecDeque::new();
        for l in 0..n_left {
            if match_left[l].is_none() {
                dist[l] = 0;
                queue.push_back(l);
            } else {
                dist[l] = INF;
            }
        }
        let mut found_augmenting_layer = false;
        while let Some(l) = queue.pop_front() {
            for &r in g.neighbors_left(l) {
                match match_right[r] {
                    None => found_augmenting_layer = true,
                    Some(l2) => {
                        if dist[l2] == INF {
                            dist[l2] = dist[l] + 1;
                            queue.push_back(l2);
                        }
                    }
                }
            }
        }
        if !found_augmenting_layer {
            break;
        }

        // DFS phase: find a maximal set of vertex-disjoint shortest
        // augmenting paths.
        for l in 0..n_left {
            if match_left[l].is_none() {
                let _ = dfs(l, g, &mut match_left, &mut match_right, &mut dist);
            }
        }
    }

    let mut m = Matching::empty(n_left, n_right);
    for (l, r) in match_left.iter().enumerate() {
        if let Some(r) = r {
            m.add(l, *r);
        }
    }
    m
}

fn dfs(
    l: usize,
    g: &BipartiteGraph,
    match_left: &mut Vec<Option<usize>>,
    match_right: &mut Vec<Option<usize>>,
    dist: &mut Vec<u32>,
) -> bool {
    for &r in g.neighbors_left(l) {
        match match_right[r] {
            None => {
                match_right[r] = Some(l);
                match_left[l] = Some(r);
                return true;
            }
            Some(l2) => {
                if dist[l2] == dist[l] + 1 && dfs(l2, g, match_left, match_right, dist) {
                    match_right[r] = Some(l);
                    match_left[l] = Some(r);
                    return true;
                }
            }
        }
    }
    dist[l] = INF;
    false
}

/// Exhaustive maximum-matching size for tiny graphs (used only in tests and
/// the brute-force verifiers); exponential in the number of left vertices.
pub fn brute_force_max_matching_size(g: &BipartiteGraph) -> usize {
    fn rec(g: &BipartiteGraph, l: usize, used: &mut Vec<bool>) -> usize {
        if l == g.n_left() {
            return 0;
        }
        // Option 1: leave l unmatched.
        let mut best = rec(g, l + 1, used);
        // Option 2: match l to any free neighbour.
        for &r in g.neighbors_left(l) {
            if !used[r] {
                used[r] = true;
                best = best.max(1 + rec(g, l + 1, used));
                used[r] = false;
            }
        }
        best
    }
    let mut used = vec![false; g.n_right()];
    rec(g, 0, &mut used)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph() {
        let g = BipartiteGraph::new(3, 3);
        assert_eq!(hopcroft_karp(&g).size(), 0);
    }

    #[test]
    fn perfect_matching_exists() {
        let g = BipartiteGraph::from_edges(3, 3, &[(0, 0), (0, 1), (1, 1), (1, 2), (2, 2)]);
        let m = hopcroft_karp(&g);
        assert_eq!(m.size(), 3);
        assert!(m.uses_only_edges_of(&g));
        assert!(m.is_left_perfect());
    }

    #[test]
    fn bottleneck_limits_size() {
        // Three left vertices all only like right vertex 0.
        let g = BipartiteGraph::from_edges(3, 2, &[(0, 0), (1, 0), (2, 0)]);
        assert_eq!(hopcroft_karp(&g).size(), 1);
    }

    #[test]
    fn requires_augmenting_paths() {
        // A graph where the greedy matching is not maximum.
        let g = BipartiteGraph::from_edges(3, 3, &[(0, 0), (1, 0), (1, 1), (2, 1), (2, 2)]);
        let m = hopcroft_karp(&g);
        assert_eq!(m.size(), 3);
    }

    #[test]
    fn matches_brute_force_on_random_graphs() {
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        for _ in 0..50 {
            let n_left = rng.random_range(1..7);
            let n_right = rng.random_range(1..7);
            let mut edges = Vec::new();
            for l in 0..n_left {
                for r in 0..n_right {
                    if rng.random_range(0..3) == 0 {
                        edges.push((l, r));
                    }
                }
            }
            let g = BipartiteGraph::from_edges(n_left, n_right, &edges);
            let hk = hopcroft_karp(&g);
            assert!(hk.uses_only_edges_of(&g));
            assert_eq!(hk.size(), brute_force_max_matching_size(&g));
        }
    }

    #[test]
    fn large_bipartite_cycle() {
        // A single cycle of length 2n has a perfect matching.
        let n = 5000;
        let mut edges = Vec::new();
        for i in 0..n {
            edges.push((i, i));
            edges.push((i, (i + 1) % n));
        }
        let g = BipartiteGraph::from_edges(n, n, &edges);
        assert_eq!(hopcroft_karp(&g).size(), n);
    }
}
