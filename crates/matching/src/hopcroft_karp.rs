//! Hopcroft–Karp maximum-cardinality bipartite matching.
//!
//! Used as the independent referee in experiment E9 (Theorem 11 reduces
//! maximum-cardinality bipartite matching to popular matching; Lemmas 12 and
//! 13 say the two problems have the same optimal size on the all-rank-1
//! construction, which the tests verify by comparing against this routine),
//! and by the brute-force popularity verifier for small instances.

use pm_graph::BipartiteGraph;
use pm_pram::Idx;

use crate::matching::Matching;

const INF: u32 = u32::MAX;

/// Sentinel for "unmatched" in the dense match arrays: the [`Idx::NONE`]
/// pattern — a quarter of the footprint of `Option<usize>` and half of the
/// former `usize::MAX` sentinel, which matters on the 10^6-vertex ties
/// workload where the BFS/DFS sweeps are bandwidth-bound.
const FREE: Idx = Idx::NONE;

/// Computes a maximum-cardinality matching of `g` with the Hopcroft–Karp
/// algorithm in `O(E √V)` time.
pub fn hopcroft_karp(g: &BipartiteGraph) -> Matching {
    let mut out = Matching::empty(0, 0);
    hopcroft_karp_into(
        g,
        &mut out,
        &mut Vec::new(),
        &mut Vec::new(),
        &mut Vec::new(),
        &mut Vec::new(),
    );
    out
}

/// Allocation-free Hopcroft–Karp: the match arrays, BFS layers and queue
/// are caller-provided (check them out of a workspace), and the result is
/// written into `out` via [`Matching::reset`].  A warm call over a graph no
/// larger than any previous one performs no heap allocation.  The matching
/// produced is bit-for-bit the one [`hopcroft_karp`] returns.
pub fn hopcroft_karp_into(
    g: &BipartiteGraph,
    out: &mut Matching,
    match_left: &mut Vec<Idx>,
    match_right: &mut Vec<Idx>,
    dist: &mut Vec<u32>,
    queue: &mut Vec<Idx>,
) {
    let n_left = g.n_left();
    let n_right = g.n_right();
    match_left.clear();
    match_left.resize(n_left, FREE);
    match_right.clear();
    match_right.resize(n_right, FREE);
    dist.clear();
    dist.resize(n_left, INF);

    loop {
        // BFS phase: layer the free left vertices.  The queue is a plain
        // vector with a read cursor (elements are never removed, so FIFO
        // order matches the textbook deque formulation exactly).
        queue.clear();
        let mut head = 0usize;
        for l in 0..n_left {
            if match_left[l] == FREE {
                dist[l] = 0;
                queue.push(Idx::new(l));
            } else {
                dist[l] = INF;
            }
        }
        let mut found_augmenting_layer = false;
        while head < queue.len() {
            let l = queue[head];
            head += 1;
            for &r in g.neighbors_left(l.get()) {
                let l2 = match_right[r];
                if l2 == FREE {
                    found_augmenting_layer = true;
                } else if dist[l2] == INF {
                    dist[l2] = dist[l] + 1;
                    queue.push(l2);
                }
            }
        }
        if !found_augmenting_layer {
            break;
        }

        // DFS phase: find a maximal set of vertex-disjoint shortest
        // augmenting paths.
        for l in 0..n_left {
            if match_left[l] == FREE {
                let _ = dfs(l, g, match_left, match_right, dist);
            }
        }
    }

    out.reset(n_left, n_right);
    for (l, &r) in match_left.iter().enumerate() {
        if r != FREE {
            out.add(l, r.get());
        }
    }
}

fn dfs(
    l: usize,
    g: &BipartiteGraph,
    match_left: &mut Vec<Idx>,
    match_right: &mut Vec<Idx>,
    dist: &mut Vec<u32>,
) -> bool {
    for &r in g.neighbors_left(l) {
        let l2 = match_right[r];
        if l2 == FREE {
            match_right[r] = Idx::new(l);
            match_left[l] = r;
            return true;
        }
        if dist[l2] == dist[l] + 1 && dfs(l2.get(), g, match_left, match_right, dist) {
            match_right[r] = Idx::new(l);
            match_left[l] = r;
            return true;
        }
    }
    dist[l] = INF;
    false
}

/// Exhaustive maximum-matching size for tiny graphs (used only in tests and
/// the brute-force verifiers); exponential in the number of left vertices.
pub fn brute_force_max_matching_size(g: &BipartiteGraph) -> usize {
    fn rec(g: &BipartiteGraph, l: usize, used: &mut Vec<bool>) -> usize {
        if l == g.n_left() {
            return 0;
        }
        // Option 1: leave l unmatched.
        let mut best = rec(g, l + 1, used);
        // Option 2: match l to any free neighbour.
        for &r in g.neighbors_left(l) {
            if !used[r] {
                used[r] = true;
                best = best.max(1 + rec(g, l + 1, used));
                used[r] = false;
            }
        }
        best
    }
    let mut used = vec![false; g.n_right()];
    rec(g, 0, &mut used)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph() {
        let g = BipartiteGraph::new(3, 3);
        assert_eq!(hopcroft_karp(&g).size(), 0);
    }

    #[test]
    fn perfect_matching_exists() {
        let g = BipartiteGraph::from_edges(3, 3, &[(0, 0), (0, 1), (1, 1), (1, 2), (2, 2)]);
        let m = hopcroft_karp(&g);
        assert_eq!(m.size(), 3);
        assert!(m.uses_only_edges_of(&g));
        assert!(m.is_left_perfect());
    }

    #[test]
    fn bottleneck_limits_size() {
        // Three left vertices all only like right vertex 0.
        let g = BipartiteGraph::from_edges(3, 2, &[(0, 0), (1, 0), (2, 0)]);
        assert_eq!(hopcroft_karp(&g).size(), 1);
    }

    #[test]
    fn requires_augmenting_paths() {
        // A graph where the greedy matching is not maximum.
        let g = BipartiteGraph::from_edges(3, 3, &[(0, 0), (1, 0), (1, 1), (2, 1), (2, 2)]);
        let m = hopcroft_karp(&g);
        assert_eq!(m.size(), 3);
    }

    #[test]
    fn into_variant_reuses_buffers_and_matches_plain() {
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(23);
        let mut out = Matching::empty(0, 0);
        let (mut ml, mut mr) = (Vec::new(), Vec::new());
        let (mut dist, mut queue) = (Vec::new(), Vec::new());
        for _ in 0..20 {
            let n = rng.random_range(1..40);
            let mut edges = Vec::new();
            for l in 0..n {
                edges.push((l, l % n));
                edges.push((l, rng.random_range(0..n)));
            }
            let g = BipartiteGraph::from_edges(n, n, &edges);
            hopcroft_karp_into(&g, &mut out, &mut ml, &mut mr, &mut dist, &mut queue);
            let want = hopcroft_karp(&g);
            assert_eq!(out.left_assignment(), want.left_assignment());
        }
    }

    #[test]
    fn matches_brute_force_on_random_graphs() {
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        for _ in 0..50 {
            let n_left = rng.random_range(1..7);
            let n_right = rng.random_range(1..7);
            let mut edges = Vec::new();
            for l in 0..n_left {
                for r in 0..n_right {
                    if rng.random_range(0..3) == 0 {
                        edges.push((l, r));
                    }
                }
            }
            let g = BipartiteGraph::from_edges(n_left, n_right, &edges);
            let hk = hopcroft_karp(&g);
            assert!(hk.uses_only_edges_of(&g));
            assert_eq!(hk.size(), brute_force_max_matching_size(&g));
        }
    }

    #[test]
    fn large_bipartite_cycle() {
        // A single cycle of length 2n has a perfect matching.
        let n = 5000;
        let mut edges = Vec::new();
        for i in 0..n {
            edges.push((i, i));
            edges.push((i, (i + 1) % n));
        }
        let g = BipartiteGraph::from_edges(n, n, &edges);
        assert_eq!(hopcroft_karp(&g).size(), n);
    }
}
