//! Perfect matching in regular bipartite graphs by Euler partition.
//!
//! The paper (Section III-B2) notes that "searching for a perfect matching
//! in regular bipartite graphs can be done in NC", citing Lev, Pippenger and
//! Valiant.  Algorithm 2 itself only ever needs the 2-regular case (handled
//! in [`crate::two_regular`]); this module provides the classical
//! Euler-partition construction for `2^k`-regular graphs as the extension
//! substrate: repeatedly split the edge set along Euler circuits into two
//! halves of half the degree until the degree reaches 2, then finish with
//! the 2-regular matcher.  The splitting here is the straightforward
//! sequential Hierholzer walk — the output (a perfect matching) is what the
//! downstream code cares about; the NC-depth claims are exercised on the
//! 2-regular path that the popular-matching algorithms actually use.

use pm_graph::BipartiteGraph;
use pm_pram::tracker::DepthTracker;

use crate::matching::Matching;
use crate::two_regular::two_regular_perfect_matching_parallel;

/// Returns the common degree if `g` is `d`-regular on both sides with equal
/// side sizes, otherwise `None`.
pub fn regularity(g: &BipartiteGraph) -> Option<usize> {
    if g.n_left() != g.n_right() || g.n_left() == 0 {
        return if g.n_left() == g.n_right() {
            Some(0)
        } else {
            None
        };
    }
    let d = g.degree_left(0);
    let ok = (0..g.n_left()).all(|l| g.degree_left(l) == d)
        && (0..g.n_right()).all(|r| g.degree_right(r) == d);
    ok.then_some(d)
}

/// Perfect matching of a `2^k`-regular bipartite graph via Euler partition.
///
/// # Panics
/// Panics if the graph is not regular with equal sides, or if its degree is
/// not a power of two (zero-degree non-empty graphs have no perfect
/// matching and also panic).
pub fn regular_perfect_matching(g: &BipartiteGraph, tracker: &DepthTracker) -> Matching {
    let d = regularity(g).expect("graph must be d-regular with equal sides");
    if g.n_left() == 0 {
        return Matching::empty(0, 0);
    }
    assert!(d > 0, "0-regular non-empty graph has no perfect matching");
    assert!(
        d.is_power_of_two(),
        "degree must be a power of two (got {d})"
    );

    let mut edges = g.edges();
    let mut degree = d;
    let n = g.n_left();

    while degree > 2 {
        tracker.phase();
        edges = euler_half(n, &edges);
        degree /= 2;
    }

    if degree == 1 {
        // The edges themselves form the perfect matching.
        let mut m = Matching::empty(n, n);
        for (l, r) in edges {
            m.add(l, r);
        }
        return m;
    }

    let half = BipartiteGraph::from_edges(n, n, &edges);
    two_regular_perfect_matching_parallel(&half, tracker)
}

/// Splits an even-degree bipartite (multi)graph along Euler circuits and
/// returns the half whose edges are oriented left → right.
fn euler_half(n: usize, edges: &[(usize, usize)]) -> Vec<(usize, usize)> {
    // Vertices 0..n are left, n..2n are right.
    let mut adj: Vec<Vec<(usize, usize)>> = vec![Vec::new(); 2 * n]; // (other, edge id)
    for (id, &(l, r)) in edges.iter().enumerate() {
        adj[l].push((n + r, id));
        adj[n + r].push((l, id));
    }
    let mut used = vec![false; edges.len()];
    let mut next_idx = vec![0usize; 2 * n];
    let mut keep = Vec::with_capacity(edges.len() / 2);

    for start in 0..2 * n {
        // Hierholzer: walk unused edges until stuck (which, with all degrees
        // even, only happens back at the start), orienting edges as walked.
        loop {
            // Skip already-used incident edges.
            while next_idx[start] < adj[start].len() && used[adj[start][next_idx[start]].1] {
                next_idx[start] += 1;
            }
            if next_idx[start] >= adj[start].len() {
                break;
            }
            let mut v = start;
            loop {
                while next_idx[v] < adj[v].len() && used[adj[v][next_idx[v]].1] {
                    next_idx[v] += 1;
                }
                if next_idx[v] >= adj[v].len() {
                    break;
                }
                let (w, id) = adj[v][next_idx[v]];
                used[id] = true;
                // Orientation v -> w: keep the edge if v is a left vertex.
                if v < n {
                    keep.push(edges[id]);
                }
                v = w;
            }
        }
    }
    keep
}

#[cfg(test)]
mod tests {
    use super::*;

    fn complete_regular(n: usize) -> BipartiteGraph {
        let mut edges = Vec::new();
        for l in 0..n {
            for r in 0..n {
                edges.push((l, r));
            }
        }
        BipartiteGraph::from_edges(n, n, &edges)
    }

    /// d-regular circulant: left i connected to right (i + j) mod n for j < d.
    fn circulant(n: usize, d: usize) -> BipartiteGraph {
        let mut edges = Vec::new();
        for l in 0..n {
            for j in 0..d {
                edges.push((l, (l + j) % n));
            }
        }
        BipartiteGraph::from_edges(n, n, &edges)
    }

    fn check_perfect(g: &BipartiteGraph, m: &Matching) {
        assert_eq!(m.size(), g.n_left());
        assert!(m.uses_only_edges_of(g));
    }

    #[test]
    fn regularity_detection() {
        assert_eq!(regularity(&complete_regular(4)), Some(4));
        assert_eq!(regularity(&circulant(6, 2)), Some(2));
        let irregular = BipartiteGraph::from_edges(2, 2, &[(0, 0), (0, 1), (1, 1)]);
        assert_eq!(regularity(&irregular), None);
        assert_eq!(regularity(&BipartiteGraph::new(0, 0)), Some(0));
    }

    #[test]
    fn one_regular_graph() {
        let g = circulant(5, 1);
        let t = DepthTracker::new();
        let m = regular_perfect_matching(&g, &t);
        check_perfect(&g, &m);
        assert_eq!(m.pairs(), (0..5).map(|i| (i, i)).collect::<Vec<_>>());
    }

    #[test]
    fn two_regular_graph() {
        let g = circulant(7, 2);
        let t = DepthTracker::new();
        check_perfect(&g, &regular_perfect_matching(&g, &t));
    }

    #[test]
    fn four_and_eight_regular_graphs() {
        let t = DepthTracker::new();
        for (n, d) in [(8usize, 4usize), (16, 4), (16, 8), (32, 8)] {
            let g = circulant(n, d);
            assert_eq!(regularity(&g), Some(d));
            check_perfect(&g, &regular_perfect_matching(&g, &t));
        }
    }

    #[test]
    fn complete_bipartite_power_of_two() {
        let g = complete_regular(8);
        let t = DepthTracker::new();
        check_perfect(&g, &regular_perfect_matching(&g, &t));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_degree_panics() {
        let g = circulant(9, 3);
        let t = DepthTracker::new();
        let _ = regular_perfect_matching(&g, &t);
    }

    #[test]
    #[should_panic(expected = "regular")]
    fn irregular_graph_panics() {
        let g = BipartiteGraph::from_edges(2, 2, &[(0, 0), (0, 1), (1, 1)]);
        let t = DepthTracker::new();
        let _ = regular_perfect_matching(&g, &t);
    }

    #[test]
    fn empty_graph() {
        let g = BipartiteGraph::new(0, 0);
        let t = DepthTracker::new();
        assert_eq!(regular_perfect_matching(&g, &t).size(), 0);
    }
}
