//! The bipartite matching value type shared by all algorithms.

use pm_graph::BipartiteGraph;

/// A matching in a bipartite graph, stored from both sides: `left_to_right[l]`
/// is the right vertex matched to `l` (if any) and vice versa.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Matching {
    left_to_right: Vec<Option<usize>>,
    right_to_left: Vec<Option<usize>>,
}

impl Matching {
    /// The empty matching on `n_left` / `n_right` vertices.
    pub fn empty(n_left: usize, n_right: usize) -> Self {
        Self {
            left_to_right: vec![None; n_left],
            right_to_left: vec![None; n_right],
        }
    }

    /// Clears the matching in place and resizes it to `n_left` / `n_right`
    /// vertices, reusing both buffers' capacity — the serving-path way to
    /// refill one long-lived `Matching` without reallocating.
    pub fn reset(&mut self, n_left: usize, n_right: usize) {
        self.left_to_right.clear();
        self.left_to_right.resize(n_left, None);
        self.right_to_left.clear();
        self.right_to_left.resize(n_right, None);
    }

    /// Builds a matching from the left-side assignment.
    ///
    /// # Panics
    /// Panics if two left vertices claim the same right vertex or an index is
    /// out of range.
    pub fn from_left_assignment(assignment: &[Option<usize>], n_right: usize) -> Self {
        let mut m = Self::empty(assignment.len(), n_right);
        for (l, &a) in assignment.iter().enumerate() {
            if let Some(r) = a {
                m.add(l, r);
            }
        }
        m
    }

    /// Builds a matching from explicit `(left, right)` pairs.
    pub fn from_pairs(n_left: usize, n_right: usize, pairs: &[(usize, usize)]) -> Self {
        let mut m = Self::empty(n_left, n_right);
        for &(l, r) in pairs {
            m.add(l, r);
        }
        m
    }

    /// Adds the pair `(l, r)`.
    ///
    /// # Panics
    /// Panics if either endpoint is already matched or out of range.
    pub fn add(&mut self, l: usize, r: usize) {
        assert!(
            self.left_to_right[l].is_none(),
            "left vertex {l} already matched"
        );
        assert!(
            self.right_to_left[r].is_none(),
            "right vertex {r} already matched"
        );
        self.left_to_right[l] = Some(r);
        self.right_to_left[r] = Some(l);
    }

    /// Removes the pair containing left vertex `l`, if any.
    pub fn remove_left(&mut self, l: usize) {
        if let Some(r) = self.left_to_right[l].take() {
            self.right_to_left[r] = None;
        }
    }

    /// Re-assigns left vertex `l` to right vertex `r`, detaching whatever was
    /// previously matched to either endpoint.
    pub fn assign(&mut self, l: usize, r: usize) {
        self.remove_left(l);
        if let Some(prev_l) = self.right_to_left[r].take() {
            self.left_to_right[prev_l] = None;
        }
        self.add(l, r);
    }

    /// Partner of a left vertex.
    pub fn left(&self, l: usize) -> Option<usize> {
        self.left_to_right[l]
    }

    /// Partner of a right vertex.
    pub fn right(&self, r: usize) -> Option<usize> {
        self.right_to_left[r]
    }

    /// Number of matched pairs.
    pub fn size(&self) -> usize {
        self.left_to_right.iter().filter(|x| x.is_some()).count()
    }

    /// Number of left vertices.
    pub fn n_left(&self) -> usize {
        self.left_to_right.len()
    }

    /// Number of right vertices.
    pub fn n_right(&self) -> usize {
        self.right_to_left.len()
    }

    /// The left-side assignment slice.
    pub fn left_assignment(&self) -> &[Option<usize>] {
        &self.left_to_right
    }

    /// The matched pairs, ordered by left vertex.
    pub fn pairs(&self) -> Vec<(usize, usize)> {
        self.left_to_right
            .iter()
            .enumerate()
            .filter_map(|(l, r)| r.map(|r| (l, r)))
            .collect()
    }

    /// True iff every matched pair is an edge of `g` (consistency is
    /// guaranteed by construction; this checks edge membership).
    pub fn uses_only_edges_of(&self, g: &BipartiteGraph) -> bool {
        self.pairs().iter().all(|&(l, r)| g.has_edge(l, r))
    }

    /// True iff every left vertex is matched.
    pub fn is_left_perfect(&self) -> bool {
        self.left_to_right.iter().all(Option::is_some)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_matching() {
        let m = Matching::empty(3, 4);
        assert_eq!(m.size(), 0);
        assert_eq!(m.n_left(), 3);
        assert_eq!(m.n_right(), 4);
        assert!(!m.is_left_perfect());
        assert!(m.pairs().is_empty());
    }

    #[test]
    fn add_remove_assign() {
        let mut m = Matching::empty(3, 3);
        m.add(0, 1);
        m.add(1, 2);
        assert_eq!(m.size(), 2);
        assert_eq!(m.left(0), Some(1));
        assert_eq!(m.right(1), Some(0));

        m.remove_left(0);
        assert_eq!(m.left(0), None);
        assert_eq!(m.right(1), None);

        // assign displaces previous partners on both sides
        m.add(0, 1);
        m.assign(2, 2); // displaces left 1 from right 2
        assert_eq!(m.left(1), None);
        assert_eq!(m.left(2), Some(2));
        m.assign(2, 1); // moves left 2 from right 2 to right 1, displacing left 0
        assert_eq!(m.left(0), None);
        assert_eq!(m.left(2), Some(1));
        assert_eq!(m.right(2), None);
    }

    #[test]
    #[should_panic(expected = "already matched")]
    fn double_add_panics() {
        let mut m = Matching::empty(2, 2);
        m.add(0, 0);
        m.add(1, 0);
    }

    #[test]
    fn from_pairs_and_assignment_roundtrip() {
        let pairs = vec![(0, 2), (2, 0)];
        let m = Matching::from_pairs(3, 3, &pairs);
        assert_eq!(m.pairs(), pairs);
        let m2 = Matching::from_left_assignment(m.left_assignment(), 3);
        assert_eq!(m, m2);
    }

    #[test]
    fn edge_membership_check() {
        let g = BipartiteGraph::from_edges(2, 2, &[(0, 0), (1, 1)]);
        let ok = Matching::from_pairs(2, 2, &[(0, 0), (1, 1)]);
        assert!(ok.uses_only_edges_of(&g));
        assert!(ok.is_left_perfect());
        let bad = Matching::from_pairs(2, 2, &[(0, 1)]);
        assert!(!bad.uses_only_edges_of(&g));
    }
}
