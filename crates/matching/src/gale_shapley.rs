//! Gale–Shapley deferred acceptance for the stable marriage problem.
//!
//! Section VI of the paper assumes a stable matching is *given* and asks for
//! the "next" one in the lattice; finding the first one fast in parallel is
//! precisely the CC-complete obstacle (Mayr–Subramanian) the paper recalls.
//! This sequential routine supplies that starting matching (man-optimal `M₀`
//! or woman-optimal `M_z`) and the stability checker used throughout the
//! `pm_stable` tests.

/// Runs man-proposing deferred acceptance and returns `matching[m] = w`.
///
/// `men_prefs[m]` is man `m`'s strictly ordered preference list over all `n`
/// women (most preferred first); `women_prefs[w]` likewise over all men.
///
/// # Panics
/// Panics if the instance is malformed (lists that are not permutations of
/// `0..n`).
pub fn gale_shapley_man_optimal(
    men_prefs: &[Vec<usize>],
    women_prefs: &[Vec<usize>],
) -> Vec<usize> {
    let n = men_prefs.len();
    assert_eq!(women_prefs.len(), n, "instance must be square");
    validate_prefs(men_prefs, n);
    validate_prefs(women_prefs, n);
    if n == 0 {
        return Vec::new();
    }

    // women_rank[w][m] = position of m in w's list (lower = preferred).
    let women_rank = rank_matrix(women_prefs);

    let mut next_proposal = vec![0usize; n]; // index into each man's list
    let mut woman_partner: Vec<Option<usize>> = vec![None; n];
    let mut free: Vec<usize> = (0..n).rev().collect();

    while let Some(m) = free.pop() {
        let w = men_prefs[m][next_proposal[m]];
        next_proposal[m] += 1;
        match woman_partner[w] {
            None => woman_partner[w] = Some(m),
            Some(current) => {
                if women_rank[w][m] < women_rank[w][current] {
                    woman_partner[w] = Some(m);
                    free.push(current);
                } else {
                    free.push(m);
                }
            }
        }
    }

    let mut matching = vec![0usize; n];
    for (w, m) in woman_partner.iter().enumerate() {
        matching[m.expect("complete lists imply a perfect matching")] = w;
    }
    matching
}

/// Runs woman-proposing deferred acceptance and returns `matching[m] = w`
/// (the woman-optimal / man-pessimal stable matching `M_z`).
pub fn gale_shapley_woman_optimal(
    men_prefs: &[Vec<usize>],
    women_prefs: &[Vec<usize>],
) -> Vec<usize> {
    // Swap roles, then invert the result back to man-indexed form.
    let woman_matching = gale_shapley_man_optimal(women_prefs, men_prefs);
    let n = men_prefs.len();
    let mut matching = vec![0usize; n];
    for (w, &m) in woman_matching.iter().enumerate() {
        matching[m] = w;
    }
    matching
}

/// True iff `matching` (as `matching[m] = w`) is stable: no man and woman
/// prefer each other to their assigned partners (Definition 5).
pub fn is_stable(men_prefs: &[Vec<usize>], women_prefs: &[Vec<usize>], matching: &[usize]) -> bool {
    let n = men_prefs.len();
    if matching.len() != n {
        return false;
    }
    // Must be a permutation.
    let mut seen = vec![false; n];
    for &w in matching {
        if w >= n || seen[w] {
            return false;
        }
        seen[w] = true;
    }
    let women_rank = rank_matrix(women_prefs);
    let mut woman_partner = vec![0usize; n];
    for (m, &w) in matching.iter().enumerate() {
        woman_partner[w] = m;
    }
    for m in 0..n {
        for &w in &men_prefs[m] {
            if w == matching[m] {
                break; // only women strictly preferred to m's partner matter
            }
            // m prefers w to his partner; blocking if w prefers m back.
            if women_rank[w][m] < women_rank[w][woman_partner[w]] {
                return false;
            }
        }
    }
    true
}

/// Builds `rank[p][q]` = position of `q` in `prefs[p]`.
pub fn rank_matrix(prefs: &[Vec<usize>]) -> Vec<Vec<usize>> {
    let n = prefs.len();
    let mut rank = vec![vec![0usize; n]; n];
    for (p, list) in prefs.iter().enumerate() {
        for (i, &q) in list.iter().enumerate() {
            rank[p][q] = i;
        }
    }
    rank
}

fn validate_prefs(prefs: &[Vec<usize>], n: usize) {
    for (p, list) in prefs.iter().enumerate() {
        assert_eq!(list.len(), n, "preference list of {p} has wrong length");
        let mut seen = vec![false; n];
        for &q in list {
            assert!(
                q < n && !seen[q],
                "preference list of {p} is not a permutation"
            );
            seen[q] = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn classic_instance() -> (Vec<Vec<usize>>, Vec<Vec<usize>>) {
        // The standard 3x3 example with distinct man- and woman-optimal
        // matchings.
        let men = vec![vec![0, 1, 2], vec![1, 0, 2], vec![0, 1, 2]];
        let women = vec![vec![1, 2, 0], vec![0, 2, 1], vec![0, 1, 2]];
        (men, women)
    }

    #[test]
    fn empty_instance() {
        assert!(gale_shapley_man_optimal(&[], &[]).is_empty());
    }

    #[test]
    fn single_pair() {
        let m = gale_shapley_man_optimal(&[vec![0]], &[vec![0]]);
        assert_eq!(m, vec![0]);
        assert!(is_stable(&[vec![0]], &[vec![0]], &m));
    }

    #[test]
    fn man_optimal_is_stable() {
        let (men, women) = classic_instance();
        let m0 = gale_shapley_man_optimal(&men, &women);
        assert!(is_stable(&men, &women, &m0));
    }

    #[test]
    fn woman_optimal_is_stable_and_dominated() {
        let (men, women) = classic_instance();
        let m0 = gale_shapley_man_optimal(&men, &women);
        let mz = gale_shapley_woman_optimal(&men, &women);
        assert!(is_stable(&men, &women, &mz));
        // Every man weakly prefers M0 to Mz.
        let men_rank = rank_matrix(&men);
        for man in 0..3 {
            assert!(men_rank[man][m0[man]] <= men_rank[man][mz[man]]);
        }
    }

    #[test]
    fn detects_unstable_matching() {
        let (men, women) = classic_instance();
        // Find a perfect matching that is not stable by brute force.
        let perms = [
            [0, 1, 2],
            [0, 2, 1],
            [1, 0, 2],
            [1, 2, 0],
            [2, 0, 1],
            [2, 1, 0],
        ];
        let unstable: Vec<_> = perms
            .iter()
            .filter(|p| !is_stable(&men, &women, &p[..]))
            .collect();
        assert!(
            !unstable.is_empty(),
            "this instance has unstable permutations"
        );
    }

    #[test]
    fn is_stable_rejects_non_permutations() {
        let (men, women) = classic_instance();
        assert!(!is_stable(&men, &women, &[0, 0, 1]));
        assert!(!is_stable(&men, &women, &[0, 1]));
        assert!(!is_stable(&men, &women, &[0, 1, 5]));
    }

    #[test]
    fn random_instances_produce_stable_outputs() {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(77);
        for n in [2usize, 5, 16, 40] {
            let mut gen = |_: usize| {
                let mut lists = Vec::with_capacity(n);
                for _ in 0..n {
                    let mut l: Vec<usize> = (0..n).collect();
                    l.shuffle(&mut rng);
                    lists.push(l);
                }
                lists
            };
            let men = gen(n);
            let women = gen(n);
            let m0 = gale_shapley_man_optimal(&men, &women);
            let mz = gale_shapley_woman_optimal(&men, &women);
            assert!(is_stable(&men, &women, &m0), "n={n}");
            assert!(is_stable(&men, &women, &mz), "n={n}");
            // Man-optimality: every man weakly prefers M0 to Mz.
            let men_rank = rank_matrix(&men);
            for man in 0..n {
                assert!(
                    men_rank[man][m0[man]] <= men_rank[man][mz[man]],
                    "n={n} man={man}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "permutation")]
    fn malformed_preferences_panic() {
        let men = vec![vec![0, 0], vec![0, 1]];
        let women = vec![vec![0, 1], vec![0, 1]];
        let _ = gale_shapley_man_optimal(&men, &women);
    }
}
