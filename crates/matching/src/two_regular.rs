//! Perfect matching in 2-regular bipartite graphs (disjoint even cycles).
//!
//! This is the final step of Algorithm 2: after the degree-1 peeling loop,
//! "G′ becomes a 2-regular bipartite graph and consists of a disjoint union
//! of even cycles.  Choosing all edges of even distance yields a perfect
//! matching."  Equivalently — and this is how the parallel routine works —
//! pick one traversal *orientation* per cycle and match every left vertex to
//! its successor post in that orientation.  The orientation is chosen
//! canonically (the one containing the smallest arc id), and the choice is
//! broadcast around each cycle with `O(log n)` rounds of pointer doubling,
//! so the whole step is in NC as the paper claims.

use rayon::prelude::*;

use pm_graph::BipartiteGraph;
use pm_pram::pointer::min_label_cycles;
use pm_pram::tracker::DepthTracker;
use pm_pram::SEQUENTIAL_CUTOFF;

use crate::matching::Matching;

/// Checks that `g` is 2-regular on both sides with equally many left and
/// right vertices.
pub fn is_two_regular(g: &BipartiteGraph) -> bool {
    g.n_left() == g.n_right()
        && (0..g.n_left()).all(|l| g.degree_left(l) == 2)
        && (0..g.n_right()).all(|r| g.degree_right(r) == 2)
}

/// Perfect matching of a 2-regular bipartite graph, parallel version.
///
/// # Panics
/// Panics if `g` is not 2-regular with `n_left == n_right`.
pub fn two_regular_perfect_matching_parallel(
    g: &BipartiteGraph,
    tracker: &DepthTracker,
) -> Matching {
    assert!(
        is_two_regular(g),
        "graph must be 2-regular with equal sides"
    );
    let n = g.n_left();
    if n == 0 {
        return Matching::empty(0, 0);
    }
    let num_arcs = 2 * n;

    // Arc 2l + i is "left vertex l takes its i-th incident post".
    // next(arc) walks two steps along the cycle to the next left vertex.
    let next_arc = |arc: usize| -> usize {
        let (l, i) = (arc / 2, arc % 2);
        let p = g.neighbors_left(l)[i];
        let p_nbrs = g.neighbors_right(p.get());
        let l2 = if p_nbrs[0].get() == l {
            p_nbrs[1].get()
        } else {
            p_nbrs[0].get()
        };
        let l2_nbrs = g.neighbors_left(l2);
        let j = usize::from(l2_nbrs[0] == p);
        2 * l2 + j
    };

    tracker.round();
    tracker.work(num_arcs as u64);
    let mut ptr: Vec<usize> = if num_arcs >= SEQUENTIAL_CUTOFF {
        (0..num_arcs).into_par_iter().map(next_arc).collect()
    } else {
        (0..num_arcs).map(next_arc).collect()
    };
    let mut label: Vec<usize> = (0..num_arcs).collect();

    // Min-label pointer doubling (the shared `pm_pram` primitive): after at
    // most ⌈log₂(2n)⌉ rounds — with a sound early exit once no label
    // changes — every arc knows the minimum arc id on its orientation
    // cycle, with no per-round allocation.
    min_label_cycles(
        &mut label,
        &mut ptr,
        &mut Vec::new(),
        &mut Vec::new(),
        tracker,
    );

    // One parallel round: each left vertex keeps the arc whose orientation
    // cycle has the smaller canonical label.
    tracker.round();
    tracker.work(n as u64);
    let choice: Vec<usize> = if n >= SEQUENTIAL_CUTOFF {
        (0..n)
            .into_par_iter()
            .map(|l| {
                let i = usize::from(label[2 * l + 1] < label[2 * l]);
                g.neighbors_left(l)[i].get()
            })
            .collect()
    } else {
        (0..n)
            .map(|l| {
                let i = usize::from(label[2 * l + 1] < label[2 * l]);
                g.neighbors_left(l)[i].get()
            })
            .collect()
    };

    let mut m = Matching::empty(n, n);
    for (l, p) in choice.into_iter().enumerate() {
        m.add(l, p);
    }
    m
}

/// Perfect matching of a 2-regular bipartite graph by walking each cycle and
/// taking alternate edges (the sequential baseline).
///
/// # Panics
/// Panics if `g` is not 2-regular with `n_left == n_right`.
pub fn two_regular_perfect_matching_sequential(g: &BipartiteGraph) -> Matching {
    assert!(
        is_two_regular(g),
        "graph must be 2-regular with equal sides"
    );
    let n = g.n_left();
    let mut m = Matching::empty(n, n);
    let mut visited = vec![false; n];

    for start in 0..n {
        if visited[start] {
            continue;
        }
        // Walk the cycle: from left vertex l arriving via post `came_from`
        // (None for the start), match l to its other post and continue from
        // that post's other left vertex.
        let mut l = start;
        let mut came_from: Option<usize> = None;
        loop {
            visited[l] = true;
            let nbrs = g.neighbors_left(l);
            let p = match came_from {
                Some(cf) if nbrs[0].get() == cf => nbrs[1].get(),
                Some(_) => nbrs[0].get(),
                None => nbrs[0].get(),
            };
            m.add(l, p);
            let p_nbrs = g.neighbors_right(p);
            let l_next = if p_nbrs[0].get() == l {
                p_nbrs[1].get()
            } else {
                p_nbrs[0].get()
            };
            if l_next == start {
                break;
            }
            l = l_next;
            came_from = Some(p);
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds the disjoint union of even cycles with the given numbers of
    /// left vertices per cycle.
    fn cycles(sizes: &[usize]) -> BipartiteGraph {
        let n: usize = sizes.iter().sum();
        let mut edges = Vec::new();
        let mut base = 0;
        for &k in sizes {
            for i in 0..k {
                edges.push((base + i, base + i));
                edges.push((base + i, base + (i + 1) % k));
            }
            base += k;
        }
        BipartiteGraph::from_edges(n, n, &edges)
    }

    fn check_perfect(g: &BipartiteGraph, m: &Matching) {
        assert_eq!(m.size(), g.n_left());
        assert!(m.is_left_perfect());
        assert!(m.uses_only_edges_of(g));
    }

    #[test]
    fn empty_graph() {
        let g = BipartiteGraph::new(0, 0);
        let t = DepthTracker::new();
        assert_eq!(two_regular_perfect_matching_parallel(&g, &t).size(), 0);
        assert_eq!(two_regular_perfect_matching_sequential(&g).size(), 0);
    }

    #[test]
    fn single_small_cycle() {
        let g = cycles(&[2]);
        let t = DepthTracker::new();
        check_perfect(&g, &two_regular_perfect_matching_parallel(&g, &t));
        check_perfect(&g, &two_regular_perfect_matching_sequential(&g));
    }

    #[test]
    fn multiple_cycles_of_various_sizes() {
        let g = cycles(&[2, 3, 5, 8]);
        let t = DepthTracker::new();
        check_perfect(&g, &two_regular_perfect_matching_parallel(&g, &t));
        check_perfect(&g, &two_regular_perfect_matching_sequential(&g));
    }

    #[test]
    fn regularity_check() {
        assert!(is_two_regular(&cycles(&[4])));
        let path = BipartiteGraph::from_edges(2, 2, &[(0, 0), (0, 1), (1, 1)]);
        assert!(!is_two_regular(&path));
        let unbalanced = BipartiteGraph::from_edges(1, 2, &[(0, 0), (0, 1)]);
        assert!(!is_two_regular(&unbalanced));
    }

    #[test]
    #[should_panic(expected = "2-regular")]
    fn non_regular_input_panics() {
        let g = BipartiteGraph::from_edges(2, 2, &[(0, 0), (0, 1), (1, 1)]);
        let t = DepthTracker::new();
        let _ = two_regular_perfect_matching_parallel(&g, &t);
    }

    #[test]
    fn large_single_cycle_logarithmic_rounds() {
        let g = cycles(&[20_000]);
        let t = DepthTracker::new();
        let m = two_regular_perfect_matching_parallel(&g, &t);
        check_perfect(&g, &m);
        // ⌈log₂ 40000⌉ = 16 doubling rounds plus three bookkeeping rounds.
        assert!(t.stats().depth <= 20, "depth = {}", t.stats().depth);
    }

    #[test]
    fn scrambled_cycle_labels() {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        // Build cycles whose vertex ids are interleaved rather than
        // contiguous, to exercise the canonical-orientation choice.
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let sizes = [3usize, 4, 6, 7];
        let n: usize = sizes.iter().sum();
        let mut left_ids: Vec<usize> = (0..n).collect();
        let mut right_ids: Vec<usize> = (0..n).collect();
        left_ids.shuffle(&mut rng);
        right_ids.shuffle(&mut rng);
        let mut edges = Vec::new();
        let mut base = 0;
        for &k in &sizes {
            for i in 0..k {
                edges.push((left_ids[base + i], right_ids[base + i]));
                edges.push((left_ids[base + i], right_ids[base + (i + 1) % k]));
            }
            base += k;
        }
        let g = BipartiteGraph::from_edges(n, n, &edges);
        assert!(is_two_regular(&g));
        let t = DepthTracker::new();
        check_perfect(&g, &two_regular_perfect_matching_parallel(&g, &t));
        check_perfect(&g, &two_regular_perfect_matching_sequential(&g));
    }
}
