//! The switching graph `G_M` of a popular matching (Section IV).
//!
//! Given a popular matching `M`, the switching graph has one vertex per
//! (extended) post and, for every applicant `a`, a directed edge from
//! `M(a)` to `O_M(a)` — the other post on `a`'s reduced preference list.
//! Because `M` is a matching, every vertex has out-degree at most one, so
//! `G_M` is a directed pseudoforest (Lemma 4): each component has either a
//! unique sink (an unmatched s-post) or a unique cycle.
//!
//! *Switching cycles* and *switching paths* are the unit moves that map one
//! popular matching to another (Theorem 9, McDermid–Irving): applying a
//! switching cycle re-matches every applicant on the cycle to its other
//! reduced post; applying the switching path from an s-post `q` to the sink
//! `p` does the same along the path, leaving `q` unmatched and `p` matched.
//! The *margin* (Definition 4) of a move is the net change in the number of
//! applicants matched to real (non-last-resort) posts; Algorithm 3 applies
//! exactly the positive-margin moves.

use pm_graph::connected::{connected_components_idx_ws, ComponentLabelsIdx};
use pm_graph::functional::{extract_cycles_marked_idx, on_cycle_of_idx, FunctionalGraph};
use pm_pram::prefetch::prefetch_read;
use pm_pram::scan::csr_offsets_into_u32;
use pm_pram::scheduler::RoundScheduler;
use pm_pram::tracker::DepthTracker;
use pm_pram::{Idx, Workspace, SEQUENTIAL_CUTOFF};

use rayon::prelude::*;

use crate::instance::Assignment;
use crate::reduced::ReducedGraph;

/// For every vertex of a pseudoforest given by `succ` (an [`Idx`] array,
/// `Idx::NONE` marking sinks), the total weight of the path from it to its
/// component's frozen endpoint, plus that endpoint: weighted pointer
/// doubling in `O(log n)` rounds over two checked-out double buffers.
/// Cycle vertices (per the caller-provided `on_cycle` marking, see
/// [`on_cycle_of_idx`]) are frozen (weight 0, self-pointer) so tree
/// vertices hanging off a cycle accumulate only up to the cycle entry and
/// report that entry as their root, while true tree components accumulate
/// up to their sink.  `edge_weight(p)` is the weight of the edge leaving
/// `p` (only consulted for non-cycle vertices with a successor); weights
/// are `i32` — margins are bounded by the vertex count, which the
/// instance-size funnel keeps in 32-bit range.
///
/// Returns `(weights, roots)`, both checked out of `ws` — hand them back
/// with `put_i32` / `put_idx` when done.  This is the parallel primitive
/// Algorithm 3 uses to pick the best switching path of every tree component
/// in one go ([`SwitchingGraph::margins_to_sink`] is a thin wrapper).
pub fn margins_and_roots_of(
    succ: &[Idx],
    on_cycle: &[bool],
    edge_weight: impl Fn(usize) -> i32,
    ws: &mut Workspace,
    tracker: &DepthTracker,
) -> (Vec<i32>, Vec<Idx>) {
    let n = succ.len();
    if n == 0 {
        return (ws.take_i32_empty(), ws.take_idx_empty());
    }
    // Gather-loop lookahead, hoisted once per call (PM_PREFETCH_DIST).
    let pd = pm_pram::tune::prefetch_dist();
    debug_assert_eq!(on_cycle.len(), n);

    let mut ptr = ws.take_idx_dirty(n, Idx::ZERO);
    let mut acc = ws.take_i32(n, 0);
    for (p, (ptr_p, acc_p)) in ptr.iter_mut().zip(acc.iter_mut()).enumerate() {
        if succ[p].is_some() && !on_cycle[p] {
            *ptr_p = succ[p];
            *acc_p = edge_weight(p);
        } else {
            *ptr_p = Idx::new(p);
        }
    }

    let rounds = if n <= 1 {
        0
    } else {
        u64::from(usize::BITS - (n - 1).leading_zeros())
    };
    // Every doubling round overwrites every (ptr, acc) cell, so the round
    // scheduler's overwrite step ping-pongs the two checked-out buffer
    // pairs with no per-round allocation, cloning, or initial fill.
    let ptr_scratch = ws.take_idx_dirty(n, Idx::ZERO);
    let acc_scratch = ws.take_i32_dirty(n, 0);
    // The frozen graph is a forest (cycle vertices are self-pointing), so
    // pointer doubling converges; a round that changes no pointer is a
    // fixpoint (frozen targets always carry weight 0, so the accumulators
    // are stable too) and the loop stops early — the change flag is a pure
    // function of the data, detected inside the round at no extra pass.
    let mut sched =
        RoundScheduler::from_buffers((ptr, acc), (ptr_scratch, acc_scratch), rounds, tracker);
    for _ in 0..rounds {
        let changed = sched.step_overwrite(n as u64, |(ptr, acc), (nptr, nacc)| {
            let write = |p: usize, np: &mut Idx, na: &mut i32| -> bool {
                // Two-level gather (`ptr[ptr[p]]`): software-pipeline it by
                // prefetching a later element's second hop while this one
                // resolves.
                if let Some(&qa) = ptr.get(p + pd) {
                    prefetch_read(ptr, qa.get());
                    prefetch_read(acc, qa.get());
                }
                let q = ptr[p];
                *np = ptr[q];
                *na = acc[p] + acc[q];
                *np != q
            };
            if n >= SEQUENTIAL_CUTOFF {
                let changed = std::sync::atomic::AtomicBool::new(false);
                nptr.par_iter_mut()
                    .zip(nacc.par_iter_mut())
                    .enumerate()
                    .for_each(|(p, (np, na))| {
                        if write(p, np, na) {
                            changed.store(true, std::sync::atomic::Ordering::Relaxed);
                        }
                    });
                changed.load(std::sync::atomic::Ordering::Relaxed)
            } else {
                let mut changed = false;
                for (p, (np, na)) in nptr.iter_mut().zip(nacc.iter_mut()).enumerate() {
                    changed |= write(p, np, na);
                }
                changed
            }
        });
        if !changed {
            break;
        }
    }
    let ((ptr, acc), (ptr_scratch, acc_scratch), _) = sched.into_buffers();
    ws.put_idx(ptr_scratch);
    ws.put_i32(acc_scratch);
    (acc, ptr)
}

/// What a component of the switching graph contains (Lemma 4 (iii)).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ComponentKind {
    /// A cycle component with its unique switching cycle (posts in successor
    /// order, starting from the smallest post id).
    Cycle(Vec<usize>),
    /// A tree component with its unique sink vertex (an unmatched s-post).
    Tree {
        /// The sink post.
        sink: usize,
    },
}

/// One weakly-connected component of the switching graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SwitchingComponent {
    /// The posts in this component (increasing id order).
    pub posts: Vec<usize>,
    /// Cycle or tree, with the associated cycle/sink.
    pub kind: ComponentKind,
}

/// The switching graph `G_M` of a popular matching `M`.
#[derive(Debug, Clone)]
pub struct SwitchingGraph {
    num_applicants: usize,
    num_posts: usize,
    total_posts: usize,
    /// `succ[p]` = the other reduced post of the applicant matched to `p`
    /// (`Idx::NONE` when `p` is unmatched — a sink or outside the graph).
    succ: Vec<Idx>,
    /// `out_applicant[p]` = the applicant matched to `p` (labels the edge).
    out_applicant: Vec<Idx>,
    /// Post occurs in the reduced graph (as someone's f-post or s-post).
    in_graph: Vec<bool>,
    /// Post is an s-post (the only legal starting points of switching paths).
    is_s_post: Vec<bool>,
    /// Lazily computed cycle-vertex marking (a pure function of `succ`),
    /// shared by [`components`](Self::components) and
    /// [`margins_to_sink`](Self::margins_to_sink) so an analysis pipeline
    /// runs the `O(log n)`-round doubling once instead of once per query.
    cycle_marks: std::sync::OnceLock<Vec<bool>>,
}

impl SwitchingGraph {
    /// Builds `G_M` from the reduced graph and a popular matching.
    ///
    /// # Panics
    /// Panics (in debug builds) if `matching` does not assign every
    /// applicant to `f(a)` or `s(a)` — the switching graph is only defined
    /// for matchings satisfying Theorem 1.
    pub fn build(reduced: &ReducedGraph, matching: &Assignment, tracker: &DepthTracker) -> Self {
        let n_a = reduced.num_applicants();
        let total = reduced.total_posts();
        tracker.phase();
        tracker.round();
        tracker.work(n_a as u64);

        let mut succ = vec![Idx::NONE; total];
        let mut out_applicant = vec![Idx::NONE; total];
        let mut in_graph = vec![false; total];
        let mut is_s_post = vec![false; total];
        for a in 0..n_a {
            in_graph[reduced.f(a)] = true;
            in_graph[reduced.s(a)] = true;
            is_s_post[reduced.s(a)] = true;
            let m = matching.post(a);
            debug_assert!(
                m == reduced.f(a) || m == reduced.s(a),
                "switching graph requires a Theorem 1 matching"
            );
            let other = if m == reduced.f(a) {
                reduced.s(a)
            } else {
                reduced.f(a)
            };
            debug_assert!(succ[m].is_none(), "post {m} matched to two applicants");
            succ[m] = Idx::new(other);
            out_applicant[m] = Idx::new(a);
        }

        Self {
            num_applicants: n_a,
            num_posts: reduced.num_posts(),
            total_posts: total,
            succ,
            out_applicant,
            in_graph,
            is_s_post,
            cycle_marks: std::sync::OnceLock::new(),
        }
    }

    /// The memoised cycle-vertex marking of `G_M` (computed on first use;
    /// the depth/work of the doubling is charged to the tracker of that
    /// first call only).
    fn cycle_marks(&self, tracker: &DepthTracker) -> &[bool] {
        self.cycle_marks.get_or_init(|| {
            let mut out = Vec::new();
            on_cycle_of_idx(&self.succ, &mut out, &mut Workspace::new(), tracker);
            out
        })
    }

    /// Number of applicants in the underlying instance.
    pub fn num_applicants(&self) -> usize {
        self.num_applicants
    }

    /// The successor of post `p` (the post its matched applicant would
    /// switch to), if `p` is matched.
    pub fn successor(&self, p: usize) -> Option<usize> {
        self.succ[p].some()
    }

    /// The applicant matched to post `p`, if any.
    pub fn applicant_at(&self, p: usize) -> Option<usize> {
        self.out_applicant[p].some()
    }

    /// True iff post `p` occurs in the reduced graph.
    pub fn in_graph(&self, p: usize) -> bool {
        self.in_graph[p]
    }

    /// True iff post `p` is an s-post.
    pub fn is_s_post(&self, p: usize) -> bool {
        self.is_s_post[p]
    }

    /// True iff post `p` is a last-resort post.
    pub fn is_last_resort(&self, p: usize) -> bool {
        p >= self.num_posts
    }

    /// The switching graph as a directed pseudoforest over all extended
    /// posts (posts outside the reduced graph are isolated sinks).
    pub fn functional_graph(&self) -> FunctionalGraph {
        FunctionalGraph::new(self.succ.iter().map(|s| s.some()).collect())
    }

    /// The sinks of `G_M` restricted to the reduced graph: exactly the posts
    /// of `G'` left unmatched by `M` (Lemma 4 (ii)), which are all s-posts.
    pub fn sinks(&self) -> Vec<usize> {
        (0..self.total_posts)
            .filter(|&p| self.in_graph[p] && self.succ[p].is_none())
            .collect()
    }

    /// Decomposes `G_M` into its weakly-connected components, classifying
    /// each as a cycle component or a tree component (Lemma 4 (iii)).
    /// Components are ordered by their smallest post.
    pub fn components(&self, tracker: &DepthTracker) -> Vec<SwitchingComponent> {
        // Gather-loop lookahead, hoisted once per call (PM_PREFETCH_DIST).
        let pd = pm_pram::tune::prefetch_dist();
        // All dense scratch — the edge list, the hooking forest, the cycle
        // marking and the label buckets — is checked out of one workspace,
        // so the phases of this call share their slabs instead of each
        // allocating afresh (and no `FunctionalGraph` clone of the
        // successor array is materialised).
        let mut ws = Workspace::new();
        let mut edges = ws.take_idx_pair_empty();
        edges.extend(
            self.succ
                .iter()
                .enumerate()
                .filter(|(_, s)| s.is_some())
                .map(|(v, &s)| (Idx::new(v), s)),
        );
        let labels: ComponentLabelsIdx =
            connected_components_idx_ws(self.total_posts, &edges, &mut ws, tracker);
        ws.put_idx_pair(edges);
        let cycles = extract_cycles_marked_idx(&self.succ, self.cycle_marks(tracker));

        // Map each component label to its cycle (if any).
        let mut cycle_of_label: Vec<Option<Vec<usize>>> = vec![None; self.total_posts];
        for cycle in cycles {
            let l = labels.label[cycle[0]];
            cycle_of_label[l.get()] = Some(cycle);
        }

        // Bucket the reduced-graph posts by component label in one flat CSR
        // pass: counts, prefix scan, slotted fill.  Filling in increasing
        // post order keeps each bucket sorted, as the component contract
        // requires.  The per-post bucket work is accumulated locally and
        // flushed with one atomic add per pass.
        let mut counts = ws.take_u32(self.total_posts, 0);
        let mut charged = tracker.local();
        for p in 0..self.total_posts {
            if let Some(&ln) = labels.label.get(p + pd) {
                prefetch_read(&counts, ln.get());
            }
            if self.in_graph[p] {
                counts[labels.label[p]] += 1;
                charged.add(1);
            }
        }
        drop(charged);
        let mut bucket_off = ws.take_u32_empty();
        let mut chunk_scratch = ws.take_u32_empty();
        csr_offsets_into_u32(&counts, &mut bucket_off, &mut chunk_scratch, tracker);
        let mut cursor = ws.take_u32_empty();
        cursor.extend_from_slice(&bucket_off[..self.total_posts]);
        let mut bucket_flat = ws.take_idx(*bucket_off.last().unwrap_or(&0) as usize, Idx::ZERO);
        let mut charged = tracker.local();
        for p in 0..self.total_posts {
            if let Some(&ln) = labels.label.get(p + pd) {
                prefetch_read(&cursor, ln.get());
            }
            if self.in_graph[p] {
                let l = labels.label[p];
                bucket_flat[cursor[l] as usize] = Idx::new(p);
                cursor[l] += 1;
                charged.add(1);
            }
        }
        drop(charged);

        let mut out = Vec::new();
        for l in 0..self.total_posts {
            let posts = &bucket_flat[bucket_off[l] as usize..bucket_off[l + 1] as usize];
            if posts.is_empty() {
                continue;
            }
            let kind = match cycle_of_label[l].take() {
                Some(cycle) => ComponentKind::Cycle(cycle),
                None => {
                    let sink = posts
                        .iter()
                        .copied()
                        .find(|&p| self.succ[p].is_none())
                        .expect("a tree component has a sink (Lemma 4)");
                    ComponentKind::Tree { sink: sink.get() }
                }
            };
            out.push(SwitchingComponent {
                posts: posts.iter().map(|p| p.get()).collect(),
                kind,
            });
        }
        ws.put_idx(labels.label);
        ws.put_u32(counts);
        ws.put_u32(bucket_off);
        ws.put_u32(chunk_scratch);
        ws.put_u32(cursor);
        ws.put_idx(bucket_flat);
        out
    }

    /// The applicants on the switching cycle through the given cycle posts.
    pub fn cycle_applicants(&self, cycle_posts: &[usize]) -> Vec<usize> {
        cycle_posts
            .iter()
            .map(|&p| {
                self.out_applicant[p]
                    .some()
                    .expect("cycle posts are matched")
            })
            .collect()
    }

    /// The switching path from s-post `q` to its component's sink, as the
    /// list of matched posts traversed (excluding the sink).  Returns `None`
    /// if `q` is not an s-post, is unmatched (it *is* the sink), or lies in
    /// a cycle component (no switching path exists there).
    pub fn switching_path(&self, q: usize) -> Option<Vec<usize>> {
        if !self.is_s_post[q] || self.succ[q].is_none() {
            return None;
        }
        let mut path = Vec::new();
        let mut v = q;
        let mut steps = 0usize;
        while let Some(next) = self.succ[v].some() {
            path.push(v);
            v = next;
            steps += 1;
            if steps > self.total_posts {
                return None; // walked into a cycle: no switching path from q
            }
        }
        Some(path)
    }

    /// The applicants along the switching path starting at s-post `q`.
    pub fn path_applicants(&self, q: usize) -> Option<Vec<usize>> {
        self.switching_path(q).map(|posts| {
            posts
                .iter()
                .map(|&p| {
                    self.out_applicant[p]
                        .some()
                        .expect("path posts are matched")
                })
                .collect()
        })
    }

    /// The margin (Definition 4) of the switching cycle through the given
    /// posts: the change in the number of applicants on real posts.
    pub fn cycle_margin(&self, cycle_posts: &[usize]) -> i64 {
        cycle_posts.iter().map(|&p| self.edge_margin(p)).sum()
    }

    /// The margin of the switching path starting at s-post `q`.
    pub fn path_margin(&self, q: usize) -> Option<i64> {
        self.switching_path(q)
            .map(|posts| posts.iter().map(|&p| self.edge_margin(p)).sum())
    }

    /// Margin contribution of the edge leaving post `p`: +1 if its applicant
    /// moves from a last resort onto a real post, −1 for the reverse, else 0.
    fn edge_margin(&self, p: usize) -> i64 {
        let q = self.succ[p].some().expect("edge_margin of a matched post");
        i64::from(!self.is_last_resort(q)) - i64::from(!self.is_last_resort(p))
    }

    /// For every post, the total margin of the path from it to its
    /// component's sink (0 for sinks and for posts on cycles — cycles have
    /// no path to a sink).  Computed with weighted pointer doubling in
    /// `O(log n)` rounds; this is the parallel primitive Algorithm 3 uses to
    /// pick the best switching path of every tree component in one go.
    pub fn margins_to_sink(&self, tracker: &DepthTracker) -> Vec<i64> {
        if self.total_posts == 0 {
            return Vec::new();
        }
        let mut ws = Workspace::new();
        let on_cycle = self.cycle_marks(tracker);
        let (margins, roots) = margins_and_roots_of(
            &self.succ,
            on_cycle,
            |p| self.edge_margin(p) as i32,
            &mut ws,
            tracker,
        );
        ws.put_idx(roots);
        let out = margins.iter().map(|&m| i64::from(m)).collect();
        ws.put_i32(margins);
        out
    }

    /// Applies the switching cycle through `cycle_posts` to `matching`:
    /// every applicant on the cycle switches to its other reduced post.
    pub fn apply_cycle(&self, matching: &mut Assignment, cycle_posts: &[usize]) {
        for &p in cycle_posts {
            let a = self.out_applicant[p]
                .some()
                .expect("cycle posts are matched");
            let target = self.succ[p].some().expect("cycle posts have successors");
            matching.set_post(a, target);
        }
    }

    /// Applies the switching path starting at s-post `q` to `matching`.
    ///
    /// # Panics
    /// Panics if `q` has no switching path (see [`switching_path`](Self::switching_path)).
    pub fn apply_path(&self, matching: &mut Assignment, q: usize) {
        let posts = self
            .switching_path(q)
            .expect("apply_path requires a valid switching path start");
        for p in posts {
            let a = self.out_applicant[p]
                .some()
                .expect("path posts are matched");
            let target = self.succ[p].some().expect("path posts have successors");
            matching.set_post(a, target);
        }
    }

    /// Enumerates every popular matching reachable from the base matching by
    /// Theorem 9: for each tree component choose at most one switching path,
    /// for each cycle component choose whether to apply its switching cycle.
    /// Exponential in the number of components — used by the tests and the
    /// optimality cross-checks on small instances.
    pub fn enumerate_popular_matchings(
        &self,
        base: &Assignment,
        tracker: &DepthTracker,
    ) -> Vec<Assignment> {
        let components = self.components(tracker);
        // Per component, the list of alternative "moves" (None = do nothing).
        let mut choices: Vec<Vec<Option<MoveRef>>> = Vec::new();
        for comp in &components {
            let mut opts: Vec<Option<MoveRef>> = vec![None];
            match &comp.kind {
                ComponentKind::Cycle(cycle) => opts.push(Some(MoveRef::Cycle(cycle.clone()))),
                ComponentKind::Tree { sink } => {
                    for &q in &comp.posts {
                        if q != *sink && self.is_s_post[q] && self.succ[q].is_some() {
                            opts.push(Some(MoveRef::Path(q)));
                        }
                    }
                }
            }
            choices.push(opts);
        }

        let mut out = Vec::new();
        let mut stack = vec![0usize; choices.len()];
        loop {
            let mut m = base.clone();
            for (ci, &pick) in stack.iter().enumerate() {
                match &choices[ci][pick] {
                    None => {}
                    Some(MoveRef::Cycle(cycle)) => self.apply_cycle(&mut m, cycle),
                    Some(MoveRef::Path(q)) => self.apply_path(&mut m, *q),
                }
            }
            out.push(m);
            // Odometer increment.
            let mut i = 0;
            loop {
                if i == choices.len() {
                    return out;
                }
                stack[i] += 1;
                if stack[i] < choices[i].len() {
                    break;
                }
                stack[i] = 0;
                i += 1;
            }
        }
    }
}

#[derive(Debug, Clone)]
enum MoveRef {
    Cycle(Vec<usize>),
    Path(usize),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::PrefInstance;
    use crate::verify::{enumerate_assignments, is_popular_characterization, more_popular};

    fn figure1_instance() -> PrefInstance {
        PrefInstance::new_strict(
            9,
            vec![
                vec![0, 3, 4, 1, 5],
                vec![3, 4, 6, 1, 7],
                vec![3, 0, 2, 7],
                vec![0, 6, 3, 2, 8],
                vec![4, 0, 6, 1, 5],
                vec![6, 5],
                vec![6, 3, 7, 1],
                vec![6, 3, 0, 4, 8, 2],
            ],
        )
        .unwrap()
    }

    /// The popular matching M of the paper's Figure 4:
    /// a1→p1, a2→p2, a3→p4, a4→p3, a5→p5, a6→p7, a7→p8, a8→p9.
    fn figure4_matching() -> Assignment {
        Assignment::new(vec![0, 1, 3, 2, 4, 6, 7, 8])
    }

    fn build_figure4() -> (PrefInstance, ReducedGraph, SwitchingGraph, Assignment) {
        let inst = figure1_instance();
        let reduced = ReducedGraph::build_sequential(&inst).unwrap();
        let m = figure4_matching();
        let t = DepthTracker::new();
        let sg = SwitchingGraph::build(&reduced, &m, &t);
        (inst, reduced, sg, m)
    }

    #[test]
    fn lemma4_structure_on_figure4() {
        let (_inst, _reduced, sg, _m) = build_figure4();
        let t = DepthTracker::new();

        // (ii) sinks are the unmatched s-posts: p2? no — in Figure 4 the
        // sinks are p6 (id 5) and p2?  The matching M matches p1..p5, p7..p9;
        // unmatched reduced posts are p6 (id 5)?  p6 is s(a6) and unmatched;
        // p2 (id 1) is matched to a2; p3 matched; so sinks = {p6}.  Wait —
        // Figure 4 shows switching paths ending at p6... and p2/p3 are
        // matched.  The sink set must be exactly the unmatched reduced posts.
        let sinks = sg.sinks();
        for &p in &sinks {
            assert!(sg.is_s_post(p), "Lemma 4(ii): sink {p} must be an s-post");
            assert!(sg.applicant_at(p).is_none());
        }

        // (i) out-degree at most 1 holds by construction; check the edge
        // labels are exactly the 8 applicants.
        let labelled: Vec<usize> = (0..sg.total_posts)
            .filter_map(|p| sg.applicant_at(p))
            .collect();
        assert_eq!(labelled.len(), 8);

        // (iii) each component has a single sink or a single cycle.
        let comps = sg.components(&t);
        for c in &comps {
            match &c.kind {
                ComponentKind::Cycle(cycle) => {
                    assert!(!cycle.is_empty());
                    // no sink inside a cycle component
                    assert!(c.posts.iter().all(|&p| sg.successor(p).is_some()));
                }
                ComponentKind::Tree { sink } => {
                    let sink_count = c
                        .posts
                        .iter()
                        .filter(|&&p| sg.successor(p).is_none())
                        .count();
                    assert_eq!(sink_count, 1);
                    assert!(sg.successor(*sink).is_none());
                }
            }
        }
    }

    #[test]
    fn figure4_has_one_cycle_and_two_switching_paths() {
        // "There are one switching cycle and two switching paths starting
        //  from p8 and p9 respectively."
        let (_inst, _reduced, sg, _m) = build_figure4();
        let t = DepthTracker::new();
        let comps = sg.components(&t);

        let cycles: Vec<&SwitchingComponent> = comps
            .iter()
            .filter(|c| matches!(c.kind, ComponentKind::Cycle(_)))
            .collect();
        assert_eq!(cycles.len(), 1, "exactly one cycle component");
        if let ComponentKind::Cycle(cycle) = &cycles[0].kind {
            // The cycle is p1 -> p2 -> p4 -> p3 -> p1 (ids 0,1,3,2) in some rotation.
            let mut sorted = cycle.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2, 3]);
        }

        // Switching paths start at s-posts p8 (id 7) and p9 (id 8).
        let p8 = sg.switching_path(7).expect("p8 starts a switching path");
        let p9 = sg.switching_path(8).expect("p9 starts a switching path");
        assert!(!p8.is_empty() && !p9.is_empty());
        // Both end at the unique sink p6 (id 5): the posts on the path are
        // matched, and following the last post's successor gives the sink.
        let end8 = sg.successor(*p8.last().unwrap()).unwrap();
        let end9 = sg.successor(*p9.last().unwrap()).unwrap();
        assert_eq!(end8, 5);
        assert_eq!(end9, 5);
        // p5 (id 4) is an s-post?  No: p5 is an f-post, so it cannot start a
        // switching path.
        assert!(sg.switching_path(4).is_none());
    }

    #[test]
    fn margins_on_figure4_are_zero() {
        // Every applicant in the Figure 4 matching sits on a real post and
        // both of its reduced posts are real, so every margin is 0.
        let (_inst, _reduced, sg, _m) = build_figure4();
        let t = DepthTracker::new();
        let comps = sg.components(&t);
        for c in &comps {
            if let ComponentKind::Cycle(cycle) = &c.kind {
                assert_eq!(sg.cycle_margin(cycle), 0);
            }
        }
        assert_eq!(sg.path_margin(7), Some(0));
        assert_eq!(sg.path_margin(8), Some(0));
        let margins = sg.margins_to_sink(&t);
        assert_eq!(margins[7], 0);
        assert_eq!(margins[8], 0);
    }

    #[test]
    fn margins_to_sink_match_path_margins() {
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(41);
        for _ in 0..100 {
            let n_a = rng.random_range(1..6);
            let n_p = rng.random_range(1..6);
            let lists: Vec<Vec<usize>> = (0..n_a)
                .map(|_| {
                    let mut posts: Vec<usize> = (0..n_p).collect();
                    for i in (1..posts.len()).rev() {
                        posts.swap(i, rng.random_range(0..=i));
                    }
                    posts.truncate(rng.random_range(1..=posts.len()));
                    posts
                })
                .collect();
            let inst = PrefInstance::new_strict(n_p, lists).unwrap();
            let t = DepthTracker::new();
            let Ok(run) = crate::algorithm1::popular_matching_run(&inst, &t) else {
                continue;
            };
            let sg = SwitchingGraph::build(&run.reduced, &run.matching, &t);
            let doubled = sg.margins_to_sink(&t);
            for (q, &margin) in doubled.iter().enumerate() {
                if let Some(expected) = sg.path_margin(q) {
                    assert_eq!(margin, expected, "margin mismatch at post {q}");
                }
            }
        }
    }

    #[test]
    fn theorem9_enumeration_yields_exactly_the_popular_matchings() {
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(4242);
        let mut checked = 0;
        for _ in 0..120 {
            let n_a = rng.random_range(1..5);
            let n_p = rng.random_range(1..5);
            let lists: Vec<Vec<usize>> = (0..n_a)
                .map(|_| {
                    let mut posts: Vec<usize> = (0..n_p).collect();
                    for i in (1..posts.len()).rev() {
                        posts.swap(i, rng.random_range(0..=i));
                    }
                    posts.truncate(rng.random_range(1..=posts.len()));
                    posts
                })
                .collect();
            let inst = PrefInstance::new_strict(n_p, lists).unwrap();
            let t = DepthTracker::new();
            let Ok(run) = crate::algorithm1::popular_matching_run(&inst, &t) else {
                continue;
            };
            let sg = SwitchingGraph::build(&run.reduced, &run.matching, &t);

            // All matchings produced by Theorem 9 moves...
            let mut generated: Vec<Vec<pm_pram::Idx>> = sg
                .enumerate_popular_matchings(&run.matching, &t)
                .into_iter()
                .map(|m| m.as_slice().to_vec())
                .collect();
            generated.sort_unstable();
            generated.dedup();

            // ... must coincide with the popular matchings found by brute force.
            let mut brute: Vec<Vec<pm_pram::Idx>> = enumerate_assignments(&inst)
                .into_iter()
                .filter(|m| is_popular_characterization(&inst, m))
                .map(|m| m.as_slice().to_vec())
                .collect();
            brute.sort_unstable();

            assert_eq!(
                generated, brute,
                "Theorem 9 enumeration mismatch for {inst:?}"
            );

            // And every generated matching is genuinely popular.
            for m in sg.enumerate_popular_matchings(&run.matching, &t) {
                assert!(m.is_valid(&inst));
                assert!(enumerate_assignments(&inst)
                    .iter()
                    .all(|other| !more_popular(&inst, other, &m)));
            }
            checked += 1;
        }
        assert!(checked > 30);
    }
}
