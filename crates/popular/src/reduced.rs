//! The reduced graph `G'` of f-posts and s-posts (Section III).
//!
//! For a strictly-ordered instance, `f(a)` is the first post on applicant
//! `a`'s list and `s(a)` is the first *non-f-post* on the list (which always
//! exists because the last resort `l(a)` is appended and is never an
//! f-post).  Theorem 1 (Abraham et al.): a matching `M` is popular iff every
//! f-post is matched and every applicant is matched to `f(a)` or `s(a)` —
//! so the whole problem lives inside the reduced graph `G'` whose only edges
//! are `(a, f(a))` and `(a, s(a))`.
//!
//! The paper's construction (Section III-B) is three parallel steps: mark
//! the posts with a rank-1 incident edge, drop non-rank-1 edges at those
//! posts, and keep for every applicant only the highest-ranked surviving
//! non-f edge.  [`ReducedGraph::build_parallel`] mirrors those steps (with
//! the work and rounds charged to the tracker); [`ReducedGraph::build_sequential`]
//! is the obvious single-threaded construction used for validation.

use rayon::prelude::*;

use pm_graph::BipartiteGraph;
use pm_pram::prefetch::prefetch_read;
use pm_pram::tracker::DepthTracker;
use pm_pram::{par_chunk_len, Idx, SEQUENTIAL_CUTOFF};

use crate::error::PopularError;
use crate::instance::PrefInstance;

/// Allocation-free construction of the reduced graph: writes `f(a)`,
/// `s(a)` and the f-post marking into caller-provided buffers (capacities
/// reused), so a solver that holds them across requests builds `G'` with
/// zero heap allocation on a warm call.  The three parallel steps and their
/// round accounting match [`ReducedGraph::build_parallel`], except that the
/// s-scan charges the work it *actually* performs — entries examined until
/// the first non-f-post — accumulated per chunk and flushed with a single
/// atomic add per chunk (exact totals, independent of the thread count).
pub fn build_into(
    inst: &PrefInstance,
    f: &mut Vec<Idx>,
    s: &mut Vec<Idx>,
    is_f_post: &mut Vec<bool>,
    tracker: &DepthTracker,
) -> Result<(), PopularError> {
    if !inst.is_strict() {
        return Err(PopularError::TiesNotSupported);
    }
    let n_a = inst.num_applicants();
    tracker.phase();
    // Gather-loop lookahead, hoisted once per call (PM_PREFETCH_DIST).
    let pd = pm_pram::tune::prefetch_dist();

    // Steps 1 + 2: every applicant reads its first choice straight off the
    // flat CSR storage (one round), then the f-posts are marked (one
    // concurrent-write round).  Below the cutoff the two sweeps fuse into
    // one — the first-choice read feeds the mark scatter while the value is
    // still in a register, halving the traffic over `f`; the charges stay
    // those of the two logical rounds.  On the parallel path the mark
    // scatter stays a separate sequential sweep, with the random mark line
    // prefetched a few applicants ahead of the write.
    tracker.round();
    tracker.work(n_a as u64);
    if f.len() != n_a {
        f.clear();
        f.resize(n_a, Idx::ZERO);
    }
    tracker.round();
    tracker.work(n_a as u64);
    is_f_post.clear();
    is_f_post.resize(inst.total_posts(), false);
    if n_a >= SEQUENTIAL_CUTOFF {
        f.par_iter_mut()
            .enumerate()
            .for_each(|(a, fa)| *fa = inst.first_choice(a));
        for (a, &p) in f.iter().enumerate() {
            if let Some(&pn) = f.get(a + pd) {
                prefetch_read(is_f_post, pn.get());
            }
            is_f_post[p] = true;
        }
    } else {
        for (a, fa) in f.iter_mut().enumerate() {
            let p = inst.first_choice(a);
            *fa = p;
            is_f_post[p] = true;
        }
    }

    // Step 3 (one round): every applicant scans its (strict, hence flat)
    // list for the first non-f-post; the last resort is the fallback.
    tracker.round();
    if s.len() != n_a {
        s.clear();
        s.resize(n_a, Idx::ZERO);
    }
    let marks: &[bool] = is_f_post;
    let scan_chunk = |base: usize, sc: &mut [Idx]| {
        let mut charged = tracker.local();
        let end = base + sc.len();
        for (i, slot) in sc.iter_mut().enumerate() {
            let a = base + i;
            // The scan probes `marks` at the head of each list; pull the
            // line for a later applicant's head in ahead of its turn.
            let ahead = a + pd;
            if ahead < end {
                if let Some(&p0) = inst.flat_list(ahead).first() {
                    prefetch_read(marks, p0.get());
                }
            }
            let mut found = None;
            let mut scanned = 0u64;
            for &p in inst.flat_list(a) {
                scanned += 1;
                if !marks[p] {
                    found = Some(p);
                    break;
                }
            }
            charged.add(scanned);
            *slot = found.unwrap_or_else(|| inst.last_resort_idx(a));
        }
    };
    if n_a >= SEQUENTIAL_CUTOFF {
        let chunk = par_chunk_len(n_a, 1024);
        s.par_chunks_mut(chunk)
            .enumerate()
            .for_each(|(ci, sc)| scan_chunk(ci * chunk, sc));
    } else {
        scan_chunk(0, s);
    }
    Ok(())
}

/// The reduced graph `G'`: for every applicant its f-post and s-post, plus
/// the global f-post marking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReducedGraph {
    num_applicants: usize,
    num_posts: usize,
    f: Vec<Idx>,
    s: Vec<Idx>,
    is_f_post: Vec<bool>,
}

impl ReducedGraph {
    /// Builds `G'` with the paper's parallel three-step construction.
    ///
    /// Returns [`PopularError::TiesNotSupported`] if any list has a tie —
    /// Section III explicitly restricts to strictly-ordered lists.
    pub fn build_parallel(
        inst: &PrefInstance,
        tracker: &DepthTracker,
    ) -> Result<Self, PopularError> {
        let mut f = Vec::new();
        let mut s = Vec::new();
        let mut is_f_post = Vec::new();
        build_into(inst, &mut f, &mut s, &mut is_f_post, tracker)?;
        Ok(Self {
            num_applicants: inst.num_applicants(),
            num_posts: inst.num_posts(),
            f,
            s,
            is_f_post,
        })
    }

    /// Sequential construction of `G'` (the validation baseline).
    pub fn build_sequential(inst: &PrefInstance) -> Result<Self, PopularError> {
        if !inst.is_strict() {
            return Err(PopularError::TiesNotSupported);
        }
        let n_a = inst.num_applicants();
        let mut is_f_post = vec![false; inst.total_posts()];
        let mut f = Vec::with_capacity(n_a);
        for a in 0..n_a {
            let fa = inst.first_choice(a);
            f.push(fa);
            is_f_post[fa] = true;
        }
        let mut s = Vec::with_capacity(n_a);
        for a in 0..n_a {
            let sa = inst
                .flat_list(a)
                .iter()
                .copied()
                .find(|&p| !is_f_post[p])
                .unwrap_or_else(|| inst.last_resort_idx(a));
            s.push(sa);
        }
        Ok(Self {
            num_applicants: n_a,
            num_posts: inst.num_posts(),
            f,
            s,
            is_f_post,
        })
    }

    /// Assembles a reduced graph from raw parts, e.g. the buffers filled by
    /// [`build_into`] (the solver's free-function wrappers use this to hand
    /// back an owned `ReducedGraph` without rebuilding it).
    pub fn from_parts(num_posts: usize, f: Vec<Idx>, s: Vec<Idx>, is_f_post: Vec<bool>) -> Self {
        let num_applicants = f.len();
        debug_assert_eq!(s.len(), num_applicants);
        debug_assert_eq!(is_f_post.len(), num_posts + num_applicants);
        Self {
            num_applicants,
            num_posts,
            f,
            s,
            is_f_post,
        }
    }

    /// Number of applicants.
    pub fn num_applicants(&self) -> usize {
        self.num_applicants
    }

    /// Number of real posts.
    pub fn num_posts(&self) -> usize {
        self.num_posts
    }

    /// Number of extended posts (real + last resorts).
    pub fn total_posts(&self) -> usize {
        self.num_posts + self.num_applicants
    }

    /// `f(a)`: applicant `a`'s first choice.
    pub fn f(&self, a: usize) -> usize {
        self.f[a].get()
    }

    /// `s(a)`: applicant `a`'s most preferred non-f-post (possibly `l(a)`).
    pub fn s(&self, a: usize) -> usize {
        self.s[a].get()
    }

    /// The whole `f` map as a slice (one entry per applicant).
    pub fn f_slice(&self) -> &[Idx] {
        &self.f
    }

    /// The whole `s` map as a slice (one entry per applicant).
    pub fn s_slice(&self) -> &[Idx] {
        &self.s
    }

    /// The f-post marking over all extended posts, as a slice.
    pub fn is_f_post_slice(&self) -> &[bool] {
        &self.is_f_post
    }

    /// True iff the extended post `p` is an f-post.
    pub fn is_f_post(&self, p: usize) -> bool {
        self.is_f_post[p]
    }

    /// The f-posts, in increasing id order.
    pub fn f_posts(&self) -> Vec<usize> {
        (0..self.total_posts())
            .filter(|&p| self.is_f_post[p])
            .collect()
    }

    /// The s-posts (distinct values of `s(a)`), in increasing id order.
    pub fn s_posts(&self) -> Vec<usize> {
        let mut mark = vec![false; self.total_posts()];
        for &p in &self.s {
            mark[p] = true;
        }
        (0..self.total_posts()).filter(|&p| mark[p]).collect()
    }

    /// `f⁻¹(p)`: the applicants whose first choice is `p`.
    pub fn f_inverse(&self, p: usize) -> Vec<usize> {
        (0..self.num_applicants)
            .filter(|&a| self.f[a].get() == p)
            .collect()
    }

    /// True iff extended post `p` occurs in the reduced graph (as some
    /// applicant's f-post or s-post).
    pub fn in_reduced_graph(&self, p: usize) -> bool {
        self.is_f_post[p] || self.s.contains(&Idx::new(p))
    }

    /// The reduced graph as a bipartite graph: left vertices are applicants,
    /// right vertices are extended posts, and each applicant has exactly the
    /// two edges `(a, f(a))` and `(a, s(a))`.  Built through the CSR fast
    /// path — every applicant's row is the two-element slice `[f(a), s(a)]`.
    pub fn to_bipartite(&self) -> BipartiteGraph {
        let offsets: Vec<u32> = (0..=self.num_applicants as u32).map(|a| 2 * a).collect();
        let mut flat = Vec::with_capacity(2 * self.num_applicants);
        for a in 0..self.num_applicants {
            flat.push(self.f[a]);
            flat.push(self.s[a]);
        }
        BipartiteGraph::from_left_csr(self.num_applicants, self.total_posts(), offsets, flat)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The instance of Figure 1 in the paper (applicants a1..a8, posts
    /// p1..p9 — zero-indexed here).
    pub fn figure1_instance() -> PrefInstance {
        PrefInstance::new_strict(
            9,
            vec![
                vec![0, 3, 4, 1, 5],
                vec![3, 4, 6, 1, 7],
                vec![3, 0, 2, 7],
                vec![0, 6, 3, 2, 8],
                vec![4, 0, 6, 1, 5],
                vec![6, 5],
                vec![6, 3, 7, 1],
                vec![6, 3, 0, 4, 8, 2],
            ],
        )
        .unwrap()
    }

    #[test]
    fn figure2_reduced_lists() {
        // Figure 2(a): the reduced preference lists of the paper's example.
        let inst = figure1_instance();
        let t = DepthTracker::new();
        let g = ReducedGraph::build_parallel(&inst, &t).unwrap();

        // f-posts are {p1, p4, p5, p7} = ids {0, 3, 4, 6}.
        assert_eq!(g.f_posts(), vec![0, 3, 4, 6]);
        // s-posts are {p2, p3, p6, p8, p9} = ids {1, 2, 5, 7, 8}.
        assert_eq!(g.s_posts(), vec![1, 2, 5, 7, 8]);

        let expected: Vec<(usize, usize)> = vec![
            (0, 1), // a1: p1 p2
            (3, 1), // a2: p4 p2
            (3, 2), // a3: p4 p3
            (0, 2), // a4: p1 p3
            (4, 1), // a5: p5 p2
            (6, 5), // a6: p7 p6
            (6, 7), // a7: p7 p8
            (6, 8), // a8: p7 p9
        ];
        for (a, &(fa, sa)) in expected.iter().enumerate() {
            assert_eq!(g.f(a), fa, "f(a{})", a + 1);
            assert_eq!(g.s(a), sa, "s(a{})", a + 1);
        }
    }

    #[test]
    fn parallel_and_sequential_agree() {
        let inst = figure1_instance();
        let t = DepthTracker::new();
        assert_eq!(
            ReducedGraph::build_parallel(&inst, &t).unwrap(),
            ReducedGraph::build_sequential(&inst).unwrap()
        );
    }

    #[test]
    fn last_resort_becomes_s_post_when_all_choices_are_f_posts() {
        // Applicant 1 ranks only post 0, which is an f-post (their own first
        // choice), so s(1) must be the last resort l(1).
        let inst = PrefInstance::new_strict(2, vec![vec![0, 1], vec![0]]).unwrap();
        let t = DepthTracker::new();
        let g = ReducedGraph::build_parallel(&inst, &t).unwrap();
        assert_eq!(g.f(1), 0);
        assert_eq!(g.s(1), inst.last_resort(1));
        assert!(g.in_reduced_graph(inst.last_resort(1)));
        assert!(!g.in_reduced_graph(inst.last_resort(0))); // a0 has s(a0) = p1
        assert_eq!(g.s(0), 1);
    }

    #[test]
    fn f_and_s_are_always_distinct() {
        let inst = figure1_instance();
        let g = ReducedGraph::build_sequential(&inst).unwrap();
        for a in 0..inst.num_applicants() {
            assert_ne!(g.f(a), g.s(a));
            assert!(g.is_f_post(g.f(a)));
            assert!(!g.is_f_post(g.s(a)));
        }
    }

    #[test]
    fn ties_are_rejected() {
        let tied = PrefInstance::new_with_ties(2, vec![vec![vec![0, 1]]]).unwrap();
        let t = DepthTracker::new();
        assert_eq!(
            ReducedGraph::build_parallel(&tied, &t),
            Err(PopularError::TiesNotSupported)
        );
        assert_eq!(
            ReducedGraph::build_sequential(&tied),
            Err(PopularError::TiesNotSupported)
        );
    }

    #[test]
    fn f_inverse_and_bipartite_view() {
        let inst = figure1_instance();
        let g = ReducedGraph::build_sequential(&inst).unwrap();
        assert_eq!(g.f_inverse(6), vec![5, 6, 7]); // p7 is first choice of a6, a7, a8
        assert_eq!(g.f_inverse(4), vec![4]); // p5 only of a5
        assert!(g.f_inverse(1).is_empty()); // p2 is nobody's first choice

        let bg = g.to_bipartite();
        assert_eq!(bg.n_left(), 8);
        assert_eq!(bg.num_edges(), 16);
        for a in 0..8 {
            assert_eq!(bg.degree_left(a), 2);
            assert!(bg.has_edge(a, g.f(a)));
            assert!(bg.has_edge(a, g.s(a)));
        }
    }
}
