//! Matching profiles and the `≻_R` / `≺_F` orders (Section IV-E), plus the
//! per-kernel phase clock the bench harness surfaces as `--profile`.
//!
//! The *profile* of a matching is the vector `(x₁, …, x_{n₂+1})` where `x_i`
//! counts the applicants matched to their `i`-th ranked post; an applicant on
//! its last resort counts at rank `n₂ + 1` regardless of its list length.
//! A *rank-maximal* popular matching maximises the profile in the
//! left-to-right lexicographic order `≻_R`; a *fair* popular matching
//! minimises it in the right-to-left order `≺_F`.

use std::cmp::Ordering;
use std::time::Duration;

use pm_pram::phaseclock::{self, slot};

use crate::instance::{Assignment, PrefInstance};

/// The timed kernels of the solve pipeline.  [`Reduce`](SolvePhase::Reduce),
/// [`Algorithm2`](SolvePhase::Algorithm2) and [`Promote`](SolvePhase::Promote)
/// partition a solve top-to-bottom; [`Census`](SolvePhase::Census) (the fused
/// offsets-plus-census scan) and [`Jump`](SolvePhase::Jump) (pointer
/// jumping / min-label doubling) are sub-spans *inside* Algorithm 2; the
/// three `Hk*` phases partition the Hopcroft–Karp referee of the ties
/// pipeline (`solve_ties` / the rank-1 reduction).  The entries therefore do
/// not sum to any single pipeline's wall time.
///
/// This enum is the typed front door of the process-global clock in
/// [`pm_pram::phaseclock`] — the accumulators live one crate below so that
/// `pm_matching` (which `pm_popular` depends on, not the reverse) can charge
/// the referee's spans into the same table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolvePhase {
    /// Reduced-graph construction (`build_into`).
    Reduce,
    /// Algorithm 2 end to end (CSR build, peeling, even-cycle finish).
    Algorithm2,
    /// The promotion pass of Algorithm 1.
    Promote,
    /// The fused CSR-offsets + degree-census scan inside Algorithm 2.
    Census,
    /// List ranking: pointer jumping and min-label cycle doubling.
    Jump,
    /// Hopcroft–Karp BFS layering sweeps.
    HkBfs,
    /// Hopcroft–Karp layered DFS sweeps (path search + in-place flips).
    HkDfs,
    /// Hopcroft–Karp final matching write-out.
    HkAugment,
}

impl SolvePhase {
    /// Number of phases (the size of a [`PhaseTimings`] table).
    pub const COUNT: usize = phaseclock::PHASE_SLOTS;
    /// Every phase, in display order.
    pub const ALL: [SolvePhase; Self::COUNT] = [
        SolvePhase::Reduce,
        SolvePhase::Algorithm2,
        SolvePhase::Promote,
        SolvePhase::Census,
        SolvePhase::Jump,
        SolvePhase::HkBfs,
        SolvePhase::HkDfs,
        SolvePhase::HkAugment,
    ];

    /// Stable lowercase name (used as the JSON key by the harness).
    pub fn name(self) -> &'static str {
        match self {
            SolvePhase::Reduce => "reduce",
            SolvePhase::Algorithm2 => "algorithm2",
            SolvePhase::Promote => "promote",
            SolvePhase::Census => "census",
            SolvePhase::Jump => "jump",
            SolvePhase::HkBfs => "hk_bfs",
            SolvePhase::HkDfs => "hk_dfs",
            SolvePhase::HkAugment => "hk_augment",
        }
    }

    fn index(self) -> usize {
        match self {
            SolvePhase::Reduce => slot::REDUCE,
            SolvePhase::Algorithm2 => slot::ALGORITHM2,
            SolvePhase::Promote => slot::PROMOTE,
            SolvePhase::Census => slot::CENSUS,
            SolvePhase::Jump => slot::JUMP,
            SolvePhase::HkBfs => slot::HK_BFS,
            SolvePhase::HkDfs => slot::HK_DFS,
            SolvePhase::HkAugment => slot::HK_AUGMENT,
        }
    }
}

/// Turns the phase clock on or off (off by default).
pub fn enable_phase_timings(on: bool) {
    phaseclock::enable(on);
}

/// Zeroes every phase accumulator.
pub fn reset_phase_timings() {
    phaseclock::reset();
}

/// Snapshot of the accumulated per-phase wall time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseTimings(pub [Duration; SolvePhase::COUNT]);

impl PhaseTimings {
    /// The accumulated time of one phase.
    pub fn get(&self, phase: SolvePhase) -> Duration {
        self.0[phase.index()]
    }

    /// `(name, duration)` pairs in display order.
    pub fn entries(&self) -> [(&'static str, Duration); SolvePhase::COUNT] {
        SolvePhase::ALL.map(|p| (p.name(), self.get(p)))
    }
}

/// Reads the current accumulated phase timings.
pub fn phase_timings() -> PhaseTimings {
    PhaseTimings(SolvePhase::ALL.map(|p| Duration::from_nanos(phaseclock::nanos(p.index()))))
}

/// An RAII span: adds its elapsed wall time to its phase on drop.  A no-op
/// (one relaxed load, no clock read) while the phase clock is disabled.
pub type PhaseSpan = phaseclock::PhaseSpan;

/// Opens a timing span for `phase` (see [`PhaseSpan`]).
pub fn time_phase(phase: SolvePhase) -> PhaseSpan {
    phaseclock::span(phase.index())
}

/// The profile vector of a matching (index `i` = count at rank `i + 1`;
/// the final entry counts last resorts).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Profile(pub Vec<u64>);

impl Profile {
    /// Computes the profile of `m` with respect to `inst`.
    pub fn of(inst: &PrefInstance, m: &Assignment) -> Self {
        let mut counts = vec![0u64; inst.num_posts() + 1];
        for a in 0..inst.num_applicants() {
            let p = m.post(a);
            if p == inst.last_resort(a) {
                *counts.last_mut().expect("profile has at least one slot") += 1;
            } else {
                let rank = inst.rank(a, p).expect("matched post must be acceptable");
                counts[rank] += 1;
            }
        }
        Profile(counts)
    }

    /// Compares two profiles in the rank-maximal order `≻_R`: the first
    /// position (from the front) where they differ decides; larger is
    /// `Ordering::Greater` (better).
    pub fn cmp_rank_maximal(&self, other: &Profile) -> Ordering {
        debug_assert_eq!(self.0.len(), other.0.len());
        for (a, b) in self.0.iter().zip(other.0.iter()) {
            match a.cmp(b) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }

    /// Compares two profiles in the fair order `≺_F`: the last position
    /// (from the back) where they differ decides; the profile with the
    /// smaller entry there is `Ordering::Less` (better for fairness, since
    /// fair popular matchings are `≺_F`-minimal).
    pub fn cmp_fair(&self, other: &Profile) -> Ordering {
        debug_assert_eq!(self.0.len(), other.0.len());
        for (a, b) in self.0.iter().rev().zip(other.0.iter().rev()) {
            match a.cmp(b) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }

    /// Total number of applicants accounted for (sanity helper).
    pub fn total(&self) -> u64 {
        self.0.iter().sum()
    }

    /// Number of applicants **not** on their last resort — the matching size.
    pub fn size(&self) -> u64 {
        self.total() - self.0.last().copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inst() -> PrefInstance {
        PrefInstance::new_strict(3, vec![vec![0, 1], vec![0, 2], vec![2, 1, 0]]).unwrap()
    }

    #[test]
    fn profile_counts_ranks_and_last_resorts() {
        let i = inst();
        // a0 -> p0 (rank 1), a1 -> p2 (rank 2), a2 -> last resort.
        let m = Assignment::new(vec![0, 2, i.last_resort(2)]);
        let p = Profile::of(&i, &m);
        assert_eq!(p.0, vec![1, 1, 0, 1]);
        assert_eq!(p.total(), 3);
        assert_eq!(p.size(), 2);
    }

    #[test]
    fn rank_maximal_order_prefers_more_first_choices() {
        let a = Profile(vec![2, 0, 1, 0]);
        let b = Profile(vec![1, 2, 0, 0]);
        assert_eq!(a.cmp_rank_maximal(&b), Ordering::Greater);
        assert_eq!(b.cmp_rank_maximal(&a), Ordering::Less);
        assert_eq!(a.cmp_rank_maximal(&a), Ordering::Equal);
    }

    #[test]
    fn fair_order_penalises_bad_ranks_first() {
        // b has an applicant at the worst rank, a does not: a ≺_F b.
        let a = Profile(vec![1, 2, 1, 0]);
        let b = Profile(vec![3, 0, 0, 1]);
        assert_eq!(a.cmp_fair(&b), Ordering::Less);
        assert_eq!(b.cmp_fair(&a), Ordering::Greater);
        assert_eq!(a.cmp_fair(&a), Ordering::Equal);
    }

    #[test]
    fn fair_order_distinguishes_middle_ranks() {
        let a = Profile(vec![1, 2, 1, 0]);
        let c = Profile(vec![2, 1, 1, 0]);
        // From the back: rank 4 equal, rank 3 equal, rank 2: a has 2, c has 1
        // -> c is smaller there, so c ≺_F a.
        assert_eq!(c.cmp_fair(&a), Ordering::Less);
        assert_eq!(a.cmp_fair(&c), Ordering::Greater);
    }

    #[test]
    fn phase_clock_accumulates_only_while_enabled() {
        // Disabled (the default): spans are no-ops.
        reset_phase_timings();
        {
            let _g = time_phase(SolvePhase::Census);
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        assert_eq!(
            phase_timings().get(SolvePhase::Census),
            std::time::Duration::ZERO
        );

        // Enabled: the span's elapsed time lands in its cell.  Other tests
        // in this process may add to the cells concurrently, so assert
        // monotonic growth, not exact values.
        enable_phase_timings(true);
        {
            let _g = time_phase(SolvePhase::Census);
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let after = phase_timings();
        enable_phase_timings(false);
        assert!(after.get(SolvePhase::Census) >= std::time::Duration::from_millis(2));
        assert_eq!(after.entries()[3].0, "census");
        assert_eq!(SolvePhase::ALL.len(), SolvePhase::COUNT);
    }

    #[test]
    fn fair_popular_matching_is_maximum_cardinality() {
        // A profile with fewer last resorts is always ≺_F-smaller, matching
        // the paper's remark that fair popular matchings are maximum
        // cardinality.
        let fewer_lr = Profile(vec![0, 0, 3, 1]);
        let more_lr = Profile(vec![3, 0, 0, 2]);
        assert_eq!(fewer_lr.cmp_fair(&more_lr), Ordering::Less);
    }
}
