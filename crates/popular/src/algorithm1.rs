//! Algorithm 1: the NC popular matching algorithm (strict preference lists).
//!
//! The driver is exactly the paper's three lines: build the reduced graph
//! `G'`, find an applicant-complete matching `M` of `G'` with Algorithm 2
//! (or report that none exists), and finally promote one applicant of
//! `f⁻¹(p)` to every f-post `p` left unmatched by `M`.  By Theorem 1 the
//! result is a popular matching, and every step is a constant number of
//! parallel rounds on top of Algorithm 2.

use pm_pram::tracker::DepthTracker;
use pm_pram::{Idx, Workspace};

use crate::error::PopularError;
use crate::instance::{Assignment, PrefInstance};
use crate::reduced::ReducedGraph;
use crate::solver::PopularSolver;

/// Detailed result of Algorithm 1, including the intermediate objects the
/// benchmarks and the switching-graph algorithms reuse.
#[derive(Debug, Clone)]
pub struct PopularMatchingRun {
    /// The reduced graph `G'`.
    pub reduced: ReducedGraph,
    /// The popular matching.
    pub matching: Assignment,
    /// Number of degree-1 peeling rounds executed by Algorithm 2.
    pub peel_rounds: u32,
}

/// Runs Algorithm 1 and returns the full run record.
///
/// This is the documented simple path: a thin wrapper that runs a fresh
/// [`PopularSolver`] (identical pipeline, identical output) and hands the
/// solver's internal depth/work accounting back to the caller's tracker.
/// Callers serving many requests should hold a `PopularSolver` instead —
/// warm solves reuse all scratch and perform zero heap allocations.
///
/// # Errors
/// * [`PopularError::TiesNotSupported`] if a preference list has a tie.
/// * [`PopularError::NoPopularMatching`] if the instance has no popular
///   matching (Algorithm 2 found no applicant-complete matching of `G'`).
pub fn popular_matching_run(
    inst: &PrefInstance,
    tracker: &DepthTracker,
) -> Result<PopularMatchingRun, PopularError> {
    let mut solver = PopularSolver::new(0, 0);
    let result = solver.solve(inst).map(|_| ());
    tracker.absorb(solver.stats());
    result?;
    let matching = solver.take_matching();
    let peel_rounds = solver.peel_rounds();
    Ok(PopularMatchingRun {
        reduced: solver.into_reduced_graph(),
        matching,
        peel_rounds,
    })
}

/// Runs Algorithm 1 and returns just the popular matching (see
/// [`popular_matching_run`] for the wrapper-over-solver contract).
pub fn popular_matching_nc(
    inst: &PrefInstance,
    tracker: &DepthTracker,
) -> Result<Assignment, PopularError> {
    let mut solver = PopularSolver::new(0, 0);
    let result = solver.solve(inst).map(|_| ());
    tracker.absorb(solver.stats());
    result.map(|()| solver.take_matching())
}

/// The promotion step (lines 5–7 of Algorithm 1): for every f-post `p` that
/// is unmatched in `M`, pick any applicant of `f⁻¹(p)` (we take the smallest
/// id for determinism) and move it from `s(a)` to `p = f(a)`.
pub fn promote_unmatched_f_posts(
    reduced: &ReducedGraph,
    matching: &mut Assignment,
    tracker: &DepthTracker,
) {
    promote_into(
        reduced.f_slice(),
        reduced.s_slice(),
        reduced.is_f_post_slice(),
        matching.as_mut_slice(),
        &mut Workspace::new(),
        tracker,
    );
}

/// Allocation-free core of the promotion step, on raw reduced-graph
/// buffers.  The sets `f⁻¹(p)` are disjoint across f-posts, so all
/// promotions are independent and the step is a single parallel round: one
/// concurrent-write pass elects the smallest applicant of every `f⁻¹(p)`
/// simultaneously (rather than one `f⁻¹` scan per unmatched post, which is
/// quadratic when many f-posts are left unmatched).  The election buffers
/// are checked out of `ws`.
pub fn promote_into(
    f: &[Idx],
    s: &[Idx],
    is_f_post: &[bool],
    matched: &mut [Idx],
    ws: &mut Workspace,
    tracker: &DepthTracker,
) {
    let n_a = f.len();
    let total_posts = is_f_post.len();
    tracker.round();
    tracker.work(n_a as u64);

    let mut post_matched = ws.take_bool(total_posts, false);
    for &p in matched.iter() {
        post_matched[p] = true;
    }
    // candidate[p] = the smallest applicant with f(a) = p (reverse traversal
    // makes the smallest id the last, winning, write).  Every f-post — the
    // only slots read below — is written, so the checkout skips the fill.
    let mut candidate = ws.take_idx_dirty(total_posts, Idx::NONE);
    for a in (0..n_a).rev() {
        candidate[f[a]] = Idx::new(a);
    }
    for p in 0..total_posts {
        if !is_f_post[p] || post_matched[p] {
            continue;
        }
        let a = candidate[p];
        debug_assert!(a.is_some(), "an f-post has a first-choice applicant");
        debug_assert_eq!(matched[a], s[a]);
        matched[a] = Idx::new(p);
        post_matched[p] = true;
    }
    ws.put_bool(post_matched);
    ws.put_idx(candidate);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{is_popular_brute_force, is_popular_characterization};

    fn figure1_instance() -> PrefInstance {
        PrefInstance::new_strict(
            9,
            vec![
                vec![0, 3, 4, 1, 5],
                vec![3, 4, 6, 1, 7],
                vec![3, 0, 2, 7],
                vec![0, 6, 3, 2, 8],
                vec![4, 0, 6, 1, 5],
                vec![6, 5],
                vec![6, 3, 7, 1],
                vec![6, 3, 0, 4, 8, 2],
            ],
        )
        .unwrap()
    }

    #[test]
    fn paper_example_produces_a_popular_matching() {
        let inst = figure1_instance();
        let t = DepthTracker::new();
        let run = popular_matching_run(&inst, &t).expect("Figure 1 admits a popular matching");
        let m = &run.matching;
        assert!(m.is_valid(&inst));
        assert!(is_popular_characterization(&inst, m));
        // Section III-C: p7 (id 6) is the f-post left unmatched by the
        // applicant-complete matching, and one of a6/a7/a8 is promoted to it.
        assert!(
            [5, 6, 7].iter().any(|&a| m.post(a) == 6),
            "one of a6, a7, a8 must be promoted to p7"
        );
        // All eight applicants end up on a real post (the example's popular
        // matching is applicant-perfect on real posts).
        assert_eq!(m.size(&inst), 8);
    }

    #[test]
    fn paper_example_matches_reported_matching_sizes() {
        // The matching reported in the paper matches a1..a8 to
        // p1 p2 p4 p3 p5 p7 p8 p9.  Our algorithm may pick a different but
        // equally popular matching; both must have every f-post matched and
        // every applicant on f(a) or s(a).
        let inst = figure1_instance();
        let t = DepthTracker::new();
        let run = popular_matching_run(&inst, &t).unwrap();
        let paper = Assignment::new(vec![0, 1, 3, 2, 4, 6, 7, 8]);
        assert!(paper.is_valid(&inst));
        assert!(is_popular_characterization(&inst, &paper));
        assert!(is_popular_characterization(&inst, &run.matching));
    }

    #[test]
    fn no_popular_matching_is_reported() {
        // Three applicants fighting over the same two posts (Section III-C
        // style counterexample): no popular matching exists.
        let inst = PrefInstance::new_strict(3, vec![vec![0, 2], vec![0, 2], vec![0, 2]]).unwrap();
        let t = DepthTracker::new();
        assert_eq!(
            popular_matching_nc(&inst, &t),
            Err(PopularError::NoPopularMatching)
        );
    }

    #[test]
    fn ties_rejected() {
        let tied = PrefInstance::new_with_ties(2, vec![vec![vec![0, 1]]]).unwrap();
        let t = DepthTracker::new();
        assert_eq!(
            popular_matching_nc(&tied, &t),
            Err(PopularError::TiesNotSupported)
        );
    }

    #[test]
    fn single_applicant_gets_first_choice() {
        let inst = PrefInstance::new_strict(3, vec![vec![2, 0]]).unwrap();
        let t = DepthTracker::new();
        let m = popular_matching_nc(&inst, &t).unwrap();
        assert_eq!(m.post(0), 2);
    }

    #[test]
    fn outputs_are_popular_by_brute_force_on_small_instances() {
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        let mut found = 0;
        for _ in 0..300 {
            let n_a = rng.random_range(1..5);
            let n_p = rng.random_range(1..5);
            let lists: Vec<Vec<usize>> = (0..n_a)
                .map(|_| {
                    let mut posts: Vec<usize> = (0..n_p).collect();
                    // random subset in random order
                    for i in (1..posts.len()).rev() {
                        posts.swap(i, rng.random_range(0..=i));
                    }
                    let keep = rng.random_range(1..=posts.len());
                    posts.truncate(keep);
                    posts
                })
                .collect();
            let inst = PrefInstance::new_strict(n_p, lists).unwrap();
            let t = DepthTracker::new();
            match popular_matching_nc(&inst, &t) {
                Ok(m) => {
                    assert!(m.is_valid(&inst));
                    assert!(is_popular_characterization(&inst, &m));
                    assert!(is_popular_brute_force(&inst, &m));
                    found += 1;
                }
                Err(PopularError::NoPopularMatching) => {
                    // Cross-check with brute force: no valid assignment may be popular.
                    assert!(
                        crate::verify::brute_force_popular_matching(&inst).is_none(),
                        "algorithm said none, but brute force found a popular matching"
                    );
                }
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert!(
            found > 50,
            "expected plenty of solvable instances, got {found}"
        );
    }
}
