//! Optimal (weighted), rank-maximal and fair popular matchings
//! (Section IV-E).
//!
//! With a weight `w(a, p)` on every acceptable pair, an *optimal* popular
//! matching maximises (or minimises) the total weight among popular
//! matchings.  By Theorem 9 the optimum is reached from an arbitrary popular
//! matching by choosing, independently per switching-graph component, the
//! move that most improves the total weight — exactly like Algorithm 3 but
//! with weights instead of cardinality margins.  The rank-maximal and fair
//! variants are the exponential weight assignments of the paper (weights up
//! to `n₁^{n₂+1}`, hence the [`BigUint`] arithmetic); their correctness is
//! cross-checked against lexicographic profile comparison in the tests.

use pm_linalg::BigUint;
use pm_pram::tracker::DepthTracker;

use crate::algorithm1::popular_matching_run;
use crate::error::PopularError;
use crate::instance::{Assignment, PrefInstance};
use crate::switching::{ComponentKind, SwitchingGraph};

/// Whether the optimal popular matching maximises or minimises total weight.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Objective {
    /// Maximise the total weight.
    Maximize,
    /// Minimise the total weight.
    Minimize,
}

/// Computes an optimal popular matching for an arbitrary non-negative weight
/// function `w(applicant, extended post)`.
///
/// The weight function is consulted only on pairs `(a, f(a))`, `(a, s(a))`
/// — the only pairs a popular matching can use.
pub fn optimal_popular_matching<W>(
    inst: &PrefInstance,
    weight: W,
    objective: Objective,
    tracker: &DepthTracker,
) -> Result<Assignment, PopularError>
where
    W: Fn(usize, usize) -> BigUint,
{
    let run = popular_matching_run(inst, tracker)?;
    let sg = SwitchingGraph::build(&run.reduced, &run.matching, tracker);
    let components = sg.components(tracker);
    let total_posts = run.reduced.total_posts();

    // Per matched post p (edge a = applicant at p): weight if a stays on p,
    // and weight if a switches to succ(p).
    let stay = |p: usize| -> BigUint {
        let a = sg.applicant_at(p).expect("matched post");
        weight(a, p)
    };
    let switch = |p: usize| -> BigUint {
        let a = sg.applicant_at(p).expect("matched post");
        weight(a, sg.successor(p).expect("matched post has a successor"))
    };

    // Suffix sums towards the sink for every tree vertex, computed once with
    // memoised chain walks (O(total_posts) pushes overall).
    let fg = sg.functional_graph();
    let on_cycle = fg.on_cycle_sequential();
    let mut suffix_stay: Vec<Option<BigUint>> = vec![None; total_posts];
    let mut suffix_switch: Vec<Option<BigUint>> = vec![None; total_posts];
    for start in 0..total_posts {
        if suffix_stay[start].is_some() || on_cycle[start] {
            continue;
        }
        // Walk down to the first memoised vertex, the sink, or a cycle entry.
        let mut chain = Vec::new();
        let mut v = start;
        loop {
            if suffix_stay[v].is_some() || on_cycle[v] || sg.successor(v).is_none() {
                break;
            }
            chain.push(v);
            v = sg.successor(v).expect("checked above");
        }
        let (mut acc_stay, mut acc_switch) = if on_cycle[v] {
            // Paths that run into a cycle are not switching paths; give them
            // zero suffixes (they are filtered out later anyway).
            (BigUint::zero(), BigUint::zero())
        } else {
            (
                suffix_stay[v].clone().unwrap_or_else(BigUint::zero),
                suffix_switch[v].clone().unwrap_or_else(BigUint::zero),
            )
        };
        for &p in chain.iter().rev() {
            acc_stay = acc_stay.add(&stay(p));
            acc_switch = acc_switch.add(&switch(p));
            suffix_stay[p] = Some(acc_stay.clone());
            suffix_switch[p] = Some(acc_switch.clone());
        }
    }

    // "x improves on y" under the objective, comparing gains by cross sums to
    // avoid signed arithmetic: switch_x − stay_x > switch_y − stay_y  ⟺
    // switch_x + stay_y > switch_y + stay_x.
    let better = |sw_x: &BigUint, st_x: &BigUint, sw_y: &BigUint, st_y: &BigUint| -> bool {
        let lhs = sw_x.add(st_y);
        let rhs = sw_y.add(st_x);
        match objective {
            Objective::Maximize => lhs > rhs,
            Objective::Minimize => lhs < rhs,
        }
    };

    let mut improved = run.matching.clone();
    for comp in &components {
        match &comp.kind {
            ComponentKind::Cycle(cycle) => {
                let mut cycle_stay = BigUint::zero();
                let mut cycle_switch = BigUint::zero();
                for &p in cycle {
                    cycle_stay = cycle_stay.add(&stay(p));
                    cycle_switch = cycle_switch.add(&switch(p));
                }
                let apply = match objective {
                    Objective::Maximize => cycle_switch > cycle_stay,
                    Objective::Minimize => cycle_switch < cycle_stay,
                };
                if apply {
                    sg.apply_cycle(&mut improved, cycle);
                }
            }
            ComponentKind::Tree { sink } => {
                // Candidates: s-posts other than the sink; "do nothing" is the
                // zero-gain option.
                let mut best: Option<(usize, BigUint, BigUint)> = None;
                for &q in &comp.posts {
                    if q == *sink || !sg.is_s_post(q) || sg.successor(q).is_none() {
                        continue;
                    }
                    let sw = suffix_switch[q]
                        .clone()
                        .expect("tree vertex has suffix sums");
                    let st = suffix_stay[q].clone().expect("tree vertex has suffix sums");
                    let is_better = match &best {
                        None => true,
                        Some((_, b_sw, b_st)) => better(&sw, &st, b_sw, b_st),
                    };
                    if is_better {
                        best = Some((q, sw, st));
                    }
                }
                if let Some((q, sw, st)) = best {
                    let apply = match objective {
                        Objective::Maximize => sw > st,
                        Objective::Minimize => sw < st,
                    };
                    if apply {
                        sg.apply_path(&mut improved, q);
                    }
                }
            }
        }
    }
    Ok(improved)
}

/// Total weight of a matching under a weight function (last resorts included
/// — pass a function that maps them to zero if they should not count).
pub fn total_weight<W>(inst: &PrefInstance, m: &Assignment, weight: W) -> BigUint
where
    W: Fn(usize, usize) -> BigUint,
{
    let mut sum = BigUint::zero();
    for a in 0..inst.num_applicants() {
        sum = sum.add(&weight(a, m.post(a)));
    }
    sum
}

fn weight_base(inst: &PrefInstance) -> u64 {
    // The paper states the weights with base n₁.  For the total weight to
    // order matchings exactly like the lexicographic profile orders, the base
    // must strictly exceed the largest possible digit (x_k ≤ n₁ applicants can
    // share a rank), so we use n₁ + 1 (at least 2); this only makes the
    // weights marginally larger and keeps them at Õ(n) bits.
    (inst.num_applicants() as u64 + 1).max(2)
}

/// The largest exponent any realised rank can need: the paper uses ranks up
/// to `n₂ + 1`, but no applicant is ever matched beyond the length of its
/// own list, so all profile entries between the longest list and `n₂` are
/// zero for every matching and the exponent range can be compressed to
/// `1 ..= max_list_len + 1` without changing any comparison.  This keeps the
/// weights at `O(list_len · log n)` bits instead of `Õ(n)` bits — the same
/// numbers the paper's argument needs, just without the common zero digits.
fn compressed_top_rank(inst: &PrefInstance) -> u32 {
    (0..inst.num_applicants())
        .map(|a| inst.num_ranks(a) as u32)
        .max()
        .unwrap_or(0)
        + 1
}

/// The rank-maximal weight of the pair `(a, p)`: `B^(R − k)` for the `k`-th
/// ranked post (with `R` the compressed top rank, standing in for the
/// paper's `n₂ + 1`), `0` for the last resort.
pub fn rank_maximal_weight(inst: &PrefInstance, a: usize, p: usize) -> BigUint {
    if p == inst.last_resort(a) {
        return BigUint::zero();
    }
    let k = inst.rank(a, p).expect("weight of an acceptable pair") as u32 + 1;
    let exponent = compressed_top_rank(inst).saturating_sub(k);
    BigUint::pow_u64(weight_base(inst), exponent)
}

/// The fair weight of the pair `(a, p)`: `B^k` for the `k`-th ranked post
/// and `B^R` for the last resort (again with the compressed top rank `R`
/// standing in for the paper's `n₂ + 1`).
pub fn fair_weight(inst: &PrefInstance, a: usize, p: usize) -> BigUint {
    let k = if p == inst.last_resort(a) {
        compressed_top_rank(inst)
    } else {
        inst.rank(a, p).expect("weight of an acceptable pair") as u32 + 1
    };
    BigUint::pow_u64(weight_base(inst), k)
}

/// A rank-maximal popular matching: lexicographically maximises the profile
/// among popular matchings (`≻_R`).
pub fn rank_maximal_popular_matching(
    inst: &PrefInstance,
    tracker: &DepthTracker,
) -> Result<Assignment, PopularError> {
    optimal_popular_matching(
        inst,
        |a, p| rank_maximal_weight(inst, a, p),
        Objective::Maximize,
        tracker,
    )
}

/// A fair popular matching: lexicographically minimises the profile from the
/// worst rank down (`≺_F`); always maximum cardinality.
pub fn fair_popular_matching(
    inst: &PrefInstance,
    tracker: &DepthTracker,
) -> Result<Assignment, PopularError> {
    optimal_popular_matching(
        inst,
        |a, p| fair_weight(inst, a, p),
        Objective::Minimize,
        tracker,
    )
}

/// Maximum-cardinality popular matching expressed as a weight problem
/// (weight 1 on real posts, 0 on last resorts) — the special case noted in
/// Section IV-E, used to cross-check Algorithm 3.
pub fn maximum_cardinality_via_weights(
    inst: &PrefInstance,
    tracker: &DepthTracker,
) -> Result<Assignment, PopularError> {
    optimal_popular_matching(
        inst,
        |a, p| {
            if p == inst.last_resort(a) {
                BigUint::zero()
            } else {
                BigUint::one()
            }
        },
        Objective::Maximize,
        tracker,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::max_cardinality::maximum_cardinality_popular_matching_nc;
    use crate::profile::Profile;
    use crate::verify::{enumerate_assignments, is_popular_characterization};
    use std::cmp::Ordering;

    fn random_instance(rng: &mut impl rand::RngExt, max_a: usize, max_p: usize) -> PrefInstance {
        let n_a = rng.random_range(1..=max_a);
        let n_p = rng.random_range(1..=max_p);
        let lists: Vec<Vec<usize>> = (0..n_a)
            .map(|_| {
                let mut posts: Vec<usize> = (0..n_p).collect();
                for i in (1..posts.len()).rev() {
                    posts.swap(i, rng.random_range(0..=i));
                }
                posts.truncate(rng.random_range(1..=posts.len()));
                posts
            })
            .collect();
        PrefInstance::new_strict(n_p, lists).unwrap()
    }

    fn popular_matchings(inst: &PrefInstance) -> Vec<Assignment> {
        enumerate_assignments(inst)
            .into_iter()
            .filter(|m| is_popular_characterization(inst, m))
            .collect()
    }

    #[test]
    fn rank_maximal_profile_matches_brute_force() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let mut checked = 0;
        for _ in 0..150 {
            let inst = random_instance(&mut rng, 5, 4);
            let t = DepthTracker::new();
            let Ok(rm) = rank_maximal_popular_matching(&inst, &t) else {
                continue;
            };
            assert!(is_popular_characterization(&inst, &rm));
            let best = popular_matchings(&inst)
                .iter()
                .map(|m| Profile::of(&inst, m))
                .max_by(|a, b| a.cmp_rank_maximal(b))
                .unwrap();
            assert_eq!(
                Profile::of(&inst, &rm).cmp_rank_maximal(&best),
                Ordering::Equal,
                "rank-maximal profile mismatch for {inst:?}"
            );
            checked += 1;
        }
        assert!(checked > 40);
    }

    #[test]
    fn fair_profile_matches_brute_force() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut checked = 0;
        for _ in 0..150 {
            let inst = random_instance(&mut rng, 5, 4);
            let t = DepthTracker::new();
            let Ok(fair) = fair_popular_matching(&inst, &t) else {
                continue;
            };
            assert!(is_popular_characterization(&inst, &fair));
            let best = popular_matchings(&inst)
                .iter()
                .map(|m| Profile::of(&inst, m))
                .min_by(|a, b| a.cmp_fair(b))
                .unwrap();
            assert_eq!(
                Profile::of(&inst, &fair).cmp_fair(&best),
                Ordering::Equal,
                "fair profile mismatch for {inst:?}"
            );
            // Remark in the paper: fair ⇒ maximum cardinality.
            let max = maximum_cardinality_popular_matching_nc(&inst, &t).unwrap();
            assert_eq!(fair.size(&inst), max.size(&inst));
            checked += 1;
        }
        assert!(checked > 40);
    }

    #[test]
    fn weight_formulation_of_cardinality_agrees_with_algorithm3() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        for _ in 0..150 {
            let inst = random_instance(&mut rng, 6, 5);
            let t = DepthTracker::new();
            let via_weights = maximum_cardinality_via_weights(&inst, &t);
            let via_alg3 = maximum_cardinality_popular_matching_nc(&inst, &t);
            match (via_weights, via_alg3) {
                (Ok(a), Ok(b)) => assert_eq!(a.size(&inst), b.size(&inst)),
                (Err(x), Err(y)) => assert_eq!(x, y),
                (a, b) => panic!("disagreement: {a:?} vs {b:?}"),
            }
        }
    }

    #[test]
    fn custom_weights_are_maximised() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let mut checked = 0;
        for _ in 0..100 {
            let inst = random_instance(&mut rng, 5, 4);
            // A deterministic pseudo-random (but reproducible) weight table.
            let w = |a: usize, p: usize| -> BigUint {
                if p >= inst.num_posts() {
                    BigUint::zero()
                } else {
                    BigUint::from_u64(((a * 31 + p * 17) % 23 + 1) as u64)
                }
            };
            let t = DepthTracker::new();
            let Ok(opt) = optimal_popular_matching(&inst, w, Objective::Maximize, &t) else {
                continue;
            };
            let best = popular_matchings(&inst)
                .iter()
                .map(|m| total_weight(&inst, m, w))
                .max()
                .unwrap();
            assert_eq!(
                total_weight(&inst, &opt, w),
                best,
                "weight mismatch for {inst:?}"
            );
            checked += 1;
        }
        assert!(checked > 30);
    }

    #[test]
    fn weight_helpers_are_monotone_in_rank() {
        let inst = PrefInstance::new_strict(3, vec![vec![0, 1, 2]]).unwrap();
        // Better ranks get strictly larger rank-maximal weights …
        assert!(rank_maximal_weight(&inst, 0, 0) > rank_maximal_weight(&inst, 0, 1));
        assert!(rank_maximal_weight(&inst, 0, 1) > rank_maximal_weight(&inst, 0, 2));
        assert!(
            rank_maximal_weight(&inst, 0, 2) > rank_maximal_weight(&inst, 0, inst.last_resort(0))
        );
        // … and strictly smaller fair weights.
        assert!(fair_weight(&inst, 0, 0) < fair_weight(&inst, 0, 1));
        assert!(fair_weight(&inst, 0, 2) < fair_weight(&inst, 0, inst.last_resort(0)));
    }

    #[test]
    fn errors_propagate() {
        let infeasible =
            PrefInstance::new_strict(2, vec![vec![0, 1], vec![0, 1], vec![0, 1]]).unwrap();
        let t = DepthTracker::new();
        assert_eq!(
            rank_maximal_popular_matching(&infeasible, &t),
            Err(PopularError::NoPopularMatching)
        );
        assert_eq!(
            fair_popular_matching(&infeasible, &t),
            Err(PopularError::NoPopularMatching)
        );
    }
}
