//! Preference lists with ties: the Section V reduction.
//!
//! Theorem 11: *maximum-cardinality bipartite matching ≤_NC popular
//! matching*.  Given an arbitrary bipartite graph `G = (A ∪ B, E)`, build
//! the popular matching instance in which every edge has rank 1 (each
//! applicant is indifferent between all its acceptable posts) and **no**
//! last resorts are added.  Lemma 12: every popular matching of that
//! instance is a maximum-cardinality matching of `G`; Lemma 13: every
//! maximum-cardinality matching is popular.  So a popular-matching oracle
//! for instances with ties immediately solves maximum-cardinality bipartite
//! matching — which is why the paper leaves the ties case open (it is at
//! least as hard as bipartite matching, itself not known to be in NC).
//!
//! Executable artefacts here:
//!
//! * [`rank1_instance`] — the reduction's instance construction;
//! * [`popular_matching_rank1`] — a popular matching of the rank-1 instance,
//!   produced through the Lemma 13 oracle (a maximum matching);
//! * [`is_popular_rank1_brute`] — the definitional popularity check used to
//!   verify Lemmas 12 and 13 on small graphs (experiment E9).

use pm_graph::BipartiteGraph;
use pm_matching::hopcroft_karp::hopcroft_karp;
use pm_matching::matching::Matching;

use crate::error::PopularError;
use crate::instance::PrefInstance;

/// Builds the rank-1 (single tie group per applicant) instance of Theorem 11
/// from a bipartite graph.  Left vertices with no incident edge are rejected
/// (an instance requires non-empty preference lists; such vertices can never
/// be matched and should simply be dropped by the caller).
///
/// The graph's flat 32-bit CSR adjacency is handed to the instance
/// constructor as-is — no nested per-applicant group vectors are
/// materialised and no index widening happens on the way in.
pub fn rank1_instance(g: &BipartiteGraph) -> Result<PrefInstance, PopularError> {
    if (0..g.n_left()).any(|l| g.degree_left(l) == 0) {
        return Err(PopularError::InvalidInstance(
            "rank-1 reduction requires every applicant to have at least one acceptable post".into(),
        ));
    }
    let (offsets, flat) = g.left_csr();
    PrefInstance::new_rank1(g.n_right(), offsets, flat)
}

/// A popular matching of the rank-1 instance derived from `g`.
///
/// Section V gives no algorithm for popular matchings with ties (that is
/// exactly the open problem); Lemma 13 guarantees that any
/// maximum-cardinality matching *is* popular for the rank-1 construction, so
/// this oracle returns the Hopcroft–Karp maximum matching.  Its popularity
/// is verified definitionally in the tests via [`is_popular_rank1_brute`].
pub fn popular_matching_rank1(g: &BipartiteGraph) -> Matching {
    hopcroft_karp(g)
}

/// Counts the applicants that prefer `m1` to `m2` in the rank-1 instance:
/// all edges have the same rank, so an applicant prefers whichever matching
/// leaves it matched (being matched in both, or in neither, is indifference).
pub fn compare_rank1(m1: &Matching, m2: &Matching) -> (usize, usize) {
    let mut prefer1 = 0;
    let mut prefer2 = 0;
    for a in 0..m1.n_left() {
        match (m1.left(a), m2.left(a)) {
            (Some(_), None) => prefer1 += 1,
            (None, Some(_)) => prefer2 += 1,
            _ => {}
        }
    }
    (prefer1, prefer2)
}

/// Definitional popularity check for the rank-1 instance on small graphs:
/// enumerates every matching of `g` and verifies none is more popular than
/// `m`.  Exponential — intended for graphs with at most ~8 left vertices.
pub fn is_popular_rank1_brute(g: &BipartiteGraph, m: &Matching) -> bool {
    enumerate_matchings(g).iter().all(|other| {
        let (o, s) = compare_rank1(other, m);
        o <= s
    })
}

/// Lemma 12 check: a popular matching of the rank-1 instance must be a
/// maximum-cardinality matching of `g`.
pub fn lemma12_holds(g: &BipartiteGraph, popular: &Matching) -> bool {
    popular.size() == hopcroft_karp(g).size()
}

/// Lemma 13 check: a maximum-cardinality matching of `g` must be popular in
/// the rank-1 instance (verified definitionally, so only for small graphs).
pub fn lemma13_holds(g: &BipartiteGraph, maximum: &Matching) -> bool {
    maximum.size() == hopcroft_karp(g).size() && is_popular_rank1_brute(g, maximum)
}

/// Enumerates every matching of a bipartite graph (including the empty one).
/// Exponential — small graphs only.
pub fn enumerate_matchings(g: &BipartiteGraph) -> Vec<Matching> {
    let mut out = Vec::new();
    let mut used = vec![false; g.n_right()];
    let mut current: Vec<Option<usize>> = vec![None; g.n_left()];

    fn rec(
        g: &BipartiteGraph,
        l: usize,
        used: &mut Vec<bool>,
        current: &mut Vec<Option<usize>>,
        out: &mut Vec<Matching>,
    ) {
        if l == g.n_left() {
            out.push(Matching::from_left_assignment(current, g.n_right()));
            return;
        }
        current[l] = None;
        rec(g, l + 1, used, current, out);
        for &r in g.neighbors_left(l) {
            if !used[r] {
                used[r] = true;
                current[l] = Some(r.get());
                rec(g, l + 1, used, current, out);
                used[r] = false;
                current[l] = None;
            }
        }
    }

    rec(g, 0, &mut used, &mut current, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_graph(rng: &mut impl rand::RngExt, max_n: usize) -> BipartiteGraph {
        let n_left = rng.random_range(1..=max_n);
        let n_right = rng.random_range(1..=max_n);
        let mut edges = Vec::new();
        for l in 0..n_left {
            for r in 0..n_right {
                if rng.random_range(0..3) == 0 {
                    edges.push((l, r));
                }
            }
        }
        // Guarantee non-empty lists so the reduction instance is valid.
        for l in 0..n_left {
            edges.push((l, l % n_right));
        }
        BipartiteGraph::from_edges(n_left, n_right, &edges)
    }

    #[test]
    fn reduction_instance_has_one_tie_group_per_applicant() {
        let g = BipartiteGraph::from_edges(2, 3, &[(0, 0), (0, 2), (1, 1)]);
        let inst = rank1_instance(&g).unwrap();
        assert!(!inst.is_strict());
        assert_eq!(inst.num_applicants(), 2);
        let idxs = |xs: &[usize]| xs.iter().map(|&x| pm_pram::Idx::new(x)).collect::<Vec<_>>();
        assert_eq!(inst.group_slice(0, 0), idxs(&[0, 2]).as_slice());
        assert_eq!(inst.num_ranks(0), 1);
        assert_eq!(inst.group_slice(1, 0), idxs(&[1]).as_slice());
        // All edges have rank 0 (the paper's "rank 1").
        assert_eq!(inst.rank(0, 0), Some(0));
        assert_eq!(inst.rank(0, 2), Some(0));
    }

    #[test]
    fn reduction_rejects_isolated_applicants() {
        let g = BipartiteGraph::new(2, 2);
        assert!(matches!(
            rank1_instance(&g),
            Err(PopularError::InvalidInstance(_))
        ));
    }

    #[test]
    fn lemma12_and_13_on_random_graphs() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(55);
        for _ in 0..60 {
            let g = random_graph(&mut rng, 5);
            let oracle = popular_matching_rank1(&g);

            // Lemma 13: the maximum matching is popular.
            assert!(lemma13_holds(&g, &oracle), "Lemma 13 failed on {g:?}");

            // Lemma 12: every popular matching (found by brute force) is maximum.
            for m in enumerate_matchings(&g) {
                if is_popular_rank1_brute(&g, &m) {
                    assert!(lemma12_holds(&g, &m), "Lemma 12 failed on {g:?} / {m:?}");
                }
            }
        }
    }

    #[test]
    fn popular_always_exists_for_rank1_instances() {
        // Section V: with the all-rank-1 construction a popular matching
        // always exists (Lemma 13), in contrast to the strict case.
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(60);
        for _ in 0..40 {
            let g = random_graph(&mut rng, 5);
            let some_popular = enumerate_matchings(&g)
                .into_iter()
                .any(|m| is_popular_rank1_brute(&g, &m));
            assert!(some_popular);
        }
    }

    #[test]
    fn non_maximum_matching_is_not_popular() {
        // Path a0 - b0 - a1 - b1: the matching {(a1, b0)} of size 1 is not
        // popular because {(a0, b0), (a1, b1)} makes two applicants better
        // off (one newly matched) and only ... actually a1 stays matched
        // (indifferent), a0 becomes matched: 1 vs 0 — more popular.
        let g = BipartiteGraph::from_edges(2, 2, &[(0, 0), (1, 0), (1, 1)]);
        let small = Matching::from_pairs(2, 2, &[(1, 0)]);
        assert!(!is_popular_rank1_brute(&g, &small));
        let max = popular_matching_rank1(&g);
        assert_eq!(max.size(), 2);
        assert!(is_popular_rank1_brute(&g, &max));
    }

    #[test]
    fn compare_rank1_counts() {
        let m1 = Matching::from_pairs(3, 3, &[(0, 0), (1, 1)]);
        let m2 = Matching::from_pairs(3, 3, &[(1, 2), (2, 0)]);
        // a0: matched in m1 only; a1: both; a2: m2 only.
        assert_eq!(compare_rank1(&m1, &m2), (1, 1));
    }
}
