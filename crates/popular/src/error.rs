//! Error types for the popular matching algorithms.

use std::fmt;

/// Errors reported by the popular-matching algorithms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PopularError {
    /// The instance admits no popular matching (Algorithm 2 failed to find
    /// an applicant-complete matching of the reduced graph).
    NoPopularMatching,
    /// The instance is malformed (empty preference list, out-of-range post,
    /// duplicated post within one list, …).  The payload describes the
    /// offending entry.
    InvalidInstance(String),
    /// An algorithm that requires strictly-ordered preference lists was given
    /// an instance with ties (Section III explicitly restricts to the strict
    /// case; the ties case is handled by the Section V reduction only).
    TiesNotSupported,
    /// The instance does not fit the 32-bit index layer (DESIGN.md §7):
    /// some entity or edge count exceeds the documented limit.  Rejected at
    /// construction so no kernel can silently truncate an index.
    TooLarge {
        /// Which count overflowed ("applicants", "extended posts",
        /// "preference edges").
        what: &'static str,
        /// The offending count.
        count: usize,
        /// The largest admissible value.
        limit: usize,
    },
    /// A previous solve on this [`PopularSolver`] panicked and unwound,
    /// leaving the pooled workspace buffers in an inconsistent state (the
    /// `Workspace` epoch check, DESIGN.md §9).  The solver refuses further
    /// work; discard it and build a fresh one — the serving layer does this
    /// automatically after isolating a panic.
    ///
    /// [`PopularSolver`]: crate::solver::PopularSolver
    SolverPoisoned,
}

impl fmt::Display for PopularError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PopularError::NoPopularMatching => write!(f, "the instance admits no popular matching"),
            PopularError::InvalidInstance(msg) => write!(f, "invalid instance: {msg}"),
            PopularError::TiesNotSupported => {
                write!(
                    f,
                    "this algorithm requires strictly-ordered preference lists"
                )
            }
            PopularError::TooLarge { what, count, limit } => {
                write!(
                    f,
                    "instance too large for the 32-bit index layer: {count} {what} \
                     (limit {limit})"
                )
            }
            PopularError::SolverPoisoned => {
                write!(
                    f,
                    "solver poisoned: a previous solve panicked mid-flight, its pooled \
                     workspace buffers are inconsistent — discard this solver and build \
                     a fresh one"
                )
            }
        }
    }
}

impl std::error::Error for PopularError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(PopularError::NoPopularMatching
            .to_string()
            .contains("no popular matching"));
        assert!(PopularError::InvalidInstance("bad".into())
            .to_string()
            .contains("bad"));
        assert!(PopularError::TiesNotSupported
            .to_string()
            .contains("strictly-ordered"));
        let e = PopularError::TooLarge {
            what: "applicants",
            count: 5_000_000_000,
            limit: 1_000,
        };
        assert!(e.to_string().contains("32-bit"));
        assert!(e.to_string().contains("applicants"));
        assert!(PopularError::SolverPoisoned
            .to_string()
            .contains("poisoned"));
    }

    #[test]
    fn is_std_error() {
        let e: Box<dyn std::error::Error> = Box::new(PopularError::NoPopularMatching);
        assert!(e.source().is_none());
    }
}
