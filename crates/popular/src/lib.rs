//! NC algorithms for popular matchings in one-sided preference systems.
//!
//! This crate is the core contribution of the reproduction of
//! *Hu & Garg, "NC Algorithms for Popular Matchings in One-Sided Preference
//! Systems and Related Problems"* (2020).  It implements, with explicit
//! work/depth instrumentation:
//!
//! * [`instance`] — the one-sided preference instance `G = (A ∪ P, E)` with
//!   ranked (optionally tied) preference lists and implicit last-resort
//!   posts `l(a)`;
//! * [`reduced`] — the reduced graph `G'` of f-posts and s-posts
//!   (Section III-B, line 3 of Algorithm 1);
//! * [`algorithm2`] — the NC applicant-complete matching routine
//!   (Algorithm 2: degree-1 path peeling in `O(log n)` rounds, then a
//!   perfect matching of the remaining disjoint even cycles);
//! * [`algorithm1`] — the NC popular matching algorithm (Algorithm 1);
//! * [`sequential`] — the Abraham–Irving–Kavitha–Mehlhorn-style sequential
//!   baseline the parallel algorithm is validated against;
//! * [`verify`] — popularity predicates: the Theorem 1 characterisation,
//!   pairwise "more popular than" comparison and a brute-force check for
//!   small instances;
//! * [`switching`] — the switching graph `G_M` (McDermid–Irving), its
//!   cycles, paths and margins (Section IV);
//! * [`max_cardinality`] — Algorithm 3, the NC maximum-cardinality popular
//!   matching;
//! * [`profile`] / [`optimal`] — matching profiles, the `≻_R` / `≺_F`
//!   orders, and weighted / rank-maximal / fair popular matchings
//!   (Section IV-E);
//! * [`ties`] — the Section V reduction from maximum-cardinality bipartite
//!   matching to popular matching with ties (Theorem 11, Lemmas 12–13).
//!
//! # Quick start
//!
//! ```
//! use pm_popular::instance::PrefInstance;
//! use pm_popular::algorithm1::popular_matching_nc;
//! use pm_popular::verify::is_popular_characterization;
//! use pm_pram::DepthTracker;
//!
//! // Three applicants, three posts; everyone loves post 0 most.
//! let inst = PrefInstance::new_strict(3, vec![
//!     vec![0, 1],
//!     vec![0, 2],
//!     vec![1, 0],
//! ]).unwrap();
//!
//! let tracker = DepthTracker::new();
//! let matching = popular_matching_nc(&inst, &tracker).expect("this instance has one");
//! assert!(is_popular_characterization(&inst, &matching));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod algorithm1;
pub mod algorithm2;
pub mod delta;
pub mod error;
pub mod instance;
pub mod max_cardinality;
pub mod optimal;
pub mod profile;
pub mod reduced;
pub mod relabel;
pub mod sequential;
pub mod solver;
pub mod switching;
pub mod ties;
pub mod verify;

pub use algorithm1::popular_matching_nc;
pub use delta::{Delta, DeltaMode, DeltaSolver, DeltaStats};
pub use error::PopularError;
pub use instance::{Assignment, CsrParts, PrefInstance, RankArray, RankIter, TiedCsrParts};
pub use max_cardinality::maximum_cardinality_popular_matching_nc;
pub use reduced::ReducedGraph;
pub use relabel::{PostPermutation, Relabeled, RelabeledSolver};
pub use sequential::popular_matching_sequential;
pub use solver::{PopularSolver, BATCH_FANOUT_MIN_CHUNK};
pub use switching::SwitchingGraph;
pub use verify::{is_popular_brute_force, is_popular_characterization, more_popular};
