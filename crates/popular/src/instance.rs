//! The one-sided preference instance and applicant-complete assignments.
//!
//! An instance is a bipartite graph `G = (A ∪ P, E)` where every applicant
//! `a ∈ A` ranks a non-empty subset of the posts, possibly with ties
//! (Section II-A).  As in the paper (and in Abraham et al.), every applicant
//! additionally gets a unique *last-resort* post `l(a)` appended after all
//! real choices, so that every matching can be treated as applicant-complete
//! and the *size* of a matching is the number of applicants **not** assigned
//! to their last resort.
//!
//! Post identifiers: real posts are `0..num_posts`; the last resort of
//! applicant `a` is the *extended* post id `num_posts + a`.

use crate::error::PopularError;

#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};

/// A one-sided preference instance with optionally tied preference lists.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct PrefInstance {
    num_posts: usize,
    /// `prefs[a]` is applicant `a`'s ranked list of tie groups; each group is
    /// a non-empty set of real post ids that `a` is indifferent between.
    prefs: Vec<Vec<Vec<usize>>>,
}

impl PrefInstance {
    /// Builds a strictly-ordered instance: `lists[a]` is applicant `a`'s
    /// preference list, most preferred first, over real posts `< num_posts`.
    pub fn new_strict(num_posts: usize, lists: Vec<Vec<usize>>) -> Result<Self, PopularError> {
        let groups = lists
            .into_iter()
            .map(|list| list.into_iter().map(|p| vec![p]).collect())
            .collect();
        Self::new_with_ties(num_posts, groups)
    }

    /// Builds an instance whose preference lists may contain ties:
    /// `groups[a]` is a ranked list of tie groups.
    pub fn new_with_ties(
        num_posts: usize,
        groups: Vec<Vec<Vec<usize>>>,
    ) -> Result<Self, PopularError> {
        for (a, list) in groups.iter().enumerate() {
            if list.is_empty() {
                return Err(PopularError::InvalidInstance(format!(
                    "applicant {a} has an empty preference list"
                )));
            }
            let mut seen = vec![false; num_posts];
            for group in list {
                if group.is_empty() {
                    return Err(PopularError::InvalidInstance(format!(
                        "applicant {a} has an empty tie group"
                    )));
                }
                for &p in group {
                    if p >= num_posts {
                        return Err(PopularError::InvalidInstance(format!(
                            "applicant {a} ranks post {p}, but there are only {num_posts} posts"
                        )));
                    }
                    if seen[p] {
                        return Err(PopularError::InvalidInstance(format!(
                            "applicant {a} ranks post {p} twice"
                        )));
                    }
                    seen[p] = true;
                }
            }
        }
        Ok(Self {
            num_posts,
            prefs: groups,
        })
    }

    /// Number of applicants `|A|`.
    pub fn num_applicants(&self) -> usize {
        self.prefs.len()
    }

    /// Number of real posts `|P|` (excluding last resorts).
    pub fn num_posts(&self) -> usize {
        self.num_posts
    }

    /// Number of extended posts: real posts plus one last resort per
    /// applicant.
    pub fn total_posts(&self) -> usize {
        self.num_posts + self.num_applicants()
    }

    /// The extended post id of applicant `a`'s last resort `l(a)`.
    pub fn last_resort(&self, a: usize) -> usize {
        self.num_posts + a
    }

    /// True iff the extended post id denotes a last-resort post.
    pub fn is_last_resort(&self, post: usize) -> bool {
        post >= self.num_posts
    }

    /// True iff no preference list contains a tie.
    pub fn is_strict(&self) -> bool {
        self.prefs
            .iter()
            .all(|list| list.iter().all(|g| g.len() == 1))
    }

    /// Applicant `a`'s ranked tie groups (real posts only; the implicit last
    /// resort is not included).
    pub fn groups(&self, a: usize) -> &[Vec<usize>] {
        &self.prefs[a]
    }

    /// Applicant `a`'s strict preference list over real posts, if the
    /// instance is strict for this applicant.
    pub fn strict_list(&self, a: usize) -> Option<Vec<usize>> {
        if self.prefs[a].iter().any(|g| g.len() != 1) {
            return None;
        }
        Some(self.prefs[a].iter().map(|g| g[0]).collect())
    }

    /// Rank of an extended post on applicant `a`'s list: tie-group index for
    /// real posts, one past the last group for the last resort, `None` if the
    /// post is not acceptable to `a`.
    pub fn rank(&self, a: usize, post: usize) -> Option<usize> {
        if post == self.last_resort(a) {
            return Some(self.prefs[a].len());
        }
        if self.is_last_resort(post) {
            return None; // another applicant's last resort
        }
        self.prefs[a].iter().position(|group| group.contains(&post))
    }

    /// True iff applicant `a` strictly prefers extended post `p` to
    /// extended post `q`.  Unacceptable posts are worse than anything
    /// acceptable (and two unacceptable posts are incomparable — `false`).
    pub fn prefers(&self, a: usize, p: usize, q: usize) -> bool {
        match (self.rank(a, p), self.rank(a, q)) {
            (Some(rp), Some(rq)) => rp < rq,
            (Some(_), None) => true,
            _ => false,
        }
    }

    /// The number of tie groups of applicant `a` (the rank of `l(a)`).
    pub fn num_ranks(&self, a: usize) -> usize {
        self.prefs[a].len()
    }

    /// All `(applicant, real post, rank)` triples — the edge set `E` of `G`
    /// with its rank partition `E₁ ∪ … ∪ E_r`.
    pub fn ranked_edges(&self) -> Vec<(usize, usize, usize)> {
        let mut out = Vec::new();
        for (a, list) in self.prefs.iter().enumerate() {
            for (rank, group) in list.iter().enumerate() {
                for &p in group {
                    out.push((a, p, rank));
                }
            }
        }
        out
    }
}

/// An applicant-complete assignment: every applicant is matched to exactly
/// one extended post (possibly its last resort).
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct Assignment {
    post_of: Vec<usize>,
}

impl Assignment {
    /// Wraps a raw applicant → extended-post vector.
    pub fn new(post_of: Vec<usize>) -> Self {
        Self { post_of }
    }

    /// The assignment in which every applicant takes their last resort.
    pub fn all_last_resort(inst: &PrefInstance) -> Self {
        Self::new(
            (0..inst.num_applicants())
                .map(|a| inst.last_resort(a))
                .collect(),
        )
    }

    /// Number of applicants.
    pub fn num_applicants(&self) -> usize {
        self.post_of.len()
    }

    /// The extended post assigned to applicant `a`.
    pub fn post(&self, a: usize) -> usize {
        self.post_of[a]
    }

    /// Reassigns applicant `a`.
    pub fn set_post(&mut self, a: usize, post: usize) {
        self.post_of[a] = post;
    }

    /// The underlying applicant → extended-post slice.
    pub fn as_slice(&self) -> &[usize] {
        &self.post_of
    }

    /// The size of the matching in the paper's sense: the number of
    /// applicants **not** matched to their last resort.
    pub fn size(&self, inst: &PrefInstance) -> usize {
        self.post_of
            .iter()
            .enumerate()
            .filter(|&(a, &p)| p != inst.last_resort(a))
            .count()
    }

    /// Inverse map over extended posts: `applicant_of[p]` is the applicant
    /// matched to `p`, if any.
    pub fn applicant_of(&self, inst: &PrefInstance) -> Vec<Option<usize>> {
        let mut inv = vec![None; inst.total_posts()];
        for (a, &p) in self.post_of.iter().enumerate() {
            debug_assert!(inv[p].is_none(), "post {p} assigned twice");
            inv[p] = Some(a);
        }
        inv
    }

    /// The matched `(applicant, real post)` pairs, excluding last resorts.
    pub fn real_pairs(&self, inst: &PrefInstance) -> Vec<(usize, usize)> {
        self.post_of
            .iter()
            .enumerate()
            .filter(|&(_, &p)| !inst.is_last_resort(p))
            .map(|(a, &p)| (a, p))
            .collect()
    }

    /// Validates the assignment against an instance: each applicant gets an
    /// acceptable post or their own last resort, and no post is used twice.
    pub fn is_valid(&self, inst: &PrefInstance) -> bool {
        if self.post_of.len() != inst.num_applicants() {
            return false;
        }
        let mut used = vec![false; inst.total_posts()];
        for (a, &p) in self.post_of.iter().enumerate() {
            if p >= inst.total_posts() || used[p] {
                return false;
            }
            if inst.is_last_resort(p) && p != inst.last_resort(a) {
                return false;
            }
            if !inst.is_last_resort(p) && inst.rank(a, p).is_none() {
                return false;
            }
            used[p] = true;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> PrefInstance {
        PrefInstance::new_strict(3, vec![vec![0, 1], vec![0, 2], vec![1]]).unwrap()
    }

    #[test]
    fn construction_and_counts() {
        let inst = tiny();
        assert_eq!(inst.num_applicants(), 3);
        assert_eq!(inst.num_posts(), 3);
        assert_eq!(inst.total_posts(), 6);
        assert!(inst.is_strict());
        assert_eq!(inst.last_resort(2), 5);
        assert!(inst.is_last_resort(5));
        assert!(!inst.is_last_resort(2));
    }

    #[test]
    fn invalid_instances_are_rejected() {
        assert!(matches!(
            PrefInstance::new_strict(2, vec![vec![]]),
            Err(PopularError::InvalidInstance(_))
        ));
        assert!(matches!(
            PrefInstance::new_strict(2, vec![vec![0, 0]]),
            Err(PopularError::InvalidInstance(_))
        ));
        assert!(matches!(
            PrefInstance::new_strict(2, vec![vec![2]]),
            Err(PopularError::InvalidInstance(_))
        ));
        assert!(matches!(
            PrefInstance::new_with_ties(2, vec![vec![vec![]]]),
            Err(PopularError::InvalidInstance(_))
        ));
    }

    #[test]
    fn ranks_and_preferences() {
        let inst = tiny();
        assert_eq!(inst.rank(0, 0), Some(0));
        assert_eq!(inst.rank(0, 1), Some(1));
        assert_eq!(inst.rank(0, 2), None);
        assert_eq!(inst.rank(0, inst.last_resort(0)), Some(2));
        assert_eq!(inst.rank(0, inst.last_resort(1)), None);
        assert!(inst.prefers(0, 0, 1));
        assert!(inst.prefers(0, 1, inst.last_resort(0)));
        assert!(inst.prefers(0, 0, 2)); // acceptable beats unacceptable
        assert!(!inst.prefers(0, 2, 0));
        assert!(!inst.prefers(0, 2, inst.last_resort(1))); // both unranked
    }

    #[test]
    fn ties_are_detected() {
        let tied = PrefInstance::new_with_ties(3, vec![vec![vec![0, 1], vec![2]]]).unwrap();
        assert!(!tied.is_strict());
        assert_eq!(tied.rank(0, 0), Some(0));
        assert_eq!(tied.rank(0, 1), Some(0));
        assert_eq!(tied.rank(0, 2), Some(1));
        assert!(tied.strict_list(0).is_none());
        assert_eq!(tied.num_ranks(0), 2);
    }

    #[test]
    fn ranked_edges_enumeration() {
        let inst = tiny();
        let edges = inst.ranked_edges();
        assert_eq!(edges.len(), 5);
        assert!(edges.contains(&(0, 0, 0)));
        assert!(edges.contains(&(1, 2, 1)));
    }

    #[test]
    fn assignment_size_and_validity() {
        let inst = tiny();
        let all_lr = Assignment::all_last_resort(&inst);
        assert_eq!(all_lr.size(&inst), 0);
        assert!(all_lr.is_valid(&inst));

        let m = Assignment::new(vec![0, 2, 1]);
        assert!(m.is_valid(&inst));
        assert_eq!(m.size(&inst), 3);
        assert_eq!(m.real_pairs(&inst), vec![(0, 0), (1, 2), (2, 1)]);
        let inv = m.applicant_of(&inst);
        assert_eq!(inv[0], Some(0));
        assert_eq!(inv[3], None);

        // Post 0 used twice.
        assert!(!Assignment::new(vec![0, 0, 1]).is_valid(&inst));
        // Applicant 2 does not rank post 0.
        assert!(!Assignment::new(vec![1, 2, 0]).is_valid(&inst));
        // Applicant 0 assigned to someone else's last resort.
        assert!(!Assignment::new(vec![inst.last_resort(1), 0, 1]).is_valid(&inst));
        // Wrong length.
        assert!(!Assignment::new(vec![0]).is_valid(&inst));
    }

    #[test]
    fn set_post_mutation() {
        let inst = tiny();
        let mut m = Assignment::all_last_resort(&inst);
        m.set_post(0, 0);
        assert_eq!(m.post(0), 0);
        assert_eq!(m.size(&inst), 1);
    }
}
