//! The one-sided preference instance and applicant-complete assignments.
//!
//! An instance is a bipartite graph `G = (A ∪ P, E)` where every applicant
//! `a ∈ A` ranks a non-empty subset of the posts, possibly with ties
//! (Section II-A).  As in the paper (and in Abraham et al.), every applicant
//! additionally gets a unique *last-resort* post `l(a)` appended after all
//! real choices, so that every matching can be treated as applicant-complete
//! and the *size* of a matching is the number of applicants **not** assigned
//! to their last resort.
//!
//! Post identifiers: real posts are `0..num_posts`; the last resort of
//! applicant `a` is the *extended* post id `num_posts + a`.
//!
//! # Storage: flat 32-bit CSR, built once at validation time
//!
//! Preference lists are stored in a compressed sparse row (CSR) layout
//! rather than nested vectors: one flat array with all ranked posts in
//! preference order (applicant-major), a parallel array with each entry's
//! tie-group index (its *rank*), and two offset arrays delimiting the
//! applicants and the tie groups.  Every accessor hands out contiguous
//! slices of these arrays, so the hot loops of the reduced-graph
//! construction, Algorithm 2 and the ties reduction stream through memory
//! instead of chasing `Vec<Vec<Vec<usize>>>` pointers.
//!
//! All five arrays are 32-bit ([`Idx`] posts, `u32` offsets and ranks —
//! DESIGN.md §7), which halves the bytes every downstream scan moves.
//! Construction is the **size funnel** of the whole pipeline: it rejects
//! any instance whose applicant, extended-post or edge counts would not fit
//! the 32-bit layer with a typed [`PopularError::TooLarge`], so every
//! kernel below may assume indices fit without re-checking.  The layout is
//! fixed at construction; instances are immutable afterwards.

use pm_pram::{EpochMarks, Idx};

use crate::error::PopularError;

/// The largest admissible applicant count.  Algorithm 2 encodes four arcs
/// per applicant in `u32` arc ids, so applicants get a quarter of the index
/// range — still north of 10⁹, far beyond anything the dense arrays fit in
/// memory anyway.
pub const MAX_APPLICANTS: usize = (u32::MAX as usize - 3) / 4;

/// The largest admissible extended-post count (`num_posts + num_applicants`)
/// and edge count: the [`Idx`] range.
pub const MAX_ENTITIES: usize = Idx::MAX_INDEX;

/// Rejects counts that do not fit the 32-bit index layer — the single
/// construction-time check every kernel below relies on.  Public so the
/// property tests can drive every overflow branch with fabricated counts
/// (a real 4-billion-edge instance would not fit in memory); the
/// constructors call it before any proportional allocation.
pub fn check_sizes(
    num_applicants: usize,
    num_posts: usize,
    num_edges: usize,
) -> Result<(), PopularError> {
    if num_applicants > MAX_APPLICANTS {
        return Err(PopularError::TooLarge {
            what: "applicants",
            count: num_applicants,
            limit: MAX_APPLICANTS,
        });
    }
    let total_posts = num_posts.saturating_add(num_applicants);
    if total_posts > MAX_ENTITIES {
        return Err(PopularError::TooLarge {
            what: "extended posts",
            count: total_posts,
            limit: MAX_ENTITIES,
        });
    }
    if num_edges > MAX_ENTITIES {
        return Err(PopularError::TooLarge {
            what: "preference edges",
            count: num_edges,
            limit: MAX_ENTITIES,
        });
    }
    Ok(())
}

/// A one-sided preference instance with optionally tied preference lists,
/// stored as a flat 32-bit CSR structure (see the module docs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrefInstance {
    num_posts: usize,
    /// Every ranked post, applicant-major, in preference order.
    post_flat: Vec<Idx>,
    /// `rank_flat[i]` is the tie-group index of `post_flat[i]` on its
    /// applicant's list.
    rank_flat: Vec<u32>,
    /// Applicant `a`'s entries are `post_flat[list_off[a]..list_off[a + 1]]`;
    /// length `num_applicants + 1`.
    list_off: Vec<u32>,
    /// Flat tie-group boundaries: group `g` (globally numbered) spans
    /// `post_flat[group_off[g]..group_off[g + 1]]`; length `groups + 1`.
    group_off: Vec<u32>,
    /// Applicant `a`'s tie groups are the global group ids
    /// `group_idx[a]..group_idx[a + 1]`; length `num_applicants + 1`.
    group_idx: Vec<u32>,
}

/// Shared validation state: an [`EpochMarks`] set over the posts, cleared
/// in O(1) per applicant by bumping the epoch — one O(|P|) allocation for
/// the whole construction instead of one per applicant.
struct DupCheck {
    seen: EpochMarks,
    num_posts: usize,
}

impl DupCheck {
    fn new(num_posts: usize) -> Self {
        Self {
            seen: EpochMarks::new(),
            num_posts,
        }
    }

    /// Starts validating the next applicant's list (clears the seen-set).
    fn next_applicant(&mut self) {
        self.seen.reset(self.num_posts);
    }

    fn check(&mut self, a: usize, p: usize) -> Result<(), PopularError> {
        let num_posts = self.num_posts;
        if p >= num_posts {
            return Err(PopularError::InvalidInstance(format!(
                "applicant {a} ranks post {p}, but there are only {num_posts} posts"
            )));
        }
        if !self.seen.insert(p) {
            return Err(PopularError::InvalidInstance(format!(
                "applicant {a} ranks post {p} twice"
            )));
        }
        Ok(())
    }
}

impl PrefInstance {
    /// Builds a strictly-ordered instance: `lists[a]` is applicant `a`'s
    /// preference list, most preferred first, over real posts `< num_posts`.
    ///
    /// The CSR arrays are filled directly from the lists — no intermediate
    /// per-entry singleton groups are materialised.
    pub fn new_strict(num_posts: usize, lists: Vec<Vec<usize>>) -> Result<Self, PopularError> {
        let total: usize = lists.iter().map(Vec::len).sum();
        check_sizes(lists.len(), num_posts, total)?;
        let mut post_flat = Vec::with_capacity(total);
        let mut rank_flat = Vec::with_capacity(total);
        let mut list_off = Vec::with_capacity(lists.len() + 1);
        list_off.push(0u32);
        let mut dup = DupCheck::new(num_posts);
        for (a, list) in lists.iter().enumerate() {
            if list.is_empty() {
                return Err(PopularError::InvalidInstance(format!(
                    "applicant {a} has an empty preference list"
                )));
            }
            dup.next_applicant();
            for (r, &p) in list.iter().enumerate() {
                dup.check(a, p)?;
                post_flat.push(Idx::new(p));
                rank_flat.push(r as u32);
            }
            list_off.push(post_flat.len() as u32);
        }
        // Strict lists: every entry is its own tie group.
        let group_off = (0..=total as u32).collect();
        let group_idx = list_off.clone();
        Ok(Self {
            num_posts,
            post_flat,
            rank_flat,
            list_off,
            group_off,
            group_idx,
        })
    }

    /// Builds an instance whose preference lists may contain ties:
    /// `groups[a]` is a ranked list of tie groups.
    pub fn new_with_ties(
        num_posts: usize,
        groups: Vec<Vec<Vec<usize>>>,
    ) -> Result<Self, PopularError> {
        let total: usize = groups
            .iter()
            .map(|list| list.iter().map(Vec::len).sum::<usize>())
            .sum();
        check_sizes(groups.len(), num_posts, total)?;
        let mut post_flat = Vec::with_capacity(total);
        let mut rank_flat = Vec::with_capacity(total);
        let mut list_off = Vec::with_capacity(groups.len() + 1);
        list_off.push(0u32);
        let mut group_off = vec![0u32];
        let mut group_idx = Vec::with_capacity(groups.len() + 1);
        group_idx.push(0u32);
        let mut dup = DupCheck::new(num_posts);
        for (a, list) in groups.iter().enumerate() {
            if list.is_empty() {
                return Err(PopularError::InvalidInstance(format!(
                    "applicant {a} has an empty preference list"
                )));
            }
            dup.next_applicant();
            for (r, group) in list.iter().enumerate() {
                if group.is_empty() {
                    return Err(PopularError::InvalidInstance(format!(
                        "applicant {a} has an empty tie group"
                    )));
                }
                for &p in group {
                    dup.check(a, p)?;
                    post_flat.push(Idx::new(p));
                    rank_flat.push(r as u32);
                }
                group_off.push(post_flat.len() as u32);
            }
            group_idx.push(group_off.len() as u32 - 1);
            list_off.push(post_flat.len() as u32);
        }
        Ok(Self {
            num_posts,
            post_flat,
            rank_flat,
            list_off,
            group_off,
            group_idx,
        })
    }

    /// Builds the rank-1 instance of the Section V ties reduction straight
    /// from a 32-bit CSR adjacency (`offsets`/`flat` as produced by
    /// `pm_graph::BipartiteGraph::left_csr`): applicant `a`'s single tie
    /// group is `flat[offsets[a]..offsets[a + 1]]`.  No nested vectors are
    /// materialised on the way in.  Invalid *preference data* (an empty
    /// list, an out-of-range or repeated post) is reported as
    /// [`PopularError::InvalidInstance`].
    ///
    /// # Panics
    /// Panics if `offsets` is not a CSR boundary array over `flat`
    /// (`offsets` empty or its last entry ≠ `flat.len()`) — a malformed
    /// *container*, not a malformed instance.
    pub fn new_rank1(
        num_posts: usize,
        offsets: &[u32],
        flat: &[Idx],
    ) -> Result<Self, PopularError> {
        assert!(
            !offsets.is_empty() && *offsets.last().unwrap() as usize == flat.len(),
            "offsets must be a CSR boundary array over flat"
        );
        let n_a = offsets.len() - 1;
        check_sizes(n_a, num_posts, flat.len())?;
        let mut dup = DupCheck::new(num_posts);
        for a in 0..n_a {
            if offsets[a] == offsets[a + 1] {
                return Err(PopularError::InvalidInstance(format!(
                    "applicant {a} has an empty preference list"
                )));
            }
            dup.next_applicant();
            for &p in &flat[offsets[a] as usize..offsets[a + 1] as usize] {
                dup.check(a, p.get())?;
            }
        }
        Ok(Self {
            num_posts,
            post_flat: flat.to_vec(),
            rank_flat: vec![0; flat.len()],
            list_off: offsets.to_vec(),
            group_off: offsets.to_vec(),
            group_idx: (0..=n_a as u32).collect(),
        })
    }

    /// Number of applicants `|A|`.
    pub fn num_applicants(&self) -> usize {
        self.list_off.len() - 1
    }

    /// Number of real posts `|P|` (excluding last resorts).
    pub fn num_posts(&self) -> usize {
        self.num_posts
    }

    /// Number of extended posts: real posts plus one last resort per
    /// applicant.
    pub fn total_posts(&self) -> usize {
        self.num_posts + self.num_applicants()
    }

    /// Number of `(applicant, real post)` preference pairs — the edge count
    /// `|E|` of the underlying bipartite graph.
    pub fn num_edges(&self) -> usize {
        self.post_flat.len()
    }

    /// The extended post id of applicant `a`'s last resort `l(a)`.
    pub fn last_resort(&self, a: usize) -> usize {
        self.num_posts + a
    }

    /// The last resort as an [`Idx`] (the form the pipeline buffers hold).
    pub fn last_resort_idx(&self, a: usize) -> Idx {
        Idx::new(self.num_posts + a)
    }

    /// True iff the extended post id denotes a last-resort post.
    pub fn is_last_resort(&self, post: usize) -> bool {
        post >= self.num_posts
    }

    /// True iff no preference list contains a tie (every tie group is a
    /// singleton, i.e. there are as many groups as entries).
    pub fn is_strict(&self) -> bool {
        self.group_off.len() - 1 == self.post_flat.len()
    }

    /// Applicant `a`'s ranked posts as one flat slice, most preferred first
    /// (ties appear consecutively; the implicit last resort is not included).
    pub fn flat_list(&self, a: usize) -> &[Idx] {
        &self.post_flat[self.list_off[a] as usize..self.list_off[a + 1] as usize]
    }

    /// The tie-group indices parallel to [`flat_list`](Self::flat_list):
    /// `flat_ranks(a)[i]` is the rank of `flat_list(a)[i]` on `a`'s list.
    pub fn flat_ranks(&self, a: usize) -> &[u32] {
        &self.rank_flat[self.list_off[a] as usize..self.list_off[a + 1] as usize]
    }

    /// Applicant `a`'s tie group of the given rank, as a slice of real posts.
    pub fn group_slice(&self, a: usize, rank: usize) -> &[Idx] {
        let g = self.group_idx[a] as usize + rank;
        debug_assert!(
            g < self.group_idx[a + 1] as usize,
            "rank {rank} out of range"
        );
        &self.post_flat[self.group_off[g] as usize..self.group_off[g + 1] as usize]
    }

    /// Applicant `a`'s ranked tie groups, most preferred first, as slices
    /// into the flat storage (real posts only; the implicit last resort is
    /// not included).
    pub fn groups(&self, a: usize) -> impl ExactSizeIterator<Item = &[Idx]> + '_ {
        (0..self.num_ranks(a)).map(move |r| self.group_slice(a, r))
    }

    /// Applicant `a`'s single most-preferred post: the first entry of the
    /// top tie group (for strict instances, *the* first choice `f`-candidate).
    pub fn first_choice(&self, a: usize) -> Idx {
        self.post_flat[self.list_off[a] as usize]
    }

    /// Applicant `a`'s strict preference list over real posts, if the
    /// instance is strict for this applicant.
    pub fn strict_list(&self, a: usize) -> Option<Vec<usize>> {
        if self.num_ranks(a) != self.flat_list(a).len() {
            return None;
        }
        Some(self.flat_list(a).iter().map(|p| p.get()).collect())
    }

    /// Rank of an extended post on applicant `a`'s list: tie-group index for
    /// real posts, one past the last group for the last resort, `None` if the
    /// post is not acceptable to `a`.  One linear scan of `a`'s flat slice.
    pub fn rank(&self, a: usize, post: usize) -> Option<usize> {
        if post == self.last_resort(a) {
            return Some(self.num_ranks(a));
        }
        if self.is_last_resort(post) {
            return None; // another applicant's last resort
        }
        let lo = self.list_off[a] as usize;
        self.post_flat[lo..self.list_off[a + 1] as usize]
            .iter()
            .position(|&p| p.get() == post)
            .map(|i| self.rank_flat[lo + i] as usize)
    }

    /// True iff applicant `a` strictly prefers extended post `p` to
    /// extended post `q`.  Unacceptable posts are worse than anything
    /// acceptable (and two unacceptable posts are incomparable — `false`).
    pub fn prefers(&self, a: usize, p: usize, q: usize) -> bool {
        match (self.rank(a, p), self.rank(a, q)) {
            (Some(rp), Some(rq)) => rp < rq,
            (Some(_), None) => true,
            _ => false,
        }
    }

    /// The number of tie groups of applicant `a` (the rank of `l(a)`).
    pub fn num_ranks(&self, a: usize) -> usize {
        (self.group_idx[a + 1] - self.group_idx[a]) as usize
    }

    /// All `(applicant, real post, rank)` triples — the edge set `E` of `G`
    /// with its rank partition `E₁ ∪ … ∪ E_r`.
    pub fn ranked_edges(&self) -> Vec<(usize, usize, usize)> {
        let mut out = Vec::with_capacity(self.post_flat.len());
        for a in 0..self.num_applicants() {
            let (lo, hi) = (self.list_off[a] as usize, self.list_off[a + 1] as usize);
            for i in lo..hi {
                out.push((a, self.post_flat[i].get(), self.rank_flat[i] as usize));
            }
        }
        out
    }

    /// Resident heap bytes of the five CSR arrays — the footprint estimate
    /// the bench harness reports as `bytes_per_entity`.
    pub fn heap_bytes(&self) -> usize {
        self.post_flat.len() * std::mem::size_of::<Idx>()
            + (self.rank_flat.len()
                + self.list_off.len()
                + self.group_off.len()
                + self.group_idx.len())
                * std::mem::size_of::<u32>()
    }
}

/// An applicant-complete assignment: every applicant is matched to exactly
/// one extended post (possibly its last resort).  Stored as a dense [`Idx`]
/// array with [`Idx::NONE`] as the transient "unassigned" sentinel of the
/// pipeline's output buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Assignment {
    post_of: Vec<Idx>,
}

impl Assignment {
    /// Wraps a raw applicant → extended-post vector.  An entry beyond the
    /// 32-bit index range is stored as the invalid sentinel, so it can
    /// never alias a real post and [`is_valid`](Self::is_valid) rejects it
    /// — the same observable behaviour the pre-`Idx` representation had
    /// for out-of-range posts.
    pub fn new(post_of: Vec<usize>) -> Self {
        Self {
            post_of: post_of
                .into_iter()
                .map(|p| Idx::try_new(p).unwrap_or(Idx::NONE))
                .collect(),
        }
    }

    /// Wraps an [`Idx`]-typed applicant → extended-post vector (the
    /// pipeline's native form).
    pub fn from_idx_vec(post_of: Vec<Idx>) -> Self {
        Self { post_of }
    }

    /// The assignment in which every applicant takes their last resort.
    pub fn all_last_resort(inst: &PrefInstance) -> Self {
        Self {
            post_of: (0..inst.num_applicants())
                .map(|a| inst.last_resort_idx(a))
                .collect(),
        }
    }

    /// Number of applicants.
    pub fn num_applicants(&self) -> usize {
        self.post_of.len()
    }

    /// The extended post assigned to applicant `a`.
    pub fn post(&self, a: usize) -> usize {
        self.post_of[a].get()
    }

    /// Reassigns applicant `a`.
    pub fn set_post(&mut self, a: usize, post: usize) {
        self.post_of[a] = Idx::new(post);
    }

    /// Clears the assignment in place and resizes it to `n` applicants, all
    /// set to the [`Idx::NONE`] "unassigned" sentinel, reusing the buffer's
    /// capacity.  This is the solver's output-buffer reset: the pipeline
    /// then writes every slot exactly once, so a warm refill allocates
    /// nothing.  The assignment is not valid until every slot is written.
    pub fn reset_unassigned(&mut self, n: usize) {
        self.post_of.clear();
        self.post_of.resize(n, Idx::NONE);
    }

    /// Mutable access to the raw applicant → extended-post slots, for
    /// pipeline stages that fill a reused output buffer in place.
    pub fn as_mut_slice(&mut self) -> &mut [Idx] {
        &mut self.post_of
    }

    /// The underlying applicant → extended-post slice.
    pub fn as_slice(&self) -> &[Idx] {
        &self.post_of
    }

    /// The size of the matching in the paper's sense: the number of
    /// applicants **not** matched to their last resort.
    pub fn size(&self, inst: &PrefInstance) -> usize {
        self.post_of
            .iter()
            .enumerate()
            .filter(|&(a, &p)| p.get() != inst.last_resort(a))
            .count()
    }

    /// Inverse map over extended posts: `applicant_of[p]` is the applicant
    /// matched to `p`, if any.
    pub fn applicant_of(&self, inst: &PrefInstance) -> Vec<Option<usize>> {
        let mut inv = vec![None; inst.total_posts()];
        for (a, &p) in self.post_of.iter().enumerate() {
            debug_assert!(inv[p.get()].is_none(), "post {p} assigned twice");
            inv[p.get()] = Some(a);
        }
        inv
    }

    /// The matched `(applicant, real post)` pairs, excluding last resorts.
    pub fn real_pairs(&self, inst: &PrefInstance) -> Vec<(usize, usize)> {
        self.post_of
            .iter()
            .enumerate()
            .filter(|&(_, &p)| !inst.is_last_resort(p.get()))
            .map(|(a, &p)| (a, p.get()))
            .collect()
    }

    /// Validates the assignment against an instance: each applicant gets an
    /// acceptable post or their own last resort, and no post is used twice.
    pub fn is_valid(&self, inst: &PrefInstance) -> bool {
        if self.post_of.len() != inst.num_applicants() {
            return false;
        }
        let mut used = vec![false; inst.total_posts()];
        for (a, &pi) in self.post_of.iter().enumerate() {
            // Raw view so an unfilled NONE slot reads as out-of-range
            // rather than asserting.
            let p = pi.raw() as usize;
            if p >= inst.total_posts() || used[p] {
                return false;
            }
            if inst.is_last_resort(p) && p != inst.last_resort(a) {
                return false;
            }
            if !inst.is_last_resort(p) && inst.rank(a, p).is_none() {
                return false;
            }
            used[p] = true;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idxs(xs: &[usize]) -> Vec<Idx> {
        xs.iter().map(|&x| Idx::new(x)).collect()
    }

    fn tiny() -> PrefInstance {
        PrefInstance::new_strict(3, vec![vec![0, 1], vec![0, 2], vec![1]]).unwrap()
    }

    #[test]
    fn construction_and_counts() {
        let inst = tiny();
        assert_eq!(inst.num_applicants(), 3);
        assert_eq!(inst.num_posts(), 3);
        assert_eq!(inst.total_posts(), 6);
        assert_eq!(inst.num_edges(), 5);
        assert!(inst.is_strict());
        assert_eq!(inst.last_resort(2), 5);
        assert_eq!(inst.last_resort_idx(2), Idx::new(5));
        assert!(inst.is_last_resort(5));
        assert!(!inst.is_last_resort(2));
        assert!(inst.heap_bytes() > 0);
    }

    #[test]
    fn invalid_instances_are_rejected() {
        assert!(matches!(
            PrefInstance::new_strict(2, vec![vec![]]),
            Err(PopularError::InvalidInstance(_))
        ));
        assert!(matches!(
            PrefInstance::new_strict(2, vec![vec![0, 0]]),
            Err(PopularError::InvalidInstance(_))
        ));
        assert!(matches!(
            PrefInstance::new_strict(2, vec![vec![2]]),
            Err(PopularError::InvalidInstance(_))
        ));
        assert!(matches!(
            PrefInstance::new_with_ties(2, vec![vec![vec![]]]),
            Err(PopularError::InvalidInstance(_))
        ));
        // A post may be repeated across *different* applicants.
        assert!(PrefInstance::new_strict(2, vec![vec![0], vec![0]]).is_ok());
    }

    #[test]
    fn oversized_instances_are_rejected_with_typed_error() {
        // A post count beyond the u32 layer must be rejected before any
        // proportional allocation happens (the check reads only counts).
        let r = PrefInstance::new_strict(u32::MAX as usize, vec![vec![0]]);
        assert!(matches!(
            r,
            Err(PopularError::TooLarge {
                what: "extended posts",
                ..
            })
        ));
        let r = PrefInstance::new_with_ties(usize::MAX / 2, vec![vec![vec![0]]]);
        assert!(matches!(r, Err(PopularError::TooLarge { .. })));
    }

    #[test]
    fn ranks_and_preferences() {
        let inst = tiny();
        assert_eq!(inst.rank(0, 0), Some(0));
        assert_eq!(inst.rank(0, 1), Some(1));
        assert_eq!(inst.rank(0, 2), None);
        assert_eq!(inst.rank(0, inst.last_resort(0)), Some(2));
        assert_eq!(inst.rank(0, inst.last_resort(1)), None);
        assert!(inst.prefers(0, 0, 1));
        assert!(inst.prefers(0, 1, inst.last_resort(0)));
        assert!(inst.prefers(0, 0, 2)); // acceptable beats unacceptable
        assert!(!inst.prefers(0, 2, 0));
        assert!(!inst.prefers(0, 2, inst.last_resort(1))); // both unranked
    }

    #[test]
    fn ties_are_detected() {
        let tied = PrefInstance::new_with_ties(3, vec![vec![vec![0, 1], vec![2]]]).unwrap();
        assert!(!tied.is_strict());
        assert_eq!(tied.rank(0, 0), Some(0));
        assert_eq!(tied.rank(0, 1), Some(0));
        assert_eq!(tied.rank(0, 2), Some(1));
        assert!(tied.strict_list(0).is_none());
        assert_eq!(tied.num_ranks(0), 2);
    }

    #[test]
    fn csr_accessors_expose_flat_slices() {
        let tied =
            PrefInstance::new_with_ties(4, vec![vec![vec![0, 1], vec![2]], vec![vec![3]]]).unwrap();
        assert_eq!(tied.flat_list(0), idxs(&[0, 1, 2]).as_slice());
        assert_eq!(tied.flat_ranks(0), &[0, 0, 1]);
        assert_eq!(tied.group_slice(0, 0), idxs(&[0, 1]).as_slice());
        assert_eq!(tied.group_slice(0, 1), idxs(&[2]).as_slice());
        assert_eq!(tied.flat_list(1), idxs(&[3]).as_slice());
        assert_eq!(tied.group_slice(1, 0), idxs(&[3]).as_slice());
        assert_eq!(tied.first_choice(0), Idx::new(0));
        assert_eq!(tied.first_choice(1), Idx::new(3));
        let groups: Vec<&[Idx]> = tied.groups(0).collect();
        assert_eq!(groups, vec![&idxs(&[0, 1])[..], &idxs(&[2])[..]]);

        let strict = tiny();
        assert_eq!(strict.flat_list(1), idxs(&[0, 2]).as_slice());
        assert_eq!(strict.strict_list(1), Some(vec![0, 2]));
        assert_eq!(strict.group_slice(1, 1), idxs(&[2]).as_slice());
        assert_eq!(strict.first_choice(2), Idx::new(1));
    }

    #[test]
    fn rank1_constructor_matches_new_with_ties() {
        // CSR input: applicant 0 -> {0, 2}, applicant 1 -> {1}.
        let direct = PrefInstance::new_rank1(3, &[0, 2, 3], &idxs(&[0, 2, 1])).unwrap();
        let nested = PrefInstance::new_with_ties(3, vec![vec![vec![0, 2]], vec![vec![1]]]).unwrap();
        assert_eq!(direct, nested);
        // Empty lists are rejected.
        assert!(matches!(
            PrefInstance::new_rank1(3, &[0, 0, 1], &idxs(&[0])),
            Err(PopularError::InvalidInstance(_))
        ));
        // Duplicates within one applicant are rejected.
        assert!(matches!(
            PrefInstance::new_rank1(3, &[0, 2], &idxs(&[1, 1])),
            Err(PopularError::InvalidInstance(_))
        ));
    }

    #[test]
    fn ranked_edges_enumeration() {
        let inst = tiny();
        let edges = inst.ranked_edges();
        assert_eq!(edges.len(), 5);
        assert!(edges.contains(&(0, 0, 0)));
        assert!(edges.contains(&(1, 2, 1)));
    }

    #[test]
    fn assignment_size_and_validity() {
        let inst = tiny();
        let all_lr = Assignment::all_last_resort(&inst);
        assert_eq!(all_lr.size(&inst), 0);
        assert!(all_lr.is_valid(&inst));

        let m = Assignment::new(vec![0, 2, 1]);
        assert!(m.is_valid(&inst));
        assert_eq!(m.size(&inst), 3);
        assert_eq!(m.real_pairs(&inst), vec![(0, 0), (1, 2), (2, 1)]);
        let inv = m.applicant_of(&inst);
        assert_eq!(inv[0], Some(0));
        assert_eq!(inv[3], None);

        // Post 0 used twice.
        assert!(!Assignment::new(vec![0, 0, 1]).is_valid(&inst));
        // Applicant 2 does not rank post 0.
        assert!(!Assignment::new(vec![1, 2, 0]).is_valid(&inst));
        // Applicant 0 assigned to someone else's last resort.
        assert!(!Assignment::new(vec![inst.last_resort(1), 0, 1]).is_valid(&inst));
        // Wrong length.
        assert!(!Assignment::new(vec![0]).is_valid(&inst));
        // A reset-but-unfilled buffer is not valid.
        let mut unfilled = Assignment::new(Vec::new());
        unfilled.reset_unassigned(3);
        assert!(!unfilled.is_valid(&inst));
        // An out-of-u32-range post is stored as the sentinel and rejected,
        // never truncated into a colliding real post id.
        assert!(!Assignment::new(vec![usize::MAX - 1, 2, 1]).is_valid(&inst));
    }

    #[test]
    fn set_post_mutation() {
        let inst = tiny();
        let mut m = Assignment::all_last_resort(&inst);
        m.set_post(0, 0);
        assert_eq!(m.post(0), 0);
        assert_eq!(m.size(&inst), 1);
        assert_eq!(m.as_slice()[0], Idx::new(0));
        let v = Assignment::from_idx_vec(idxs(&[0, 1]));
        assert_eq!(v.post(1), 1);
    }
}
