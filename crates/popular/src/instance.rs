//! The one-sided preference instance and applicant-complete assignments.
//!
//! An instance is a bipartite graph `G = (A ∪ P, E)` where every applicant
//! `a ∈ A` ranks a non-empty subset of the posts, possibly with ties
//! (Section II-A).  As in the paper (and in Abraham et al.), every applicant
//! additionally gets a unique *last-resort* post `l(a)` appended after all
//! real choices, so that every matching can be treated as applicant-complete
//! and the *size* of a matching is the number of applicants **not** assigned
//! to their last resort.
//!
//! Post identifiers: real posts are `0..num_posts`; the last resort of
//! applicant `a` is the *extended* post id `num_posts + a`.
//!
//! # Storage: flat 32-bit CSR, built once at validation time
//!
//! Preference lists are stored in a compressed sparse row (CSR) layout
//! rather than nested vectors: one flat array with all ranked posts in
//! preference order (applicant-major), a parallel array with each entry's
//! tie-group index (its *rank*), and two offset arrays delimiting the
//! applicants and the tie groups.  Every accessor hands out contiguous
//! slices of these arrays, so the hot loops of the reduced-graph
//! construction, Algorithm 2 and the ties reduction stream through memory
//! instead of chasing `Vec<Vec<Vec<usize>>>` pointers.
//!
//! All five arrays are 32-bit ([`Idx`] posts, `u32` offsets and ranks —
//! DESIGN.md §7), which halves the bytes every downstream scan moves.
//! Construction is the **size funnel** of the whole pipeline: it rejects
//! any instance whose applicant, extended-post or edge counts would not fit
//! the 32-bit layer with a typed [`PopularError::TooLarge`], so every
//! kernel below may assume indices fit without re-checking.  The layout is
//! fixed at construction; instances are immutable afterwards.

use pm_pram::{EpochMarks, Idx};

use crate::error::PopularError;

/// The largest admissible applicant count.  Algorithm 2 encodes four arcs
/// per applicant in `u32` arc ids, so applicants get a quarter of the index
/// range — still north of 10⁹, far beyond anything the dense arrays fit in
/// memory anyway.
pub const MAX_APPLICANTS: usize = (u32::MAX as usize - 3) / 4;

/// The largest admissible extended-post count (`num_posts + num_applicants`)
/// and edge count: the [`Idx`] range.
pub const MAX_ENTITIES: usize = Idx::MAX_INDEX;

/// Rejects counts that do not fit the 32-bit index layer — the single
/// construction-time check every kernel below relies on.  Public so the
/// property tests can drive every overflow branch with fabricated counts
/// (a real 4-billion-edge instance would not fit in memory); the
/// constructors call it before any proportional allocation.
pub fn check_sizes(
    num_applicants: usize,
    num_posts: usize,
    num_edges: usize,
) -> Result<(), PopularError> {
    if num_applicants > MAX_APPLICANTS {
        return Err(PopularError::TooLarge {
            what: "applicants",
            count: num_applicants,
            limit: MAX_APPLICANTS,
        });
    }
    let total_posts = num_posts.saturating_add(num_applicants);
    if total_posts > MAX_ENTITIES {
        return Err(PopularError::TooLarge {
            what: "extended posts",
            count: total_posts,
            limit: MAX_ENTITIES,
        });
    }
    if num_edges > MAX_ENTITIES {
        return Err(PopularError::TooLarge {
            what: "preference edges",
            count: num_edges,
            limit: MAX_ENTITIES,
        });
    }
    Ok(())
}

/// `None` if `xs` is strictly increasing, else the first index `i` with
/// `xs[i] >= xs[i + 1]`.  The hot side is a branch-free adjacent-compare
/// scan the optimiser vectorises; the index is re-derived only on the cold
/// error side.
fn first_non_increase(xs: &[u32]) -> Option<usize> {
    if xs.windows(2).all(|w| w[0] < w[1]) {
        None
    } else {
        xs.windows(2).position(|w| w[0] >= w[1])
    }
}

/// Checks that `ranks[i]` equals the position of entry `i`'s tie group on
/// its applicant's list, on the store's native width (`u16` or `u32` —
/// monomorphised per width so the hot loop never widens).  Assumes the
/// offset arrays already passed the strictly-increasing and tiling scans.
/// A rank that does not fit `T` at all (an applicant with more tie groups
/// than the store can number) is reported as a width error.
fn check_rank_tiling<T: Copy + Eq + TryFrom<usize>>(
    ranks: &[T],
    group_off: &[u32],
    group_idx: &[u32],
) -> Result<(), String> {
    let n_a = group_idx.len() - 1;
    for a in 0..n_a {
        let (glo, ghi) = (group_idx[a] as usize, group_idx[a + 1] as usize);
        let (lo, hi) = (group_off[glo] as usize, group_off[ghi] as usize);
        if ghi - glo == hi - lo {
            // Every tie group is a singleton (the strict-instance shape, by
            // far the common case): the ranks of this applicant are exactly
            // 0, 1, …, k−1, checked in one flat sweep with no per-group
            // slicing.
            let ok = ranks[lo..hi]
                .iter()
                .enumerate()
                .all(|(r, &x)| T::try_from(r).is_ok_and(|r| x == r));
            if !ok {
                return Err(rank_tiling_error(a, glo, lo, &ranks[lo..hi]));
            }
        } else {
            for g in glo..ghi {
                let Ok(r) = T::try_from(g - glo) else {
                    return Err(format!(
                        "applicant {a}: rank {} does not fit the rank store's width",
                        g - glo
                    ));
                };
                let (s, e) = (group_off[g] as usize, group_off[g + 1] as usize);
                if let Some(i) = ranks[s..e].iter().position(|&x| x != r) {
                    return Err(format!(
                        "applicant {a}: entry {} carries the wrong rank inside tie group {}",
                        s + i,
                        g - glo
                    ));
                }
            }
        }
    }
    Ok(())
}

/// Cold error side of the singleton fast path in [`check_rank_tiling`]:
/// re-derives which entry broke the 0, 1, …, k−1 rank sequence.
fn rank_tiling_error<T: Copy + Eq + TryFrom<usize>>(
    a: usize,
    glo: usize,
    lo: usize,
    ranks: &[T],
) -> String {
    for (r, &x) in ranks.iter().enumerate() {
        match T::try_from(r) {
            Ok(want) if x == want => continue,
            Ok(_) => {
                return format!(
                    "applicant {a}: entry {} carries the wrong rank inside tie group {r}",
                    lo + r
                );
            }
            Err(_) => {
                return format!("applicant {a}: rank {r} does not fit the rank store's width");
            }
        }
    }
    // `all` reported a mismatch, so the loop above must find one; if the
    // store mutated under us that is a caller bug, not corrupt input.
    unreachable!("rank mismatch vanished on the error path (applicant {a}, groups at {glo})")
}

/// Every post id is in range — the first of the two post-payload scans
/// shared by the flat constructors ([`PrefInstance::from_csr_parts`] /
/// [`PrefInstance::from_strict_csr`]).  `list_off` must already be a
/// validated boundary array over `post_flat` (it is only consulted on the
/// cold error path, to name the offending applicant).
///
/// The scan is a chunked OR-reduction over the raw bit patterns (the
/// `Idx` sentinel is `u32::MAX`, so corrupted sentinels fail like any other
/// out-of-range id) — the inner loop is branch-free and vectorises, the
/// early exit lives at chunk granularity.
fn check_post_range(
    num_posts: usize,
    post_flat: &[Idx],
    list_off: &[u32],
) -> Result<(), PopularError> {
    // The cast is exact: callers run `check_sizes` first, which bounds
    // `num_posts` to the 32-bit layer.
    let limit = num_posts as u32;
    let out_of_range = post_flat
        .chunks(1024)
        .any(|c| c.iter().fold(false, |acc, p| acc | (p.raw() >= limit)));
    if out_of_range {
        let i = post_flat
            .iter()
            .position(|p| p.raw() >= limit)
            .expect("a scan just found one");
        let a = list_off.partition_point(|&o| o as usize <= i) - 1;
        return Err(PopularError::InvalidInstance(format!(
            "applicant {a} ranks post {}, but there are only {num_posts} posts",
            post_flat[i].raw()
        )));
    }
    Ok(())
}

/// Detects whether one (short) preference list repeats a post.
///
/// Real corpora are dominated by lists of half a dozen entries, where a
/// closed-form all-pairs comparison — no inner loop, no data-dependent
/// trip count, everything in registers — beats both epoch marking and the
/// general quadratic scan by a wide margin; the slice-pattern arms pin
/// those shapes down for the optimiser.  Detection only; the caller
/// re-derives the offending post on the cold path.
fn list_has_dup(s: &[Idx]) -> bool {
    match s {
        [] | [_] => false,
        [a, b] => a == b,
        [a, b, c] => (a == b) | (a == c) | (b == c),
        [a, b, c, d] => (a == b) | (a == c) | (a == d) | (b == c) | (b == d) | (c == d),
        [a, b, c, d, e] => {
            (a == b)
                | (a == c)
                | (a == d)
                | (a == e)
                | (b == c)
                | (b == d)
                | (b == e)
                | (c == d)
                | (c == e)
                | (d == e)
        }
        [a, b, c, d, e, f] => {
            (a == b)
                | (a == c)
                | (a == d)
                | (a == e)
                | (a == f)
                | (b == c)
                | (b == d)
                | (b == e)
                | (b == f)
                | (c == d)
                | (c == e)
                | (c == f)
                | (d == e)
                | (d == f)
                | (e == f)
        }
        s => {
            let mut dup = false;
            for i in 1..s.len() {
                let p = s[i];
                for &q in &s[..i] {
                    dup |= q == p;
                }
            }
            dup
        }
    }
}

/// No applicant ranks a post twice — the second shared post-payload scan.
/// `list_off` must already be a validated boundary array over `post_flat`.
///
/// Each (nearly always short, L1-resident) list slice goes through the
/// closed-form pairwise check of [`list_has_dup`], which beats the
/// random-access epoch marking of the nested constructors; genuinely long
/// lists fall back to the marks.
fn check_no_duplicates(
    num_posts: usize,
    post_flat: &[Idx],
    list_off: &[u32],
) -> Result<(), PopularError> {
    let invalid = |msg: String| Err(PopularError::InvalidInstance(msg));
    let n_a = list_off.len() - 1;
    let mut marks: Option<DupCheck> = None;
    for a in 0..n_a {
        let slice = &post_flat[list_off[a] as usize..list_off[a + 1] as usize];
        if slice.len() <= 64 {
            if list_has_dup(slice) {
                let p = (1..slice.len())
                    .find(|&i| slice[..i].contains(&slice[i]))
                    .map(|i| slice[i].get())
                    .expect("the scan just found one");
                return invalid(format!("applicant {a} ranks post {p} more than once"));
            }
        } else {
            let dup = marks.get_or_insert_with(|| DupCheck::new(num_posts));
            dup.next_applicant();
            for &p in slice {
                dup.check(a, p.get())?;
            }
        }
    }
    Ok(())
}

/// The per-entry tie-group indices of the CSR layout, stored at the
/// narrowest width that fits the instance's deepest preference list
/// (DESIGN.md §7–8): 2-byte entries when every rank is below 2¹⁶ — true
/// for every realistic workload — and 4-byte entries otherwise.  The rank
/// array is one of the two |E|-length streams every rank-aware scan moves,
/// so halving it is wall-clock on bandwidth-bound instances.
///
/// Equality is **by value**, not by representation: a `U16` store equals a
/// `U32` store holding the same ranks, so snapshots and constructors may
/// pick widths independently without breaking `PrefInstance` equality.
#[derive(Debug, Clone)]
pub enum RankArray {
    /// 2-byte ranks: every tie-group index fits `u16`.
    U16(Vec<u16>),
    /// 4-byte ranks, for lists with 2¹⁶ or more tie groups.
    U32(Vec<u32>),
}

impl RankArray {
    /// The largest rank value a `U16` store can hold.
    pub const U16_MAX_RANK: u32 = u16::MAX as u32;

    /// An empty store of the given width with room for `cap` entries;
    /// `fits_u16` is "every rank that will be pushed is ≤
    /// [`U16_MAX_RANK`](Self::U16_MAX_RANK)" (callers know the deepest list
    /// before filling).
    pub fn with_capacity(cap: usize, fits_u16: bool) -> Self {
        if fits_u16 {
            RankArray::U16(Vec::with_capacity(cap))
        } else {
            RankArray::U32(Vec::with_capacity(cap))
        }
    }

    /// Wraps a plain `u32` rank vector, narrowing it to 2-byte entries when
    /// every value fits (the cold nested-`Vec` constructors use this).
    pub fn from_u32_vec(ranks: Vec<u32>) -> Self {
        if ranks.iter().all(|&r| r <= Self::U16_MAX_RANK) {
            RankArray::U16(ranks.into_iter().map(|r| r as u16).collect())
        } else {
            RankArray::U32(ranks)
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        match self {
            RankArray::U16(v) => v.len(),
            RankArray::U32(v) => v.len(),
        }
    }

    /// True iff the store holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True iff ranks are stored as 2-byte entries.
    pub fn is_u16(&self) -> bool {
        matches!(self, RankArray::U16(_))
    }

    /// The rank at position `i`, widened to `u32`.
    ///
    /// # Panics
    /// Panics if `i` is out of bounds, like slice indexing.
    #[inline]
    pub fn get(&self, i: usize) -> u32 {
        match self {
            RankArray::U16(v) => v[i] as u32,
            RankArray::U32(v) => v[i],
        }
    }

    /// Appends a rank.
    ///
    /// # Panics
    /// Debug builds panic when pushing a rank above
    /// [`U16_MAX_RANK`](Self::U16_MAX_RANK) into a `U16` store; the
    /// constructors size the width from the deepest list first, so this is
    /// unreachable through the public API.
    #[inline]
    pub fn push(&mut self, r: u32) {
        match self {
            RankArray::U16(v) => {
                debug_assert!(r <= Self::U16_MAX_RANK, "rank exceeds the u16 store");
                v.push(r as u16);
            }
            RankArray::U32(v) => v.push(r),
        }
    }

    /// Iterates the ranks, widened to `u32`.
    pub fn iter(&self) -> RankIter<'_> {
        match self {
            RankArray::U16(v) => RankIter::U16(v.iter()),
            RankArray::U32(v) => RankIter::U32(v.iter()),
        }
    }

    /// Iterates the sub-range `lo..hi`, widened to `u32`.
    ///
    /// # Panics
    /// Panics if the range is out of bounds, like slice indexing.
    pub fn range_iter(&self, lo: usize, hi: usize) -> RankIter<'_> {
        match self {
            RankArray::U16(v) => RankIter::U16(v[lo..hi].iter()),
            RankArray::U32(v) => RankIter::U32(v[lo..hi].iter()),
        }
    }

    /// Resident heap bytes of the store.
    pub fn heap_bytes(&self) -> usize {
        match self {
            RankArray::U16(v) => v.len() * std::mem::size_of::<u16>(),
            RankArray::U32(v) => v.len() * std::mem::size_of::<u32>(),
        }
    }
}

impl PartialEq for RankArray {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (RankArray::U16(a), RankArray::U16(b)) => a == b,
            (RankArray::U32(a), RankArray::U32(b)) => a == b,
            _ => self.len() == other.len() && self.iter().eq(other.iter()),
        }
    }
}

impl Eq for RankArray {}

/// Iterator over per-entry ranks, yielding every rank as `u32` — backed by
/// a [`RankArray`] slice, or by nothing at all for strict instances, whose
/// ranks are the positions `0, 1, …` themselves.
pub enum RankIter<'a> {
    /// Iterating a 2-byte store.
    U16(std::slice::Iter<'a, u16>),
    /// Iterating a 4-byte store.
    U32(std::slice::Iter<'a, u32>),
    /// Iterating the derived iota ranks of a strict instance.
    Iota(std::ops::Range<u32>),
}

impl Iterator for RankIter<'_> {
    type Item = u32;

    #[inline]
    fn next(&mut self) -> Option<u32> {
        match self {
            RankIter::U16(it) => it.next().map(|&r| r as u32),
            RankIter::U32(it) => it.next().copied(),
            RankIter::Iota(it) => it.next(),
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match self {
            RankIter::U16(it) => it.size_hint(),
            RankIter::U32(it) => it.size_hint(),
            RankIter::Iota(it) => it.size_hint(),
        }
    }
}

impl ExactSizeIterator for RankIter<'_> {}

/// A borrowed view of the validated CSR arrays — everything a serialiser
/// needs to persist an instance without re-deriving structure (the binary
/// snapshot in `pm_instances::snapshot` writes exactly these sections).
/// `ties` is `None` for strict instances, whose tie layer is derived, not
/// stored (see [`TieStore`] on the instance struct).
#[derive(Debug, Clone, Copy)]
pub struct CsrParts<'a> {
    /// Number of real posts.
    pub num_posts: usize,
    /// Every ranked post, applicant-major, in preference order.
    pub post_flat: &'a [Idx],
    /// Per-applicant entry boundaries (length `num_applicants + 1`).
    pub list_off: &'a [u32],
    /// The materialised tie layer; `None` for strict instances.
    pub ties: Option<TiedCsrParts<'a>>,
}

/// The tie-layer arrays of a non-strict instance (see [`CsrParts::ties`]).
#[derive(Debug, Clone, Copy)]
pub struct TiedCsrParts<'a> {
    /// Tie-group index of each `post_flat` entry.
    pub rank_flat: &'a RankArray,
    /// Global tie-group boundaries (length `groups + 1`).
    pub group_off: &'a [u32],
    /// Per-applicant group-id ranges (length `num_applicants + 1`).
    pub group_idx: &'a [u32],
}

/// The tie layer of an instance.  A **strict** instance (every tie group a
/// singleton) fully determines all three arrays — `group_off` is the
/// identity boundary array, `group_idx` equals `list_off`, and the ranks
/// are a per-applicant iota — so storing them would triple the footprint
/// for zero information.  Every constructor canonicalises: an instance
/// whose group count equals its entry count is *always* `Strict`, so
/// derived `PartialEq` remains value equality.
#[derive(Debug, Clone, PartialEq, Eq)]
enum TieStore {
    /// Every tie group is a singleton; the tie layer is derived on the fly.
    Strict,
    /// At least one tie group holds two or more posts.
    Tied {
        /// `rank_flat.get(i)` is the tie-group index of `post_flat[i]` on
        /// its applicant's list (2-byte entries when the deepest list fits).
        rank_flat: RankArray,
        /// Flat tie-group boundaries: group `g` (globally numbered) spans
        /// `post_flat[group_off[g]..group_off[g + 1]]`; length `groups + 1`.
        group_off: Vec<u32>,
        /// Applicant `a`'s tie groups are the global group ids
        /// `group_idx[a]..group_idx[a + 1]`; length `num_applicants + 1`.
        group_idx: Vec<u32>,
    },
}

impl TieStore {
    /// Canonicalises a fully validated tie layer: a layer with as many
    /// groups as entries is the strict one, and its arrays are dropped.
    fn canonical(rank_flat: RankArray, group_off: Vec<u32>, group_idx: Vec<u32>) -> Self {
        if group_off.len() == rank_flat.len() + 1 {
            TieStore::Strict
        } else {
            TieStore::Tied {
                rank_flat,
                group_off,
                group_idx,
            }
        }
    }
}

/// A one-sided preference instance with optionally tied preference lists,
/// stored as a flat 32-bit CSR structure (see the module docs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrefInstance {
    num_posts: usize,
    /// Every ranked post, applicant-major, in preference order.
    post_flat: Vec<Idx>,
    /// Applicant `a`'s entries are `post_flat[list_off[a]..list_off[a + 1]]`;
    /// length `num_applicants + 1`.
    list_off: Vec<u32>,
    /// The tie layer — materialised only when a real tie exists.
    ties: TieStore,
}

/// Shared validation state: an [`EpochMarks`] set over the posts, cleared
/// in O(1) per applicant by bumping the epoch — one O(|P|) allocation for
/// the whole construction instead of one per applicant.
struct DupCheck {
    seen: EpochMarks,
    num_posts: usize,
}

impl DupCheck {
    fn new(num_posts: usize) -> Self {
        Self {
            seen: EpochMarks::new(),
            num_posts,
        }
    }

    /// Starts validating the next applicant's list (clears the seen-set).
    fn next_applicant(&mut self) {
        self.seen.reset(self.num_posts);
    }

    fn check(&mut self, a: usize, p: usize) -> Result<(), PopularError> {
        let num_posts = self.num_posts;
        if p >= num_posts {
            return Err(PopularError::InvalidInstance(format!(
                "applicant {a} ranks post {p}, but there are only {num_posts} posts"
            )));
        }
        if !self.seen.insert(p) {
            return Err(PopularError::InvalidInstance(format!(
                "applicant {a} ranks post {p} twice"
            )));
        }
        Ok(())
    }
}

impl PrefInstance {
    /// Builds a strictly-ordered instance: `lists[a]` is applicant `a`'s
    /// preference list, most preferred first, over real posts `< num_posts`.
    ///
    /// The CSR arrays are filled directly from the lists — no intermediate
    /// per-entry singleton groups are materialised.
    pub fn new_strict(num_posts: usize, lists: Vec<Vec<usize>>) -> Result<Self, PopularError> {
        let total: usize = lists.iter().map(Vec::len).sum();
        check_sizes(lists.len(), num_posts, total)?;
        let mut post_flat = Vec::with_capacity(total);
        let mut list_off = Vec::with_capacity(lists.len() + 1);
        list_off.push(0u32);
        let mut dup = DupCheck::new(num_posts);
        for (a, list) in lists.iter().enumerate() {
            if list.is_empty() {
                return Err(PopularError::InvalidInstance(format!(
                    "applicant {a} has an empty preference list"
                )));
            }
            dup.next_applicant();
            for &p in list {
                dup.check(a, p)?;
                post_flat.push(Idx::new(p));
            }
            list_off.push(post_flat.len() as u32);
        }
        Ok(Self {
            num_posts,
            post_flat,
            list_off,
            ties: TieStore::Strict,
        })
    }

    /// Builds an instance whose preference lists may contain ties:
    /// `groups[a]` is a ranked list of tie groups.
    pub fn new_with_ties(
        num_posts: usize,
        groups: Vec<Vec<Vec<usize>>>,
    ) -> Result<Self, PopularError> {
        let total: usize = groups
            .iter()
            .map(|list| list.iter().map(Vec::len).sum::<usize>())
            .sum();
        check_sizes(groups.len(), num_posts, total)?;
        let deepest = groups.iter().map(Vec::len).max().unwrap_or(0);
        let mut post_flat = Vec::with_capacity(total);
        let mut rank_flat =
            RankArray::with_capacity(total, deepest <= RankArray::U16_MAX_RANK as usize + 1);
        let mut list_off = Vec::with_capacity(groups.len() + 1);
        list_off.push(0u32);
        let mut group_off = vec![0u32];
        let mut group_idx = Vec::with_capacity(groups.len() + 1);
        group_idx.push(0u32);
        let mut dup = DupCheck::new(num_posts);
        for (a, list) in groups.iter().enumerate() {
            if list.is_empty() {
                return Err(PopularError::InvalidInstance(format!(
                    "applicant {a} has an empty preference list"
                )));
            }
            dup.next_applicant();
            for (r, group) in list.iter().enumerate() {
                if group.is_empty() {
                    return Err(PopularError::InvalidInstance(format!(
                        "applicant {a} has an empty tie group"
                    )));
                }
                for &p in group {
                    dup.check(a, p)?;
                    post_flat.push(Idx::new(p));
                    rank_flat.push(r as u32);
                }
                group_off.push(post_flat.len() as u32);
            }
            group_idx.push(group_off.len() as u32 - 1);
            list_off.push(post_flat.len() as u32);
        }
        Ok(Self {
            num_posts,
            post_flat,
            list_off,
            ties: TieStore::canonical(rank_flat, group_off, group_idx),
        })
    }

    /// Builds the rank-1 instance of the Section V ties reduction straight
    /// from a 32-bit CSR adjacency (`offsets`/`flat` as produced by
    /// `pm_graph::BipartiteGraph::left_csr`): applicant `a`'s single tie
    /// group is `flat[offsets[a]..offsets[a + 1]]`.  No nested vectors are
    /// materialised on the way in.  Invalid *preference data* (an empty
    /// list, an out-of-range or repeated post) is reported as
    /// [`PopularError::InvalidInstance`].
    ///
    /// # Panics
    /// Panics if `offsets` is not a CSR boundary array over `flat`
    /// (`offsets` empty or its last entry ≠ `flat.len()`) — a malformed
    /// *container*, not a malformed instance.
    pub fn new_rank1(
        num_posts: usize,
        offsets: &[u32],
        flat: &[Idx],
    ) -> Result<Self, PopularError> {
        assert!(
            !offsets.is_empty() && *offsets.last().unwrap() as usize == flat.len(),
            "offsets must be a CSR boundary array over flat"
        );
        let n_a = offsets.len() - 1;
        check_sizes(n_a, num_posts, flat.len())?;
        // Validation runs as three flat scans instead of a per-edge epoch
        // check: a boundary sweep for empty lists, then the two shared
        // post-payload scans (branch-free chunked range OR-reduction and
        // the closed-form short-list duplicate check).  This is the hot
        // constructor of the Section V ties reduction — on rank-1 workloads
        // the per-edge `DupCheck` random-access marking dominated the whole
        // reduction's wall time.
        if let Some(a) = (0..n_a).find(|&a| offsets[a] == offsets[a + 1]) {
            return Err(PopularError::InvalidInstance(format!(
                "applicant {a} has an empty preference list"
            )));
        }
        check_post_range(num_posts, flat, offsets)?;
        check_no_duplicates(num_posts, flat, offsets)?;
        Ok(Self {
            num_posts,
            post_flat: flat.to_vec(),
            list_off: offsets.to_vec(),
            ties: TieStore::canonical(
                RankArray::U16(vec![0; flat.len()]),
                offsets.to_vec(),
                (0..=n_a as u32).collect(),
            ),
        })
    }

    /// Builds an instance directly from owned CSR arrays, validating in
    /// O(|E|) **without restructuring** — no nested vectors are built and
    /// the five arrays are moved into place as-is.  This is the ingest path
    /// of the binary snapshot reader and the streaming text parser: they
    /// fill flat buffers and hand them over.
    ///
    /// Validation covers everything the nested constructors check, plus the
    /// structural invariants nested input satisfies by construction:
    ///
    /// * sizes fit the 32-bit layer ([`check_sizes`] — the `TooLarge`
    ///   funnel);
    /// * the offset arrays are monotone boundary arrays over `post_flat`
    ///   (first entry 0, last entry `|E|`, no empty preference list, no
    ///   empty tie group) and the tie groups of each applicant exactly tile
    ///   that applicant's list slice;
    /// * `rank_flat[i]` equals the position of entry `i`'s tie group on its
    ///   applicant's list;
    /// * every post is in range and no applicant ranks a post twice.
    ///
    /// Untrusted (e.g. deserialised) input is therefore safe here: any
    /// corruption surfaces as a typed [`PopularError`], never a panic or an
    /// out-of-bounds index downstream.
    pub fn from_csr_parts(
        num_posts: usize,
        post_flat: Vec<Idx>,
        rank_flat: RankArray,
        list_off: Vec<u32>,
        group_off: Vec<u32>,
        group_idx: Vec<u32>,
    ) -> Result<Self, PopularError> {
        let invalid = |msg: String| Err(PopularError::InvalidInstance(msg));
        if list_off.is_empty() || group_off.is_empty() || group_idx.is_empty() {
            return invalid("CSR offset arrays must be non-empty".into());
        }
        let n_a = list_off.len() - 1;
        let n_e = post_flat.len();
        let n_g = group_off.len() - 1;
        check_sizes(n_a, num_posts, n_e)?;
        if rank_flat.len() != n_e {
            return invalid(format!(
                "rank array has {} entries for {n_e} preference entries",
                rank_flat.len()
            ));
        }
        if group_idx.len() != n_a + 1 {
            return invalid(format!(
                "group index has {} boundaries for {n_a} applicants",
                group_idx.len()
            ));
        }
        if list_off[0] != 0 || group_off[0] != 0 || group_idx[0] != 0 {
            return invalid("CSR offset arrays must start at 0".into());
        }
        if *list_off.last().unwrap() as usize != n_e {
            return invalid(format!(
                "list offsets end at {} instead of the {n_e} preference entries",
                list_off.last().unwrap()
            ));
        }
        if *group_off.last().unwrap() as usize != n_e {
            return invalid(format!(
                "group offsets end at {} instead of the {n_e} preference entries",
                group_off.last().unwrap()
            ));
        }
        if *group_idx.last().unwrap() as usize != n_g {
            return invalid(format!(
                "group index ends at {} instead of the {n_g} tie groups",
                group_idx.last().unwrap()
            ));
        }

        // The structural checks run as a few sequential, SIMD-friendly
        // passes over the flat arrays instead of one nested walk — this
        // function sits on the snapshot cold path, so its constant factor
        // is wall-clock (see the `cold/` bench family).  Each scan's hot
        // side is a branch-free predicate; the offending index is only
        // re-derived on the (cold) error path.

        // Pass 1 — the offset arrays are strictly increasing.  For
        // `list_off` that means no empty preference list, for `group_off`
        // no empty tie group, for `group_idx` at least one group per
        // applicant; combined with the boundary checks above, every later
        // slice access is in bounds.
        if let Some(a) = first_non_increase(&list_off) {
            return invalid(if list_off[a] == list_off[a + 1] {
                format!("applicant {a} has an empty preference list")
            } else {
                format!("applicant {a}: list offsets are not monotone")
            });
        }
        if let Some(a) = first_non_increase(&group_idx) {
            return invalid(format!("applicant {a}: group index is not monotone"));
        }
        if let Some(g) = first_non_increase(&group_off) {
            let a = group_idx.partition_point(|&x| x as usize <= g) - 1;
            return invalid(if group_off[g] == group_off[g + 1] {
                format!("applicant {a} has an empty tie group")
            } else {
                format!("applicant {a}: group offsets are not monotone")
            });
        }

        // Pass 2 — the tie groups of each applicant tile its list slice:
        // the first group of applicant `a` starts exactly at `list_off[a]`.
        // With all three arrays strictly increasing and sharing their final
        // boundary `n_e`, agreement at every applicant boundary pins each
        // group inside its applicant's slice.
        for a in 0..=n_a {
            if group_off[group_idx[a] as usize] != list_off[a] {
                return invalid(format!(
                    "applicant {a}: tie groups do not tile the list slice"
                ));
            }
        }

        // Pass 3 — `rank_flat[i]` names the position of entry `i`'s tie
        // group on its applicant's list, checked on the store's native
        // width (no per-entry widening).
        let rank_err = match &rank_flat {
            RankArray::U16(v) => check_rank_tiling(v, &group_off, &group_idx),
            RankArray::U32(v) => check_rank_tiling(v, &group_off, &group_idx),
        };
        if let Err(msg) = rank_err {
            return invalid(msg);
        }

        // Passes 4 and 5 — every post is in range and no applicant ranks a
        // post twice (shared with `from_strict_csr`).
        check_post_range(num_posts, &post_flat, &list_off)?;
        check_no_duplicates(num_posts, &post_flat, &list_off)?;
        Ok(Self {
            num_posts,
            post_flat,
            list_off,
            ties: TieStore::canonical(rank_flat, group_off, group_idx),
        })
    }

    /// [`from_csr_parts`](Self::from_csr_parts) specialised to **strict**
    /// instances, where the tie layer is fully determined and need not be
    /// supplied, validated, or even materialised (see [`TieStore`]):
    ///
    /// * every tie group is a singleton, so `group_off` is the identity
    ///   boundary array `0, 1, …, |E|`;
    /// * applicant `a`'s groups are its entries, so `group_idx == list_off`;
    /// * entry `i`'s rank is its position on its applicant's list.
    ///
    /// This is the ingest path of `FLAG_STRICT` snapshots: the format omits
    /// the three derivable sections, and this constructor takes just the
    /// posts and list offsets.  Validation of the two supplied arrays is
    /// identical to the general constructor (same boundary checks, same
    /// [`check_sizes`] funnel, same post scans), so untrusted input is
    /// equally safe here.
    pub fn from_strict_csr(
        num_posts: usize,
        post_flat: Vec<Idx>,
        list_off: Vec<u32>,
    ) -> Result<Self, PopularError> {
        let invalid = |msg: String| Err(PopularError::InvalidInstance(msg));
        if list_off.is_empty() {
            return invalid("CSR offset arrays must be non-empty".into());
        }
        let n_a = list_off.len() - 1;
        let n_e = post_flat.len();
        check_sizes(n_a, num_posts, n_e)?;
        if list_off[0] != 0 {
            return invalid("CSR offset arrays must start at 0".into());
        }
        if *list_off.last().unwrap() as usize != n_e {
            return invalid(format!(
                "list offsets end at {} instead of the {n_e} preference entries",
                list_off.last().unwrap()
            ));
        }
        if let Some(a) = first_non_increase(&list_off) {
            return invalid(if list_off[a] == list_off[a + 1] {
                format!("applicant {a} has an empty preference list")
            } else {
                format!("applicant {a}: list offsets are not monotone")
            });
        }
        check_post_range(num_posts, &post_flat, &list_off)?;
        check_no_duplicates(num_posts, &post_flat, &list_off)?;
        Ok(Self {
            num_posts,
            post_flat,
            list_off,
            ties: TieStore::Strict,
        })
    }

    /// The validated CSR arrays as one borrowed view (see [`CsrParts`]) —
    /// the exact sections the binary snapshot format persists.  `ties` is
    /// `None` for strict instances: their tie layer is derived, and the
    /// snapshot format omits it.
    pub fn csr_parts(&self) -> CsrParts<'_> {
        CsrParts {
            num_posts: self.num_posts,
            post_flat: &self.post_flat,
            list_off: &self.list_off,
            ties: match &self.ties {
                TieStore::Strict => None,
                TieStore::Tied {
                    rank_flat,
                    group_off,
                    group_idx,
                } => Some(TiedCsrParts {
                    rank_flat,
                    group_off,
                    group_idx,
                }),
            },
        }
    }

    /// Number of applicants `|A|`.
    pub fn num_applicants(&self) -> usize {
        self.list_off.len() - 1
    }

    /// Number of real posts `|P|` (excluding last resorts).
    pub fn num_posts(&self) -> usize {
        self.num_posts
    }

    /// Number of extended posts: real posts plus one last resort per
    /// applicant.
    pub fn total_posts(&self) -> usize {
        self.num_posts + self.num_applicants()
    }

    /// Number of `(applicant, real post)` preference pairs — the edge count
    /// `|E|` of the underlying bipartite graph.
    pub fn num_edges(&self) -> usize {
        self.post_flat.len()
    }

    /// The extended post id of applicant `a`'s last resort `l(a)`.
    pub fn last_resort(&self, a: usize) -> usize {
        self.num_posts + a
    }

    /// The last resort as an [`Idx`] (the form the pipeline buffers hold).
    pub fn last_resort_idx(&self, a: usize) -> Idx {
        Idx::new(self.num_posts + a)
    }

    /// True iff the extended post id denotes a last-resort post.
    pub fn is_last_resort(&self, post: usize) -> bool {
        post >= self.num_posts
    }

    /// True iff no preference list contains a tie (every tie group is a
    /// singleton).  Constructors canonicalise (see [`TieStore`]), so this
    /// is a tag check, not a count comparison.
    pub fn is_strict(&self) -> bool {
        matches!(self.ties, TieStore::Strict)
    }

    /// Applicant `a`'s ranked posts as one flat slice, most preferred first
    /// (ties appear consecutively; the implicit last resort is not included).
    pub fn flat_list(&self, a: usize) -> &[Idx] {
        &self.post_flat[self.list_off[a] as usize..self.list_off[a + 1] as usize]
    }

    /// The tie-group indices parallel to [`flat_list`](Self::flat_list):
    /// the `i`-th yielded rank is the rank of `flat_list(a)[i]` on `a`'s
    /// list.  An iterator rather than a slice because the rank store may be
    /// 2-byte or 4-byte wide — or absent entirely for strict instances,
    /// whose ranks are the positions themselves (see [`RankIter`]).
    pub fn flat_ranks(&self, a: usize) -> RankIter<'_> {
        let (lo, hi) = (self.list_off[a] as usize, self.list_off[a + 1] as usize);
        match &self.ties {
            TieStore::Strict => RankIter::Iota(0..(hi - lo) as u32),
            TieStore::Tied { rank_flat, .. } => rank_flat.range_iter(lo, hi),
        }
    }

    /// Applicant `a`'s tie group of the given rank, as a slice of real posts.
    pub fn group_slice(&self, a: usize, rank: usize) -> &[Idx] {
        match &self.ties {
            TieStore::Strict => {
                let i = self.list_off[a] as usize + rank;
                debug_assert!(
                    i < self.list_off[a + 1] as usize,
                    "rank {rank} out of range"
                );
                &self.post_flat[i..i + 1]
            }
            TieStore::Tied {
                group_off,
                group_idx,
                ..
            } => {
                let g = group_idx[a] as usize + rank;
                debug_assert!(g < group_idx[a + 1] as usize, "rank {rank} out of range");
                &self.post_flat[group_off[g] as usize..group_off[g + 1] as usize]
            }
        }
    }

    /// Applicant `a`'s ranked tie groups, most preferred first, as slices
    /// into the flat storage (real posts only; the implicit last resort is
    /// not included).
    pub fn groups(&self, a: usize) -> impl ExactSizeIterator<Item = &[Idx]> + '_ {
        (0..self.num_ranks(a)).map(move |r| self.group_slice(a, r))
    }

    /// Applicant `a`'s single most-preferred post: the first entry of the
    /// top tie group (for strict instances, *the* first choice `f`-candidate).
    pub fn first_choice(&self, a: usize) -> Idx {
        self.post_flat[self.list_off[a] as usize]
    }

    /// Applicant `a`'s strict preference list over real posts, if the
    /// instance is strict for this applicant.
    pub fn strict_list(&self, a: usize) -> Option<Vec<usize>> {
        if self.num_ranks(a) != self.flat_list(a).len() {
            return None;
        }
        Some(self.flat_list(a).iter().map(|p| p.get()).collect())
    }

    /// Rank of an extended post on applicant `a`'s list: tie-group index for
    /// real posts, one past the last group for the last resort, `None` if the
    /// post is not acceptable to `a`.  One linear scan of `a`'s flat slice.
    pub fn rank(&self, a: usize, post: usize) -> Option<usize> {
        if post == self.last_resort(a) {
            return Some(self.num_ranks(a));
        }
        if self.is_last_resort(post) {
            return None; // another applicant's last resort
        }
        let lo = self.list_off[a] as usize;
        self.post_flat[lo..self.list_off[a + 1] as usize]
            .iter()
            .position(|&p| p.get() == post)
            .map(|i| match &self.ties {
                TieStore::Strict => i,
                TieStore::Tied { rank_flat, .. } => rank_flat.get(lo + i) as usize,
            })
    }

    /// True iff applicant `a` strictly prefers extended post `p` to
    /// extended post `q`.  Unacceptable posts are worse than anything
    /// acceptable (and two unacceptable posts are incomparable — `false`).
    pub fn prefers(&self, a: usize, p: usize, q: usize) -> bool {
        match (self.rank(a, p), self.rank(a, q)) {
            (Some(rp), Some(rq)) => rp < rq,
            (Some(_), None) => true,
            _ => false,
        }
    }

    /// The number of tie groups of applicant `a` (the rank of `l(a)`).
    pub fn num_ranks(&self, a: usize) -> usize {
        match &self.ties {
            TieStore::Strict => (self.list_off[a + 1] - self.list_off[a]) as usize,
            TieStore::Tied { group_idx, .. } => (group_idx[a + 1] - group_idx[a]) as usize,
        }
    }

    /// All `(applicant, real post, rank)` triples — the edge set `E` of `G`
    /// with its rank partition `E₁ ∪ … ∪ E_r`.
    pub fn ranked_edges(&self) -> Vec<(usize, usize, usize)> {
        let mut out = Vec::with_capacity(self.post_flat.len());
        for a in 0..self.num_applicants() {
            let (lo, hi) = (self.list_off[a] as usize, self.list_off[a + 1] as usize);
            for i in lo..hi {
                let rank = match &self.ties {
                    TieStore::Strict => i - lo,
                    TieStore::Tied { rank_flat, .. } => rank_flat.get(i) as usize,
                };
                out.push((a, self.post_flat[i].get(), rank));
            }
        }
        out
    }

    /// Resident heap bytes of the CSR arrays — the footprint estimate the
    /// bench harness reports as `bytes_per_entity`.  Strict instances store
    /// no tie layer, so they cost just the posts and the list offsets.
    pub fn heap_bytes(&self) -> usize {
        let ties = match &self.ties {
            TieStore::Strict => 0,
            TieStore::Tied {
                rank_flat,
                group_off,
                group_idx,
            } => {
                rank_flat.heap_bytes()
                    + (group_off.len() + group_idx.len()) * std::mem::size_of::<u32>()
            }
        };
        self.post_flat.len() * std::mem::size_of::<Idx>()
            + self.list_off.len() * std::mem::size_of::<u32>()
            + ties
    }
}

/// An applicant-complete assignment: every applicant is matched to exactly
/// one extended post (possibly its last resort).  Stored as a dense [`Idx`]
/// array with [`Idx::NONE`] as the transient "unassigned" sentinel of the
/// pipeline's output buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Assignment {
    post_of: Vec<Idx>,
}

impl Assignment {
    /// Wraps a raw applicant → extended-post vector.  An entry beyond the
    /// 32-bit index range is stored as the invalid sentinel, so it can
    /// never alias a real post and [`is_valid`](Self::is_valid) rejects it
    /// — the same observable behaviour the pre-`Idx` representation had
    /// for out-of-range posts.
    pub fn new(post_of: Vec<usize>) -> Self {
        Self {
            post_of: post_of
                .into_iter()
                .map(|p| Idx::try_new(p).unwrap_or(Idx::NONE))
                .collect(),
        }
    }

    /// Wraps an [`Idx`]-typed applicant → extended-post vector (the
    /// pipeline's native form).
    pub fn from_idx_vec(post_of: Vec<Idx>) -> Self {
        Self { post_of }
    }

    /// The assignment in which every applicant takes their last resort.
    pub fn all_last_resort(inst: &PrefInstance) -> Self {
        Self {
            post_of: (0..inst.num_applicants())
                .map(|a| inst.last_resort_idx(a))
                .collect(),
        }
    }

    /// Number of applicants.
    pub fn num_applicants(&self) -> usize {
        self.post_of.len()
    }

    /// The extended post assigned to applicant `a`.
    pub fn post(&self, a: usize) -> usize {
        self.post_of[a].get()
    }

    /// Reassigns applicant `a`.
    pub fn set_post(&mut self, a: usize, post: usize) {
        self.post_of[a] = Idx::new(post);
    }

    /// Clears the assignment in place and resizes it to `n` applicants, all
    /// set to the [`Idx::NONE`] "unassigned" sentinel, reusing the buffer's
    /// capacity.  This is the solver's output-buffer reset: the pipeline
    /// then writes every slot exactly once, so a warm refill allocates
    /// nothing.  The assignment is not valid until every slot is written.
    pub fn reset_unassigned(&mut self, n: usize) {
        self.post_of.clear();
        self.post_of.resize(n, Idx::NONE);
    }

    /// Mutable access to the raw applicant → extended-post slots, for
    /// pipeline stages that fill a reused output buffer in place.
    pub fn as_mut_slice(&mut self) -> &mut [Idx] {
        &mut self.post_of
    }

    /// Appends one applicant slot assigned to the raw extended post `post`
    /// — the incremental delta layer's `add_applicant` growth path (the
    /// slot is rewritten by the next shard solve before it is observable).
    pub fn push_idx(&mut self, post: Idx) {
        self.post_of.push(post);
    }

    /// Removes applicant `a`'s slot by moving the last applicant into index
    /// `a` — the delta layer's `remove_applicant` renumbering, which keeps
    /// the applicant id space dense without shifting every later id.
    pub fn swap_remove(&mut self, a: usize) {
        self.post_of.swap_remove(a);
    }

    /// The underlying applicant → extended-post slice.
    pub fn as_slice(&self) -> &[Idx] {
        &self.post_of
    }

    /// The size of the matching in the paper's sense: the number of
    /// applicants **not** matched to their last resort.
    pub fn size(&self, inst: &PrefInstance) -> usize {
        self.post_of
            .iter()
            .enumerate()
            .filter(|&(a, &p)| p.get() != inst.last_resort(a))
            .count()
    }

    /// Inverse map over extended posts: `applicant_of[p]` is the applicant
    /// matched to `p`, if any.
    pub fn applicant_of(&self, inst: &PrefInstance) -> Vec<Option<usize>> {
        let mut inv = vec![None; inst.total_posts()];
        for (a, &p) in self.post_of.iter().enumerate() {
            debug_assert!(inv[p.get()].is_none(), "post {p} assigned twice");
            inv[p.get()] = Some(a);
        }
        inv
    }

    /// The matched `(applicant, real post)` pairs, excluding last resorts.
    pub fn real_pairs(&self, inst: &PrefInstance) -> Vec<(usize, usize)> {
        self.post_of
            .iter()
            .enumerate()
            .filter(|&(_, &p)| !inst.is_last_resort(p.get()))
            .map(|(a, &p)| (a, p.get()))
            .collect()
    }

    /// Validates the assignment against an instance: each applicant gets an
    /// acceptable post or their own last resort, and no post is used twice.
    pub fn is_valid(&self, inst: &PrefInstance) -> bool {
        if self.post_of.len() != inst.num_applicants() {
            return false;
        }
        let mut used = vec![false; inst.total_posts()];
        for (a, &pi) in self.post_of.iter().enumerate() {
            // Raw view so an unfilled NONE slot reads as out-of-range
            // rather than asserting.
            let p = pi.raw() as usize;
            if p >= inst.total_posts() || used[p] {
                return false;
            }
            if inst.is_last_resort(p) && p != inst.last_resort(a) {
                return false;
            }
            if !inst.is_last_resort(p) && inst.rank(a, p).is_none() {
                return false;
            }
            used[p] = true;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idxs(xs: &[usize]) -> Vec<Idx> {
        xs.iter().map(|&x| Idx::new(x)).collect()
    }

    fn tiny() -> PrefInstance {
        PrefInstance::new_strict(3, vec![vec![0, 1], vec![0, 2], vec![1]]).unwrap()
    }

    #[test]
    fn construction_and_counts() {
        let inst = tiny();
        assert_eq!(inst.num_applicants(), 3);
        assert_eq!(inst.num_posts(), 3);
        assert_eq!(inst.total_posts(), 6);
        assert_eq!(inst.num_edges(), 5);
        assert!(inst.is_strict());
        assert_eq!(inst.last_resort(2), 5);
        assert_eq!(inst.last_resort_idx(2), Idx::new(5));
        assert!(inst.is_last_resort(5));
        assert!(!inst.is_last_resort(2));
        assert!(inst.heap_bytes() > 0);
    }

    #[test]
    fn invalid_instances_are_rejected() {
        assert!(matches!(
            PrefInstance::new_strict(2, vec![vec![]]),
            Err(PopularError::InvalidInstance(_))
        ));
        assert!(matches!(
            PrefInstance::new_strict(2, vec![vec![0, 0]]),
            Err(PopularError::InvalidInstance(_))
        ));
        assert!(matches!(
            PrefInstance::new_strict(2, vec![vec![2]]),
            Err(PopularError::InvalidInstance(_))
        ));
        assert!(matches!(
            PrefInstance::new_with_ties(2, vec![vec![vec![]]]),
            Err(PopularError::InvalidInstance(_))
        ));
        // A post may be repeated across *different* applicants.
        assert!(PrefInstance::new_strict(2, vec![vec![0], vec![0]]).is_ok());
    }

    #[test]
    fn oversized_instances_are_rejected_with_typed_error() {
        // A post count beyond the u32 layer must be rejected before any
        // proportional allocation happens (the check reads only counts).
        let r = PrefInstance::new_strict(u32::MAX as usize, vec![vec![0]]);
        assert!(matches!(
            r,
            Err(PopularError::TooLarge {
                what: "extended posts",
                ..
            })
        ));
        let r = PrefInstance::new_with_ties(usize::MAX / 2, vec![vec![vec![0]]]);
        assert!(matches!(r, Err(PopularError::TooLarge { .. })));
    }

    #[test]
    fn ranks_and_preferences() {
        let inst = tiny();
        assert_eq!(inst.rank(0, 0), Some(0));
        assert_eq!(inst.rank(0, 1), Some(1));
        assert_eq!(inst.rank(0, 2), None);
        assert_eq!(inst.rank(0, inst.last_resort(0)), Some(2));
        assert_eq!(inst.rank(0, inst.last_resort(1)), None);
        assert!(inst.prefers(0, 0, 1));
        assert!(inst.prefers(0, 1, inst.last_resort(0)));
        assert!(inst.prefers(0, 0, 2)); // acceptable beats unacceptable
        assert!(!inst.prefers(0, 2, 0));
        assert!(!inst.prefers(0, 2, inst.last_resort(1))); // both unranked
    }

    #[test]
    fn ties_are_detected() {
        let tied = PrefInstance::new_with_ties(3, vec![vec![vec![0, 1], vec![2]]]).unwrap();
        assert!(!tied.is_strict());
        assert_eq!(tied.rank(0, 0), Some(0));
        assert_eq!(tied.rank(0, 1), Some(0));
        assert_eq!(tied.rank(0, 2), Some(1));
        assert!(tied.strict_list(0).is_none());
        assert_eq!(tied.num_ranks(0), 2);
    }

    #[test]
    fn csr_accessors_expose_flat_slices() {
        let tied =
            PrefInstance::new_with_ties(4, vec![vec![vec![0, 1], vec![2]], vec![vec![3]]]).unwrap();
        assert_eq!(tied.flat_list(0), idxs(&[0, 1, 2]).as_slice());
        assert_eq!(tied.flat_ranks(0).collect::<Vec<_>>(), vec![0, 0, 1]);
        assert_eq!(tied.group_slice(0, 0), idxs(&[0, 1]).as_slice());
        assert_eq!(tied.group_slice(0, 1), idxs(&[2]).as_slice());
        assert_eq!(tied.flat_list(1), idxs(&[3]).as_slice());
        assert_eq!(tied.group_slice(1, 0), idxs(&[3]).as_slice());
        assert_eq!(tied.first_choice(0), Idx::new(0));
        assert_eq!(tied.first_choice(1), Idx::new(3));
        let groups: Vec<&[Idx]> = tied.groups(0).collect();
        assert_eq!(groups, vec![&idxs(&[0, 1])[..], &idxs(&[2])[..]]);

        let strict = tiny();
        assert_eq!(strict.flat_list(1), idxs(&[0, 2]).as_slice());
        assert_eq!(strict.strict_list(1), Some(vec![0, 2]));
        assert_eq!(strict.group_slice(1, 1), idxs(&[2]).as_slice());
        assert_eq!(strict.first_choice(2), Idx::new(1));
    }

    #[test]
    fn rank1_constructor_matches_new_with_ties() {
        // CSR input: applicant 0 -> {0, 2}, applicant 1 -> {1}.
        let direct = PrefInstance::new_rank1(3, &[0, 2, 3], &idxs(&[0, 2, 1])).unwrap();
        let nested = PrefInstance::new_with_ties(3, vec![vec![vec![0, 2]], vec![vec![1]]]).unwrap();
        assert_eq!(direct, nested);
        // Empty lists are rejected.
        assert!(matches!(
            PrefInstance::new_rank1(3, &[0, 0, 1], &idxs(&[0])),
            Err(PopularError::InvalidInstance(_))
        ));
        // Duplicates within one applicant are rejected.
        assert!(matches!(
            PrefInstance::new_rank1(3, &[0, 2], &idxs(&[1, 1])),
            Err(PopularError::InvalidInstance(_))
        ));
    }

    #[test]
    fn rank_array_narrowing_and_value_equality() {
        let narrow = RankArray::from_u32_vec(vec![0, 1, 2]);
        assert!(narrow.is_u16());
        let wide = RankArray::U32(vec![0, 1, 2]);
        assert!(!wide.is_u16());
        assert_eq!(narrow, wide); // by value, across widths
        assert_ne!(narrow, RankArray::U32(vec![0, 1, 3]));
        assert_eq!(narrow.get(2), 2);
        assert_eq!(narrow.heap_bytes(), 6);
        assert_eq!(wide.heap_bytes(), 12);
        let too_deep = RankArray::from_u32_vec(vec![0, RankArray::U16_MAX_RANK + 1]);
        assert!(!too_deep.is_u16());
        assert_eq!(too_deep.iter().collect::<Vec<_>>(), vec![0, 65536]);
    }

    /// The five explicit CSR arrays of an instance, materialising the
    /// derived tie layer of strict instances — test input for the general
    /// `from_csr_parts` path.
    fn five_arrays(inst: &PrefInstance) -> (Vec<Idx>, RankArray, Vec<u32>, Vec<u32>, Vec<u32>) {
        let p = inst.csr_parts();
        let n_e = p.post_flat.len();
        match p.ties {
            Some(t) => (
                p.post_flat.to_vec(),
                t.rank_flat.clone(),
                p.list_off.to_vec(),
                t.group_off.to_vec(),
                t.group_idx.to_vec(),
            ),
            None => (
                p.post_flat.to_vec(),
                RankArray::from_u32_vec(
                    p.list_off.windows(2).flat_map(|w| 0..w[1] - w[0]).collect(),
                ),
                p.list_off.to_vec(),
                (0..=n_e as u32).collect(),
                p.list_off.to_vec(),
            ),
        }
    }

    #[test]
    fn from_csr_parts_roundtrips_the_nested_constructors() {
        // Strict input canonicalises back to the derived tie layer, so
        // feeding the materialised five-array form reproduces the instance
        // exactly (including `is_strict`).
        for inst in [
            tiny(),
            PrefInstance::new_with_ties(4, vec![vec![vec![0, 1], vec![2]], vec![vec![3]]]).unwrap(),
        ] {
            let (pf, rf, lo, go, gi) = five_arrays(&inst);
            let rebuilt =
                PrefInstance::from_csr_parts(inst.num_posts(), pf, rf, lo, go, gi).unwrap();
            assert_eq!(rebuilt, inst);
            assert_eq!(rebuilt.is_strict(), inst.is_strict());
        }
    }

    #[test]
    fn from_csr_parts_rejects_corrupt_arrays() {
        let inst =
            PrefInstance::new_with_ties(4, vec![vec![vec![0, 1], vec![2]], vec![vec![3]]]).unwrap();
        let build = |num_posts: usize,
                     post_flat: Vec<Idx>,
                     rank_flat: RankArray,
                     list_off: Vec<u32>,
                     group_off: Vec<u32>,
                     group_idx: Vec<u32>| {
            PrefInstance::from_csr_parts(
                num_posts, post_flat, rank_flat, list_off, group_off, group_idx,
            )
        };
        let parts = || five_arrays(&inst);
        let invalid = |r: Result<PrefInstance, PopularError>| {
            assert!(matches!(r, Err(PopularError::InvalidInstance(_))), "{r:?}");
        };

        // Empty offset arrays.
        invalid(build(
            4,
            vec![],
            RankArray::U32(vec![]),
            vec![],
            vec![],
            vec![],
        ));
        // Rank array of the wrong length.
        let (pf, _, lo, go, gi) = parts();
        invalid(build(4, pf, RankArray::U32(vec![0]), lo, go, gi));
        // Offsets that do not start at zero.
        let (pf, rf, mut lo, go, gi) = parts();
        lo[0] = 1;
        invalid(build(4, pf, rf, lo, go, gi));
        // Offsets that do not cover the entries.
        let (pf, rf, mut lo, go, gi) = parts();
        *lo.last_mut().unwrap() = 3;
        invalid(build(4, pf, rf, lo, go, gi));
        // Non-monotone list offsets.
        let (pf, rf, mut lo, go, gi) = parts();
        lo[1] = 4;
        invalid(build(4, pf, rf, lo, go, gi));
        // An empty preference list.
        let (pf, rf, mut lo, go, gi) = parts();
        lo[1] = 0;
        invalid(build(4, pf, rf, lo, go, gi));
        // A rank that disagrees with its tie group.
        let (pf, _, lo, go, gi) = parts();
        invalid(build(4, pf, RankArray::U32(vec![0, 1, 1, 0]), lo, go, gi));
        // Tie groups that do not tile the list slice.
        let (pf, rf, lo, mut go, gi) = parts();
        go[1] = 1;
        invalid(build(4, pf, rf, lo, go, gi));
        // An out-of-range post — including the Idx sentinel pattern, which
        // must be reported, not tripped over.
        let (mut pf, rf, lo, go, gi) = parts();
        pf[0] = Idx::from_raw(u32::MAX);
        invalid(build(4, pf, rf, lo, go, gi));
        let (mut pf, rf, lo, go, gi) = parts();
        pf[0] = Idx::new(9);
        invalid(build(4, pf, rf, lo, go, gi));
        // A duplicated post within one applicant.
        let (mut pf, rf, lo, go, gi) = parts();
        pf[1] = pf[0];
        invalid(build(4, pf, rf, lo, go, gi));
        // Oversized counts funnel into TooLarge before any per-entry work.
        let r = PrefInstance::from_csr_parts(
            usize::MAX / 2,
            vec![Idx::new(0)],
            RankArray::U32(vec![0]),
            vec![0, 1],
            vec![0, 1],
            vec![0, 1],
        );
        assert!(matches!(r, Err(PopularError::TooLarge { .. })));
    }

    #[test]
    fn from_strict_csr_matches_the_general_constructor() {
        // A strict instance rebuilt from just (posts, list offsets) equals
        // the one built through the nested path, and the general
        // constructor fed the materialised five-array form canonicalises
        // to the same (derived) tie layer.
        let lists = vec![vec![0, 3, 4], vec![2], vec![4, 1]];
        let inst = PrefInstance::new_strict(5, lists).unwrap();
        let p = inst.csr_parts();
        assert!(
            p.ties.is_none(),
            "strict tie layer must not be materialised"
        );
        let back =
            PrefInstance::from_strict_csr(5, p.post_flat.to_vec(), p.list_off.to_vec()).unwrap();
        assert_eq!(back, inst);
        assert!(back.is_strict());
        let (pf, rf, lo, go, gi) = five_arrays(&inst);
        let general = PrefInstance::from_csr_parts(5, pf, rf, lo, go, gi).unwrap();
        assert_eq!(general, back);
        assert!(general.is_strict());

        // The derived ranks are the per-list positions, whatever the depth
        // (this list is deeper than the u16 rank ceiling).
        let deep: Vec<usize> = (0..RankArray::U16_MAX_RANK as usize + 2).collect();
        let wide = PrefInstance::new_strict(deep.len(), vec![deep.clone()]).unwrap();
        let p = wide.csr_parts();
        let back =
            PrefInstance::from_strict_csr(deep.len(), p.post_flat.to_vec(), p.list_off.to_vec())
                .unwrap();
        assert_eq!(back, wide);
        assert_eq!(back.rank(0, deep.len() - 1), Some(deep.len() - 1));
    }

    #[test]
    fn from_strict_csr_rejects_corrupt_arrays() {
        let inst = PrefInstance::new_strict(4, vec![vec![0, 1], vec![3]]).unwrap();
        let parts = || {
            let p = inst.csr_parts();
            (p.post_flat.to_vec(), p.list_off.to_vec())
        };
        let invalid = |r: Result<PrefInstance, PopularError>| {
            assert!(matches!(r, Err(PopularError::InvalidInstance(_))), "{r:?}");
        };

        invalid(PrefInstance::from_strict_csr(4, vec![], vec![]));
        let (pf, mut lo) = parts();
        lo[0] = 1;
        invalid(PrefInstance::from_strict_csr(4, pf, lo));
        let (pf, mut lo) = parts();
        *lo.last_mut().unwrap() = 2;
        invalid(PrefInstance::from_strict_csr(4, pf, lo));
        let (pf, mut lo) = parts();
        lo[1] = 0; // empty preference list
        invalid(PrefInstance::from_strict_csr(4, pf, lo));
        let (mut pf, lo) = parts();
        pf[0] = Idx::from_raw(u32::MAX); // sentinel pattern → out of range
        invalid(PrefInstance::from_strict_csr(4, pf, lo));
        let (mut pf, lo) = parts();
        pf[1] = pf[0]; // duplicate within one applicant
        invalid(PrefInstance::from_strict_csr(4, pf, lo));
        let r = PrefInstance::from_strict_csr(usize::MAX / 2, vec![Idx::new(0)], vec![0, 1]);
        assert!(matches!(r, Err(PopularError::TooLarge { .. })));
    }

    #[test]
    fn ranked_edges_enumeration() {
        let inst = tiny();
        let edges = inst.ranked_edges();
        assert_eq!(edges.len(), 5);
        assert!(edges.contains(&(0, 0, 0)));
        assert!(edges.contains(&(1, 2, 1)));
    }

    #[test]
    fn assignment_size_and_validity() {
        let inst = tiny();
        let all_lr = Assignment::all_last_resort(&inst);
        assert_eq!(all_lr.size(&inst), 0);
        assert!(all_lr.is_valid(&inst));

        let m = Assignment::new(vec![0, 2, 1]);
        assert!(m.is_valid(&inst));
        assert_eq!(m.size(&inst), 3);
        assert_eq!(m.real_pairs(&inst), vec![(0, 0), (1, 2), (2, 1)]);
        let inv = m.applicant_of(&inst);
        assert_eq!(inv[0], Some(0));
        assert_eq!(inv[3], None);

        // Post 0 used twice.
        assert!(!Assignment::new(vec![0, 0, 1]).is_valid(&inst));
        // Applicant 2 does not rank post 0.
        assert!(!Assignment::new(vec![1, 2, 0]).is_valid(&inst));
        // Applicant 0 assigned to someone else's last resort.
        assert!(!Assignment::new(vec![inst.last_resort(1), 0, 1]).is_valid(&inst));
        // Wrong length.
        assert!(!Assignment::new(vec![0]).is_valid(&inst));
        // A reset-but-unfilled buffer is not valid.
        let mut unfilled = Assignment::new(Vec::new());
        unfilled.reset_unassigned(3);
        assert!(!unfilled.is_valid(&inst));
        // An out-of-u32-range post is stored as the sentinel and rejected,
        // never truncated into a colliding real post id.
        assert!(!Assignment::new(vec![usize::MAX - 1, 2, 1]).is_valid(&inst));
    }

    #[test]
    fn set_post_mutation() {
        let inst = tiny();
        let mut m = Assignment::all_last_resort(&inst);
        m.set_post(0, 0);
        assert_eq!(m.post(0), 0);
        assert_eq!(m.size(&inst), 1);
        assert_eq!(m.as_slice()[0], Idx::new(0));
        let v = Assignment::from_idx_vec(idxs(&[0, 1]));
        assert_eq!(v.post(1), 1);
    }
}
