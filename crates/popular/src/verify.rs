//! Popularity predicates: pairwise comparison, the Theorem 1
//! characterisation, and brute-force cross-checks for small instances.
//!
//! *Definition 1*: `M` is popular iff no matching `M'` satisfies
//! `|P(M', M)| > |P(M, M')|`, where `P(X, Y)` is the set of applicants that
//! prefer `X` to `Y`.  *Theorem 1* (Abraham et al.) characterises popular
//! matchings for strict lists: every f-post is matched and every applicant
//! is matched to `f(a)` or `s(a)`.  The characterisation is what the NC
//! algorithms rely on; the brute-force routines are the independent ground
//! truth used by the test suite (experiment E12).

use crate::instance::{Assignment, PrefInstance};
use crate::reduced::ReducedGraph;

/// Counts the applicants preferring `m1` to `m2` and vice versa.
///
/// An applicant prefers the matching that assigns it a strictly
/// better-ranked post; the last resort ranks below every acceptable post and
/// two different last resorts never occur for the same applicant (each
/// applicant only ever sees its own).
pub fn compare(inst: &PrefInstance, m1: &Assignment, m2: &Assignment) -> (usize, usize) {
    let mut prefer1 = 0;
    let mut prefer2 = 0;
    for a in 0..inst.num_applicants() {
        let (p1, p2) = (m1.post(a), m2.post(a));
        if p1 == p2 {
            continue;
        }
        if inst.prefers(a, p1, p2) {
            prefer1 += 1;
        } else if inst.prefers(a, p2, p1) {
            prefer2 += 1;
        }
    }
    (prefer1, prefer2)
}

/// True iff `m1` is *more popular than* `m2` (strictly more applicants
/// prefer `m1`).
pub fn more_popular(inst: &PrefInstance, m1: &Assignment, m2: &Assignment) -> bool {
    let (a, b) = compare(inst, m1, m2);
    a > b
}

/// Theorem 1 characterisation (strict lists only): `m` is popular iff every
/// f-post is matched and every applicant is matched to `f(a)` or `s(a)`.
///
/// # Panics
/// Panics if the instance contains ties (the characterisation does not
/// apply; use the brute-force check instead).
pub fn is_popular_characterization(inst: &PrefInstance, m: &Assignment) -> bool {
    let reduced = ReducedGraph::build_sequential(inst)
        .expect("characterisation requires strictly-ordered preference lists");
    is_popular_characterization_with(&reduced, m)
}

/// Same as [`is_popular_characterization`] with a pre-built reduced graph.
pub fn is_popular_characterization_with(reduced: &ReducedGraph, m: &Assignment) -> bool {
    if m.num_applicants() != reduced.num_applicants() {
        return false;
    }
    // (ii) every applicant on f(a) or s(a)
    for a in 0..reduced.num_applicants() {
        let p = m.post(a);
        if p != reduced.f(a) && p != reduced.s(a) {
            return false;
        }
    }
    // (i) every f-post matched
    let mut matched = vec![false; reduced.total_posts()];
    for a in 0..reduced.num_applicants() {
        matched[m.post(a)] = true;
    }
    reduced.f_posts().into_iter().all(|p| matched[p])
}

/// Enumerates every valid applicant-complete assignment of the instance
/// (each applicant takes an acceptable post or its last resort, no post is
/// shared).  Exponential — intended for instances with at most ~6 applicants.
pub fn enumerate_assignments(inst: &PrefInstance) -> Vec<Assignment> {
    let n = inst.num_applicants();
    let mut out = Vec::new();
    let mut used = vec![false; inst.total_posts()];
    let mut current = vec![0usize; n];

    fn rec(
        inst: &PrefInstance,
        a: usize,
        used: &mut Vec<bool>,
        current: &mut Vec<usize>,
        out: &mut Vec<Assignment>,
    ) {
        if a == inst.num_applicants() {
            out.push(Assignment::new(current.clone()));
            return;
        }
        let mut options: Vec<usize> = inst.flat_list(a).iter().map(|p| p.get()).collect();
        options.push(inst.last_resort(a));
        for p in options {
            if !used[p] {
                used[p] = true;
                current[a] = p;
                rec(inst, a + 1, used, current, out);
                used[p] = false;
            }
        }
    }

    rec(inst, 0, &mut used, &mut current, &mut out);
    out
}

/// Brute-force popularity test: `m` is popular iff no enumerated assignment
/// is more popular than it.  Exponential — small instances only.
pub fn is_popular_brute_force(inst: &PrefInstance, m: &Assignment) -> bool {
    enumerate_assignments(inst)
        .iter()
        .all(|other| !more_popular(inst, other, m))
}

/// Finds some popular matching by exhaustive search, or `None` if the
/// instance admits none.  Doubly exponential — tiny instances only.
pub fn brute_force_popular_matching(inst: &PrefInstance) -> Option<Assignment> {
    let all = enumerate_assignments(inst);
    all.iter()
        .find(|cand| all.iter().all(|other| !more_popular(inst, other, cand)))
        .cloned()
}

/// The *unpopularity margin* of `m`: the maximum of
/// `|P(M', M)| − |P(M, M')|` over all assignments `M'` (0 for popular
/// matchings).  Exponential — small instances only.
pub fn unpopularity_margin(inst: &PrefInstance, m: &Assignment) -> i64 {
    enumerate_assignments(inst)
        .iter()
        .map(|other| {
            let (o, s) = compare(inst, other, m);
            o as i64 - s as i64
        })
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_posts_three_applicants() -> PrefInstance {
        // The classic no-popular-matching instance: everyone wants p0 then p1.
        PrefInstance::new_strict(2, vec![vec![0, 1], vec![0, 1], vec![0, 1]]).unwrap()
    }

    #[test]
    fn compare_counts_preferences() {
        let inst = PrefInstance::new_strict(2, vec![vec![0, 1], vec![1, 0]]).unwrap();
        let m1 = Assignment::new(vec![0, 1]); // both get their favourite
        let m2 = Assignment::new(vec![1, 0]); // both get their second choice
        assert_eq!(compare(&inst, &m1, &m2), (2, 0));
        assert_eq!(compare(&inst, &m2, &m1), (0, 2));
        assert!(more_popular(&inst, &m1, &m2));
        assert!(!more_popular(&inst, &m2, &m1));
        assert_eq!(compare(&inst, &m1, &m1), (0, 0));
    }

    #[test]
    fn last_resort_is_worse_than_any_acceptable_post() {
        let inst = PrefInstance::new_strict(1, vec![vec![0]]).unwrap();
        let matched = Assignment::new(vec![0]);
        let unmatched = Assignment::new(vec![inst.last_resort(0)]);
        assert!(more_popular(&inst, &matched, &unmatched));
    }

    #[test]
    fn characterization_on_paper_matching() {
        let inst = PrefInstance::new_strict(
            9,
            vec![
                vec![0, 3, 4, 1, 5],
                vec![3, 4, 6, 1, 7],
                vec![3, 0, 2, 7],
                vec![0, 6, 3, 2, 8],
                vec![4, 0, 6, 1, 5],
                vec![6, 5],
                vec![6, 3, 7, 1],
                vec![6, 3, 0, 4, 8, 2],
            ],
        )
        .unwrap();
        // The popular matching printed in the paper's Section II example.
        let paper = Assignment::new(vec![0, 1, 3, 2, 4, 6, 7, 8]);
        assert!(is_popular_characterization(&inst, &paper));
        // Moving a1 from p1 to p4 (not on its reduced list) breaks it.
        let broken = Assignment::new(vec![3, 1, 0, 2, 4, 6, 7, 8]);
        assert!(!is_popular_characterization(&inst, &broken));
    }

    #[test]
    fn no_popular_matching_instance_has_none_by_brute_force() {
        let inst = two_posts_three_applicants();
        assert!(brute_force_popular_matching(&inst).is_none());
        // Any concrete assignment has positive unpopularity margin.
        let m = Assignment::new(vec![0, 1, inst.last_resort(2)]);
        assert!(!is_popular_brute_force(&inst, &m));
        assert!(unpopularity_margin(&inst, &m) > 0);
    }

    #[test]
    fn brute_force_agrees_with_characterization_on_small_instances() {
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        for _ in 0..200 {
            let n_a = rng.random_range(1..4);
            let n_p = rng.random_range(1..4);
            let lists: Vec<Vec<usize>> = (0..n_a)
                .map(|_| {
                    let mut posts: Vec<usize> = (0..n_p).collect();
                    for i in (1..posts.len()).rev() {
                        posts.swap(i, rng.random_range(0..=i));
                    }
                    posts.truncate(rng.random_range(1..=posts.len()));
                    posts
                })
                .collect();
            let inst = PrefInstance::new_strict(n_p, lists).unwrap();
            for m in enumerate_assignments(&inst) {
                assert_eq!(
                    is_popular_characterization(&inst, &m),
                    is_popular_brute_force(&inst, &m),
                    "Theorem 1 disagreement on {inst:?} / {m:?}"
                );
            }
        }
    }

    #[test]
    fn enumerate_assignments_counts() {
        // One applicant, one acceptable post: {p0, l(a0)} -> 2 assignments.
        let inst = PrefInstance::new_strict(1, vec![vec![0]]).unwrap();
        assert_eq!(enumerate_assignments(&inst).len(), 2);
        // Two applicants both liking the single post: a0 takes it, a1 takes
        // it, or neither does -> 1 + 1 + 1 = ... enumerate: a0 in {p0, l0} x
        // a1 in {p0, l1} minus double-use of p0 = 4 - 1 = 3.
        let inst = PrefInstance::new_strict(1, vec![vec![0], vec![0]]).unwrap();
        assert_eq!(enumerate_assignments(&inst).len(), 3);
    }

    #[test]
    fn unpopularity_margin_zero_for_popular() {
        let inst = PrefInstance::new_strict(2, vec![vec![0, 1], vec![1, 0]]).unwrap();
        let m = Assignment::new(vec![0, 1]);
        assert_eq!(unpopularity_margin(&inst, &m), 0);
        assert!(is_popular_brute_force(&inst, &m));
    }
}
