//! Sequential baseline for the popular matching problem.
//!
//! Abraham, Irving, Kavitha and Mehlhorn give a linear-time sequential
//! algorithm built on the same Theorem 1 characterisation; as a baseline we
//! implement the characterisation directly: build the reduced graph `G'`
//! sequentially, find a maximum matching of `G'` with Hopcroft–Karp, accept
//! iff it is applicant-complete, and promote applicants onto unmatched
//! f-posts.  The output satisfies exactly the same characterisation as the
//! NC algorithm's, so experiment E5 can compare the two implementations on
//! equal terms (any two outputs are both popular; sizes and validity are
//! compared, plus wall-clock time).

use pm_matching::hopcroft_karp::hopcroft_karp;
use pm_pram::tracker::DepthTracker;

use crate::algorithm1::promote_unmatched_f_posts;
use crate::error::PopularError;
use crate::instance::{Assignment, PrefInstance};
use crate::reduced::ReducedGraph;

/// Computes a popular matching with the sequential baseline, or reports that
/// none exists.
pub fn popular_matching_sequential(inst: &PrefInstance) -> Result<Assignment, PopularError> {
    let reduced = ReducedGraph::build_sequential(inst)?;
    let g = reduced.to_bipartite();
    let mm = hopcroft_karp(&g);
    if mm.size() < inst.num_applicants() {
        return Err(PopularError::NoPopularMatching);
    }
    let mut matching = Assignment::new(
        (0..inst.num_applicants())
            .map(|a| mm.left(a).expect("applicant-complete"))
            .collect(),
    );
    // The promotion step is shared with Algorithm 1 (it is sequential-friendly:
    // one pass over the f-posts).
    let tracker = DepthTracker::new();
    promote_unmatched_f_posts(&reduced, &mut matching, &tracker);
    Ok(matching)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm1::popular_matching_nc;
    use crate::verify::{is_popular_brute_force, is_popular_characterization};

    #[test]
    fn sequential_and_parallel_agree_on_feasibility_and_popularity() {
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(23);
        for _ in 0..200 {
            let n_a = rng.random_range(1..6);
            let n_p = rng.random_range(1..6);
            let lists: Vec<Vec<usize>> = (0..n_a)
                .map(|_| {
                    let mut posts: Vec<usize> = (0..n_p).collect();
                    for i in (1..posts.len()).rev() {
                        posts.swap(i, rng.random_range(0..=i));
                    }
                    posts.truncate(rng.random_range(1..=posts.len()));
                    posts
                })
                .collect();
            let inst = PrefInstance::new_strict(n_p, lists).unwrap();
            let t = DepthTracker::new();
            let par = popular_matching_nc(&inst, &t);
            let seq = popular_matching_sequential(&inst);
            match (par, seq) {
                (Ok(p), Ok(s)) => {
                    assert!(is_popular_characterization(&inst, &p));
                    assert!(is_popular_characterization(&inst, &s));
                    assert!(is_popular_brute_force(&inst, &s));
                }
                (Err(PopularError::NoPopularMatching), Err(PopularError::NoPopularMatching)) => {}
                (p, s) => panic!("feasibility disagreement: parallel={p:?} sequential={s:?}"),
            }
        }
    }

    #[test]
    fn paper_example() {
        let inst = PrefInstance::new_strict(
            9,
            vec![
                vec![0, 3, 4, 1, 5],
                vec![3, 4, 6, 1, 7],
                vec![3, 0, 2, 7],
                vec![0, 6, 3, 2, 8],
                vec![4, 0, 6, 1, 5],
                vec![6, 5],
                vec![6, 3, 7, 1],
                vec![6, 3, 0, 4, 8, 2],
            ],
        )
        .unwrap();
        let m = popular_matching_sequential(&inst).unwrap();
        assert!(is_popular_characterization(&inst, &m));
        assert_eq!(m.size(&inst), 8);
    }

    #[test]
    fn infeasible_instance() {
        let inst = PrefInstance::new_strict(2, vec![vec![0, 1], vec![0, 1], vec![0, 1]]).unwrap();
        assert_eq!(
            popular_matching_sequential(&inst),
            Err(PopularError::NoPopularMatching)
        );
    }
}
