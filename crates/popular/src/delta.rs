//! Incremental re-solve: typed deltas over a persistent component
//! decomposition of the reduced graph.
//!
//! A warm [`PopularSolver`](crate::solver::PopularSolver) solve costs
//! ~209 ms at n = 10⁶, so a serving core re-solving from scratch on every
//! preference mutation caps out near 5 solves/s.  The paper's structure
//! points at the fix: Algorithm 2 operates on the reduced graph G′, whose
//! connected components are solved **independently** — after degree-1
//! peeling every surviving post has degree ≥ 2 and every surviving
//! applicant degree exactly 2, so the feasibility count
//! `alive_posts >= alive_applicants` holds globally iff it holds per
//! component, and the matching of an untouched component never changes.
//! A [`DeltaSolver`] therefore maintains, across mutations:
//!
//! * the mutable instance itself (a slotted CSR arena, edited in place);
//! * the reduced graph `f`/`s` arrays, the f-post census `f_count`, and a
//!   reverse containment index (which lists mention post p) so an
//!   `is_f_post` flip can rescan exactly the affected `s` values;
//! * a **union-only** component decomposition of the extended post set
//!   (union–find + a circular ring of each component's posts + intrusive
//!   `f⁻¹` lists for member gathering).  Components are never split
//!   incrementally — the decomposition is a coarsening of the true one,
//!   which is sound because re-solving a union of true components with the
//!   same kernels reproduces each true component's answer bit-for-bit;
//! * the cached global matching, spliced shard by shard.
//!
//! A delta dirties the components it touches; [`DeltaSolver::flush`]
//! re-solves only the dirty shards through the existing kernels
//! ([`applicant_complete_matching_into`], [`promote_into`], and in
//! max-cardinality mode [`improve_to_maximum_cardinality_ws`]) on compact
//! remapped id spaces, and splices the results into the cached matching.
//! The remap is **monotone** (shard members and shard posts are sorted
//! ascending), which is exactly the property the kernels' tie-breaks
//! (min-arc orientation, smallest-applicant promotion, best-(margin, q)
//! election) need to reproduce the global solve's decisions.
//!
//! Falling back to a full solve happens when structure changes too much to
//! patch: a post is added or removed (every last-resort id shifts), the
//! dirty fraction exceeds [`FULL_SOLVE_DIRTY_FRACTION`] of the extended
//! post set, an applicant slot regrows into a retired last-resort id, or
//! the previous full solve found the instance infeasible.  DESIGN.md §10
//! states the invariants; the serving layer (`pm_serve`) coalesces queued
//! deltas per instance into one flush per scheduling tick.
//!
//! Zero-alloc discipline: [`DeltaSolver::install`] runs a full solve
//! through the owned [`Workspace`], warming every pool at instance scale;
//! warm flushes then draw all shard scratch (member/post lists, remapped
//! `f`/`s`/`matched` slices, the [`EpochMap`] remap table) from those
//! pools and perform zero heap allocations — the harness gates this with
//! the counting allocator, like the warm-solve path.

use pm_pram::tracker::DepthTracker;
use pm_pram::workspace::{EpochMap, EpochMarks, Workspace};
use pm_pram::Idx;

use crate::algorithm1::promote_into;
use crate::algorithm2::applicant_complete_matching_into;
use crate::error::PopularError;
use crate::instance::{check_sizes, Assignment, PrefInstance};
use crate::max_cardinality::improve_to_maximum_cardinality_ws;

/// Dirty-fraction fallback threshold: if the dirty components cover more
/// than this fraction of the extended post set, `flush` abandons shard
/// patching and re-solves the whole instance (the decomposition is rebuilt
/// from scratch as a side effect, undoing union-only coarsening).
pub const FULL_SOLVE_DIRTY_FRACTION: f64 = 0.25;

/// Which pipeline the incremental layer keeps the cached matching on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaMode {
    /// Algorithms 1+2: any popular matching (maximal in G′).
    Popular,
    /// Algorithms 1+2+3: popular and of maximum cardinality.
    MaxCardinality,
}

/// One typed mutation of a preference instance.
///
/// Applicant removal renumbers by **swap-remove**: the last applicant
/// takes the removed slot, so ids stay dense without shifting every later
/// applicant.  Post addition/removal shifts every last-resort id
/// (`l(a) = num_posts + a`), so those two deltas always schedule a full
/// re-solve; `remove_post` additionally renumbers the last post into the
/// removed slot and strips the post from every list (rejected if that
/// would empty a list).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Delta {
    /// Append a new applicant (id `num_applicants`) with these preferences.
    AddApplicant {
        /// The new applicant's strict preference list, most preferred first.
        prefs: Vec<usize>,
    },
    /// Swap-remove an applicant; the last applicant takes its id.
    RemoveApplicant {
        /// The applicant id to remove.
        applicant: usize,
    },
    /// Append a new post (id `num_posts`), initially on no list.
    AddPost,
    /// Swap-remove a post: strip it from every list, renumber the last
    /// post into its id.
    RemovePost {
        /// The post id to remove.
        post: usize,
    },
    /// Replace one applicant's preference list.
    EditPrefList {
        /// The applicant whose list changes.
        applicant: usize,
        /// The replacement strict list, most preferred first.
        prefs: Vec<usize>,
    },
}

/// Counters describing how the incremental layer has been solving.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DeltaStats {
    /// Deltas accepted by [`DeltaSolver::apply`].
    pub deltas_applied: u64,
    /// Calls to [`DeltaSolver::flush`].
    pub flushes: u64,
    /// Dirty component shards re-solved incrementally.
    pub shard_solves: u64,
    /// Full from-scratch re-solves (install, post deltas, fallbacks).
    pub full_solves: u64,
    /// Full solves triggered by the dirty-fraction threshold specifically.
    pub fallback_full_solves: u64,
    /// Applicant slots spliced back into the cached matching by shard
    /// solves.
    pub spliced_applicants: u64,
}

/// The mutable instance: a slotted CSR arena.  `arena[off[a] .. off[a]+len[a]]`
/// is applicant `a`'s list.  Same-length edits rewrite slots in place;
/// length-changing edits append fresh slots and leak the old ones (the
/// leak is reclaimed by compaction at the next full rebuild).
#[derive(Debug, Default)]
struct DeltaInstance {
    num_posts: usize,
    arena: Vec<Idx>,
    off: Vec<u32>,
    len: Vec<u32>,
    /// Live (non-leaked) arena entries: Σ len.
    live_entries: usize,
}

impl DeltaInstance {
    fn num_applicants(&self) -> usize {
        self.off.len()
    }

    fn list(&self, a: usize) -> &[Idx] {
        let lo = self.off[a] as usize;
        &self.arena[lo..lo + self.len[a] as usize]
    }

    fn slots(&self, a: usize) -> std::ops::Range<usize> {
        let lo = self.off[a] as usize;
        lo..lo + self.len[a] as usize
    }
}

/// The incremental popular-matching solver (see the module docs).
///
/// Lifecycle: [`install`](Self::install) a base instance (runs one full
/// solve, warming the workspace pools), then interleave
/// [`apply`](Self::apply) and [`flush`](Self::flush).  A panic that
/// unwinds a flush or an apply poisons the solver
/// ([`is_poisoned`](Self::is_poisoned)); [`recover`](Self::recover)
/// rebuilds the scratch state from the retained instance and re-solves
/// fully — a poisoned shard never patches, it re-solves.
#[derive(Debug)]
pub struct DeltaSolver {
    mode: DeltaMode,
    inst: DeltaInstance,

    // Reverse containment index over arena slots, real posts only:
    // rev_head[p] heads an intrusive doubly-linked list of the arena slots
    // whose entry is p; rev_owner[slot] is the applicant owning the slot.
    rev_head: Vec<Idx>,
    rev_next: Vec<Idx>,
    rev_prev: Vec<Idx>,
    rev_owner: Vec<Idx>,

    // Reduced graph state (the exact arrays ReducedGraph::build_into
    // produces, maintained incrementally).
    f: Vec<Idx>,
    s: Vec<Idx>,
    f_count: Vec<u32>,
    is_f_post: Vec<bool>,

    // f⁻¹ intrusive lists: finv_head[p] (real posts) heads the chain of
    // applicants whose first choice is p.
    finv_head: Vec<Idx>,
    finv_next: Vec<Idx>,
    finv_prev: Vec<Idx>,

    // Union-only component decomposition over extended posts: union–find
    // (parent/csize), a circular ring of each component's posts
    // (ring_next), and per-root infeasibility flags.  Arrays are sized
    // `posts_hi`, which can exceed the live extended post count after
    // removals (retired ids keep their slots until the next full rebuild).
    parent: Vec<u32>,
    csize: Vec<u32>,
    ring_next: Vec<u32>,
    comp_bad: Vec<bool>,
    bad_comps: usize,
    posts_hi: usize,

    // Dirty component queue: raw (possibly stale) post ids, canonicalised
    // through `find` and deduplicated at flush time.
    dirty: Vec<u32>,
    needs_full: bool,
    infeasible_full: bool,

    out: Assignment,

    ws: Workspace,
    tracker: DepthTracker,
    post_marks: EpochMarks,
    dirty_marks: EpochMarks,
    app_marks: EpochMarks,
    valid_marks: EpochMarks,
    post_map: EpochMap,
    rescan_buf: Vec<u32>,
    applying: bool,

    stats: DeltaStats,
}

fn uf_find(parent: &mut [u32], mut x: u32) -> u32 {
    loop {
        let p = parent[x as usize];
        if p == x {
            return x;
        }
        let gp = parent[p as usize];
        parent[x as usize] = gp;
        x = gp;
    }
}

impl DeltaSolver {
    /// Builds the incremental solver around a strict instance and runs the
    /// initial full solve (warming the workspace pools to instance scale).
    ///
    /// An instance that admits no popular matching still installs — the
    /// error is reported by [`flush`](Self::flush) (and re-checked after
    /// every mutation) — but ties and size-funnel violations are rejected
    /// here.
    pub fn install(inst: &PrefInstance, mode: DeltaMode) -> Result<Self, PopularError> {
        if !inst.is_strict() {
            return Err(PopularError::TiesNotSupported);
        }
        let n = inst.num_applicants();
        let np = inst.num_posts();
        let entries = inst.num_edges();
        let mut di = DeltaInstance {
            num_posts: np,
            arena: Vec::with_capacity(entries + entries / 2 + 16),
            off: Vec::with_capacity(n + 16),
            len: Vec::with_capacity(n + 16),
            live_entries: entries,
        };
        for a in 0..n {
            let list = inst.flat_list(a);
            di.off.push(di.arena.len() as u32);
            di.len.push(list.len() as u32);
            di.arena.extend_from_slice(list);
        }
        let mut out = Assignment::from_idx_vec(Vec::with_capacity(n + 16));
        out.reset_unassigned(n);
        let mut solver = Self {
            mode,
            inst: di,
            rev_head: Vec::new(),
            rev_next: Vec::new(),
            rev_prev: Vec::new(),
            rev_owner: Vec::new(),
            f: Vec::with_capacity(n + 16),
            s: Vec::with_capacity(n + 16),
            f_count: Vec::new(),
            is_f_post: Vec::new(),
            finv_head: Vec::new(),
            finv_next: Vec::with_capacity(n + 16),
            finv_prev: Vec::with_capacity(n + 16),
            parent: Vec::with_capacity(np + n + 16),
            csize: Vec::with_capacity(np + n + 16),
            ring_next: Vec::with_capacity(np + n + 16),
            comp_bad: Vec::with_capacity(np + n + 16),
            bad_comps: 0,
            posts_hi: 0,
            dirty: Vec::with_capacity(1024),
            needs_full: true,
            infeasible_full: false,
            out,
            ws: Workspace::new(),
            tracker: DepthTracker::new(),
            post_marks: EpochMarks::new(),
            dirty_marks: EpochMarks::new(),
            app_marks: EpochMarks::new(),
            valid_marks: EpochMarks::new(),
            post_map: EpochMap::new(),
            rescan_buf: Vec::with_capacity(256),
            applying: false,
            stats: DeltaStats::default(),
        };
        // Pre-size the epoch structures so even the first incremental
        // flush after install allocates nothing.
        let total = np + n;
        solver.post_marks.reset(total + 1);
        solver.dirty_marks.reset(total + 1);
        solver.app_marks.reset(n + 1);
        solver.valid_marks.reset(np + 1);
        solver.post_map.reset(total + 1);
        // The install solve: counts as a flush; NoPopularMatching installs
        // fine, anything else cannot occur on a validated instance.
        solver.stats.flushes += 1;
        solver.tracker.reset();
        solver.ws.begin_epoch();
        solver.rebuild_full_inner();
        solver.ws.end_epoch();
        Ok(solver)
    }

    /// The solve mode fixed at install time.
    pub fn mode(&self) -> DeltaMode {
        self.mode
    }

    /// Current number of applicants.
    pub fn num_applicants(&self) -> usize {
        self.inst.num_applicants()
    }

    /// Current number of real posts.
    pub fn num_posts(&self) -> usize {
        self.inst.num_posts
    }

    /// True if mutations have been applied since the last flush (or a full
    /// re-solve is scheduled).
    pub fn is_dirty(&self) -> bool {
        self.needs_full || !self.dirty.is_empty()
    }

    /// Incremental-layer counters.
    pub fn stats(&self) -> DeltaStats {
        self.stats
    }

    /// The PRAM depth/work accounting of the most recent flush.
    pub fn pram_stats(&self) -> pm_pram::PramStats {
        self.tracker.stats()
    }

    /// True once a panic has unwound an apply or a flush: pooled scratch
    /// and incremental indices can no longer be trusted, and `flush`
    /// answers [`PopularError::SolverPoisoned`] until
    /// [`recover`](Self::recover) rebuilds.
    pub fn is_poisoned(&self) -> bool {
        self.ws.is_poisoned() || self.ws.epoch_open() || self.applying
    }

    /// Simulates a panic that unwound mid-flush by leaving the workspace
    /// epoch open, so the error-path property tests can drive the
    /// poisoned → [`recover`](Self::recover) cycle deterministically
    /// without arranging a real unwind.  Test hook only — never part of
    /// the serving contract.
    #[doc(hidden)]
    pub fn poison_for_tests(&mut self) {
        self.ws.begin_epoch();
    }

    /// Discards all derived state and re-solves fully from the retained
    /// instance — the recovery path after a poisoning panic (the arena is
    /// append/overwrite-only during an apply, so it is the one structure a
    /// mid-apply unwind cannot tear).
    pub fn recover(&mut self) -> Result<&Assignment, PopularError> {
        self.ws = Workspace::new();
        self.applying = false;
        self.dirty.clear();
        self.needs_full = true;
        self.infeasible_full = false;
        self.flush()
    }

    /// A fresh validated [`PrefInstance`] snapshot of the current mutated
    /// instance (allocating; used by equivalence tests and the serving
    /// layer's degraded fallback, never by the hot path).
    pub fn snapshot_instance(&self) -> Result<PrefInstance, PopularError> {
        let n = self.inst.num_applicants();
        let mut flat = Vec::with_capacity(self.inst.live_entries);
        let mut offs = Vec::with_capacity(n + 1);
        offs.push(0u32);
        for a in 0..n {
            flat.extend_from_slice(self.inst.list(a));
            offs.push(flat.len() as u32);
        }
        PrefInstance::from_strict_csr(self.inst.num_posts, flat, offs)
    }

    /// Validates and applies one delta to the instance and the incremental
    /// indices.  Returns an error (and mutates nothing) if the delta is
    /// malformed; the re-solve itself is deferred to
    /// [`flush`](Self::flush).
    pub fn apply(&mut self, delta: &Delta) -> Result<(), PopularError> {
        if self.is_poisoned() {
            return Err(PopularError::SolverPoisoned);
        }
        self.validate(delta)?;
        self.applying = true;
        match delta {
            Delta::EditPrefList { applicant, prefs } => self.apply_edit(*applicant, prefs),
            Delta::AddApplicant { prefs } => self.apply_add_applicant(prefs),
            Delta::RemoveApplicant { applicant } => self.apply_remove_applicant(*applicant),
            Delta::AddPost => {
                self.inst.num_posts += 1;
                self.needs_full = true;
            }
            Delta::RemovePost { post } => self.apply_remove_post(*post),
        }
        self.stats.deltas_applied += 1;
        self.applying = false;
        Ok(())
    }

    /// Re-solves everything the applied deltas touched and returns the
    /// up-to-date global matching (or [`PopularError::NoPopularMatching`]
    /// if any component is currently infeasible,
    /// [`PopularError::SolverPoisoned`] after an unrecovered panic).
    ///
    /// Clean-shard warm flushes perform zero heap allocations; the
    /// dirty-fraction and structural fallbacks re-solve fully and rebuild
    /// the component decomposition.
    pub fn flush(&mut self) -> Result<&Assignment, PopularError> {
        if self.is_poisoned() {
            return Err(PopularError::SolverPoisoned);
        }
        self.stats.flushes += 1;
        self.tracker.reset();
        self.ws.begin_epoch();
        if self.needs_full || self.infeasible_full {
            self.rebuild_full_inner();
        } else if !self.solve_dirty_inner() {
            self.stats.fallback_full_solves += 1;
            self.rebuild_full_inner();
        }
        self.ws.end_epoch();
        if self.infeasible_full || self.bad_comps > 0 {
            return Err(PopularError::NoPopularMatching);
        }
        Ok(&self.out)
    }

    // ------------------------------------------------------------------
    // Validation
    // ------------------------------------------------------------------

    fn validate_prefs(&mut self, prefs: &[usize]) -> Result<(), PopularError> {
        if prefs.is_empty() {
            return Err(PopularError::InvalidInstance(
                "delta: empty preference list".into(),
            ));
        }
        self.valid_marks.reset(self.inst.num_posts);
        for &p in prefs {
            if p >= self.inst.num_posts {
                return Err(PopularError::InvalidInstance(format!(
                    "delta: post {p} out of range (num_posts = {})",
                    self.inst.num_posts
                )));
            }
            if !self.valid_marks.insert(p) {
                return Err(PopularError::InvalidInstance(format!(
                    "delta: duplicate post {p} in one list"
                )));
            }
        }
        Ok(())
    }

    fn validate(&mut self, delta: &Delta) -> Result<(), PopularError> {
        let n = self.inst.num_applicants();
        match delta {
            Delta::EditPrefList { applicant, prefs } => {
                if *applicant >= n {
                    return Err(PopularError::InvalidInstance(format!(
                        "delta: applicant {applicant} out of range (n = {n})"
                    )));
                }
                self.validate_prefs(prefs)
            }
            Delta::AddApplicant { prefs } => {
                check_sizes(
                    n + 1,
                    self.inst.num_posts,
                    self.inst.live_entries + prefs.len(),
                )?;
                self.validate_prefs(prefs)
            }
            Delta::RemoveApplicant { applicant } => {
                if *applicant >= n {
                    return Err(PopularError::InvalidInstance(format!(
                        "delta: applicant {applicant} out of range (n = {n})"
                    )));
                }
                Ok(())
            }
            Delta::AddPost => check_sizes(n, self.inst.num_posts + 1, self.inst.live_entries),
            Delta::RemovePost { post } => {
                let p = *post;
                if p >= self.inst.num_posts {
                    return Err(PopularError::InvalidInstance(format!(
                        "delta: post {p} out of range (num_posts = {})",
                        self.inst.num_posts
                    )));
                }
                for a in 0..n {
                    if self.inst.len[a] == 1
                        && self.inst.arena[self.inst.off[a] as usize].get() == p
                    {
                        return Err(PopularError::InvalidInstance(format!(
                            "delta: removing post {p} would empty applicant {a}'s list"
                        )));
                    }
                }
                Ok(())
            }
        }
    }

    // ------------------------------------------------------------------
    // Intrusive index maintenance
    // ------------------------------------------------------------------

    fn rev_unlink(&mut self, slot: usize) {
        let p = self.arena_post(slot);
        let prev = self.rev_prev[slot];
        let next = self.rev_next[slot];
        if prev.is_none() {
            self.rev_head[p] = next;
        } else {
            self.rev_next[prev.get()] = next;
        }
        if next.is_some() {
            self.rev_prev[next.get()] = prev;
        }
    }

    fn rev_link(&mut self, slot: usize, p: usize) {
        let h = self.rev_head[p];
        self.rev_prev[slot] = Idx::NONE;
        self.rev_next[slot] = h;
        if h.is_some() {
            self.rev_prev[h.get()] = Idx::new(slot);
        }
        self.rev_head[p] = Idx::new(slot);
    }

    fn arena_post(&self, slot: usize) -> usize {
        self.inst.arena[slot].get()
    }

    fn finv_unlink(&mut self, a: usize) {
        let p = self.f[a].get();
        let prev = self.finv_prev[a];
        let next = self.finv_next[a];
        if prev.is_none() {
            self.finv_head[p] = next;
        } else {
            self.finv_next[prev.get()] = next;
        }
        if next.is_some() {
            self.finv_prev[next.get()] = prev;
        }
    }

    fn finv_link(&mut self, a: usize, p: usize) {
        let h = self.finv_head[p];
        self.finv_prev[a] = Idx::NONE;
        self.finv_next[a] = h;
        if h.is_some() {
            self.finv_prev[h.get()] = Idx::new(a);
        }
        self.finv_head[p] = Idx::new(a);
    }

    /// Renames intrusive `f⁻¹` node `from` to `to` (the swap-remove move);
    /// the link *values* are copied by the caller's `swap_remove`.
    fn finv_rename(&mut self, from: usize, to: usize) {
        let p = self.f[from].get();
        let prev = self.finv_prev[from];
        let next = self.finv_next[from];
        if prev.is_none() {
            self.finv_head[p] = Idx::new(to);
        } else {
            self.finv_next[prev.get()] = Idx::new(to);
        }
        if next.is_some() {
            self.finv_prev[next.get()] = Idx::new(to);
        }
    }

    // ------------------------------------------------------------------
    // Union–find + dirty marking
    // ------------------------------------------------------------------

    fn union(&mut self, x: usize, y: usize) {
        let rx = uf_find(&mut self.parent, x as u32);
        let ry = uf_find(&mut self.parent, y as u32);
        if rx == ry {
            return;
        }
        // The merged component is dirtied by every caller, so conservative
        // flag clearing is sound: the flush that follows recomputes it.
        self.bad_comps -= usize::from(self.comp_bad[rx as usize]);
        self.bad_comps -= usize::from(self.comp_bad[ry as usize]);
        self.comp_bad[rx as usize] = false;
        self.comp_bad[ry as usize] = false;
        let (w, l) = if self.csize[rx as usize] >= self.csize[ry as usize] {
            (rx, ry)
        } else {
            (ry, rx)
        };
        self.parent[l as usize] = w;
        self.csize[w as usize] += self.csize[l as usize];
        self.ring_next.swap(rx as usize, ry as usize);
    }

    /// Recomputes `s(b)` from the current list and `is_f_post`; on change,
    /// merges and dirties the affected component.
    fn rescan_s(&mut self, b: usize) {
        let lo = self.inst.off[b] as usize;
        let hi = lo + self.inst.len[b] as usize;
        let mut new_s = Idx::new(self.inst.num_posts + b);
        for i in lo..hi {
            let p = self.inst.arena[i];
            if !self.is_f_post[p.get()] {
                new_s = p;
                break;
            }
        }
        if new_s != self.s[b] {
            self.s[b] = new_s;
            let fb = self.f[b].get();
            self.union(fb, new_s.get());
            self.dirty.push(fb as u32);
        }
    }

    /// Queues every applicant whose list mentions `p` for an `s` rescan
    /// (dedup across multiple flipped posts via `app_marks`).
    fn collect_rev_owners(&mut self, p: usize) {
        let mut slot = self.rev_head[p];
        while slot.is_some() {
            let b = self.rev_owner[slot.get()];
            if self.app_marks.insert(b.get()) {
                self.rescan_buf.push(b.raw());
            }
            slot = self.rev_next[slot.get()];
        }
    }

    // ------------------------------------------------------------------
    // Delta application
    // ------------------------------------------------------------------

    fn apply_edit(&mut self, a: usize, prefs: &[usize]) {
        let old_len = self.inst.len[a] as usize;
        if self.needs_full {
            // Raw mode: only the arena/off/len need to stay consistent.
            if prefs.len() == old_len {
                let lo = self.inst.off[a] as usize;
                for (i, &p) in prefs.iter().enumerate() {
                    self.inst.arena[lo + i] = Idx::new(p);
                }
            } else {
                self.ensure_arena_room(prefs.len());
                self.inst.off[a] = self.inst.arena.len() as u32;
                self.inst.len[a] = prefs.len() as u32;
                self.inst.arena.extend(prefs.iter().map(|&p| Idx::new(p)));
                self.inst.live_entries = self.inst.live_entries + prefs.len() - old_len;
            }
            return;
        }

        let old_f = self.f[a];
        let new_f = Idx::new(prefs[0]);

        // 1. Rewrite the arena slots and the reverse index.
        if prefs.len() == old_len {
            let lo = self.inst.off[a] as usize;
            for (i, &p) in prefs.iter().enumerate() {
                if self.arena_post(lo + i) != p {
                    self.rev_unlink(lo + i);
                    self.inst.arena[lo + i] = Idx::new(p);
                    self.rev_link(lo + i, p);
                }
            }
        } else {
            for slot in self.inst.slots(a) {
                self.rev_unlink(slot);
            }
            self.ensure_arena_room(prefs.len());
            let base = self.inst.arena.len();
            self.inst.off[a] = base as u32;
            self.inst.len[a] = prefs.len() as u32;
            self.inst.arena.extend(prefs.iter().map(|&p| Idx::new(p)));
            let grown = self.inst.arena.len();
            self.rev_next.resize(grown, Idx::NONE);
            self.rev_prev.resize(grown, Idx::NONE);
            self.rev_owner.resize(grown, Idx::NONE);
            for (i, &p) in prefs.iter().enumerate() {
                self.rev_owner[base + i] = Idx::new(a);
                self.rev_link(base + i, p);
            }
            self.inst.live_entries = self.inst.live_entries + prefs.len() - old_len;
            if self.needs_full {
                // ensure_arena_room may have forced a compaction; the
                // indices are stale now, nothing more to maintain.
                return;
            }
        }

        // 2. First-choice bookkeeping and is_f_post flips.
        self.app_marks.reset(self.inst.num_applicants());
        self.rescan_buf.clear();
        if new_f != old_f {
            self.dirty.push(old_f.raw());
            self.finv_unlink(a);
            self.f[a] = new_f;
            self.finv_link(a, new_f.get());
            self.f_count[old_f.get()] -= 1;
            self.f_count[new_f.get()] += 1;
            if self.f_count[old_f.get()] == 0 {
                self.is_f_post[old_f.get()] = false;
            }
            if self.f_count[new_f.get()] == 1 {
                self.is_f_post[new_f.get()] = true;
            }
            // Both flips are applied before any rescan reads is_f_post.
            if self.f_count[old_f.get()] == 0 {
                self.collect_rev_owners(old_f.get());
            }
            if self.f_count[new_f.get()] == 1 {
                self.collect_rev_owners(new_f.get());
            }
        }
        // The edited applicant always rescans (its list changed even when
        // no census flip occurred).
        if self.app_marks.insert(a) {
            self.rescan_buf.push(a as u32);
        }

        // 3. Rescans (each merges + dirties as needed).
        for i in 0..self.rescan_buf.len() {
            let b = self.rescan_buf[i] as usize;
            self.rescan_s(b);
        }
        // Even when s(a) is unchanged, an f change moved `a` between
        // components: re-link and dirty the new one.
        if new_f != old_f {
            let sa = self.s[a].get();
            self.union(new_f.get(), sa);
            self.dirty.push(new_f.raw());
        }
    }

    fn apply_add_applicant(&mut self, prefs: &[usize]) {
        let n = self.inst.num_applicants();
        let np = self.inst.num_posts;
        if self.needs_full {
            self.raw_push_applicant(prefs);
            return;
        }
        let l = np + n;
        if l != self.posts_hi {
            // The new last-resort id re-occupies a retired slot whose
            // union–find/ring state still belongs to a dead component —
            // re-solve fully instead of patching (DESIGN.md §10).
            self.needs_full = true;
            self.raw_push_applicant(prefs);
            return;
        }
        // Arena + reverse index.
        self.ensure_arena_room(prefs.len());
        let base = self.inst.arena.len();
        self.inst.off.push(base as u32);
        self.inst.len.push(prefs.len() as u32);
        self.inst.arena.extend(prefs.iter().map(|&p| Idx::new(p)));
        self.inst.live_entries += prefs.len();
        if self.needs_full {
            return; // compaction fired mid-append
        }
        let grown = self.inst.arena.len();
        self.rev_next.resize(grown, Idx::NONE);
        self.rev_prev.resize(grown, Idx::NONE);
        self.rev_owner.resize(grown, Idx::NONE);
        for (i, &p) in prefs.iter().enumerate() {
            self.rev_owner[base + i] = Idx::new(n);
            self.rev_link(base + i, p);
        }
        // Fresh singleton component for the new last resort.
        self.parent.push(l as u32);
        self.csize.push(1);
        self.ring_next.push(l as u32);
        self.comp_bad.push(false);
        self.is_f_post.push(false);
        self.posts_hi += 1;
        // Applicant arrays.
        let new_f = Idx::new(prefs[0]);
        self.f.push(new_f);
        self.s.push(Idx::NONE);
        self.finv_next.push(Idx::NONE);
        self.finv_prev.push(Idx::NONE);
        self.finv_link(n, new_f.get());
        self.out.push_idx(Idx::new(l));
        // Census + rescans.  The new applicant's own list contains new_f,
        // so the flip-on rescan necessarily covers it; otherwise rescan it
        // explicitly (its s is the NONE sentinel, so rescan always fires).
        self.app_marks.reset(n + 1);
        self.rescan_buf.clear();
        self.f_count[new_f.get()] += 1;
        if self.f_count[new_f.get()] == 1 {
            self.is_f_post[new_f.get()] = true;
            self.collect_rev_owners(new_f.get());
        } else if self.app_marks.insert(n) {
            self.rescan_buf.push(n as u32);
        }
        for i in 0..self.rescan_buf.len() {
            let b = self.rescan_buf[i] as usize;
            self.rescan_s(b);
        }
    }

    fn raw_push_applicant(&mut self, prefs: &[usize]) {
        self.ensure_arena_room(prefs.len());
        self.inst.off.push(self.inst.arena.len() as u32);
        self.inst.len.push(prefs.len() as u32);
        self.inst.arena.extend(prefs.iter().map(|&p| Idx::new(p)));
        self.inst.live_entries += prefs.len();
    }

    fn apply_remove_applicant(&mut self, r: usize) {
        let n = self.inst.num_applicants();
        let m = n - 1;
        if self.needs_full {
            self.inst.live_entries -= self.inst.len[r] as usize;
            self.inst.off.swap_remove(r);
            self.inst.len.swap_remove(r);
            return;
        }
        let np = self.inst.num_posts;
        let old_f = self.f[r];

        // 1. Detach the removed applicant from every index.
        for slot in self.inst.slots(r) {
            self.rev_unlink(slot);
        }
        self.inst.live_entries -= self.inst.len[r] as usize;
        self.finv_unlink(r);
        self.dirty.push(old_f.raw());
        self.f_count[old_f.get()] -= 1;
        let flipped_off = self.f_count[old_f.get()] == 0;
        if flipped_off {
            self.is_f_post[old_f.get()] = false;
        }

        // 2. Swap-move the last applicant into slot r.
        if r != m {
            for slot in self.inst.slots(m) {
                self.rev_owner[slot] = Idx::new(r);
            }
            self.finv_rename(m, r);
        }
        self.inst.off.swap_remove(r);
        self.inst.len.swap_remove(r);
        self.f.swap_remove(r);
        self.s.swap_remove(r);
        self.finv_next.swap_remove(r);
        self.finv_prev.swap_remove(r);
        self.out.swap_remove(r);

        // 3. The moved applicant's last resort changes id from np+m to
        // np+r; if its s *was* its last resort, re-point it (the retired
        // id np+m keeps its stale ring/UF slot until the next rebuild).
        if r != m && self.s[r] == Idx::new(np + m) {
            self.s[r] = Idx::new(np + r);
            let fr = self.f[r].get();
            self.union(fr, np + r);
            self.dirty.push(fr as u32);
        }

        // 4. Census-flip rescans, after the move so owners are valid.
        if flipped_off {
            self.app_marks.reset(self.inst.num_applicants());
            self.rescan_buf.clear();
            self.collect_rev_owners(old_f.get());
            for i in 0..self.rescan_buf.len() {
                let b = self.rescan_buf[i] as usize;
                self.rescan_s(b);
            }
        }
    }

    fn apply_remove_post(&mut self, p: usize) {
        // Every last-resort id shifts, so this always re-solves fully;
        // the mutation itself is a raw arena rewrite.
        self.needs_full = true;
        let last = self.inst.num_posts - 1;
        let n = self.inst.num_applicants();
        let mut removed = 0usize;
        for a in 0..n {
            let lo = self.inst.off[a] as usize;
            let hi = lo + self.inst.len[a] as usize;
            let mut w = lo;
            for i in lo..hi {
                let q = self.inst.arena[i].get();
                if q == p {
                    continue;
                }
                self.inst.arena[w] = if q == last { Idx::new(p) } else { Idx::new(q) };
                w += 1;
            }
            removed += hi - w;
            self.inst.len[a] = (w - lo) as u32;
        }
        self.inst.live_entries -= removed;
        self.inst.num_posts = last;
    }

    /// Guards the `u32` arena offsets: if an append would overflow them,
    /// compact the arena now (allocating — vanishingly rare) and schedule
    /// a full rebuild, since every slot-based index just went stale.
    fn ensure_arena_room(&mut self, extra: usize) {
        if self.inst.arena.len() + extra <= u32::MAX as usize - 2 {
            return;
        }
        let mut fresh = Vec::with_capacity(self.inst.live_entries + extra + 16);
        for a in 0..self.inst.num_applicants() {
            let lo = self.inst.off[a] as usize;
            let hi = lo + self.inst.len[a] as usize;
            let base = fresh.len() as u32;
            fresh.extend_from_slice(&self.inst.arena[lo..hi]);
            self.inst.off[a] = base;
        }
        self.inst.arena = fresh;
        self.needs_full = true;
    }

    // ------------------------------------------------------------------
    // Flush internals
    // ------------------------------------------------------------------

    /// Canonicalises the dirty queue and re-solves each dirty shard.
    /// Returns `false` (leaving the instance un-patched) when the dirty
    /// fraction exceeds the full-solve threshold.
    fn solve_dirty_inner(&mut self) -> bool {
        if self.dirty.is_empty() {
            return true;
        }
        let live_total = self.inst.num_posts + self.inst.num_applicants();
        self.dirty_marks.reset(self.posts_hi);
        let mut roots = self.ws.take_u32_empty();
        let mut dirty_posts: u64 = 0;
        for i in 0..self.dirty.len() {
            let r = uf_find(&mut self.parent, self.dirty[i]);
            if self.dirty_marks.insert(r as usize) {
                roots.push(r);
                dirty_posts += u64::from(self.csize[r as usize]);
            }
        }
        self.dirty.clear();
        if dirty_posts as f64 > FULL_SOLVE_DIRTY_FRACTION * live_total as f64 {
            self.ws.put_u32(roots);
            return false;
        }
        for &r in &roots {
            self.solve_shard(r);
        }
        self.ws.put_u32(roots);
        true
    }

    /// Re-solves the component rooted at `root` on a compact, monotonically
    /// remapped id space and splices the result into the cached matching.
    fn solve_shard(&mut self, root: u32) {
        self.stats.shard_solves += 1;
        let np = self.inst.num_posts;
        let ri = root as usize;

        // Gather members: every applicant's f-post lies in its component,
        // so walking the component's post ring and each real post's f⁻¹
        // list enumerates each member exactly once.
        let mut members = self.ws.take_idx_empty();
        let mut p = ri;
        loop {
            if p < np {
                let mut b = self.finv_head[p];
                while b.is_some() {
                    members.push(b);
                    b = self.finv_next[b.get()];
                }
            }
            p = self.ring_next[p] as usize;
            if p == ri {
                break;
            }
        }
        let k = members.len();
        if k == 0 {
            // Every applicant migrated out; an empty component is
            // trivially feasible.
            if self.comp_bad[ri] {
                self.comp_bad[ri] = false;
                self.bad_comps -= 1;
            }
            self.ws.put_idx(members);
            return;
        }
        members.sort_unstable();

        // Shard post space: the members' f/s posts, sorted ascending so
        // real posts precede last resorts and the remap is monotone.
        let mut posts = self.ws.take_idx_empty();
        self.post_marks.reset(self.posts_hi);
        for &m in &members {
            let b = m.get();
            let (fb, sb) = (self.f[b], self.s[b]);
            if self.post_marks.insert(fb.get()) {
                posts.push(fb);
            }
            if self.post_marks.insert(sb.get()) {
                posts.push(sb);
            }
        }
        posts.sort_unstable();
        let sp_real = posts.partition_point(|q| q.get() < np);
        self.post_map.reset(self.posts_hi);
        for (i, &q) in posts.iter().enumerate() {
            self.post_map.set(q.get(), i as u32);
        }

        // Remapped sub-instance (every slot written before read).
        let kp = posts.len();
        let mut sub_f = self.ws.take_idx_dirty(k, Idx::NONE);
        let mut sub_s = self.ws.take_idx_dirty(k, Idx::NONE);
        for i in 0..k {
            let b = members[i].get();
            sub_f[i] = Idx::from_raw(self.post_map.get(self.f[b].get()).expect("f post mapped"));
            sub_s[i] = Idx::from_raw(self.post_map.get(self.s[b].get()).expect("s post mapped"));
        }
        let mut sub_m = self.ws.take_idx(k, Idx::NONE);
        let (feasible, _peel_rounds) = applicant_complete_matching_into(
            kp,
            &sub_f,
            &sub_s,
            &mut sub_m,
            &mut self.ws,
            &self.tracker,
        );
        if feasible {
            // Shard f-post status equals global status restricted to the
            // shard: f⁻¹ of a shard post is entirely inside the shard.
            let mut sub_isf = self.ws.take_bool(kp, false);
            for i in 0..k {
                sub_isf[sub_f[i].get()] = true;
            }
            promote_into(
                &sub_f,
                &sub_s,
                &sub_isf,
                &mut sub_m,
                &mut self.ws,
                &self.tracker,
            );
            if self.mode == DeltaMode::MaxCardinality {
                improve_to_maximum_cardinality_ws(
                    &sub_f,
                    &sub_s,
                    sp_real,
                    &mut sub_m,
                    &mut self.ws,
                    &self.tracker,
                );
            }
            let out = self.out.as_mut_slice();
            for i in 0..k {
                out[members[i].get()] = posts[sub_m[i].get()];
            }
            self.stats.spliced_applicants += k as u64;
            if self.comp_bad[ri] {
                self.comp_bad[ri] = false;
                self.bad_comps -= 1;
            }
            self.ws.put_bool(sub_isf);
        } else if !self.comp_bad[ri] {
            self.comp_bad[ri] = true;
            self.bad_comps += 1;
        }
        self.ws.put_idx(sub_m);
        self.ws.put_idx(sub_s);
        self.ws.put_idx(sub_f);
        self.ws.put_idx(posts);
        self.ws.put_idx(members);
    }

    /// Full rebuild: recompute the reduced graph from the arena, solve
    /// globally, and reconstitute every incremental index from scratch.
    fn rebuild_full_inner(&mut self) {
        self.stats.full_solves += 1;
        self.dirty.clear();
        if self.inst.arena.len() > 2 * self.inst.live_entries + 64 {
            self.compact_arena();
        }
        let n = self.inst.num_applicants();
        let np = self.inst.num_posts;
        let total = np + n;

        // Reduced graph, mirroring ReducedGraph::build_into's three steps
        // (sequential here: a rebuild is already the slow path, and the
        // charges stay deterministic across thread counts).
        self.tracker.phase();
        self.tracker.round();
        self.tracker.work(n as u64);
        self.f.clear();
        for a in 0..n {
            self.f.push(self.inst.arena[self.inst.off[a] as usize]);
        }
        self.tracker.round();
        self.tracker.work(n as u64);
        self.f_count.clear();
        self.f_count.resize(np, 0);
        for a in 0..n {
            self.f_count[self.f[a].get()] += 1;
        }
        self.is_f_post.clear();
        self.is_f_post.resize(total, false);
        for p in 0..np {
            self.is_f_post[p] = self.f_count[p] > 0;
        }
        self.tracker.round();
        let mut examined: u64 = 0;
        self.s.clear();
        for a in 0..n {
            let lo = self.inst.off[a] as usize;
            let hi = lo + self.inst.len[a] as usize;
            let mut sa = Idx::new(np + a);
            for i in lo..hi {
                examined += 1;
                let p = self.inst.arena[i];
                if !self.is_f_post[p.get()] {
                    sa = p;
                    break;
                }
            }
            self.s.push(sa);
        }
        self.tracker.work(examined);

        // Global solve through the shared workspace.
        self.out.reset_unassigned(n);
        let (feasible, _peel_rounds) = applicant_complete_matching_into(
            total,
            &self.f,
            &self.s,
            self.out.as_mut_slice(),
            &mut self.ws,
            &self.tracker,
        );
        if !feasible {
            // Stay in full-rebuild mode until a delta restores
            // feasibility; the decomposition is not rebuilt (it would
            // describe an instance we cannot serve anyway).
            self.infeasible_full = true;
            self.needs_full = true;
            return;
        }
        promote_into(
            &self.f,
            &self.s,
            &self.is_f_post,
            self.out.as_mut_slice(),
            &mut self.ws,
            &self.tracker,
        );
        if self.mode == DeltaMode::MaxCardinality {
            improve_to_maximum_cardinality_ws(
                &self.f,
                &self.s,
                np,
                self.out.as_mut_slice(),
                &mut self.ws,
                &self.tracker,
            );
        }

        // Fresh decomposition and indices.
        self.parent.clear();
        self.parent.extend(0..total as u32);
        self.csize.clear();
        self.csize.resize(total, 1);
        self.ring_next.clear();
        self.ring_next.extend(0..total as u32);
        self.comp_bad.clear();
        self.comp_bad.resize(total, false);
        self.bad_comps = 0;
        self.finv_head.clear();
        self.finv_head.resize(np, Idx::NONE);
        self.finv_next.clear();
        self.finv_next.resize(n, Idx::NONE);
        self.finv_prev.clear();
        self.finv_prev.resize(n, Idx::NONE);
        for a in 0..n {
            let p = self.f[a].get();
            self.finv_link(a, p);
        }
        let arena_len = self.inst.arena.len();
        self.rev_head.clear();
        self.rev_head.resize(np, Idx::NONE);
        self.rev_next.clear();
        self.rev_next.resize(arena_len, Idx::NONE);
        self.rev_prev.clear();
        self.rev_prev.resize(arena_len, Idx::NONE);
        self.rev_owner.clear();
        self.rev_owner.resize(arena_len, Idx::NONE);
        for a in 0..n {
            for slot in self.inst.slots(a) {
                self.rev_owner[slot] = Idx::new(a);
                let p = self.arena_post(slot);
                self.rev_link(slot, p);
            }
        }
        for a in 0..n {
            let (fa, sa) = (self.f[a].get(), self.s[a].get());
            self.union(fa, sa);
        }
        self.posts_hi = total;
        self.needs_full = false;
        self.infeasible_full = false;
    }

    /// Rewrites the arena densely in applicant order, dropping leaked
    /// slots.  Only called from the full-rebuild path (or the u32-offset
    /// guard), which reconstructs the slot-based indices afterwards.
    fn compact_arena(&mut self) {
        let mut fresh = Vec::with_capacity(self.inst.live_entries + 16);
        for a in 0..self.inst.num_applicants() {
            let lo = self.inst.off[a] as usize;
            let hi = lo + self.inst.len[a] as usize;
            let base = fresh.len() as u32;
            fresh.extend_from_slice(&self.inst.arena[lo..hi]);
            self.inst.off[a] = base;
        }
        self.inst.arena = fresh;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::PopularSolver;

    fn inst(num_posts: usize, lists: &[&[usize]]) -> PrefInstance {
        PrefInstance::new_strict(num_posts, lists.iter().map(|l| l.to_vec()).collect()).unwrap()
    }

    fn assert_matches_fresh(ds: &mut DeltaSolver) {
        let snap = ds.snapshot_instance().expect("snapshot");
        let mut fresh = PopularSolver::new(0, 0);
        let expected = match ds.mode() {
            DeltaMode::Popular => fresh.solve(&snap).map(|m| m.as_slice().to_vec()),
            DeltaMode::MaxCardinality => fresh
                .solve_max_cardinality(&snap)
                .map(|m| m.as_slice().to_vec()),
        };
        let got = ds.flush().map(|m| m.as_slice().to_vec());
        assert_eq!(got, expected);
    }

    #[test]
    fn install_matches_fresh_solve_in_both_modes() {
        let base = inst(4, &[&[0, 1], &[0, 2], &[2, 0], &[3, 1]]);
        for mode in [DeltaMode::Popular, DeltaMode::MaxCardinality] {
            let mut ds = DeltaSolver::install(&base, mode).unwrap();
            assert_matches_fresh(&mut ds);
        }
    }

    #[test]
    fn edit_only_dirties_and_stays_equivalent() {
        // Eight independent two-post components; editing one must re-solve
        // only its shard and must stay bit-identical to a fresh solve.
        let lists: Vec<Vec<usize>> = (0..8).map(|a| vec![2 * a, 2 * a + 1]).collect();
        let base = PrefInstance::new_strict(16, lists).unwrap();
        let mut ds = DeltaSolver::install(&base, DeltaMode::MaxCardinality).unwrap();
        let before = ds.flush().unwrap().as_slice().to_vec();
        let full_before = ds.stats().full_solves;
        ds.apply(&Delta::EditPrefList {
            applicant: 0,
            prefs: vec![1, 0],
        })
        .unwrap();
        assert!(ds.is_dirty());
        assert_matches_fresh(&mut ds);
        assert_eq!(
            ds.stats().full_solves,
            full_before,
            "edit path stays incremental"
        );
        assert!(ds.stats().shard_solves >= 1);
        // The untouched components kept their cached slots.
        let after = ds.flush().unwrap().as_slice().to_vec();
        assert_eq!(after[1..], before[1..]);
    }

    #[test]
    fn add_and_remove_applicants_stay_equivalent() {
        let base = inst(5, &[&[0, 1], &[2, 3]]);
        let mut ds = DeltaSolver::install(&base, DeltaMode::Popular).unwrap();
        ds.apply(&Delta::AddApplicant { prefs: vec![4, 0] })
            .unwrap();
        assert_matches_fresh(&mut ds);
        ds.apply(&Delta::AddApplicant { prefs: vec![0, 2] })
            .unwrap();
        assert_matches_fresh(&mut ds);
        ds.apply(&Delta::RemoveApplicant { applicant: 0 }).unwrap();
        assert_matches_fresh(&mut ds);
        // Regrowing into the retired last-resort id forces a full rebuild
        // but stays correct.
        let full_before = ds.stats().full_solves;
        ds.apply(&Delta::AddApplicant { prefs: vec![1, 3] })
            .unwrap();
        assert_matches_fresh(&mut ds);
        assert!(ds.stats().full_solves > full_before);
    }

    #[test]
    fn post_deltas_force_full_rebuild_and_stay_equivalent() {
        let base = inst(4, &[&[0, 1], &[1, 2], &[2, 3]]);
        let mut ds = DeltaSolver::install(&base, DeltaMode::MaxCardinality).unwrap();
        ds.apply(&Delta::AddPost).unwrap();
        assert!(ds.is_dirty());
        assert_matches_fresh(&mut ds);
        ds.apply(&Delta::EditPrefList {
            applicant: 0,
            prefs: vec![4, 0, 1],
        })
        .unwrap();
        assert_matches_fresh(&mut ds);
        // Removing post 0 renumbers post 4 -> 0 and strips 0 from lists.
        ds.apply(&Delta::RemovePost { post: 0 }).unwrap();
        assert_matches_fresh(&mut ds);
        assert_eq!(ds.num_posts(), 4);
        // Removing a post that would empty a list is rejected atomically.
        let only = inst(1, &[&[0]]);
        let mut ds = DeltaSolver::install(&only, DeltaMode::Popular).unwrap();
        let err = ds.apply(&Delta::RemovePost { post: 0 }).unwrap_err();
        assert!(matches!(err, PopularError::InvalidInstance(_)));
        assert_eq!(ds.num_posts(), 1, "rejected delta mutates nothing");
        assert!(ds.flush().is_ok());
    }

    #[test]
    fn infeasibility_is_tracked_per_component_and_heals() {
        // p0/p1 with three applicants fighting over them: no popular
        // matching; a second, healthy component must keep serving after
        // the first heals.
        let base = inst(4, &[&[0, 1], &[0, 1], &[2, 3]]);
        let mut ds = DeltaSolver::install(&base, DeltaMode::Popular).unwrap();
        assert!(ds.flush().is_ok(), "two applicants on two posts are fine");
        // A third applicant with f = 0 and s = 1 overloads the component:
        // three applicants, two alive posts.
        ds.apply(&Delta::AddApplicant { prefs: vec![0, 1] })
            .unwrap();
        assert_eq!(ds.flush().unwrap_err(), PopularError::NoPopularMatching);
        // The bad flag persists across an unrelated flush.
        assert_eq!(ds.flush().unwrap_err(), PopularError::NoPopularMatching);
        // Healing the component restores service.
        ds.apply(&Delta::RemoveApplicant { applicant: 3 }).unwrap();
        assert_matches_fresh(&mut ds);
    }

    #[test]
    fn dirty_fraction_threshold_falls_back_to_full_solve() {
        // One big component (shared s-post chain): editing it dirties more
        // than the threshold fraction of posts.
        let lists: Vec<Vec<usize>> = (0..8).map(|a| vec![a, 8]).collect();
        let base = PrefInstance::new_strict(9, lists).unwrap();
        let mut ds = DeltaSolver::install(&base, DeltaMode::Popular).unwrap();
        // Moving post 8 to the front makes it an f-post, which re-points
        // s(a) for every applicant sharing it: the whole component is dirty.
        ds.apply(&Delta::EditPrefList {
            applicant: 0,
            prefs: vec![8, 0],
        })
        .unwrap();
        let before = ds.stats().fallback_full_solves;
        assert_matches_fresh(&mut ds);
        assert!(
            ds.stats().fallback_full_solves > before,
            "a dirty shard covering most of the instance must fall back"
        );
    }

    #[test]
    fn poisoned_solver_refuses_and_recovers_fully() {
        let base = inst(3, &[&[0, 1], &[1, 2]]);
        let mut ds = DeltaSolver::install(&base, DeltaMode::MaxCardinality).unwrap();
        // Simulate a panic that unwound mid-flush: the epoch stays open.
        ds.ws.begin_epoch();
        assert!(ds.is_poisoned());
        assert_eq!(ds.flush().unwrap_err(), PopularError::SolverPoisoned);
        assert_eq!(
            ds.apply(&Delta::AddPost).unwrap_err(),
            PopularError::SolverPoisoned
        );
        // Recovery rebuilds scratch and re-solves fully.
        let full_before = ds.stats().full_solves;
        let m = ds.recover().unwrap().as_slice().to_vec();
        assert!(ds.stats().full_solves > full_before);
        let mut fresh = PopularSolver::new(0, 0);
        let snap = ds.snapshot_instance().unwrap();
        assert_eq!(
            m,
            fresh
                .solve_max_cardinality(&snap)
                .unwrap()
                .as_slice()
                .to_vec()
        );
    }

    #[test]
    fn invalid_deltas_are_rejected_without_mutation() {
        let base = inst(3, &[&[0, 1], &[1, 2]]);
        let mut ds = DeltaSolver::install(&base, DeltaMode::Popular).unwrap();
        for bad in [
            Delta::EditPrefList {
                applicant: 0,
                prefs: vec![],
            },
            Delta::EditPrefList {
                applicant: 0,
                prefs: vec![0, 0],
            },
            Delta::EditPrefList {
                applicant: 0,
                prefs: vec![3],
            },
            Delta::EditPrefList {
                applicant: 7,
                prefs: vec![0],
            },
            Delta::RemoveApplicant { applicant: 2 },
            Delta::AddApplicant { prefs: vec![5] },
        ] {
            assert!(ds.apply(&bad).is_err(), "{bad:?} must be rejected");
        }
        assert!(!ds.is_dirty(), "rejected deltas leave nothing dirty");
        assert_matches_fresh(&mut ds);
    }

    #[test]
    fn ties_are_rejected_at_install() {
        let tied = PrefInstance::new_with_ties(2, vec![vec![vec![0, 1]], vec![vec![1]]]).unwrap();
        assert_eq!(
            DeltaSolver::install(&tied, DeltaMode::Popular).unwrap_err(),
            PopularError::TiesNotSupported
        );
    }
}
