//! Algorithm 3: maximum-cardinality popular matching in NC (Section IV).
//!
//! Let `A₁` be the applicants with `s(a) = l(a)` — the only ones that can
//! ever occupy a last resort in a popular matching.  Among all matchings
//! satisfying Theorem 1, the maximum-cardinality popular matching allocates
//! the fewest `A₁`-applicants to their last resorts.  By Theorem 9 every
//! popular matching is reachable from an arbitrary one by applying at most
//! one switching path per tree component and optionally the switching cycle
//! of each cycle component, and those moves are independent across
//! components — so maximising the total margin decomposes component-wise:
//! apply every switching cycle with positive margin, and in every tree
//! component the switching path of largest margin if that margin is
//! positive.  All margins are computed with one weighted pointer-doubling
//! pass ([`SwitchingGraph::margins_to_sink`]), so the whole algorithm is
//! `O(log² n)` depth as claimed by Theorem 10.

use pm_pram::prefetch::prefetch_read;
use pm_pram::tracker::DepthTracker;
use pm_pram::{Idx, Workspace};

use crate::algorithm1::popular_matching_run;
use crate::error::PopularError;
use crate::instance::{Assignment, PrefInstance};
use crate::reduced::ReducedGraph;
use crate::switching::{margins_and_roots_of, ComponentKind, SwitchingGraph};

/// Improves an arbitrary popular matching to a maximum-cardinality popular
/// matching by applying the positive-margin switching moves (the body of
/// Algorithm 3).  Thin wrapper over the allocation-free
/// [`improve_to_maximum_cardinality_ws`].
pub fn improve_to_maximum_cardinality(
    reduced: &ReducedGraph,
    matching: &Assignment,
    tracker: &DepthTracker,
) -> Assignment {
    let mut improved = matching.clone();
    improve_to_maximum_cardinality_ws(
        reduced.f_slice(),
        reduced.s_slice(),
        reduced.num_posts(),
        improved.as_mut_slice(),
        &mut Workspace::new(),
        tracker,
    );
    improved
}

/// Allocation-free core of Algorithm 3 on raw reduced-graph buffers: builds
/// the switching graph `G_M` of `matched` in checked-out scratch, computes
/// every margin-to-sink with one weighted pointer-doubling pass, and applies
/// the best positive-margin switching path of every tree component in
/// place.
///
/// Switching *cycles* are never applied: the margin of the edge leaving `p`
/// is `real(succ(p)) − real(p)`, so summed around a cycle (where every
/// vertex appears once as source and once as target) the margin telescopes
/// to exactly 0, never positive — the structural fact the cycle tests
/// assert.  Tree components are handled without materialising the component
/// decomposition: the frozen pointer-doubling roots identify each vertex's
/// sink directly, and a single election pass picks the best s-post per
/// sink, matching the component-wise `max_by_key((margin, Reverse(q)))`
/// selection of the sequential baseline.
pub fn improve_to_maximum_cardinality_ws(
    f: &[Idx],
    s: &[Idx],
    num_posts: usize,
    matched: &mut [Idx],
    ws: &mut Workspace,
    tracker: &DepthTracker,
) {
    let n_a = f.len();
    let total = num_posts + n_a;
    // Gather-loop lookahead, hoisted once per call (PM_PREFETCH_DIST).
    let pd = pm_pram::tune::prefetch_dist();
    debug_assert_eq!(matched.len(), n_a);

    // Build G_M: succ[p] = the other reduced post of the applicant matched
    // to p, labelled by that applicant (mirrors `SwitchingGraph::build`).
    // Both arrays are Idx with the NONE sentinel — a quarter of the bytes
    // the former `Option<usize>` cells moved.
    tracker.phase();
    tracker.round();
    tracker.work(n_a as u64);
    let mut succ = ws.take_idx(total, Idx::NONE);
    let mut out_applicant = ws.take_idx(total, Idx::NONE);
    let mut in_graph = ws.take_bool(total, false);
    let mut is_s_post = ws.take_bool(total, false);
    for a in 0..n_a {
        // The scatter streams `f`/`s`/`matched` in order but lands on
        // random posts; pull the lines for a later applicant in early.
        if a + pd < n_a {
            let d = a + pd;
            prefetch_read(&in_graph, f[d].get());
            prefetch_read(&in_graph, s[d].get());
            prefetch_read(&succ, matched[d].get());
        }
        in_graph[f[a]] = true;
        in_graph[s[a]] = true;
        is_s_post[s[a]] = true;
        let m = matched[a];
        debug_assert!(
            m == f[a] || m == s[a],
            "switching graph requires a Theorem 1 matching"
        );
        let other = if m == f[a] { s[a] } else { f[a] };
        debug_assert!(succ[m].is_none(), "post {m} matched to two applicants");
        succ[m] = other;
        out_applicant[m] = Idx::new(a);
    }

    // Margin of the edge leaving post p: +1 if its applicant moves from a
    // last resort onto a real post, −1 for the reverse, else 0.
    let mut on_cycle = ws.take_bool_empty();
    pm_graph::on_cycle_of_idx(&succ, &mut on_cycle, ws, tracker);
    let (margins, roots) = {
        let succ_ref = &succ;
        let edge_margin = |p: usize| -> i32 {
            let q = succ_ref[p];
            debug_assert!(q.is_some(), "edge margin of a matched post");
            i32::from(q.get() < num_posts) - i32::from(p < num_posts)
        };
        margins_and_roots_of(&succ, &on_cycle, edge_margin, ws, tracker)
    };
    ws.put_bool(on_cycle);

    // Election round: for every true sink, the best switching-path start —
    // the s-post with the largest margin (ties to the smallest post, which
    // ascending iteration with a strict `>` gives for free).  The posts
    // examined are charged through a local accumulator, one atomic add for
    // the whole pass.
    tracker.round();
    tracker.work(total as u64);
    let mut best_margin = ws.take_i32(total, i32::MIN);
    let mut best_start = ws.take_idx(total, Idx::NONE);
    let mut charged = tracker.local();
    for q in 0..total {
        // The election gathers through `roots[q]` into the per-sink cells;
        // prefetch a later post's sink line while this one is scored.
        if let Some(&rn) = roots.get(q + pd) {
            prefetch_read(&succ, rn.get());
            prefetch_read(&best_margin, rn.get());
        }
        if !in_graph[q] || !is_s_post[q] || succ[q].is_none() {
            continue;
        }
        charged.add(1);
        let r = roots[q];
        if succ[r].is_some() {
            continue; // r is a cycle entry, not a sink: a cycle component
        }
        if margins[q] > best_margin[r] {
            best_margin[r] = margins[q];
            best_start[r] = Idx::new(q);
        }
    }
    drop(charged);

    // Apply the positive-margin switching paths (disjoint across
    // components, total walk length ≤ |P|).
    let mut charged = tracker.local();
    for r in 0..total {
        if best_start[r].is_none() || best_margin[r] <= 0 {
            continue;
        }
        let mut v = best_start[r];
        while succ[v].is_some() {
            let next = succ[v];
            let a = out_applicant[v];
            debug_assert!(a.is_some(), "path posts are matched");
            matched[a] = next;
            v = next;
            charged.add(1);
        }
    }
    drop(charged);

    ws.put_idx(succ);
    ws.put_idx(out_applicant);
    ws.put_bool(in_graph);
    ws.put_bool(is_s_post);
    ws.put_i32(margins);
    ws.put_idx(roots);
    ws.put_i32(best_margin);
    ws.put_idx(best_start);
}

/// Runs Algorithm 1 followed by Algorithm 3 and returns a maximum-cardinality
/// popular matching (or the usual errors if none exists / ties are present).
/// Thin wrapper over a fresh [`crate::solver::PopularSolver`]; services
/// should hold a solver and call
/// [`solve_max_cardinality`](crate::solver::PopularSolver::solve_max_cardinality)
/// for warm allocation-free solves.
pub fn maximum_cardinality_popular_matching_nc(
    inst: &PrefInstance,
    tracker: &DepthTracker,
) -> Result<Assignment, PopularError> {
    let mut solver = crate::solver::PopularSolver::new(0, 0);
    let result = solver.solve_max_cardinality(inst).map(|_| ());
    tracker.absorb(solver.stats());
    result.map(|()| solver.take_matching())
}

/// Sequential baseline for Algorithm 3: identical component logic but every
/// switching-path margin is computed by walking the path.
pub fn maximum_cardinality_popular_matching_sequential(
    inst: &PrefInstance,
) -> Result<Assignment, PopularError> {
    let tracker = DepthTracker::new();
    let run = popular_matching_run(inst, &tracker)?;
    let sg = SwitchingGraph::build(&run.reduced, &run.matching, &tracker);
    let components = sg.components(&tracker);
    let mut improved = run.matching.clone();
    for comp in &components {
        match &comp.kind {
            ComponentKind::Cycle(cycle) => {
                if sg.cycle_margin(cycle) > 0 {
                    sg.apply_cycle(&mut improved, cycle);
                }
            }
            ComponentKind::Tree { sink } => {
                let best = comp
                    .posts
                    .iter()
                    .copied()
                    .filter(|&q| q != *sink && sg.is_s_post(q))
                    .filter_map(|q| sg.path_margin(q).map(|m| (m, std::cmp::Reverse(q))))
                    .max();
                if let Some((margin, std::cmp::Reverse(q))) = best {
                    if margin > 0 {
                        sg.apply_path(&mut improved, q);
                    }
                }
            }
        }
    }
    Ok(improved)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{enumerate_assignments, is_popular_characterization};

    fn random_instance(rng: &mut impl rand::RngExt, max_a: usize, max_p: usize) -> PrefInstance {
        let n_a = rng.random_range(1..=max_a);
        let n_p = rng.random_range(1..=max_p);
        let lists: Vec<Vec<usize>> = (0..n_a)
            .map(|_| {
                let mut posts: Vec<usize> = (0..n_p).collect();
                for i in (1..posts.len()).rev() {
                    posts.swap(i, rng.random_range(0..=i));
                }
                posts.truncate(rng.random_range(1..=posts.len()));
                posts
            })
            .collect();
        PrefInstance::new_strict(n_p, lists).unwrap()
    }

    /// The maximum size over all popular matchings, by brute force.
    fn brute_force_max_popular_size(inst: &PrefInstance) -> Option<usize> {
        enumerate_assignments(inst)
            .into_iter()
            .filter(|m| is_popular_characterization(inst, m))
            .map(|m| m.size(inst))
            .max()
    }

    #[test]
    fn instance_where_arbitrary_popular_matching_is_not_maximum() {
        // a0: p0           (A1-applicant: s(a0) = l(a0))
        // a1: p0 p1        (s(a1) = p1)
        // f-post {p0}; two popular matchings exist:
        //   M1 = {a0->l(a0), a1->p0}            size 1
        //   M2 = {a0->p0,    a1->p1}            size 2  (maximum)
        let inst = PrefInstance::new_strict(2, vec![vec![0], vec![0, 1]]).unwrap();
        let t = DepthTracker::new();

        let small = Assignment::new(vec![inst.last_resort(0), 0]);
        let large = Assignment::new(vec![0, 1]);
        assert!(is_popular_characterization(&inst, &small));
        assert!(is_popular_characterization(&inst, &large));

        let max = maximum_cardinality_popular_matching_nc(&inst, &t).unwrap();
        assert!(is_popular_characterization(&inst, &max));
        assert_eq!(max.size(&inst), 2);

        // Improving the small matching directly also reaches size 2.
        let reduced = ReducedGraph::build_sequential(&inst).unwrap();
        let improved = improve_to_maximum_cardinality(&reduced, &small, &t);
        assert!(is_popular_characterization(&inst, &improved));
        assert_eq!(improved.size(&inst), 2);
    }

    #[test]
    fn switching_cycle_with_positive_margin_is_applied() {
        // Build an instance whose switching graph has a cycle with positive
        // margin: applicants a0, a1 share posts so that one orientation of
        // the cycle uses a last resort and the other does not.  Cycle margins
        // are 0 unless a last resort lies ON the cycle, which happens when
        // s(a) = l(a) for a cycle applicant:
        //   a0: p0        f=p0, s=l0
        //   a1: p0 p1     f=p0, s=p1
        //   a2: p1 p0...  we need l0 to be on a cycle: l0 has degree 1 in G'
        // (only a0 is adjacent), so it can never be on a cycle — cycles in
        // G_M need both endpoints matched...  In fact a last resort can be on
        // a switching cycle: G_M vertices are posts; the cycle needs every
        // vertex matched; l0 matched to a0 and O_M(a0) = p0 gives edge
        // l0 -> p0, and p0 -> l0 requires the applicant matched to p0 to have
        // l0 on its reduced list — impossible (l0 belongs to a0 only).  So a
        // switching cycle never contains a last resort, its margin is always
        // 0, and Algorithm 3 never applies cycles.  We assert that here as a
        // structural sanity check on random instances below.
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        use rand::SeedableRng;
        for _ in 0..50 {
            let inst = random_instance(&mut rng, 5, 5);
            let t = DepthTracker::new();
            let Ok(run) = popular_matching_run(&inst, &t) else {
                continue;
            };
            let sg = SwitchingGraph::build(&run.reduced, &run.matching, &t);
            for comp in sg.components(&t) {
                if let ComponentKind::Cycle(cycle) = comp.kind {
                    assert_eq!(sg.cycle_margin(&cycle), 0);
                }
            }
        }
    }

    #[test]
    fn nc_result_matches_brute_force_maximum_size() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        let mut solvable = 0;
        for _ in 0..250 {
            let inst = random_instance(&mut rng, 5, 4);
            let t = DepthTracker::new();
            match maximum_cardinality_popular_matching_nc(&inst, &t) {
                Ok(m) => {
                    assert!(m.is_valid(&inst));
                    assert!(is_popular_characterization(&inst, &m));
                    let best = brute_force_max_popular_size(&inst).unwrap();
                    assert_eq!(m.size(&inst), best, "not maximum for {inst:?}");
                    solvable += 1;
                }
                Err(PopularError::NoPopularMatching) => {
                    assert!(brute_force_max_popular_size(&inst).is_none());
                }
                Err(e) => panic!("unexpected: {e}"),
            }
        }
        assert!(solvable > 50);
    }

    #[test]
    fn sequential_and_nc_agree_on_sizes() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(123);
        for _ in 0..150 {
            let inst = random_instance(&mut rng, 6, 5);
            let t = DepthTracker::new();
            let nc = maximum_cardinality_popular_matching_nc(&inst, &t);
            let seq = maximum_cardinality_popular_matching_sequential(&inst);
            match (nc, seq) {
                (Ok(a), Ok(b)) => assert_eq!(a.size(&inst), b.size(&inst)),
                (Err(x), Err(y)) => assert_eq!(x, y),
                (a, b) => panic!("disagreement: {a:?} vs {b:?}"),
            }
        }
    }

    #[test]
    fn ties_and_infeasible_errors_propagate() {
        let tied = PrefInstance::new_with_ties(2, vec![vec![vec![0, 1]]]).unwrap();
        let t = DepthTracker::new();
        assert_eq!(
            maximum_cardinality_popular_matching_nc(&tied, &t),
            Err(PopularError::TiesNotSupported)
        );
        let infeasible =
            PrefInstance::new_strict(2, vec![vec![0, 1], vec![0, 1], vec![0, 1]]).unwrap();
        assert_eq!(
            maximum_cardinality_popular_matching_nc(&infeasible, &t),
            Err(PopularError::NoPopularMatching)
        );
    }
}
