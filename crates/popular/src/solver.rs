//! The serving-oriented solver: reusable workspace, warm zero-allocation
//! solves, and a batched entry point.
//!
//! The free functions ([`popular_matching_nc`], the ties oracle, the
//! max-cardinality entry point) are the documented simple path: each call
//! runs the pipeline in a fresh [`PopularSolver`] and drops it.  A service
//! handling many requests should instead hold one `PopularSolver` (per
//! worker) and call [`solve`](PopularSolver::solve) repeatedly: every piece
//! of scratch the pipeline touches — reduced-graph buffers, CSR adjacency,
//! liveness flags, pointer-jumping double buffers, switching-graph arrays,
//! Hopcroft–Karp layers — lives in the solver's [`Workspace`] and is reused
//! across requests, so a **warm solve performs zero heap allocations** (the
//! bench harness enforces this with a counting global allocator; see
//! `DESIGN.md` §6).
//!
//! [`solve_batch`](PopularSolver::solve_batch) amortises further by
//! fanning a slice of instances out across the thread pool, one warm
//! sub-solver per worker chunk.
//!
//! [`popular_matching_nc`]: crate::algorithm1::popular_matching_nc

use rayon::prelude::*;

use pm_graph::BipartiteGraph;
use pm_matching::hopcroft_karp::{hopcroft_karp_into, HkScratch};
use pm_matching::matching::Matching;
use pm_pram::tracker::DepthTracker;
use pm_pram::{Idx, PramStats, Workspace};

use crate::algorithm1::promote_into;
use crate::algorithm2::applicant_complete_matching_into;
use crate::error::PopularError;
use crate::instance::{Assignment, PrefInstance};
use crate::max_cardinality::improve_to_maximum_cardinality_ws;
use crate::reduced::{build_into, ReducedGraph};

/// Minimum batch members per worker before [`PopularSolver::solve_batch`]
/// fans out across the thread pool.  Below `BATCH_FANOUT_MIN_CHUNK × threads`
/// the batch runs sequentially on one warm sub-solver: each parallel chunk
/// pays its own sub-solver warm-up, and measurements (EXPERIMENTS.md E16)
/// show that cost beats the parallel speedup until every worker has at
/// least this many members to amortise it over.
pub const BATCH_FANOUT_MIN_CHUNK: usize = 3;

/// A reusable popular-matching solver (see the module docs).
///
/// All entry points reset the internal [`DepthTracker`] and record the
/// depth/work of the last call only ([`stats`](PopularSolver::stats));
/// `solve_batch` records the batch's summed totals.  Results are returned
/// by reference into solver-owned buffers — clone them (or
/// [`take_matching`](PopularSolver::take_matching)) if they must outlive
/// the next call.
#[derive(Debug)]
pub struct PopularSolver {
    ws: Workspace,
    tracker: DepthTracker,
    // Reduced-graph buffers, persistent so `solve_max_cardinality` (and the
    // free-function wrappers) can consume them after the Algorithm 1 phase.
    f: Vec<Idx>,
    s: Vec<Idx>,
    is_f_post: Vec<bool>,
    // Output buffers, refilled in place on every call.
    out: Assignment,
    ties_out: Matching,
    // Hopcroft–Karp scratch for `solve_ties` (Idx sentinel match arrays,
    // layer/queue storage, and the augmenting-tail cursor/undo buffers).
    hk_scratch: HkScratch,
    peel_rounds: u32,
    // Warm sub-solvers for `solve_batch`, one per worker chunk.
    batch_workers: Vec<PopularSolver>,
}

impl PopularSolver {
    /// Creates a solver.  `n_hint`/`p_hint` pre-size the applicant- and
    /// post-indexed output buffers (pass 0 to size lazily on first solve);
    /// the pooled scratch warms up on the first request either way.
    pub fn new(n_hint: usize, p_hint: usize) -> Self {
        Self {
            ws: Workspace::new(),
            tracker: DepthTracker::new(),
            f: Vec::with_capacity(n_hint),
            s: Vec::with_capacity(n_hint),
            is_f_post: Vec::with_capacity(n_hint + p_hint),
            out: Assignment::from_idx_vec(Vec::with_capacity(n_hint)),
            ties_out: Matching::empty(0, 0),
            hk_scratch: HkScratch::default(),
            peel_rounds: 0,
            batch_workers: Vec::new(),
        }
    }

    /// Runs Algorithm 1 (reduced graph → applicant-complete matching →
    /// promotion) and returns the popular matching by reference.
    ///
    /// # Errors
    /// * [`PopularError::TiesNotSupported`] if a preference list has a tie.
    /// * [`PopularError::NoPopularMatching`] if none exists.
    /// * [`PopularError::SolverPoisoned`] if a previous solve panicked
    ///   mid-flight (see [`is_poisoned`](Self::is_poisoned)).
    pub fn solve(&mut self, inst: &PrefInstance) -> Result<&Assignment, PopularError> {
        self.enter()?;
        self.tracker.reset();
        let result = self.solve_algorithm1(inst);
        self.ws.end_epoch();
        result?;
        Ok(&self.out)
    }

    /// Runs Algorithms 1 + 3 and returns a maximum-cardinality popular
    /// matching by reference.
    pub fn solve_max_cardinality(
        &mut self,
        inst: &PrefInstance,
    ) -> Result<&Assignment, PopularError> {
        self.enter()?;
        self.tracker.reset();
        let result = self.solve_algorithm1(inst).map(|()| {
            improve_to_maximum_cardinality_ws(
                &self.f,
                &self.s,
                inst.num_posts(),
                self.out.as_mut_slice(),
                &mut self.ws,
                &self.tracker,
            );
        });
        self.ws.end_epoch();
        result?;
        Ok(&self.out)
    }

    /// The Section V ties oracle: a popular matching of the rank-1 instance
    /// derived from `g` (Lemma 13: any maximum-cardinality matching), by
    /// reference.  Mirrors [`crate::ties::popular_matching_rank1`]
    /// bit-for-bit, with the Hopcroft–Karp scratch held in the solver.
    ///
    /// # Errors
    /// [`PopularError::InvalidInstance`] if a left vertex has no incident
    /// edge (the reduction requires non-empty preference lists).
    pub fn solve_ties(&mut self, g: &BipartiteGraph) -> Result<&Matching, PopularError> {
        self.enter()?;
        self.tracker.reset();
        if (0..g.n_left()).any(|l| g.degree_left(l) == 0) {
            self.ws.end_epoch();
            return Err(PopularError::InvalidInstance(
                "rank-1 reduction requires every applicant to have at least one acceptable post"
                    .into(),
            ));
        }
        // Work accounting: Hopcroft–Karp is the sequential oracle standing
        // in for the open NC ties case; charge its edge scans coarsely as
        // one phase (exact augmenting-path work is data-dependent).
        self.tracker.phase();
        self.tracker.round();
        self.tracker.work(g.num_edges() as u64);
        hopcroft_karp_into(g, &mut self.ties_out, &mut self.hk_scratch);
        self.ws.end_epoch();
        Ok(&self.ties_out)
    }

    /// Solves a batch of instances, fanning out across the executor (one
    /// warm sub-solver per worker chunk; chunking — and hence sub-solver
    /// assignment — depends only on the batch size and thread count, and
    /// every result depends only on its instance, so outputs are identical
    /// for every thread count).  Returns owned results in input order;
    /// [`stats`](Self::stats) afterwards reports the *summed* depth/work of
    /// every solve in the batch (sums commute, so the total is
    /// thread-count-independent too).
    pub fn solve_batch(&mut self, insts: &[PrefInstance]) -> Vec<Result<Assignment, PopularError>> {
        if self.is_poisoned() {
            return insts
                .iter()
                .map(|_| Err(PopularError::SolverPoisoned))
                .collect();
        }
        // A sub-solver a previous batch's panic unwound through is replaced
        // wholesale (cheap relative to a batch, and the batch path is not
        // under the zero-alloc gate): one poisoned worker must never turn
        // every later request routed to its chunk into an error.
        for w in &mut self.batch_workers {
            if w.is_poisoned() {
                *w = PopularSolver::new(0, 0);
            }
        }
        self.tracker.reset();
        let threads = rayon::current_num_threads().max(1);
        // Fan-out policy: one sub-solver per worker chunk, never more
        // chunks than batch members, and *no fan-out at all* below the
        // crossover.  Each chunk pays its own sub-solver warm-up, so a
        // batch only amortises across `min(batch, threads)` warm solver
        // states — and the measured crossover economics (EXPERIMENTS.md
        // E16, BENCH_popular.json served/batch) show that on small batches
        // the warm-up plus memory-bus contention outweighs the
        // parallelism: at batch = 8 on 4 threads and n = 10⁵ the fanned
        // path ran at 0.72× the single-thread batch.  Below
        // `BATCH_FANOUT_MIN_CHUNK` members per worker the whole batch
        // therefore runs sequentially on the single long-lived sub-solver,
        // which stays warm across *batches*, not just across members.
        //
        // Past the crossover, members share sub-solvers in contiguous
        // chunks; `with_min_len(1)` pins one chunk per schedulable work
        // item so the executor cannot merge two sub-solvers onto one
        // thread while another idles.  Chunking depends only on batch size
        // and thread count, and each result only on its instance, so both
        // regimes produce identical outputs.
        let chunk = if insts.len() < BATCH_FANOUT_MIN_CHUNK * threads {
            insts.len().max(1)
        } else {
            insts.len().div_ceil(threads).max(1)
        };
        let n_chunks = insts.len().div_ceil(chunk);
        while self.batch_workers.len() < n_chunks {
            self.batch_workers.push(PopularSolver::new(0, 0));
        }

        let mut results: Vec<Result<Assignment, PopularError>> = Vec::with_capacity(insts.len());
        results.extend((0..insts.len()).map(|_| Err(PopularError::NoPopularMatching)));
        let tracker = &self.tracker;
        results
            .par_chunks_mut(chunk)
            .zip(insts.par_chunks(chunk))
            .zip(self.batch_workers[..n_chunks].par_iter_mut())
            .with_min_len(1)
            .for_each(|((rs, is), worker)| {
                for (r, inst) in rs.iter_mut().zip(is.iter()) {
                    *r = worker.solve(inst).cloned();
                    tracker.absorb(worker.stats());
                }
            });
        results
    }

    /// PRAM depth/work accounting of the last call (for
    /// [`solve_batch`](Self::solve_batch): summed over the whole batch).
    pub fn stats(&self) -> PramStats {
        self.tracker.stats()
    }

    /// Moves the last solve's matching out of the solver without cloning
    /// (the output buffer is replaced by an empty one).  The free-function
    /// wrappers use this to return an owned [`Assignment`] from a solver
    /// they are about to drop.
    pub fn take_matching(&mut self) -> Assignment {
        std::mem::replace(&mut self.out, Assignment::from_idx_vec(Vec::new()))
    }

    /// Degree-1 peeling rounds Algorithm 2 used in the last solve.
    pub fn peel_rounds(&self) -> u32 {
        self.peel_rounds
    }

    /// The reduced graph of the last solved instance, assembled from the
    /// solver's buffers (consumes the solver; the free-function wrappers
    /// use this to return an owned [`ReducedGraph`] without rebuilding it).
    pub fn into_reduced_graph(self) -> ReducedGraph {
        let num_posts = self.is_f_post.len() - self.f.len();
        ReducedGraph::from_parts(num_posts, self.f, self.s, self.is_f_post)
    }

    /// True once a solve on this solver has panicked and unwound: the
    /// pooled workspace buffers (and the half-written output buffers) are
    /// inconsistent, every further solve returns
    /// [`PopularError::SolverPoisoned`], and the only recovery is to drop
    /// the solver and build a fresh one.  The serving layer (`pm_serve`)
    /// does exactly that after `catch_unwind` traps a solve panic; callers
    /// rolling their own isolation should too.
    pub fn is_poisoned(&self) -> bool {
        self.ws.is_poisoned() || self.ws.epoch_open()
    }

    /// Poison gate + epoch open, shared by every solve entry point.  The
    /// check runs *before* `begin_epoch` so detection is a typed error,
    /// never a debug assertion, on the public path.
    fn enter(&mut self) -> Result<(), PopularError> {
        if self.is_poisoned() {
            return Err(PopularError::SolverPoisoned);
        }
        self.ws.begin_epoch();
        Ok(())
    }

    /// Algorithm 1 into `self.out`: shared by `solve` and
    /// `solve_max_cardinality`.
    fn solve_algorithm1(&mut self, inst: &PrefInstance) -> Result<(), PopularError> {
        {
            let _span = crate::profile::time_phase(crate::profile::SolvePhase::Reduce);
            build_into(
                inst,
                &mut self.f,
                &mut self.s,
                &mut self.is_f_post,
                &self.tracker,
            )?;
        }
        self.out.reset_unassigned(inst.num_applicants());
        let (feasible, peel_rounds) = {
            let _span = crate::profile::time_phase(crate::profile::SolvePhase::Algorithm2);
            applicant_complete_matching_into(
                inst.total_posts(),
                &self.f,
                &self.s,
                self.out.as_mut_slice(),
                &mut self.ws,
                &self.tracker,
            )
        };
        self.peel_rounds = peel_rounds;
        if !feasible {
            return Err(PopularError::NoPopularMatching);
        }
        let _span = crate::profile::time_phase(crate::profile::SolvePhase::Promote);
        promote_into(
            &self.f,
            &self.s,
            &self.is_f_post,
            self.out.as_mut_slice(),
            &mut self.ws,
            &self.tracker,
        );
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm1::{popular_matching_nc, popular_matching_run};
    use crate::max_cardinality::maximum_cardinality_popular_matching_nc;
    use crate::ties::popular_matching_rank1;
    use crate::verify::is_popular_characterization;
    use rand::{RngExt, SeedableRng};

    fn random_instance(rng: &mut impl rand::RngExt, max_a: usize, max_p: usize) -> PrefInstance {
        let n_a = rng.random_range(1..=max_a);
        let n_p = rng.random_range(1..=max_p);
        let lists: Vec<Vec<usize>> = (0..n_a)
            .map(|_| {
                let mut posts: Vec<usize> = (0..n_p).collect();
                for i in (1..posts.len()).rev() {
                    posts.swap(i, rng.random_range(0..=i));
                }
                posts.truncate(rng.random_range(1..=posts.len()));
                posts
            })
            .collect();
        PrefInstance::new_strict(n_p, lists).unwrap()
    }

    #[test]
    fn reused_solver_matches_free_functions() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2024);
        let mut solver = PopularSolver::new(8, 8);
        for _ in 0..40 {
            let inst = random_instance(&mut rng, 8, 8);
            let tracker = DepthTracker::new();
            let want = popular_matching_nc(&inst, &tracker);
            match (solver.solve(&inst), want) {
                (Ok(got), Ok(want)) => {
                    assert_eq!(got.as_slice(), want.as_slice());
                    assert!(is_popular_characterization(&inst, got));
                    assert_eq!(solver.stats(), tracker.stats());
                }
                (Err(e1), Err(e2)) => assert_eq!(e1, e2),
                (a, b) => panic!("solver/free-function disagreement: {a:?} vs {b:?}"),
            }
        }
    }

    #[test]
    fn max_cardinality_matches_free_function() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(31337);
        let mut solver = PopularSolver::new(0, 0);
        for _ in 0..40 {
            let inst = random_instance(&mut rng, 7, 6);
            let tracker = DepthTracker::new();
            let want = maximum_cardinality_popular_matching_nc(&inst, &tracker);
            match (solver.solve_max_cardinality(&inst), want) {
                (Ok(got), Ok(want)) => {
                    assert_eq!(got.as_slice(), want.as_slice());
                    assert_eq!(solver.stats(), tracker.stats());
                }
                (Err(e1), Err(e2)) => assert_eq!(e1, e2),
                (a, b) => panic!("disagreement: {a:?} vs {b:?}"),
            }
        }
    }

    #[test]
    fn ties_oracle_matches_free_function() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        let mut solver = PopularSolver::new(0, 0);
        for _ in 0..25 {
            let n = rng.random_range(1..30);
            let mut edges = Vec::new();
            for l in 0..n {
                edges.push((l, l % n));
                edges.push((l, rng.random_range(0..n)));
            }
            let g = BipartiteGraph::from_edges(n, n, &edges);
            let got = solver.solve_ties(&g).unwrap();
            let want = popular_matching_rank1(&g);
            assert_eq!(got.left_assignment(), want.left_assignment());
        }
        // Isolated left vertices are rejected like `rank1_instance`.
        let g = BipartiteGraph::new(2, 2);
        assert!(matches!(
            solver.solve_ties(&g),
            Err(PopularError::InvalidInstance(_))
        ));
    }

    #[test]
    fn batch_matches_individual_solves() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let insts: Vec<PrefInstance> = (0..13).map(|_| random_instance(&mut rng, 9, 9)).collect();
        let mut solver = PopularSolver::new(0, 0);
        let batch = solver.solve_batch(&insts);
        assert_eq!(batch.len(), insts.len());
        for (inst, got) in insts.iter().zip(&batch) {
            let t = DepthTracker::new();
            match (got, popular_matching_nc(inst, &t)) {
                (Ok(got), Ok(want)) => assert_eq!(got.as_slice(), want.as_slice()),
                (Err(e1), Err(e2)) => assert_eq!(e1, &e2),
                (a, b) => panic!("batch/individual disagreement: {a:?} vs {b:?}"),
            }
        }
    }

    #[test]
    fn batch_fanout_crossover_is_gated_on_batch_size() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(616);
        let threads = rayon::current_num_threads().max(1);

        // Below the crossover: the whole batch must run on one sub-solver
        // (no fan-out), and the results must match per-item solves.
        let small: Vec<PrefInstance> = (0..(BATCH_FANOUT_MIN_CHUNK * threads - 1))
            .map(|_| random_instance(&mut rng, 9, 9))
            .collect();
        let mut solver = PopularSolver::new(0, 0);
        let got = solver.solve_batch(&small);
        assert_eq!(
            solver.batch_workers.len(),
            1,
            "batch of {} on {threads} threads must not fan out",
            small.len()
        );
        for (inst, r) in small.iter().zip(&got) {
            let t = DepthTracker::new();
            assert_eq!(r.as_ref().ok().map(|a| a.as_slice().to_vec()), {
                popular_matching_nc(inst, &t)
                    .ok()
                    .map(|a| a.as_slice().to_vec())
            });
        }

        // At the crossover: the batch fans out across several sub-solvers
        // (when the pool actually has more than one thread) and still
        // produces identical results.
        let big: Vec<PrefInstance> = (0..(BATCH_FANOUT_MIN_CHUNK * threads))
            .map(|_| random_instance(&mut rng, 9, 9))
            .collect();
        let got = solver.solve_batch(&big);
        assert_eq!(
            solver.batch_workers.len(),
            threads,
            "batch of {} on {threads} threads must use one sub-solver per worker",
            big.len()
        );
        for (inst, r) in big.iter().zip(&got) {
            let t = DepthTracker::new();
            assert_eq!(r.as_ref().ok().map(|a| a.as_slice().to_vec()), {
                popular_matching_nc(inst, &t)
                    .ok()
                    .map(|a| a.as_slice().to_vec())
            });
        }
    }

    #[test]
    fn poisoned_solver_returns_typed_error_not_dirty_buffers() {
        let inst = PrefInstance::new_strict(3, vec![vec![0, 1], vec![0, 2]]).unwrap();
        let mut solver = PopularSolver::new(0, 0);
        assert!(!solver.is_poisoned());
        assert!(solver.solve(&inst).is_ok());

        // Simulate a panic unwinding mid-solve: the epoch opens but never
        // closes (this is precisely the state `catch_unwind` in the serving
        // layer observes after trapping a solve panic).
        solver.ws.begin_epoch();
        assert!(solver.is_poisoned());

        // Every entry point refuses with a typed error instead of touching
        // the (notionally dirty) pooled buffers.
        assert_eq!(solver.solve(&inst), Err(PopularError::SolverPoisoned));
        assert_eq!(
            solver.solve_max_cardinality(&inst),
            Err(PopularError::SolverPoisoned)
        );
        let g = BipartiteGraph::from_edges(1, 1, &[(0, 0)]);
        assert!(matches!(
            solver.solve_ties(&g),
            Err(PopularError::SolverPoisoned)
        ));
        let batch = solver.solve_batch(std::slice::from_ref(&inst));
        assert!(batch
            .iter()
            .all(|r| r == &Err(PopularError::SolverPoisoned)));

        // A fresh solver is the documented recovery.
        let mut fresh = PopularSolver::new(0, 0);
        assert!(fresh.solve(&inst).is_ok());
    }

    #[test]
    fn batch_replaces_poisoned_sub_solvers() {
        let inst = PrefInstance::new_strict(3, vec![vec![0, 1], vec![0, 2]]).unwrap();
        let insts = vec![inst.clone(), inst.clone(), inst];
        let mut solver = PopularSolver::new(0, 0);
        assert!(solver.solve_batch(&insts).iter().all(|r| r.is_ok()));
        // Poison one warm sub-solver as if a batch panic unwound through it;
        // the next batch must self-heal, not error its chunk forever.
        solver.batch_workers[0].ws.begin_epoch();
        assert!(solver.solve_batch(&insts).iter().all(|r| r.is_ok()));
    }

    #[test]
    fn run_wrapper_exposes_reduced_graph() {
        let inst = PrefInstance::new_strict(3, vec![vec![0, 1], vec![0, 2]]).unwrap();
        let t = DepthTracker::new();
        let run = popular_matching_run(&inst, &t).unwrap();
        assert_eq!(run.reduced, ReducedGraph::build_sequential(&inst).unwrap());
        assert!(t.stats().depth > 0, "wrapper absorbs solver accounting");
    }
}
