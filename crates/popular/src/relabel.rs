//! Post permutations and the `Relabeled` solve path of the locality layout
//! (DESIGN.md §12).
//!
//! The layout pass (`pm_instances::layout`) rewrites a validated
//! [`PrefInstance`] into an isomorphic twin whose post ids are renamed so
//! that co-referenced posts share contiguous id blocks.  Popularity is
//! label-invariant — renaming posts and reordering entries *within* a tie
//! group changes no applicant's preference relation — so a popular matching
//! of the twin, mapped back through the inverse permutation, is popular on
//! the original instance.  What the rename *does* shift is every min-label
//! tie-break the kernels take (smallest post id in a tie group, cycle
//! representatives, …), so the mapped-back answer is a possibly *different*
//! popular matching than a direct solve would return.  Callers that care
//! verify against the original instance with the `verify` oracles; the
//! property tests and the harness's `layout/` family do exactly that.
//!
//! The types here live in `pm_popular` rather than next to the layout pass
//! because `pm_instances` depends on this crate, and both the snapshot
//! format (which persists a permutation section) and the solver wrapper
//! need the permutation type.

use pm_pram::{Idx, PramStats};

use crate::instance::{check_sizes, Assignment, PrefInstance};
use crate::solver::PopularSolver;
use crate::PopularError;

/// A validated bijection on post ids, held as both directions (`new_of_old`
/// and `old_of_new`) so the solve path maps forward and the answer path
/// maps back without a search.  Last resorts are *not* renamed: they are
/// applicant-keyed (`num_posts + a`), so a permutation over the real posts
/// leaves every extended id above `num_posts` fixed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PostPermutation {
    new_of_old: Vec<Idx>,
    old_of_new: Vec<Idx>,
}

impl PostPermutation {
    /// Validates `new_of_old` as a bijection on `0..len` and materialises
    /// the inverse.  Runs the [`check_sizes`] funnel (a post count beyond
    /// the 32-bit layer is rejected before the proportional inverse array
    /// is allocated) and rejects out-of-range entries and duplicates with a
    /// typed [`PopularError::InvalidInstance`].
    pub fn try_new(new_of_old: Vec<Idx>) -> Result<Self, PopularError> {
        let n = new_of_old.len();
        check_sizes(0, n, 0)?;
        let mut old_of_new = vec![Idx::NONE; n];
        for (old, &new) in new_of_old.iter().enumerate() {
            // Range-check the raw bit pattern: untrusted input (the snapshot
            // permutation section) can hold anything up to and including the
            // NONE sentinel, which must be a typed rejection, not a debug
            // assert in `Idx::get`.
            if new.raw() as usize >= n {
                return Err(PopularError::InvalidInstance(format!(
                    "post permutation maps {old} to {} (only {n} posts)",
                    new.raw()
                )));
            }
            if old_of_new[new.get()].is_some() {
                return Err(PopularError::InvalidInstance(format!(
                    "post permutation is not a bijection: {} has two preimages",
                    new.get()
                )));
            }
            old_of_new[new.get()] = Idx::new(old);
        }
        Ok(Self {
            new_of_old,
            old_of_new,
        })
    }

    /// The identity permutation on `len` posts.
    pub fn identity(len: usize) -> Result<Self, PopularError> {
        check_sizes(0, len, 0)?;
        let ids: Vec<Idx> = (0..len).map(Idx::new).collect();
        Ok(Self {
            new_of_old: ids.clone(),
            old_of_new: ids,
        })
    }

    /// Number of posts the permutation acts on.
    pub fn len(&self) -> usize {
        self.new_of_old.len()
    }

    /// `true` when the permutation acts on zero posts.
    pub fn is_empty(&self) -> bool {
        self.new_of_old.is_empty()
    }

    /// The relabeled id of original post `old`.
    pub fn new_id(&self, old: usize) -> Idx {
        self.new_of_old[old]
    }

    /// The original id of relabeled post `new`.
    pub fn old_id(&self, new: usize) -> Idx {
        self.old_of_new[new]
    }

    /// The forward direction (`new_of_old`) as a slice — the section the
    /// snapshot format persists.
    pub fn forward(&self) -> &[Idx] {
        &self.new_of_old
    }

    /// The inverse direction (`old_of_new`) as a slice.
    pub fn inverse(&self) -> &[Idx] {
        &self.old_of_new
    }
}

/// A relabeled instance paired with the permutation that produced it: the
/// solve-side artifact of the layout pass.  Solvers run on
/// [`instance`](Self::instance) (the locality-optimized twin) and answers
/// come back through [`map_back_into`](Self::map_back_into).
#[derive(Debug, Clone)]
pub struct Relabeled {
    inst: PrefInstance,
    perm: PostPermutation,
}

impl Relabeled {
    /// Pairs a relabeled instance with its permutation.  The only check
    /// possible at this layer is the size contract (the permutation acts on
    /// exactly the instance's posts); the layout pass constructs the pair
    /// so the deeper invariant — `inst` *is* the original with posts mapped
    /// forward — holds by construction.
    pub fn new(inst: PrefInstance, perm: PostPermutation) -> Result<Self, PopularError> {
        if perm.len() != inst.num_posts() {
            return Err(PopularError::InvalidInstance(format!(
                "post permutation covers {} posts but the instance has {}",
                perm.len(),
                inst.num_posts()
            )));
        }
        Ok(Self { inst, perm })
    }

    /// The locality-optimized twin the solver runs on.
    pub fn instance(&self) -> &PrefInstance {
        &self.inst
    }

    /// The post permutation (original → relabeled).
    pub fn permutation(&self) -> &PostPermutation {
        &self.perm
    }

    /// Decomposes the pair.
    pub fn into_parts(self) -> (PrefInstance, PostPermutation) {
        (self.inst, self.perm)
    }

    /// Maps an assignment over the relabeled instance back to
    /// original-instance post ids, into a reused output buffer (no
    /// allocation once `out` has the capacity).  Real posts map through the
    /// inverse permutation; last resorts (`num_posts + a`) are
    /// applicant-keyed and identical on both sides.
    pub fn map_back_into(&self, relabeled: &Assignment, out: &mut Assignment) {
        let n = relabeled.num_applicants();
        let num_posts = self.inst.num_posts();
        out.reset_unassigned(n);
        for a in 0..n {
            let p = relabeled.post(a);
            let orig = if p < num_posts {
                self.perm.old_id(p).get()
            } else {
                p
            };
            out.set_post(a, orig);
        }
    }
}

/// A [`PopularSolver`] that solves through a [`Relabeled`] layout: forward
/// solve on the twin, answer mapped back to original post ids.  Owns the
/// mapped-back output buffer, so warm solves stay at zero heap allocations
/// — the property the harness's `layout/` zero-alloc gate pins.
#[derive(Debug)]
pub struct RelabeledSolver {
    solver: PopularSolver,
    out: Assignment,
}

impl RelabeledSolver {
    /// Builds a solver with warm-start capacity hints (see
    /// [`PopularSolver::new`]).
    pub fn new(n_hint: usize, p_hint: usize) -> Self {
        Self {
            solver: PopularSolver::new(n_hint, p_hint),
            out: Assignment::from_idx_vec(Vec::with_capacity(n_hint)),
        }
    }

    /// Runs Algorithms 1 + 2 on the relabeled twin and returns a popular
    /// matching **in original post ids**, by reference.
    ///
    /// # Errors
    /// Those of [`PopularSolver::solve`]; popularity is label-invariant, so
    /// `NoPopularMatching` surfaces exactly when a direct solve of the
    /// original instance would report it.
    pub fn solve(&mut self, r: &Relabeled) -> Result<&Assignment, PopularError> {
        let m = self.solver.solve(r.instance())?;
        r.map_back_into(m, &mut self.out);
        Ok(&self.out)
    }

    /// Maximum-cardinality variant of [`solve`](Self::solve).
    pub fn solve_max_cardinality(&mut self, r: &Relabeled) -> Result<&Assignment, PopularError> {
        let m = self.solver.solve_max_cardinality(r.instance())?;
        r.map_back_into(m, &mut self.out);
        Ok(&self.out)
    }

    /// Depth/work statistics of the last solve (see [`PopularSolver::stats`]).
    pub fn stats(&self) -> PramStats {
        self.solver.stats()
    }

    /// Whether a previous solve poisoned the pooled workspace.
    pub fn is_poisoned(&self) -> bool {
        self.solver.is_poisoned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permutation_validation_rejects_bad_maps() {
        // Out of range.
        let e = PostPermutation::try_new(vec![Idx::new(0), Idx::new(2)]).unwrap_err();
        assert!(matches!(e, PopularError::InvalidInstance(_)));
        // Not injective.
        let e = PostPermutation::try_new(vec![Idx::new(1), Idx::new(1)]).unwrap_err();
        assert!(matches!(e, PopularError::InvalidInstance(_)));
        // Valid: inverse round-trips.
        let p = PostPermutation::try_new(vec![Idx::new(2), Idx::new(0), Idx::new(1)]).unwrap();
        for old in 0..3 {
            assert_eq!(p.old_id(p.new_id(old).get()).get(), old);
        }
        assert_eq!(p.len(), 3);
        let id = PostPermutation::identity(4).unwrap();
        assert_eq!(id.new_id(3).get(), 3);
    }

    #[test]
    fn relabeled_requires_matching_post_count() {
        let inst = PrefInstance::new_strict(2, vec![vec![0], vec![1]]).unwrap();
        let perm = PostPermutation::identity(3).unwrap();
        assert!(matches!(
            Relabeled::new(inst, perm),
            Err(PopularError::InvalidInstance(_))
        ));
    }

    #[test]
    fn map_back_fixes_last_resorts_and_inverts_posts() {
        // Original: 2 posts.  Permutation swaps them.
        let inst = PrefInstance::new_strict(2, vec![vec![1, 0], vec![0, 1]]).unwrap();
        let perm = PostPermutation::try_new(vec![Idx::new(1), Idx::new(0)]).unwrap();
        // The "relabeled" instance under the swap.
        let twin = PrefInstance::new_strict(2, vec![vec![0, 1], vec![1, 0]]).unwrap();
        let r = Relabeled::new(twin, perm).unwrap();
        // Relabeled answer: a0 -> relabeled post 0 (= original 1),
        // a1 -> its last resort (2 + 1 = 3).
        let m = Assignment::new(vec![0, 3]);
        let mut out = Assignment::new(vec![]);
        r.map_back_into(&m, &mut out);
        assert_eq!(out.post(0), 1);
        assert_eq!(out.post(1), 3);
        assert!(out.is_valid(&inst));
    }
}
