//! Algorithm 2: an applicant-complete matching of the reduced graph in NC.
//!
//! The reduced graph `G'` has every applicant with degree exactly 2 (the
//! edges to `f(a)` and `s(a)`), while posts may have any degree.  Algorithm 2
//! works in two stages:
//!
//! 1. **Degree-1 peeling** (the `while` loop): as long as some post has
//!    degree 1, find every maximal path of degree-2 vertices that ends at
//!    such a post, match the edges at even distance from the degree-1
//!    endpoint, and delete the matched vertices.  The maximal paths and the
//!    parities are computed with the "doubling trick": one list-ranking pass
//!    over the *arcs* of the current graph per round.  Lemma 2 bounds the
//!    number of rounds by `⌈log n⌉ + 1`; the realised count is returned in
//!    [`Algorithm2Outcome::peel_rounds`] so experiment E4 can check the bound.
//! 2. **Even-cycle finish**: after the loop (and after dropping isolated
//!    posts) every surviving post has degree ≥ 2 and every surviving
//!    applicant still has degree 2.  If there are fewer posts than
//!    applicants, no applicant-complete matching exists (Hall); otherwise
//!    the remaining graph is 2-regular — a disjoint union of even cycles —
//!    and a perfect matching is read off with the NC matcher of
//!    [`pm_matching::two_regular`].

use rayon::prelude::*;

use pm_pram::compact::compact_indices_fused_into_idx;
use pm_pram::pointer::{min_label_cycles_idx, pointer_jump_roots_into_idx};
use pm_pram::prefetch::prefetch_read;
use pm_pram::scan::csr_offsets_census_into_u32;
use pm_pram::tracker::DepthTracker;
use pm_pram::{par_chunk_len_bytes, Idx, Workspace, SEQUENTIAL_CUTOFF};

use crate::instance::Assignment;
use crate::reduced::ReducedGraph;

/// The outcome of Algorithm 2.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Algorithm2Outcome {
    /// The applicant-complete matching of the reduced graph (each applicant
    /// mapped to `f(a)` or `s(a)`), or `None` if none exists.
    pub assignment: Option<Assignment>,
    /// Number of iterations of the degree-1 peeling loop (Lemma 2 bounds
    /// this by `⌈log₂ n⌉ + 1`).
    pub peel_rounds: u32,
}

/// Runs Algorithm 2 on a reduced graph.
pub fn applicant_complete_matching(g: &ReducedGraph, tracker: &DepthTracker) -> Algorithm2Outcome {
    let mut matched = vec![Idx::NONE; g.num_applicants()];
    let (feasible, peel_rounds) = applicant_complete_matching_into(
        g.total_posts(),
        g.f_slice(),
        g.s_slice(),
        &mut matched,
        &mut Workspace::new(),
        tracker,
    );
    Algorithm2Outcome {
        assignment: feasible.then(|| Assignment::from_idx_vec(matched)),
        peel_rounds,
    }
}

/// Allocation-free core of Algorithm 2, the heart of the warm serving path.
///
/// `f`/`s` are the reduced edges (one pair per applicant), `matched` is the
/// output buffer — every slot must be `Idx::NONE` on entry and every slot
/// is written iff the return flag is `true` (an applicant-complete matching
/// exists).  All scratch — the post→applicant CSR adjacency, liveness
/// flags, the per-round arc successor array, the list-ranking double
/// buffers and the even-cycle orientation labels — is checked out of `ws`,
/// so a warm call performs zero heap allocation.
///
/// The degree-1 peeling loop is the same arc construction as always; the
/// even-cycle finish inlines the 2-regular orientation matcher of
/// `pm_matching::two_regular` directly on the surviving applicants (same
/// canonical min-arc orientation, hence bit-identical output) instead of
/// materialising a compacted `BipartiteGraph`.
pub fn applicant_complete_matching_into(
    total_posts: usize,
    f: &[Idx],
    s: &[Idx],
    matched: &mut [Idx],
    ws: &mut Workspace,
    tracker: &DepthTracker,
) -> (bool, u32) {
    let n_a = f.len();
    let n_p = total_posts;
    debug_assert_eq!(s.len(), n_a);
    debug_assert_eq!(matched.len(), n_a);
    debug_assert!(matched.iter().all(|&m| m.is_none()));
    // The arc encoding below packs 4 arcs per applicant into u32 ids; the
    // instance-size funnel (`pm_popular::instance::MAX_APPLICANTS`) keeps
    // that in range.
    debug_assert!(4 * n_a <= u32::MAX as usize);
    tracker.phase();

    if n_a == 0 {
        return (true, 0);
    }
    // Gather-loop lookahead, hoisted once per call (PM_PREFETCH_DIST).
    let pd = pm_pram::tune::prefetch_dist();

    // Static adjacency of the reduced graph, post -> incident applicants, in
    // flat CSR form: one counting round, one prefix scan, one fill round —
    // no per-post vectors.
    // The degree scatter streams `f`/`s` in order but hits `counts` at
    // random posts; prefetching the two counters a few applicants ahead
    // hides most of that gather latency behind the increments in flight.
    let mut counts = ws.take_u32(n_p, 0);
    for a in 0..n_a {
        if a + pd < n_a {
            prefetch_read(&counts, f[a + pd].get());
            prefetch_read(&counts, s[a + pd].get());
        }
        counts[f[a]] += 1;
        counts[s[a]] += 1;
    }
    // A post participates only if it occurs in the reduced graph.  The
    // offsets scan already streams every count, so the post-liveness flags
    // and the alive/degree-1 tallies are folded into the same sweep instead
    // of a separate O(|P|) census pass over `counts`.
    let mut alive_post = ws.take_bool(n_p, false);
    let mut adj_off = ws.take_u32_empty();
    let mut chunk_scratch = ws.take_u32_empty();
    let census = {
        let _span = crate::profile::time_phase(crate::profile::SolvePhase::Census);
        let (_, census) = csr_offsets_census_into_u32(
            &counts,
            &mut adj_off,
            &mut chunk_scratch,
            &mut alive_post,
            tracker,
        );
        census
    };
    let mut cursor = ws.take_u32_empty();
    cursor.extend_from_slice(&adj_off[..n_p]);
    // Every slot of the flat adjacency is written by the scatter below
    // (the offsets are exact), so the checkout can skip the fill.
    let mut adj_flat = ws.take_idx_dirty(2 * n_a, Idx::ZERO);
    for a in 0..n_a {
        if a + pd < n_a {
            prefetch_read(&cursor, f[a + pd].get());
            prefetch_read(&cursor, s[a + pd].get());
        }
        for p in [f[a], s[a]] {
            adj_flat[cursor[p] as usize] = Idx::new(a);
            cursor[p] += 1;
        }
    }

    let mut alive_applicant = ws.take_bool(n_a, true);
    // The survivor counts and the number of alive degree-1 posts are
    // maintained incrementally, so the loop condition and the final Hall
    // check are O(1) instead of an O(|P|) scan per round.
    let mut alive_a_count = n_a;
    let mut alive_p_count = census.nonzero;
    let mut degree_one_count = census.ones;
    let mut post_degree = counts;
    let mut peel_rounds = 0u32;

    // Scratch buffers reused across peeling rounds: the arc successor array
    // is fully rewritten every round (so its checkout skips the fill), the
    // matched-edge list is drained, and the list-ranking result + double
    // buffers persist across rounds.
    let mut succ = ws.take_idx_dirty(4 * n_a, Idx::ZERO);
    let mut root_tail = ws.take_idx_dirty(4 * n_a, Idx::ZERO);
    let mut newly_matched = ws.take_idx_pair_empty();
    let mut jump_root = ws.take_idx_empty();
    let mut jump_dist = ws.take_u32_empty();
    let mut jump_sptr = ws.take_idx_empty();
    let mut jump_sdist = ws.take_u32_empty();

    // Arc encoding: 4a+0 = a -> f(a), 4a+1 = f(a) -> a,
    //               4a+2 = a -> s(a), 4a+3 = s(a) -> a.
    let num_arcs = 4 * n_a;

    loop {
        if degree_one_count == 0 {
            break;
        }
        peel_rounds += 1;
        tracker.round();
        tracker.work(num_arcs as u64);
        assert!(
            peel_rounds as usize <= usize::BITS as usize + 2,
            "degree-1 peeling exceeded the Lemma 2 bound by a wide margin"
        );

        // (Re)build the arc successor structure for this round in the reused
        // scratch buffer: every arc is written exactly once (dead applicants'
        // arcs become self-pointing tails), so no clearing pass is needed.
        // The valid-terminal memo (`root_tail`) is written in the same pass:
        // an applicant->post arc is a terminal iff it self-points into an
        // alive degree-1 post, which is exactly known while choosing the
        // successor.  The per-applicant quads are disjoint, so the rebuild
        // fans out over contiguous applicant chunks.
        succ.resize(num_arcs, Idx::ZERO);
        {
            let (adj_off, adj_flat) = (&adj_off, &adj_flat);
            let (alive_applicant, alive_post) = (&alive_applicant, &alive_post);
            let post_degree = &post_degree;
            let build_quads = |base: usize, quads: &mut [Idx], tails: &mut [Idx]| {
                // Other alive applicant incident to a degree-2 post.
                let other_applicant = |p: Idx, not_a: usize| -> Idx {
                    adj_flat[adj_off[p] as usize..adj_off[p.get() + 1] as usize]
                        .iter()
                        .copied()
                        .find(|&b| b.get() != not_a && alive_applicant[b])
                        .expect("degree-2 post has a second alive applicant")
                };
                for (i, (quad, tail)) in quads.chunks_mut(4).zip(tails.chunks_mut(4)).enumerate() {
                    let a = base + i;
                    tail.fill(Idx::NONE);
                    if !alive_applicant[a] {
                        for (j, arc) in quad.iter_mut().enumerate() {
                            *arc = Idx::new(4 * a + j);
                        }
                        continue;
                    }
                    // Applicant -> post arcs: continue through the post iff
                    // its degree is 2; otherwise the arc is a tail, and a
                    // *valid* terminal iff the post's degree is exactly 1.
                    for (j, p) in [(0usize, f[a]), (2usize, s[a])] {
                        quad[j] = if alive_post[p] && post_degree[p] == 2 {
                            let b = other_applicant(p, a);
                            // Next arc is post -> other applicant b.
                            if f[b] == p {
                                Idx::new(4 * b.get() + 1)
                            } else {
                                Idx::new(4 * b.get() + 3)
                            }
                        } else {
                            if alive_post[p] && post_degree[p] == 1 {
                                tail[j] = p;
                            }
                            Idx::new(4 * a + j)
                        };
                    }
                    // Post -> applicant arcs: always continue through the
                    // applicant to its other post.
                    quad[1] = Idx::new(4 * a + 2); // arrived from f(a), towards s(a)
                    quad[3] = Idx::new(4 * a); // arrived from s(a), towards f(a)
                }
            };
            if n_a >= SEQUENTIAL_CUTOFF {
                let chunk_a = par_chunk_len_bytes(n_a, 4 * std::mem::size_of::<Idx>());
                succ.par_chunks_mut(4 * chunk_a)
                    .zip(root_tail.par_chunks_mut(4 * chunk_a))
                    .enumerate()
                    .for_each(|(ci, (quads, tails))| build_quads(ci * chunk_a, quads, tails));
            } else {
                build_quads(0, &mut succ, &mut root_tail);
            }
        }

        // List-rank every arc: distance and endpoint of its walk (double
        // buffers persist across peeling rounds — no per-round allocation).
        {
            let _span = crate::profile::time_phase(crate::profile::SolvePhase::Jump);
            pointer_jump_roots_into_idx(
                &succ,
                &mut jump_root,
                &mut jump_dist,
                &mut jump_sptr,
                &mut jump_sdist,
                tracker,
            );
        }

        // An arc's walk is "valid" when it terminates at an applicant->post
        // arc whose head post has degree 1 (that post is the v0 endpoint) —
        // exactly the memo `root_tail` recorded while building `succ`, so
        // the decision loop pays a single lookup per direction instead of
        // re-deriving the test at four random arcs per edge.
        let tail_post = |arc: usize| -> Option<usize> { root_tail[jump_root[arc]].some() };

        // Decide matched edges.  Edge (a, p) has an applicant->post arc A and
        // a post->applicant arc B; if both directions reach a degree-1 post,
        // the smaller post id is chosen as v0 (the "consider the path once"
        // rule of the paper).  The arcs examined are charged through a local
        // accumulator — exact totals, one atomic add for the whole loop.
        newly_matched.clear();
        let mut charged = tracker.local();
        for (a, &a_alive) in alive_applicant.iter().enumerate() {
            // The walk endpoints live at `root_tail[jump_root[arc]]` — a
            // two-level gather; pull the next applicant's endpoint memo
            // lines in while this applicant's edges are being decided.
            if let Some(&r) = jump_root.get(4 * (a + pd)) {
                prefetch_read(&root_tail, r.get());
            }
            if !a_alive {
                continue;
            }
            for (arc_ap, arc_pa, p) in [(4 * a, 4 * a + 1, f[a]), (4 * a + 2, 4 * a + 3, s[a])] {
                if !alive_post[p] {
                    continue;
                }
                charged.add(2);
                let t_fwd = tail_post(arc_ap);
                let t_bwd = tail_post(arc_pa);
                let use_forward = match (t_fwd, t_bwd) {
                    (Some(x), Some(y)) => x <= y,
                    (Some(_), None) => true,
                    (None, Some(_)) => false,
                    (None, None) => continue,
                };
                let dist = if use_forward {
                    jump_dist[arc_ap]
                } else {
                    jump_dist[arc_pa]
                };
                if dist % 2 == 0 && use_forward {
                    // Even distance and the arc is applicant -> post: the post
                    // side is nearer the endpoint, so applicant a takes post p.
                    newly_matched.push((Idx::new(a), p));
                } else if dist % 2 == 0 && !use_forward {
                    // Even distance measured from the other endpoint means the
                    // *applicant* side is nearer that endpoint, which cannot
                    // happen for an applicant->post edge of an alternating
                    // path that starts at a post; skip (the partner edge of
                    // this applicant is the matched one).
                    continue;
                }
            }
        }
        drop(charged);

        assert!(
            !newly_matched.is_empty(),
            "a degree-1 post exists but no edge was matched (internal error)"
        );

        // Apply the matches and delete matched vertices.
        for &(a, p) in newly_matched.iter() {
            debug_assert!(
                matched[a].is_none(),
                "applicant {a} matched twice in one round"
            );
            debug_assert!(alive_post[p]);
            matched[a] = p;
        }
        tracker.round();
        tracker.work(newly_matched.len() as u64);
        for &(a, p) in newly_matched.iter() {
            alive_applicant[a] = false;
            degree_one_count -= usize::from(post_degree[p] == 1);
            alive_post[p] = false;
        }
        alive_a_count -= newly_matched.len();
        alive_p_count -= newly_matched.len();
        // Removing an applicant decrements its posts' degrees; a post
        // dropping to degree 0 is isolated and dies on the spot (the
        // deferred end-of-round sweep the original formulation used reaches
        // the same state — no later decrement can touch a dead post).
        for &(a, _p) in newly_matched.iter() {
            for q in [f[a], s[a]] {
                if alive_post[q] {
                    let d = post_degree[q];
                    post_degree[q] = d - 1;
                    degree_one_count += usize::from(d == 2);
                    if d == 1 {
                        degree_one_count -= 1;
                        alive_post[q] = false;
                        alive_p_count -= 1;
                    }
                }
            }
        }
    }

    // Every surviving applicant still has degree 2; every surviving post has
    // degree ≥ 2.  The incremental survivor counts give the Hall check for
    // free; the survivor *list* (the paper's prefix-sum list compression)
    // is materialised only when the cycle finish actually needs it — on a
    // fully peeled instance the epilogue costs nothing.
    let feasible = alive_p_count >= alive_a_count;
    if feasible && alive_a_count > 0 {
        // |P| >= |A| together with the degree count forces |P| = |A| and a
        // 2-regular remainder (see the correctness argument in the paper):
        // a disjoint union of even cycles.  Pick one traversal orientation
        // per cycle — canonically, the one containing the smallest arc id —
        // by min-label pointer doubling, and match every surviving
        // applicant to its successor post in that orientation.  This is the
        // `two_regular` matcher inlined on the original vertex ids.
        debug_assert_eq!(alive_p_count, alive_a_count);
        let mut alive_as = ws.take_idx_empty();
        {
            let alive_applicant = &alive_applicant;
            compact_indices_fused_into_idx(n_a, |a| alive_applicant[a], &mut alive_as, ws, tracker);
        }
        debug_assert_eq!(alive_as.len(), alive_a_count);
        let k = alive_as.len();
        let num_arcs2 = 2 * k;

        // Arc 2i+j: surviving applicant alive_as[i] takes f (j=0) / s (j=1).
        // next_arc walks two steps along the cycle to the next applicant.
        tracker.round();
        tracker.work(num_arcs2 as u64);
        // app_idx is written for every surviving applicant and read only
        // for surviving applicants; ptr and label are fully initialised
        // below — all three checkouts skip the fill.
        let mut app_idx = ws.take_idx_dirty(n_a, Idx::NONE);
        for (i, &a) in alive_as.iter().enumerate() {
            app_idx[a] = Idx::new(i);
        }
        let mut ptr = ws.take_idx_dirty(num_arcs2, Idx::ZERO);
        let mut label = ws.take_idx_dirty(num_arcs2, Idx::ZERO);
        {
            let (adj_off, adj_flat) = (&adj_off, &adj_flat);
            let (alive_applicant, alive_as) = (&alive_applicant, &alive_as);
            let app_idx = &app_idx;
            let next_arc = |arc: usize| -> Idx {
                let (i, j) = (arc / 2, arc % 2);
                let a = alive_as[i];
                let p = if j == 0 { f[a] } else { s[a] };
                let b = adj_flat[adj_off[p] as usize..adj_off[p.get() + 1] as usize]
                    .iter()
                    .copied()
                    .find(|&b| b != a && alive_applicant[b])
                    .expect("2-regular post has a second surviving applicant");
                let ib = app_idx[b].get();
                if f[b] == p {
                    Idx::new(2 * ib + 1)
                } else {
                    Idx::new(2 * ib)
                }
            };
            if num_arcs2 >= SEQUENTIAL_CUTOFF {
                ptr.par_iter_mut()
                    .enumerate()
                    .for_each(|(arc, p)| *p = next_arc(arc));
            } else {
                for (arc, p) in ptr.iter_mut().enumerate() {
                    *p = next_arc(arc);
                }
            }
        }
        for (arc, l) in label.iter_mut().enumerate() {
            *l = Idx::new(arc);
        }

        // Min-label pointer doubling over the orientation cycles — the
        // shared `pm_pram` primitive, double-buffered through checked-out
        // scratch, with the sound no-label-changed early exit (random
        // instances have short cycles and converge in a handful of rounds).
        let mut label_scratch = ws.take_idx_dirty(num_arcs2, Idx::ZERO);
        let mut ptr_scratch = ws.take_idx_dirty(num_arcs2, Idx::ZERO);
        {
            let _span = crate::profile::time_phase(crate::profile::SolvePhase::Jump);
            min_label_cycles_idx(
                &mut label,
                &mut ptr,
                &mut label_scratch,
                &mut ptr_scratch,
                tracker,
            );
        }

        // One parallel round: each surviving applicant keeps the arc whose
        // orientation cycle has the smaller canonical label.
        tracker.round();
        tracker.work(k as u64);
        for (i, &a) in alive_as.iter().enumerate() {
            let take_s = label[2 * i + 1] < label[2 * i];
            matched[a] = if take_s { s[a] } else { f[a] };
        }

        ws.put_idx(alive_as);
        ws.put_idx(app_idx);
        ws.put_idx(ptr);
        ws.put_idx(label);
        ws.put_idx(label_scratch);
        ws.put_idx(ptr_scratch);
    }

    debug_assert!(!feasible || matched.iter().all(|&m| m.is_some()));

    ws.put_u32(adj_off);
    ws.put_u32(chunk_scratch);
    ws.put_u32(cursor);
    ws.put_idx(adj_flat);
    ws.put_u32(post_degree);
    ws.put_bool(alive_applicant);
    ws.put_bool(alive_post);
    ws.put_idx(succ);
    ws.put_idx(root_tail);
    ws.put_idx_pair(newly_matched);
    ws.put_idx(jump_root);
    ws.put_u32(jump_dist);
    ws.put_idx(jump_sptr);
    ws.put_u32(jump_sdist);

    (feasible, peel_rounds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::PrefInstance;

    fn figure1_instance() -> PrefInstance {
        PrefInstance::new_strict(
            9,
            vec![
                vec![0, 3, 4, 1, 5],
                vec![3, 4, 6, 1, 7],
                vec![3, 0, 2, 7],
                vec![0, 6, 3, 2, 8],
                vec![4, 0, 6, 1, 5],
                vec![6, 5],
                vec![6, 3, 7, 1],
                vec![6, 3, 0, 4, 8, 2],
            ],
        )
        .unwrap()
    }

    fn check_applicant_complete(g: &ReducedGraph, m: &Assignment) {
        for a in 0..g.num_applicants() {
            let p = m.post(a);
            assert!(
                p == g.f(a) || p == g.s(a),
                "applicant {a} not matched to f or s"
            );
        }
        // No post used twice.
        let mut used = vec![false; g.total_posts()];
        for a in 0..g.num_applicants() {
            assert!(!used[m.post(a)], "post {} used twice", m.post(a));
            used[m.post(a)] = true;
        }
    }

    #[test]
    fn empty_instance() {
        let inst = PrefInstance::new_strict(0, vec![]).unwrap();
        let t = DepthTracker::new();
        let g = ReducedGraph::build_parallel(&inst, &t).unwrap();
        let out = applicant_complete_matching(&g, &t);
        assert_eq!(out.assignment.unwrap().num_applicants(), 0);
        assert_eq!(out.peel_rounds, 0);
    }

    #[test]
    fn paper_example_peels_four_pairs_then_matches_cycles() {
        // Section III-C: the while loop matches (a8,p9), (a6,p6), (a7,p8),
        // (a5,p5); the remaining graph is the even cycle on
        // {a1..a4, p1..p4}.
        let inst = figure1_instance();
        let t = DepthTracker::new();
        let g = ReducedGraph::build_parallel(&inst, &t).unwrap();
        let out = applicant_complete_matching(&g, &t);
        let m = out
            .assignment
            .expect("the paper example has a popular matching");
        check_applicant_complete(&g, &m);

        // Peeled pairs reported in the paper (0-indexed): a8->p9, a6->p6, a7->p8, a5->p5.
        assert_eq!(m.post(7), 8);
        assert_eq!(m.post(5), 5);
        assert_eq!(m.post(6), 7);
        assert_eq!(m.post(4), 4);
        // a1..a4 are matched within {p1, p2, p3, p4} = ids {0,1,2,3}.
        for a in 0..4 {
            assert!(m.post(a) <= 3);
        }
        assert!(out.peel_rounds >= 1);
    }

    #[test]
    fn unsolvable_instance_detected() {
        // Three applicants all with the single post 0 as first choice and no
        // other acceptable post: the reduced graph has posts {p0, l(a0),
        // l(a1), l(a2)}, but p0 can serve only one applicant and the other
        // two take their last resorts — that IS applicant-complete.  To get a
        // genuinely unsolvable instance we need more applicants than posts in
        // some subgraph of G': two applicants with identical two-post lists
        // where both posts are f-posts of others.
        //
        //   a0: p0          (f = p0, s = l0)
        //   a1: p1          (f = p1, s = l1)
        //   a2: p0 p1       (f = p0, s = l2)
        //   a3: p0 p1       (f = p0, s = l3)
        // Reduced graph: every applicant has its own last resort except that
        // all of a2, a3 compete for p0 — still solvable via last resorts.
        // A genuinely unsolvable case needs s-posts to collide:
        //   a0: p0 p2
        //   a1: p1 p2
        //   a2: p0 p2
        // f-posts {p0, p1}; s(a0)=s(a1)=s(a2)=p2.  G' has applicants {a0,a1,a2}
        // adjacent to {p0,p2}, {p1,p2}, {p0,p2}.  An applicant-complete
        // matching needs 3 distinct posts for {a0,a2} ⊂ {p0,p2} — impossible?
        // a0->p0, a2->p2, a1->p1 works, so that's solvable too.  Use:
        //   a0: p0 p2
        //   a1: p0 p2
        //   a2: p0 p2
        // f-post {p0}, s = p2 for all three: 3 applicants, 2 posts -> None.
        let inst = PrefInstance::new_strict(3, vec![vec![0, 2], vec![0, 2], vec![0, 2]]).unwrap();
        let t = DepthTracker::new();
        let g = ReducedGraph::build_parallel(&inst, &t).unwrap();
        let out = applicant_complete_matching(&g, &t);
        assert!(out.assignment.is_none());
    }

    #[test]
    fn single_applicant() {
        let inst = PrefInstance::new_strict(2, vec![vec![0, 1]]).unwrap();
        let t = DepthTracker::new();
        let g = ReducedGraph::build_parallel(&inst, &t).unwrap();
        let out = applicant_complete_matching(&g, &t);
        let m = out.assignment.unwrap();
        check_applicant_complete(&g, &m);
    }

    #[test]
    fn pure_even_cycle_instance_needs_no_peeling() {
        // Two applicants sharing the same f-post and s-post is impossible
        // (f-posts are distinct from s-posts); build a 4-cycle instead:
        //   a0: p0 p2..., a1: p1 ... with s(a0)=s(a1) impossible to be a
        // cycle of length 4 needs: a0 - p0, a0 - p2, a1 - p1 ... Simplest:
        //   a0: p0 p2
        //   a1: p2 ... no, p2 must not be an f-post.
        // Use: a0: p0 p2 ; a1: p1 p2 — f-posts {p0, p1}, s = p2 for both.
        // G': a0-{p0,p2}, a1-{p1,p2}: a path, not a cycle (p2 has degree 2,
        // p0 and p1 degree 1) — peeled.  A genuine 2-regular component needs
        // two applicants sharing BOTH posts: a0: p0 p2, a1: p0 p2 is invalid
        // (s-post equals for both but f also equal => both posts shared):
        //   a0: p0 p2
        //   a1: p0 p2
        // f-post {p0}, s = p2 for both: cycle a0-p0-a1-p2-a0 of length 4.
        let inst = PrefInstance::new_strict(3, vec![vec![0, 2], vec![0, 2]]).unwrap();
        let t = DepthTracker::new();
        let g = ReducedGraph::build_parallel(&inst, &t).unwrap();
        let out = applicant_complete_matching(&g, &t);
        let m = out.assignment.unwrap();
        check_applicant_complete(&g, &m);
        assert_eq!(out.peel_rounds, 0, "a pure even cycle needs no peeling");
        assert_eq!(m.size(&inst), 2);
    }

    #[test]
    fn long_path_instances_peel_in_logarithmic_rounds() {
        // Build an instance whose reduced graph is one long path:
        //   a_i: p_i p_{i+1}  with p_0 .. p_n, and only p_i are f-posts.
        // f(a_i) = p_i; s(a_i) = p_{i+1} provided p_{i+1} is not an f-post,
        // which fails for interior posts.  Instead use the "chain" instance:
        //   a_i: q_i q_{i+1}   where q_j is never anyone's first choice except
        // q_i for a_i — then f(a_i) = q_i is an f-post and s(a_i) = q_{i+1}
        // only if q_{i+1} is not an f-post, again false.  A reliable way to
        // get long paths is a "ladder": applicants 0..n share s-post chain.
        // Simpler large test: many disjoint 3-vertex paths — peeling is one
        // round regardless of n, plus a pseudo-random large instance below.
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        for &n in &[50usize, 500, 5000] {
            let num_posts = n;
            let lists: Vec<Vec<usize>> = (0..n)
                .map(|a| {
                    let mut l = vec![a % num_posts];
                    // a few random lower choices
                    for _ in 0..3 {
                        let p = rng.random_range(0..num_posts);
                        if !l.contains(&p) {
                            l.push(p);
                        }
                    }
                    l
                })
                .collect();
            let inst = PrefInstance::new_strict(num_posts, lists).unwrap();
            let t = DepthTracker::new();
            let g = ReducedGraph::build_parallel(&inst, &t).unwrap();
            let out = applicant_complete_matching(&g, &t);
            let m = out
                .assignment
                .expect("instances with distinct f-posts are solvable");
            check_applicant_complete(&g, &m);
            let bound = (n as f64).log2().ceil() as u32 + 1;
            assert!(
                out.peel_rounds <= bound,
                "peel rounds {} exceeded Lemma 2 bound {bound} for n={n}",
                out.peel_rounds
            );
        }
    }
}
