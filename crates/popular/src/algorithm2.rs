//! Algorithm 2: an applicant-complete matching of the reduced graph in NC.
//!
//! The reduced graph `G'` has every applicant with degree exactly 2 (the
//! edges to `f(a)` and `s(a)`), while posts may have any degree.  Algorithm 2
//! works in two stages:
//!
//! 1. **Degree-1 peeling** (the `while` loop): as long as some post has
//!    degree 1, find every maximal path of degree-2 vertices that ends at
//!    such a post, match the edges at even distance from the degree-1
//!    endpoint, and delete the matched vertices.  The maximal paths and the
//!    parities are computed with the "doubling trick": one list-ranking pass
//!    over the *arcs* of the current graph per round.  Lemma 2 bounds the
//!    number of rounds by `⌈log n⌉ + 1`; the realised count is returned in
//!    [`Algorithm2Outcome::peel_rounds`] so experiment E4 can check the bound.
//! 2. **Even-cycle finish**: after the loop (and after dropping isolated
//!    posts) every surviving post has degree ≥ 2 and every surviving
//!    applicant still has degree 2.  If there are fewer posts than
//!    applicants, no applicant-complete matching exists (Hall); otherwise
//!    the remaining graph is 2-regular — a disjoint union of even cycles —
//!    and a perfect matching is read off with the NC matcher of
//!    [`pm_matching::two_regular`].

use pm_graph::BipartiteGraph;
use pm_matching::two_regular::two_regular_perfect_matching_parallel;
use pm_pram::pointer::pointer_jump_roots;
use pm_pram::scan::csr_offsets;
use pm_pram::tracker::DepthTracker;

use crate::instance::Assignment;
use crate::reduced::ReducedGraph;

/// The outcome of Algorithm 2.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Algorithm2Outcome {
    /// The applicant-complete matching of the reduced graph (each applicant
    /// mapped to `f(a)` or `s(a)`), or `None` if none exists.
    pub assignment: Option<Assignment>,
    /// Number of iterations of the degree-1 peeling loop (Lemma 2 bounds
    /// this by `⌈log₂ n⌉ + 1`).
    pub peel_rounds: u32,
}

/// Runs Algorithm 2 on a reduced graph.
pub fn applicant_complete_matching(g: &ReducedGraph, tracker: &DepthTracker) -> Algorithm2Outcome {
    let n_a = g.num_applicants();
    let n_p = g.total_posts();
    tracker.phase();

    if n_a == 0 {
        return Algorithm2Outcome {
            assignment: Some(Assignment::new(Vec::new())),
            peel_rounds: 0,
        };
    }

    // Static adjacency of the reduced graph, post -> incident applicants, in
    // flat CSR form: one counting round, one prefix scan, one fill round —
    // no per-post vectors.
    let mut counts = vec![0usize; n_p];
    for a in 0..n_a {
        counts[g.f(a)] += 1;
        counts[g.s(a)] += 1;
    }
    let adj_off = csr_offsets(&counts, tracker);
    let mut cursor = adj_off[..n_p].to_vec();
    let mut adj_flat = vec![0usize; 2 * n_a];
    for a in 0..n_a {
        for p in [g.f(a), g.s(a)] {
            adj_flat[cursor[p]] = a;
            cursor[p] += 1;
        }
    }
    let post_adj = |p: usize| -> &[usize] { &adj_flat[adj_off[p]..adj_off[p + 1]] };

    let mut alive_applicant = vec![true; n_a];
    // A post participates only if it occurs in the reduced graph.
    let mut alive_post: Vec<bool> = (0..n_p).map(|p| counts[p] != 0).collect();
    let mut post_degree: Vec<usize> = counts;

    // matched[a] = the post applicant `a` was matched to during peeling.
    let mut matched: Vec<Option<usize>> = vec![None; n_a];
    let mut peel_rounds = 0u32;

    // Scratch buffers reused across peeling rounds: the arc successor array
    // is fully rewritten every round, and the matched-edge list is drained.
    let mut succ: Vec<usize> = Vec::new();
    let mut newly_matched: Vec<(usize, usize)> = Vec::new();

    // Arc encoding: 4a+0 = a -> f(a), 4a+1 = f(a) -> a,
    //               4a+2 = a -> s(a), 4a+3 = s(a) -> a.
    let num_arcs = 4 * n_a;
    let arc_head = |arc: usize| -> usize {
        let (a, j) = (arc / 4, arc % 4);
        match j {
            0 => g.f(a),
            1 => a + n_p, // applicants are offset by n_p in "vertex" space (only used for clarity)
            2 => g.s(a),
            _ => a + n_p,
        }
    };

    loop {
        let some_degree_one = (0..n_p).any(|p| alive_post[p] && post_degree[p] == 1);
        if !some_degree_one {
            break;
        }
        peel_rounds += 1;
        tracker.round();
        tracker.work(num_arcs as u64);
        assert!(
            peel_rounds as usize <= usize::BITS as usize + 2,
            "degree-1 peeling exceeded the Lemma 2 bound by a wide margin"
        );

        // Other alive applicant incident to a degree-2 post, given one of them.
        let other_applicant = |p: usize, not_a: usize| -> usize {
            post_adj(p)
                .iter()
                .copied()
                .find(|&b| b != not_a && alive_applicant[b])
                .expect("degree-2 post has a second alive applicant")
        };

        // (Re)build the arc successor structure for this round in the reused
        // scratch buffer: every arc is written exactly once (dead applicants'
        // arcs become self-pointing tails), so no clearing pass is needed.
        succ.resize(num_arcs, 0);
        for (a, &a_alive) in alive_applicant.iter().enumerate() {
            if !a_alive {
                for j in 0..4 {
                    succ[4 * a + j] = 4 * a + j;
                }
                continue;
            }
            let (fa, sa) = (g.f(a), g.s(a));
            // Applicant -> post arcs: continue through the post iff its degree
            // is 2; otherwise the arc is a tail (self-pointer).
            for (arc, p) in [(4 * a, fa), (4 * a + 2, sa)] {
                if alive_post[p] && post_degree[p] == 2 {
                    let b = other_applicant(p, a);
                    // Next arc is post -> other applicant b, i.e. b's "incoming" arc.
                    succ[arc] = if g.f(b) == p { 4 * b + 1 } else { 4 * b + 3 };
                } else {
                    succ[arc] = arc;
                }
            }
            // Post -> applicant arcs: always continue through the applicant to
            // its other post (alive applicants have degree exactly 2).
            succ[4 * a + 1] = 4 * a + 2; // arrived from f(a), continue towards s(a)
            succ[4 * a + 3] = 4 * a; // arrived from s(a), continue towards f(a)
        }

        // List-rank every arc: distance and endpoint of its walk.
        let jump = pointer_jump_roots(&succ, tracker);

        // An arc's walk is "valid" when it terminates at an applicant->post
        // arc whose head post has degree 1 (that post is the v0 endpoint).
        let tail_post = |arc: usize| -> Option<usize> {
            let root = jump.root[arc];
            let (ra, rj) = (root / 4, root % 4);
            if !alive_applicant[ra] || rj % 2 != 0 {
                return None;
            }
            let p = arc_head(root);
            (alive_post[p] && post_degree[p] == 1 && succ[root] == root).then_some(p)
        };

        // Decide matched edges.  Edge (a, p) has an applicant->post arc A and
        // a post->applicant arc B; if both directions reach a degree-1 post,
        // the smaller post id is chosen as v0 (the "consider the path once"
        // rule of the paper).
        newly_matched.clear();
        for (a, &a_alive) in alive_applicant.iter().enumerate() {
            if !a_alive {
                continue;
            }
            for (arc_ap, arc_pa, p) in [(4 * a, 4 * a + 1, g.f(a)), (4 * a + 2, 4 * a + 3, g.s(a))]
            {
                if !alive_post[p] {
                    continue;
                }
                let t_fwd = tail_post(arc_ap);
                let t_bwd = tail_post(arc_pa);
                let use_forward = match (t_fwd, t_bwd) {
                    (Some(x), Some(y)) => x <= y,
                    (Some(_), None) => true,
                    (None, Some(_)) => false,
                    (None, None) => continue,
                };
                let dist = if use_forward {
                    jump.dist[arc_ap]
                } else {
                    jump.dist[arc_pa]
                };
                if dist % 2 == 0 && use_forward {
                    // Even distance and the arc is applicant -> post: the post
                    // side is nearer the endpoint, so applicant a takes post p.
                    newly_matched.push((a, p));
                } else if dist % 2 == 0 && !use_forward {
                    // Even distance measured from the other endpoint means the
                    // *applicant* side is nearer that endpoint, which cannot
                    // happen for an applicant->post edge of an alternating
                    // path that starts at a post; skip (the partner edge of
                    // this applicant is the matched one).
                    continue;
                }
            }
        }

        assert!(
            !newly_matched.is_empty(),
            "a degree-1 post exists but no edge was matched (internal error)"
        );

        // Apply the matches and delete matched vertices.
        for &(a, p) in &newly_matched {
            debug_assert!(
                matched[a].is_none(),
                "applicant {a} matched twice in one round"
            );
            debug_assert!(alive_post[p]);
            matched[a] = Some(p);
        }
        tracker.round();
        tracker.work(newly_matched.len() as u64);
        for &(a, p) in &newly_matched {
            alive_applicant[a] = false;
            alive_post[p] = false;
        }
        // Removing an applicant decrements its posts' degrees.
        for &(a, _p) in &newly_matched {
            for q in [g.f(a), g.s(a)] {
                if alive_post[q] {
                    post_degree[q] = post_degree[q].saturating_sub(1);
                }
            }
        }
        // Drop isolated posts.
        for p in 0..n_p {
            if alive_post[p] && post_degree[p] == 0 {
                alive_post[p] = false;
            }
        }
    }

    // Every surviving applicant still has degree 2; every surviving post has
    // degree ≥ 2.  Count and compare (Hall's condition).
    let alive_as: Vec<usize> = (0..n_a).filter(|&a| alive_applicant[a]).collect();
    let alive_ps: Vec<usize> = (0..n_p).filter(|&p| alive_post[p]).collect();
    tracker.round();
    tracker.work((alive_as.len() + alive_ps.len()) as u64);

    if alive_ps.len() < alive_as.len() {
        return Algorithm2Outcome {
            assignment: None,
            peel_rounds,
        };
    }

    if !alive_as.is_empty() {
        // |P| >= |A| together with the degree count forces |P| = |A| and a
        // 2-regular remainder (see the correctness argument in the paper).
        debug_assert_eq!(alive_ps.len(), alive_as.len());
        let mut post_index = vec![usize::MAX; n_p];
        for (i, &p) in alive_ps.iter().enumerate() {
            post_index[p] = i;
        }
        let offsets: Vec<usize> = (0..=alive_as.len()).map(|i| 2 * i).collect();
        let mut flat = Vec::with_capacity(2 * alive_as.len());
        for &a in &alive_as {
            flat.push(post_index[g.f(a)]);
            flat.push(post_index[g.s(a)]);
        }
        let remainder =
            BipartiteGraph::from_left_csr(alive_as.len(), alive_ps.len(), offsets, flat);
        let pm = two_regular_perfect_matching_parallel(&remainder, tracker);
        for (i, &a) in alive_as.iter().enumerate() {
            let p = alive_ps[pm.left(i).expect("perfect matching")];
            matched[a] = Some(p);
        }
    }

    let assignment = Assignment::new(
        matched
            .into_iter()
            .map(|m| m.expect("all applicants matched"))
            .collect(),
    );
    Algorithm2Outcome {
        assignment: Some(assignment),
        peel_rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::PrefInstance;

    fn figure1_instance() -> PrefInstance {
        PrefInstance::new_strict(
            9,
            vec![
                vec![0, 3, 4, 1, 5],
                vec![3, 4, 6, 1, 7],
                vec![3, 0, 2, 7],
                vec![0, 6, 3, 2, 8],
                vec![4, 0, 6, 1, 5],
                vec![6, 5],
                vec![6, 3, 7, 1],
                vec![6, 3, 0, 4, 8, 2],
            ],
        )
        .unwrap()
    }

    fn check_applicant_complete(g: &ReducedGraph, m: &Assignment) {
        for a in 0..g.num_applicants() {
            let p = m.post(a);
            assert!(
                p == g.f(a) || p == g.s(a),
                "applicant {a} not matched to f or s"
            );
        }
        // No post used twice.
        let mut used = vec![false; g.total_posts()];
        for a in 0..g.num_applicants() {
            assert!(!used[m.post(a)], "post {} used twice", m.post(a));
            used[m.post(a)] = true;
        }
    }

    #[test]
    fn empty_instance() {
        let inst = PrefInstance::new_strict(0, vec![]).unwrap();
        let t = DepthTracker::new();
        let g = ReducedGraph::build_parallel(&inst, &t).unwrap();
        let out = applicant_complete_matching(&g, &t);
        assert_eq!(out.assignment.unwrap().num_applicants(), 0);
        assert_eq!(out.peel_rounds, 0);
    }

    #[test]
    fn paper_example_peels_four_pairs_then_matches_cycles() {
        // Section III-C: the while loop matches (a8,p9), (a6,p6), (a7,p8),
        // (a5,p5); the remaining graph is the even cycle on
        // {a1..a4, p1..p4}.
        let inst = figure1_instance();
        let t = DepthTracker::new();
        let g = ReducedGraph::build_parallel(&inst, &t).unwrap();
        let out = applicant_complete_matching(&g, &t);
        let m = out
            .assignment
            .expect("the paper example has a popular matching");
        check_applicant_complete(&g, &m);

        // Peeled pairs reported in the paper (0-indexed): a8->p9, a6->p6, a7->p8, a5->p5.
        assert_eq!(m.post(7), 8);
        assert_eq!(m.post(5), 5);
        assert_eq!(m.post(6), 7);
        assert_eq!(m.post(4), 4);
        // a1..a4 are matched within {p1, p2, p3, p4} = ids {0,1,2,3}.
        for a in 0..4 {
            assert!(m.post(a) <= 3);
        }
        assert!(out.peel_rounds >= 1);
    }

    #[test]
    fn unsolvable_instance_detected() {
        // Three applicants all with the single post 0 as first choice and no
        // other acceptable post: the reduced graph has posts {p0, l(a0),
        // l(a1), l(a2)}, but p0 can serve only one applicant and the other
        // two take their last resorts — that IS applicant-complete.  To get a
        // genuinely unsolvable instance we need more applicants than posts in
        // some subgraph of G': two applicants with identical two-post lists
        // where both posts are f-posts of others.
        //
        //   a0: p0          (f = p0, s = l0)
        //   a1: p1          (f = p1, s = l1)
        //   a2: p0 p1       (f = p0, s = l2)
        //   a3: p0 p1       (f = p0, s = l3)
        // Reduced graph: every applicant has its own last resort except that
        // all of a2, a3 compete for p0 — still solvable via last resorts.
        // A genuinely unsolvable case needs s-posts to collide:
        //   a0: p0 p2
        //   a1: p1 p2
        //   a2: p0 p2
        // f-posts {p0, p1}; s(a0)=s(a1)=s(a2)=p2.  G' has applicants {a0,a1,a2}
        // adjacent to {p0,p2}, {p1,p2}, {p0,p2}.  An applicant-complete
        // matching needs 3 distinct posts for {a0,a2} ⊂ {p0,p2} — impossible?
        // a0->p0, a2->p2, a1->p1 works, so that's solvable too.  Use:
        //   a0: p0 p2
        //   a1: p0 p2
        //   a2: p0 p2
        // f-post {p0}, s = p2 for all three: 3 applicants, 2 posts -> None.
        let inst = PrefInstance::new_strict(3, vec![vec![0, 2], vec![0, 2], vec![0, 2]]).unwrap();
        let t = DepthTracker::new();
        let g = ReducedGraph::build_parallel(&inst, &t).unwrap();
        let out = applicant_complete_matching(&g, &t);
        assert!(out.assignment.is_none());
    }

    #[test]
    fn single_applicant() {
        let inst = PrefInstance::new_strict(2, vec![vec![0, 1]]).unwrap();
        let t = DepthTracker::new();
        let g = ReducedGraph::build_parallel(&inst, &t).unwrap();
        let out = applicant_complete_matching(&g, &t);
        let m = out.assignment.unwrap();
        check_applicant_complete(&g, &m);
    }

    #[test]
    fn pure_even_cycle_instance_needs_no_peeling() {
        // Two applicants sharing the same f-post and s-post is impossible
        // (f-posts are distinct from s-posts); build a 4-cycle instead:
        //   a0: p0 p2..., a1: p1 ... with s(a0)=s(a1) impossible to be a
        // cycle of length 4 needs: a0 - p0, a0 - p2, a1 - p1 ... Simplest:
        //   a0: p0 p2
        //   a1: p2 ... no, p2 must not be an f-post.
        // Use: a0: p0 p2 ; a1: p1 p2 — f-posts {p0, p1}, s = p2 for both.
        // G': a0-{p0,p2}, a1-{p1,p2}: a path, not a cycle (p2 has degree 2,
        // p0 and p1 degree 1) — peeled.  A genuine 2-regular component needs
        // two applicants sharing BOTH posts: a0: p0 p2, a1: p0 p2 is invalid
        // (s-post equals for both but f also equal => both posts shared):
        //   a0: p0 p2
        //   a1: p0 p2
        // f-post {p0}, s = p2 for both: cycle a0-p0-a1-p2-a0 of length 4.
        let inst = PrefInstance::new_strict(3, vec![vec![0, 2], vec![0, 2]]).unwrap();
        let t = DepthTracker::new();
        let g = ReducedGraph::build_parallel(&inst, &t).unwrap();
        let out = applicant_complete_matching(&g, &t);
        let m = out.assignment.unwrap();
        check_applicant_complete(&g, &m);
        assert_eq!(out.peel_rounds, 0, "a pure even cycle needs no peeling");
        assert_eq!(m.size(&inst), 2);
    }

    #[test]
    fn long_path_instances_peel_in_logarithmic_rounds() {
        // Build an instance whose reduced graph is one long path:
        //   a_i: p_i p_{i+1}  with p_0 .. p_n, and only p_i are f-posts.
        // f(a_i) = p_i; s(a_i) = p_{i+1} provided p_{i+1} is not an f-post,
        // which fails for interior posts.  Instead use the "chain" instance:
        //   a_i: q_i q_{i+1}   where q_j is never anyone's first choice except
        // q_i for a_i — then f(a_i) = q_i is an f-post and s(a_i) = q_{i+1}
        // only if q_{i+1} is not an f-post, again false.  A reliable way to
        // get long paths is a "ladder": applicants 0..n share s-post chain.
        // Simpler large test: many disjoint 3-vertex paths — peeling is one
        // round regardless of n, plus a pseudo-random large instance below.
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        for &n in &[50usize, 500, 5000] {
            let num_posts = n;
            let lists: Vec<Vec<usize>> = (0..n)
                .map(|a| {
                    let mut l = vec![a % num_posts];
                    // a few random lower choices
                    for _ in 0..3 {
                        let p = rng.random_range(0..num_posts);
                        if !l.contains(&p) {
                            l.push(p);
                        }
                    }
                    l
                })
                .collect();
            let inst = PrefInstance::new_strict(num_posts, lists).unwrap();
            let t = DepthTracker::new();
            let g = ReducedGraph::build_parallel(&inst, &t).unwrap();
            let out = applicant_complete_matching(&g, &t);
            let m = out
                .assignment
                .expect("instances with distinct f-posts are solvable");
            check_applicant_complete(&g, &m);
            let bound = (n as f64).log2().ceil() as u32 + 1;
            assert!(
                out.peel_rounds <= bound,
                "peel rounds {} exceeded Lemma 2 bound {bound} for n={n}",
                out.peel_rounds
            );
        }
    }
}
