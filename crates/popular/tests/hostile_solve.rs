//! Hostile-input audit of the public solve paths (PR 7 satellite).
//!
//! The serving layer hands untrusted request data to `pm_popular`; this
//! suite pins the contract that *no* public solve entry point can panic on
//! data an adversary can construct.  Untrusted input is funnelled through
//! the validating constructors (`PrefInstance::new_strict` /
//! `new_with_ties` / the snapshot ingester), so the audit has two halves:
//!
//! 1. malformed shapes must be *rejected at construction* with a typed
//!    [`PopularError`], never accepted and crashed on later;
//! 2. every adversarial-but-constructible shape must flow through every
//!    solve entry point without panicking — `Ok` or a typed error only.
//!
//! The remaining `expect()` sites inside the algorithms (e.g. "degree-2
//! post has a second alive applicant" in Algorithm 2's peeling) are
//! *algorithm invariants* over already-validated instances, maintained by
//! the peeling itself — they are not reachable by any input that gets past
//! the constructors, which is exactly what this suite demonstrates by
//! exhaustively exercising the constructible edge shapes.

use std::panic::{catch_unwind, AssertUnwindSafe};

use pm_graph::bipartite::BipartiteGraph;
use pm_popular::ties::popular_matching_rank1;
use pm_popular::{
    is_popular_characterization, maximum_cardinality_popular_matching_nc, popular_matching_nc,
    popular_matching_sequential, PopularError, PopularSolver, PrefInstance,
};
use pm_pram::tracker::DepthTracker;

/// Every adversarial-but-constructible strict instance shape we could think
/// of: degenerate sizes, total contention, long chains, duplicate-heavy
/// first choices, single-entry lists, and asymmetric post counts.
fn hostile_instances() -> Vec<(&'static str, PrefInstance)> {
    let strict = |n, lists: Vec<Vec<usize>>| PrefInstance::new_strict(n, lists).unwrap();
    let mut out = vec![
        ("empty", strict(0, vec![])),
        ("posts but no applicants", strict(5, vec![])),
        ("one applicant, one post", strict(1, vec![vec![0]])),
        ("everyone wants only post 0", strict(1, vec![vec![0]; 6])),
        (
            "total contention on two posts",
            strict(2, vec![vec![0, 1]; 5]),
        ),
        (
            "chain: applicant i wants posts i, i+1",
            strict(9, (0..8).map(|i| vec![i, i + 1]).collect()),
        ),
        (
            "all permutations of three posts",
            strict(
                3,
                vec![
                    vec![0, 1, 2],
                    vec![0, 2, 1],
                    vec![1, 0, 2],
                    vec![1, 2, 0],
                    vec![2, 0, 1],
                    vec![2, 1, 0],
                ],
            ),
        ),
        (
            "shared first choice, distinct seconds",
            strict(4, vec![vec![3, 0], vec![3, 1], vec![3, 2]]),
        ),
        (
            "more applicants than posts",
            strict(2, vec![vec![0], vec![1], vec![0, 1], vec![1, 0]]),
        ),
        (
            "reverse master list",
            strict(6, (0..6).map(|_| (0..6).rev().collect()).collect()),
        ),
    ];
    // A wider instance so the parallel kernels (not just the tiny-case
    // serial paths) see hostile contention.
    let n = 600;
    let contended = (0..n)
        .map(|i| {
            let mut list = vec![i % 7, (i * 31) % n, i];
            list.dedup();
            if list.len() > 1 && list[0] == *list.last().unwrap() {
                list.pop();
            }
            list
        })
        .collect();
    out.push(("wide contention", strict(n, contended)));
    out
}

/// One named solve entry point, boxed so the table below stays uniform.
type SolveRun = (&'static str, Box<dyn FnOnce() -> Result<(), PopularError>>);

/// Pushes one instance through every strict public solve entry point; the
/// outcome must be `Ok` or a typed error — never an unwind.
fn assert_no_panic_on(name: &str, inst: &PrefInstance) {
    let runs: Vec<SolveRun> = vec![
        ("solver.solve", {
            let inst = inst.clone();
            Box::new(move || PopularSolver::new(0, 0).solve(&inst).map(|_| ()))
        }),
        ("solver.solve_max_cardinality", {
            let inst = inst.clone();
            Box::new(move || {
                PopularSolver::new(0, 0)
                    .solve_max_cardinality(&inst)
                    .map(|_| ())
            })
        }),
        ("solver.solve_batch", {
            let inst = inst.clone();
            Box::new(move || {
                let batch = PopularSolver::new(0, 0).solve_batch(std::slice::from_ref(&inst));
                batch.into_iter().next().unwrap().map(|_| ())
            })
        }),
        ("popular_matching_nc", {
            let inst = inst.clone();
            Box::new(move || popular_matching_nc(&inst, &DepthTracker::new()).map(|_| ()))
        }),
        ("maximum_cardinality_popular_matching_nc", {
            let inst = inst.clone();
            Box::new(move || {
                maximum_cardinality_popular_matching_nc(&inst, &DepthTracker::new()).map(|_| ())
            })
        }),
        ("popular_matching_sequential", {
            let inst = inst.clone();
            Box::new(move || popular_matching_sequential(&inst).map(|_| ()))
        }),
    ];
    for (entry, run) in runs {
        match catch_unwind(AssertUnwindSafe(run)) {
            Ok(Ok(())) | Ok(Err(_)) => {}
            Err(_) => panic!("{entry} panicked on hostile instance {name:?}"),
        }
    }
}

#[test]
fn no_public_solve_path_panics_on_constructible_hostile_instances() {
    for (name, inst) in hostile_instances() {
        assert_no_panic_on(name, &inst);
    }
}

#[test]
fn solved_hostile_instances_still_produce_popular_matchings() {
    // Robustness must not come at the price of wrong answers: where a
    // hostile shape *is* solvable, the answer still passes the §2
    // characterization check.
    let mut solver = PopularSolver::new(0, 0);
    for (name, inst) in hostile_instances() {
        if let Ok(m) = solver.solve(&inst) {
            assert!(m.is_valid(&inst), "{name}");
            assert!(is_popular_characterization(&inst, m), "{name}");
        }
    }
}

#[test]
fn malformed_shapes_are_rejected_at_construction() {
    // Half one of the audit: anything malformed dies in the constructor
    // with a typed error, so the solve paths never see it.
    let cases: Vec<(&str, Result<PrefInstance, PopularError>)> = vec![
        (
            "out-of-range post",
            PrefInstance::new_strict(2, vec![vec![0, 2]]),
        ),
        (
            "post duplicated within a list",
            PrefInstance::new_strict(3, vec![vec![1, 1]]),
        ),
        (
            "empty preference list",
            PrefInstance::new_strict(3, vec![vec![]]),
        ),
        (
            "empty tie group",
            PrefInstance::new_with_ties(3, vec![vec![vec![0], vec![]]]),
        ),
        (
            "duplicate across tie groups",
            PrefInstance::new_with_ties(3, vec![vec![vec![0, 1], vec![1]]]),
        ),
    ];
    for (name, r) in cases {
        match r {
            Err(PopularError::InvalidInstance(_)) => {}
            other => panic!("{name}: expected InvalidInstance, got {other:?}"),
        }
    }
}

#[test]
fn tied_instances_get_typed_errors_from_strict_only_pipelines() {
    let tied = PrefInstance::new_with_ties(3, vec![vec![vec![0, 1]], vec![vec![2]]]).unwrap();
    let mut solver = PopularSolver::new(0, 0);
    assert_eq!(solver.solve(&tied), Err(PopularError::TiesNotSupported));
    assert_eq!(
        solver.solve_max_cardinality(&tied),
        Err(PopularError::TiesNotSupported)
    );
    // ...and the solver is NOT poisoned by a typed rejection: the next
    // strict request on the same warm solver succeeds.
    let strict = PrefInstance::new_strict(2, vec![vec![0], vec![1]]).unwrap();
    assert!(solver.solve(&strict).is_ok());
}

#[test]
fn ties_pipeline_survives_hostile_graphs() {
    // Degree-0 applicant: typed error from both the solver and the free
    // function's validation path.
    let lonely = BipartiteGraph::from_edges(2, 2, &[(0, 0)]);
    let mut solver = PopularSolver::new(0, 0);
    assert!(matches!(
        solver.solve_ties(&lonely),
        Err(PopularError::InvalidInstance(_))
    ));

    // Empty graph and full contention flow through without panicking.
    for (name, g) in [
        ("empty graph", BipartiteGraph::from_edges(0, 0, &[])),
        (
            "all-to-one contention",
            BipartiteGraph::from_edges(4, 1, &[(0, 0), (1, 0), (2, 0), (3, 0)]),
        ),
        (
            "complete 3x3",
            BipartiteGraph::from_edges(
                3,
                3,
                &(0..3)
                    .flat_map(|l| (0..3).map(move |r| (l, r)))
                    .collect::<Vec<_>>(),
            ),
        ),
    ] {
        let out = catch_unwind(AssertUnwindSafe(|| {
            let mut s = PopularSolver::new(0, 0);
            let solver_ok = s.solve_ties(&g).is_ok();
            let free_m = popular_matching_rank1(&g);
            (solver_ok, free_m.left_assignment().len())
        }));
        assert!(out.is_ok(), "ties pipeline panicked on {name:?}");
    }
}
