//! The experiment harness: regenerates every table of EXPERIMENTS.md and
//! records the machine-readable perf trajectory.
//!
//! ```text
//! cargo run --release -p pm_bench --bin harness            # full sweep
//! cargo run --release -p pm_bench --bin harness -- --quick # smaller sizes
//! cargo run --release -p pm_bench --bin harness -- --json  # BENCH_popular.json
//! cargo run --release -p pm_bench --bin harness -- --json --workloads 'served/*'
//! cargo run --release -p pm_bench --bin harness -- --profile # per-kernel phases
//! ```
//!
//! Markdown output (one table per experiment, E1–E10) is designed to be
//! pasted directly into EXPERIMENTS.md.  `--json` instead times the
//! production pipeline workloads (Algorithm 1, Algorithm 3, the switching
//! graph, the ties reduction) plus the `served/` family — repeated warm
//! solves on a reused [`PopularSolver`], the cold free-function path for
//! comparison, and batched throughput, all reported as amortized
//! per-request milliseconds — and writes schema-6 `BENCH_popular.json`,
//! the perf trajectory file every perf PR measures itself against (the
//! schema-6 header records the effective `PM_CHUNK_BYTES` /
//! `PM_PREFETCH_DIST` knobs and whether the prefetch feature was compiled
//! in).  The `layout/` families A/B the locality layout pass
//! (`pm_instances::layout`, DESIGN.md §12) on the clustered-scattered
//! workload.  The
//! server-routed families (`served/server_warm`, `served/degraded`,
//! `faults/chaos`) push the same request stream through the fault-tolerant
//! [`Server`] and record its counters (served / rejected / shed /
//! panics_recovered / degraded_responses) alongside the timings; see
//! `server_trajectory`.  The incremental families
//! (`served/incremental/edit_churn`, `…/mixed_churn`, `…/server_churn`)
//! replay churn streams against a warm [`DeltaSolver`] and report amortized
//! per-delta milliseconds; see `incremental_trajectory`.
//!
//! The harness binary installs a **counting global allocator**; the warm
//! `served/` measurement runs a width-1 warm solve under it and hard-fails
//! (exit 1) if a single heap allocation is observed — the zero-allocation
//! regression gate CI runs on every push.  The `cold/` family measures the
//! three ingest paths (nested-`Vec` build, streaming text parse, binary
//! snapshot load) and gates the snapshot loader to a flat-buffers-only
//! allocation budget the same way.
//!
//! Each workload is swept across thread counts (default `1,2,4`; override
//! with `--threads 1,8`) by pinning the executor width per measurement, so
//! the file records the wall clock per thread count and the speedup of the
//! widest configuration over one thread.  An existing `"baseline"` object
//! in the output file is preserved verbatim, so the pre-refactor reference
//! numbers survive regeneration.  `--json-out PATH` overrides the output
//! path; `--quick` shrinks the size sweep in both modes; `--workloads GLOB`
//! (json mode, `*` wildcard) restricts the sweep to matching workload
//! names — pair it with `--json-out` to avoid truncating the committed
//! trajectory file.  `--assert-speedup FLOOR` (json mode) is the multicore
//! regression gate: after writing the file it requires every n ≥ 10⁶
//! workload to reach FLOOR× speedup at the widest swept width, downgrading
//! to a warning when the runner has fewer hardware threads than that width.
//! `--profile` (its own mode, takes precedence) prints the per-kernel phase
//! clock — reduce / algorithm2 / promote / census / jump wall time per warm
//! solve, plus the Hopcroft–Karp referee's bfs / dfs / augment phases per
//! warm `solve_ties` — via `pm_popular::profile`.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use pm_bench::workloads;
use pm_bench::{ms, time_best, Table};

/// Number of heap allocations observed process-wide (relaxed; exact when
/// read around a single-threaded region, which is how the zero-allocation
/// gate uses it).
static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

fn allocation_count() -> u64 {
    ALLOCATIONS.load(Ordering::SeqCst)
}

/// A [`System`] allocator that counts every allocation (including
/// `realloc`/`alloc_zeroed`) — the measuring instrument behind the
/// `served/` zero-allocation gate.
struct CountingAllocator;

// SAFETY: every method delegates verbatim to `System`; the only addition is
// a relaxed counter increment, which allocates nothing and has no effect on
// the returned memory.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL_ALLOCATOR: CountingAllocator = CountingAllocator;

use pm_graph::cycle::{
    cycle_vertices_via_cc, cycle_vertices_via_closure, cycle_vertices_via_rank, undirected_view,
};
use pm_instances::paper;
use pm_matching::hopcroft_karp::hopcroft_karp;
use pm_popular::algorithm1::popular_matching_run;
use pm_popular::delta::{DeltaMode, DeltaSolver};
use pm_popular::instance::PrefInstance;
use pm_popular::max_cardinality::maximum_cardinality_popular_matching_nc;
use pm_popular::optimal::{fair_popular_matching, rank_maximal_popular_matching};
use pm_popular::profile::Profile;
use pm_popular::sequential::popular_matching_sequential;
use pm_popular::solver::PopularSolver;
use pm_popular::switching::{ComponentKind, SwitchingGraph};
use pm_popular::ties::popular_matching_rank1;
use pm_popular::verify::is_popular_characterization;
use pm_popular::PopularError;
use pm_pram::DepthTracker;
use pm_serve::faults::Spec;
use pm_serve::{DeltaRequest, Request, ServeError, Server, ServerConfig, SolveMode};
use pm_stable::next::{next_stable_matchings, NextStableOutcome};
use pm_stable::rotations::exposed_rotations_sequential;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    if args.iter().any(|a| a == "--profile") {
        profile_trajectory(quick);
        return;
    }
    if args.iter().any(|a| a == "--json") {
        let out_path = args
            .iter()
            .position(|a| a == "--json-out")
            .and_then(|i| args.get(i + 1))
            .map_or("BENCH_popular.json", String::as_str);
        let threads: Vec<usize> = args
            .iter()
            .position(|a| a == "--threads")
            .and_then(|i| args.get(i + 1))
            .map_or_else(
                || vec![1, 2, 4],
                |list| {
                    list.split(',')
                        .map(|t| t.trim().parse().expect("--threads takes e.g. 1,2,4"))
                        .collect()
                },
            );
        assert!(
            threads.first() == Some(&1) && threads.windows(2).all(|w| w[0] < w[1]),
            "--threads must be strictly increasing and start at 1 \
             (speedup_vs_1 compares the first and last entries)"
        );
        let workload_filter = args
            .iter()
            .position(|a| a == "--workloads")
            .and_then(|i| args.get(i + 1))
            .cloned();
        let speedup_floor: Option<f64> = args
            .iter()
            .position(|a| a == "--assert-speedup")
            .and_then(|i| args.get(i + 1))
            .map(|v| v.parse().expect("--assert-speedup takes e.g. 3.0"));
        json_trajectory(
            quick,
            &threads,
            out_path,
            workload_filter.as_deref(),
            speedup_floor,
        );
        return;
    }
    let threads = rayon::current_num_threads();
    println!(
        "<!-- harness run: {} rayon threads, quick = {quick} -->\n",
        threads
    );

    e1_e2_paper_popular_example();
    e3_paper_stable_example();
    e4_peel_rounds(quick);
    e5_parallel_vs_sequential(quick);
    e6_max_cardinality(quick);
    e7_pseudoforest_cycles(quick);
    e8_optimal_variants(quick);
    e9_ties_reduction(quick);
    e10_next_stable(quick);
}

// ---------------------------------------------------------------- E1 / E2

fn e1_e2_paper_popular_example() {
    let inst = paper::figure1_instance();
    let tracker = DepthTracker::new();
    let run = popular_matching_run(&inst, &tracker).expect("Figure 1 is solvable");

    let mut t = Table::new(
        "E1 — Figures 1–3: reduced graph and popular matching of the paper's example",
        &[
            "applicant",
            "f(a)",
            "s(a)",
            "matched to",
            "paper's matching",
        ],
    );
    let paper_m = paper::figure1_popular_matching();
    for a in 0..inst.num_applicants() {
        t.row(vec![
            format!("a{}", a + 1),
            post(&inst, run.reduced.f(a)),
            post(&inst, run.reduced.s(a)),
            post(&inst, run.matching.post(a)),
            post(&inst, paper_m.post(a)),
        ]);
    }
    t.print();
    println!(
        "- peel rounds = {} (Lemma 2 bound {}), matching size = {}, popular = {}\n",
        run.peel_rounds,
        (inst.num_applicants() as f64).log2().ceil() as u32 + 1,
        run.matching.size(&inst),
        is_popular_characterization(&inst, &run.matching),
    );

    // E2: switching graph of the paper's matching.
    let sg = SwitchingGraph::build(&run.reduced, &paper_m, &tracker);
    let comps = sg.components(&tracker);
    let mut t2 = Table::new(
        "E2 — Figure 4: switching graph G_M of the paper's matching",
        &["component", "kind", "posts", "switching paths from"],
    );
    for (i, c) in comps.iter().enumerate() {
        let (kind, starts) = match &c.kind {
            ComponentKind::Cycle(cycle) => {
                (format!("cycle of length {}", cycle.len()), "-".to_string())
            }
            ComponentKind::Tree { sink } => {
                let starts: Vec<String> = c
                    .posts
                    .iter()
                    .filter(|&&q| q != *sink && sg.is_s_post(q))
                    .map(|&q| post(&inst, q))
                    .collect();
                (
                    format!("tree with sink {}", post(&inst, *sink)),
                    starts.join(" "),
                )
            }
        };
        t2.row(vec![
            format!("{}", i + 1),
            kind,
            c.posts
                .iter()
                .map(|&p| post(&inst, p))
                .collect::<Vec<_>>()
                .join(" "),
            starts,
        ]);
    }
    t2.print();
}

// --------------------------------------------------------------------- E3

fn e3_paper_stable_example() {
    let (inst, m) = paper::figure5_instance();
    let tracker = DepthTracker::new();
    let outcome = next_stable_matchings(&inst, &m, &tracker);
    let mut t = Table::new(
        "E3 — Figures 5–7: exposed rotations of the paper's stable matching",
        &["rotation", "men", "M\\rho (man -> woman)"],
    );
    if let NextStableOutcome::Next(results) = outcome {
        for (i, (rot, next)) in results.iter().enumerate() {
            t.row(vec![
                format!("rho{}", i + 1),
                rot.men()
                    .iter()
                    .map(|m| format!("m{}", m + 1))
                    .collect::<Vec<_>>()
                    .join(" "),
                (0..inst.n())
                    .map(|man| format!("m{}-w{}", man + 1, next.wife(man) + 1))
                    .collect::<Vec<_>>()
                    .join(" "),
            ]);
        }
    }
    t.print();
    let all = pm_stable::lattice::all_stable_matchings(&inst, &tracker);
    println!(
        "- the Figure 5 instance has {} stable matchings in total\n",
        all.len()
    );
}

// --------------------------------------------------------------------- E4

fn e4_peel_rounds(quick: bool) {
    let mut t = Table::new(
        "E4 — Lemma 2: degree-1 peeling rounds of Algorithm 2",
        &[
            "workload",
            "n (applicants)",
            "peel rounds",
            "⌈log2 n⌉ + 1 bound",
            "within bound",
        ],
    );
    let mut row = |label: &str, inst: &PrefInstance| {
        let tracker = DepthTracker::new();
        let run = popular_matching_run(inst, &tracker).expect("solvable workload");
        let n = inst.num_applicants();
        let bound = (n as f64).log2().ceil() as u32 + 1;
        t.row(vec![
            label.to_string(),
            n.to_string(),
            run.peel_rounds.to_string(),
            bound.to_string(),
            (run.peel_rounds <= bound).to_string(),
        ]);
    };
    let uniform_sizes: Vec<usize> = if quick {
        vec![1_000, 16_000]
    } else {
        vec![1_024, 16_384, 262_144]
    };
    for &n in &uniform_sizes {
        row("uniform (solvable)", &workloads::solvable_uniform(n));
    }
    let depths: Vec<usize> = if quick {
        vec![6, 10, 14]
    } else {
        vec![6, 10, 14, 17]
    };
    for &d in &depths {
        row("binary-tree worst case", &workloads::peeling_tree(d));
    }
    t.print();
}

// --------------------------------------------------------------------- E5

fn e5_parallel_vs_sequential(quick: bool) {
    let sizes: Vec<usize> = if quick {
        vec![1_000, 8_000, 64_000]
    } else {
        workloads::harness_sizes()
    };
    let reps = if quick { 2 } else { 3 };
    let mut t = Table::new(
        "E5 — Theorem 3: NC popular matching vs sequential baseline (solvable uniform workload)",
        &[
            "n",
            "sequential ms",
            "parallel ms",
            "seq/par",
            "PRAM depth",
            "PRAM work",
            "both popular",
            "size",
        ],
    );
    for &n in &sizes {
        let inst = workloads::solvable_uniform(n);
        let (seq, seq_t) = time_best(reps, || popular_matching_sequential(&inst).unwrap());
        let (par, par_t) = time_best(reps, || {
            let tracker = DepthTracker::new();
            pm_popular::algorithm1::popular_matching_nc(&inst, &tracker).unwrap()
        });
        let depth_tracker = DepthTracker::new();
        let _ = pm_popular::algorithm1::popular_matching_nc(&inst, &depth_tracker).unwrap();
        let stats = depth_tracker.stats();
        let both_popular =
            is_popular_characterization(&inst, &seq) && is_popular_characterization(&inst, &par);
        t.row(vec![
            n.to_string(),
            ms(seq_t),
            ms(par_t),
            format!("{:.2}x", seq_t.as_secs_f64() / par_t.as_secs_f64()),
            stats.depth.to_string(),
            stats.work.to_string(),
            both_popular.to_string(),
            par.size(&inst).to_string(),
        ]);
    }
    t.print();

    // Feasibility on the contended workload (popular matchings usually do
    // not exist there — part of the observed "shape").
    let mut t2 = Table::new(
        "E5b — feasibility under contention (master-list workload)",
        &["n", "popular matching exists", "parallel ms"],
    );
    for &n in &sizes {
        let inst = workloads::contended(n.min(64_000));
        let (res, par_t) = time_best(reps, || {
            let tracker = DepthTracker::new();
            pm_popular::algorithm1::popular_matching_nc(&inst, &tracker)
        });
        let exists = match res {
            Ok(_) => "yes",
            Err(PopularError::NoPopularMatching) => "no",
            Err(_) => "error",
        };
        t2.row(vec![
            inst.num_applicants().to_string(),
            exists.to_string(),
            ms(par_t),
        ]);
    }
    t2.print();
}

// --------------------------------------------------------------------- E6

fn e6_max_cardinality(quick: bool) {
    let sizes: Vec<usize> = if quick {
        vec![1_000, 8_000]
    } else {
        vec![4_000, 16_000, 64_000, 256_000]
    };
    let mut t = Table::new(
        "E6 — Theorem 10: maximum-cardinality popular matching (Algorithm 3), paired-pressure workload",
        &["n (applicants)", "minimum popular size", "Algorithm 1 size", "maximum popular size", "spread", "algorithm 3 ms", "PRAM depth"],
    );
    for &n in &sizes {
        let inst = workloads::paired_pressure(n / 2);
        let tracker = DepthTracker::new();
        let run = popular_matching_run(&inst, &tracker).expect("pressured workload is solvable");
        // The smallest popular matching (cardinality weights, minimised): the
        // worst outcome Theorem 9 allows — the spread to the maximum is what
        // Algorithm 3 is able to recover from an adversarial starting point.
        let min = pm_popular::optimal::optimal_popular_matching(
            &inst,
            |a, p| {
                if p == inst.last_resort(a) {
                    pm_linalg::BigUint::zero()
                } else {
                    pm_linalg::BigUint::one()
                }
            },
            pm_popular::optimal::Objective::Minimize,
            &tracker,
        )
        .unwrap();
        let ((), alg3_t) = time_best(2, || {
            let tracker = DepthTracker::new();
            let _ = maximum_cardinality_popular_matching_nc(&inst, &tracker).unwrap();
        });
        let tracker2 = DepthTracker::new();
        let max = maximum_cardinality_popular_matching_nc(&inst, &tracker2).unwrap();
        t.row(vec![
            n.to_string(),
            min.size(&inst).to_string(),
            run.matching.size(&inst).to_string(),
            max.size(&inst).to_string(),
            (max.size(&inst) - min.size(&inst)).to_string(),
            ms(alg3_t),
            tracker2.stats().depth.to_string(),
        ]);
    }
    t.print();
}

// --------------------------------------------------------------------- E7

fn e7_pseudoforest_cycles(quick: bool) {
    let sizes: Vec<usize> = if quick {
        vec![64, 256, 1_024]
    } else {
        workloads::pseudoforest_sizes()
    };
    let mut t = Table::new(
        "E7 — Section IV-A: cycle finding in pseudoforests (ms)",
        &[
            "n",
            "pointer doubling",
            "transitive closure",
            "incidence rank",
            "component counting",
            "sequential",
        ],
    );
    for &n in &sizes {
        let fg = workloads::pseudoforest(n);
        let _ug = undirected_view(&fg);
        let tracker = DepthTracker::new();
        let reference = fg.on_cycle_sequential();

        let (d, t_doubling) = time_best(3, || fg.on_cycle_parallel(&tracker));
        let (c, t_closure) = time_best(3, || cycle_vertices_via_closure(&fg, &tracker));
        let (r, t_rank) = time_best(1, || cycle_vertices_via_rank(&fg, &tracker));
        let (cc, t_cc) = time_best(1, || cycle_vertices_via_cc(&fg, &tracker));
        let (_, t_seq) = time_best(3, || fg.on_cycle_sequential());

        assert_eq!(d, reference);
        assert_eq!(c, reference);
        // rank / cc methods return edge-derived vertex marks; agreement was
        // unit-tested, here we only check counts to avoid re-deriving.
        assert_eq!(
            r.iter().filter(|&&b| b).count(),
            reference.iter().filter(|&&b| b).count()
        );
        assert_eq!(
            cc.iter().filter(|&&b| b).count(),
            reference.iter().filter(|&&b| b).count()
        );

        t.row(vec![
            n.to_string(),
            ms(t_doubling),
            ms(t_closure),
            ms(t_rank),
            ms(t_cc),
            ms(t_seq),
        ]);
    }
    t.print();
}

// --------------------------------------------------------------------- E8

fn e8_optimal_variants(quick: bool) {
    let sizes: Vec<usize> = if quick {
        vec![1_000, 8_000]
    } else {
        vec![4_000, 16_000, 64_000]
    };
    let mut t = Table::new(
        "E8 — Section IV-E: optimal popular matchings (A1 fraction 0.4)",
        &[
            "n",
            "first choices (arbitrary)",
            "first choices (rank-maximal)",
            "last resorts (arbitrary)",
            "last resorts (fair)",
            "rank-maximal ms",
            "fair ms",
        ],
    );
    for &n in &sizes {
        let inst = workloads::pressured(n, 0.4);
        let tracker = DepthTracker::new();
        let arbitrary = pm_popular::algorithm1::popular_matching_nc(&inst, &tracker).unwrap();
        let (rm, rm_t) = time_best(2, || {
            let tr = DepthTracker::new();
            rank_maximal_popular_matching(&inst, &tr).unwrap()
        });
        let (fair, fair_t) = time_best(2, || {
            let tr = DepthTracker::new();
            fair_popular_matching(&inst, &tr).unwrap()
        });
        let p_arb = Profile::of(&inst, &arbitrary);
        let p_rm = Profile::of(&inst, &rm);
        let p_fair = Profile::of(&inst, &fair);
        t.row(vec![
            n.to_string(),
            p_arb.0[0].to_string(),
            p_rm.0[0].to_string(),
            p_arb.0.last().unwrap().to_string(),
            p_fair.0.last().unwrap().to_string(),
            ms(rm_t),
            ms(fair_t),
        ]);
    }
    t.print();
}

// --------------------------------------------------------------------- E9

fn e9_ties_reduction(quick: bool) {
    let sizes: Vec<usize> = if quick {
        vec![1_000, 8_000]
    } else {
        vec![4_000, 16_000, 64_000, 256_000]
    };
    let mut t = Table::new(
        "E9 — Theorem 11: ties reduction vs Hopcroft–Karp (expected degree 4)",
        &[
            "n (per side)",
            "maximum matching size",
            "rank-1 popular oracle size",
            "sizes equal",
            "HK ms",
        ],
    );
    for &n in &sizes {
        let g = workloads::bipartite(n);
        let (hk, hk_t) = time_best(2, || hopcroft_karp(&g));
        let oracle = popular_matching_rank1(&g);
        t.row(vec![
            n.to_string(),
            hk.size().to_string(),
            oracle.size().to_string(),
            (hk.size() == oracle.size()).to_string(),
            ms(hk_t),
        ]);
    }
    t.print();
}

// -------------------------------------------------------------------- E10

fn e10_next_stable(quick: bool) {
    let sizes: Vec<usize> = if quick {
        vec![64, 256]
    } else {
        workloads::stable_sizes()
    };
    let mut t = Table::new(
        "E10 — Theorem 16: next stable matching (Algorithm 4) at the man-optimal matching",
        &[
            "n",
            "exposed rotations",
            "algorithm 4 ms",
            "sequential finder ms",
            "lattice size (n ≤ 256)",
        ],
    );
    for &n in &sizes {
        let inst = workloads::stable_marriage(n);
        let m0 = inst.man_optimal();
        let (outcome, par_t) = time_best(2, || {
            let tracker = DepthTracker::new();
            next_stable_matchings(&inst, &m0, &tracker)
        });
        let (seq, seq_t) = time_best(2, || exposed_rotations_sequential(&inst, &m0));
        let rotations = match &outcome {
            NextStableOutcome::WomanOptimal => 0,
            NextStableOutcome::Next(v) => v.len(),
        };
        assert_eq!(rotations, seq.len());
        let lattice = if n <= 256 {
            let tracker = DepthTracker::new();
            pm_stable::lattice::all_stable_matchings(&inst, &tracker)
                .len()
                .to_string()
        } else {
            "-".to_string()
        };
        t.row(vec![
            n.to_string(),
            rotations.to_string(),
            ms(par_t),
            ms(seq_t),
            lattice,
        ]);
    }
    t.print();
}

// ---------------------------------------------------- perf trajectory JSON

/// One measured point on the perf trajectory.
struct JsonResult {
    workload: &'static str,
    n: usize,
    /// Best-of-N wall clock per executor width, in `--threads` order (the
    /// first entry is the 1-thread reference).  For `served/` workloads the
    /// values are amortized per-request milliseconds.
    wall_ms_by_threads: Vec<(usize, f64)>,
    /// Realised PRAM (depth, work) of the timed call, where tracked.
    pram: Option<(u64, u64)>,
    /// Extra integer fields rendered verbatim into the JSON entry
    /// (`requests`, `batch`, `allocs_per_solve`, …).
    extra: Vec<(&'static str, u64)>,
}

/// `*`-wildcard matching for `--workloads` (iterative backtracking; `*`
/// matches any — possibly empty — substring).
fn glob_match(pattern: &str, text: &str) -> bool {
    let (p, t) = (pattern.as_bytes(), text.as_bytes());
    let (mut pi, mut ti) = (0usize, 0usize);
    let mut star: Option<(usize, usize)> = None;
    while ti < t.len() {
        if pi < p.len() && (p[pi] == t[ti]) {
            pi += 1;
            ti += 1;
        } else if pi < p.len() && p[pi] == b'*' {
            star = Some((pi, ti));
            pi += 1;
        } else if let Some((sp, st)) = star {
            pi = sp + 1;
            ti = st + 1;
            star = Some((sp, st + 1));
        } else {
            return false;
        }
    }
    p[pi..].iter().all(|&c| c == b'*')
}

impl JsonResult {
    /// The 1-thread wall clock — the trajectory number comparable with the
    /// pre-executor history of this file.
    fn wall_ms_1(&self) -> f64 {
        self.wall_ms_by_threads[0].1
    }

    /// Speedup of the widest swept configuration over one thread.
    fn speedup_vs_1(&self) -> f64 {
        self.wall_ms_1() / self.wall_ms_by_threads.last().expect("non-empty sweep").1
    }
}

/// Runs `f` under each executor width in `threads` (best of `reps` each)
/// and returns the per-width wall clocks in milliseconds.
fn sweep_threads<R>(threads: &[usize], reps: usize, mut f: impl FnMut() -> R) -> Vec<(usize, f64)> {
    threads
        .iter()
        .map(|&t| {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(t)
                .build()
                .expect("shim pools always build");
            let (_, d) = pool.install(|| time_best(reps, &mut f));
            (t, d.as_secs_f64() * 1e3)
        })
        .collect()
}

/// Times the production pipeline workloads and writes `BENCH_popular.json`.
///
/// Wall clock is the `time_best`-of-3 protocol the Markdown tables use, run
/// once per entry of the `--threads` sweep; depth/work are read off a fresh
/// tracker for the same call (they are executor-independent, which the
/// determinism tests assert).  The sizes go up to 10^6 applicants in the
/// full sweep (10^5 under `--quick`, which is what the CI bench-smoke job
/// runs).  `filter` is the `--workloads` glob; unselected workload families
/// are skipped entirely (their instances are never even generated).
fn json_trajectory(
    quick: bool,
    threads: &[usize],
    out_path: &str,
    filter: Option<&str>,
    speedup_floor: Option<f64>,
) {
    let reps = if quick { 2 } else { 3 };
    let selected = |name: &str| filter.is_none_or(|pat| glob_match(pat, name));
    if let Some(pat) = filter {
        eprintln!("workload filter: {pat} (unselected workloads are dropped from the output file)");
    }
    let mut results: Vec<JsonResult> = Vec::new();

    let popular_sizes: &[usize] = if quick {
        &[10_000, 100_000]
    } else {
        &[10_000, 100_000, 1_000_000]
    };
    if selected("popular_matching_run/uniform") {
        for &n in popular_sizes {
            let inst = workloads::solvable_uniform(n);
            let tracker = DepthTracker::new();
            let _ = popular_matching_run(&inst, &tracker).expect("solvable workload");
            let stats = tracker.stats();
            let wall_ms_by_threads = sweep_threads(threads, reps, || {
                let tr = DepthTracker::new();
                popular_matching_run(&inst, &tr).unwrap()
            });
            results.push(JsonResult {
                workload: "popular_matching_run/uniform",
                n,
                wall_ms_by_threads,
                pram: Some((stats.depth, stats.work)),
                extra: vec![("bytes_per_entity", instance_bytes_per_entity(&inst))],
            });
        }
    }

    let deep_sizes: &[usize] = if quick {
        &[100_000]
    } else {
        &[100_000, 1_000_000]
    };
    if selected("max_cardinality/paired") {
        for &n in deep_sizes {
            let inst = workloads::paired_pressure(n / 2);
            let tracker = DepthTracker::new();
            let _ = maximum_cardinality_popular_matching_nc(&inst, &tracker).expect("solvable");
            let stats = tracker.stats();
            let wall_ms_by_threads = sweep_threads(threads, reps, || {
                let tr = DepthTracker::new();
                maximum_cardinality_popular_matching_nc(&inst, &tr).unwrap()
            });
            results.push(JsonResult {
                workload: "max_cardinality/paired",
                n,
                wall_ms_by_threads,
                pram: Some((stats.depth, stats.work)),
                extra: vec![("bytes_per_entity", instance_bytes_per_entity(&inst))],
            });
        }
    }

    if selected("switching_graph/uniform") {
        for &n in deep_sizes {
            let inst = workloads::solvable_uniform(n);
            let tracker = DepthTracker::new();
            let run = popular_matching_run(&inst, &tracker).expect("solvable workload");
            let sg_tracker = DepthTracker::new();
            {
                let sg = SwitchingGraph::build(&run.reduced, &run.matching, &sg_tracker);
                let _ = sg.components(&sg_tracker);
                let _ = sg.margins_to_sink(&sg_tracker);
            }
            let stats = sg_tracker.stats();
            let wall_ms_by_threads = sweep_threads(threads, reps, || {
                let tr = DepthTracker::new();
                let sg = SwitchingGraph::build(&run.reduced, &run.matching, &tr);
                let comps = sg.components(&tr);
                let margins = sg.margins_to_sink(&tr);
                std::hint::black_box((comps.len(), margins.len()))
            });
            results.push(JsonResult {
                workload: "switching_graph/uniform",
                n,
                wall_ms_by_threads,
                pram: Some((stats.depth, stats.work)),
                extra: vec![("bytes_per_entity", instance_bytes_per_entity(&inst))],
            });
        }
    }

    if selected("ties_rank1/bipartite") {
        for &n in deep_sizes {
            let g = workloads::bipartite(n);
            // Depth/work of the ties path — the one workload that
            // historically lacked the fields.  The timed closure below runs
            // two stages: the rank-1 instance construction (one O(|E|)
            // validation round) and the Hopcroft-Karp oracle (charged by
            // `solve_ties` on the solver's internal tracker); the recorded
            // stats charge both so they describe exactly what is measured.
            let tracker = DepthTracker::new();
            tracker.round();
            tracker.work(g.num_edges() as u64);
            let mut stats_solver = PopularSolver::new(0, 0);
            let _ = stats_solver.solve_ties(&g).expect("valid ties graph");
            tracker.absorb(stats_solver.stats());
            let stats = tracker.stats();
            let wall_ms_by_threads = sweep_threads(threads, reps, || {
                let inst = pm_popular::ties::rank1_instance(&g).unwrap();
                std::hint::black_box(inst.num_edges());
                popular_matching_rank1(&g).size()
            });
            results.push(JsonResult {
                workload: "ties_rank1/bipartite",
                n,
                wall_ms_by_threads,
                pram: Some((stats.depth, stats.work)),
                extra: vec![(
                    "bytes_per_entity",
                    bytes_per_entity(g.heap_bytes(), g.n_left() + g.n_right()),
                )],
            });
        }
    }

    layout_trajectory(quick, threads, reps, &selected, &mut results);
    served_trajectory(quick, threads, reps, &selected, &mut results);
    incremental_trajectory(quick, threads, reps, &selected, &mut results);
    server_trajectory(quick, reps, &selected, &mut results);
    cold_trajectory(quick, reps, &selected, &mut results);

    let baseline = std::fs::read_to_string(out_path)
        .ok()
        .and_then(|old| extract_object(&old, "baseline"));
    let json = render_json(quick, threads, &results, baseline.as_deref());
    std::fs::write(out_path, &json).expect("write BENCH json");
    eprintln!("wrote {out_path}");
    println!("{json}");
    if let Some(floor) = speedup_floor {
        assert_speedup_floor(&results, threads, floor);
    }
}

/// The multicore regression gate behind `--assert-speedup FLOOR` (the CI
/// PM_THREADS=4 bench leg): every n ≥ 10⁶ workload swept at more than one
/// width must reach `floor` speedup of the widest width over one thread.
/// A miss downgrades to a warning when the runner reports fewer hardware
/// threads than the sweep's widest width — a 2-core shared runner cannot
/// reach a 3× floor, and that is a hardware fact, not a regression.
fn assert_speedup_floor(results: &[JsonResult], threads: &[usize], floor: f64) {
    const GATE_MIN_N: usize = 1_000_000;
    let widest = *threads.last().expect("non-empty sweep");
    let hw = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let gated: Vec<&JsonResult> = results
        .iter()
        .filter(|r| r.n >= GATE_MIN_N && r.wall_ms_by_threads.len() > 1)
        .collect();
    if gated.is_empty() {
        eprintln!(
            "speedup gate: no n >= {GATE_MIN_N} workload in this sweep \
             (quick or filtered run) — nothing to assert"
        );
        return;
    }
    let mut failed = false;
    for r in gated {
        let s = r.speedup_vs_1();
        let ok = s >= floor;
        eprintln!(
            "speedup gate: {} n={} speedup_vs_1 = {s:.2} (floor {floor:.2}) — {}",
            r.workload,
            r.n,
            if ok { "ok" } else { "BELOW FLOOR" }
        );
        failed |= !ok;
    }
    if failed {
        if hw < widest {
            eprintln!(
                "speedup gate: WARNING only — runner reports {hw} hardware thread(s) \
                 for a {widest}-wide sweep; the {floor:.1}x floor is unreachable \
                 on this machine, not a regression signal"
            );
        } else {
            eprintln!("speedup gate: FAILED (workloads below the floor listed above)");
            std::process::exit(1);
        }
    }
}

/// `--profile`: the per-kernel phase clock (pm_popular::profile) over warm
/// solves of the headline uniform workload.  Census and Jump are sub-spans
/// *inside* Algorithm 2, so the five columns do not sum to the total; the
/// clock itself is two relaxed atomics per span, so the numbers below are
/// the same solves the trajectory file times.
fn profile_trajectory(quick: bool) {
    use pm_popular::profile::{
        enable_phase_timings, phase_timings, reset_phase_timings, SolvePhase,
    };
    let sizes: &[usize] = if quick {
        &[10_000, 100_000]
    } else {
        &[10_000, 100_000, 1_000_000]
    };
    let reps = 5u32;
    println!(
        "<!-- harness --profile: {} rayon threads, {reps} warm solves per size -->\n",
        rayon::current_num_threads()
    );
    let mut t = Table::new(
        "Per-kernel phase wall time, ms per warm solve (census/jump nest inside algorithm2)",
        &[
            "n",
            "reduce",
            "algorithm2",
            "promote",
            "census",
            "jump",
            "total",
        ],
    );
    for &n in sizes {
        let inst = workloads::solvable_uniform(n);
        let mut solver = PopularSolver::new(inst.num_applicants(), inst.num_posts());
        // One untimed solve warms the workspace so the phase totals describe
        // steady-state serving, not first-touch page faults.
        solver.solve(&inst).expect("solvable workload");
        reset_phase_timings();
        enable_phase_timings(true);
        let start = std::time::Instant::now();
        for _ in 0..reps {
            std::hint::black_box(
                solver
                    .solve(&inst)
                    .expect("solvable workload")
                    .num_applicants(),
            );
        }
        let total_ms = start.elapsed().as_secs_f64() * 1e3 / f64::from(reps);
        enable_phase_timings(false);
        let timings = phase_timings();
        let per_solve = |p: SolvePhase| {
            format!(
                "{:.3}",
                timings.get(p).as_secs_f64() * 1e3 / f64::from(reps)
            )
        };
        t.row(vec![
            n.to_string(),
            per_solve(SolvePhase::Reduce),
            per_solve(SolvePhase::Algorithm2),
            per_solve(SolvePhase::Promote),
            per_solve(SolvePhase::Census),
            per_solve(SolvePhase::Jump),
            format!("{total_ms:.3}"),
        ]);
    }
    t.print();

    // The Hopcroft–Karp referee of the ties pipeline, same protocol: warm
    // `solve_ties` laps on the bipartite workload with the clock enabled.
    // hk_dfs covers the layered search *including* its in-place path flips;
    // hk_augment is the final matching write-out, so the three phases
    // partition the referee.
    let mut t2 = Table::new(
        "Hopcroft–Karp referee phases, ms per warm solve_ties (bipartite, expected degree 4)",
        &["n", "hk_bfs", "hk_dfs", "hk_augment", "total"],
    );
    for &n in sizes {
        let g = workloads::bipartite(n);
        let mut solver = PopularSolver::new(0, 0);
        let _ = solver.solve_ties(&g).expect("valid ties graph");
        reset_phase_timings();
        enable_phase_timings(true);
        let start = std::time::Instant::now();
        for _ in 0..reps {
            std::hint::black_box(solver.solve_ties(&g).expect("valid ties graph").size());
        }
        let total_ms = start.elapsed().as_secs_f64() * 1e3 / f64::from(reps);
        enable_phase_timings(false);
        let timings = phase_timings();
        let per_solve = |p: SolvePhase| {
            format!(
                "{:.3}",
                timings.get(p).as_secs_f64() * 1e3 / f64::from(reps)
            )
        };
        t2.row(vec![
            n.to_string(),
            per_solve(SolvePhase::HkBfs),
            per_solve(SolvePhase::HkDfs),
            per_solve(SolvePhase::HkAugment),
            format!("{total_ms:.3}"),
        ]);
    }
    t2.print();
}

/// The `layout/` workload family (E23): the same pipeline measured with
/// and without the locality layout pass of `pm_instances::layout`
/// (DESIGN.md §12), on the clustered-scattered workload — community
/// structure in the preferences, post ids scattered across the whole id
/// space.
///
/// * `layout/switching_graph/{off,on}` — switching-graph build +
///   components + margins over a popular matching of the original (`off`)
///   vs the relabeled twin (`on`); the headline A/B of the layout PR.
/// * `layout/warm_solve/{off,on}` — warm repeated solves: a plain
///   [`PopularSolver`] on the original vs a
///   [`pm_popular::RelabeledSolver`] solving the twin and mapping answers
///   back to original post ids.  The `on` side runs the **zero-allocation
///   gate** (the map-back buffer is pooled, so warm layout solves must not
///   touch the allocator) and records `allocs_per_solve`.
///
/// Once per size, untimed, the twin's mapped-back answer is verified
/// popular **on the original instance** (tie-break shifts make it a
/// possibly different matching than the direct solve's — popularity on the
/// original is the invariant that matters).  The `on` entries record the
/// one-time layout pass cost as `layout_pass_us`.
fn layout_trajectory(
    quick: bool,
    threads: &[usize],
    reps: usize,
    selected: &dyn Fn(&str) -> bool,
    results: &mut Vec<JsonResult>,
) {
    use pm_popular::relabel::RelabeledSolver;

    let want_sg = selected("layout/switching_graph/off") || selected("layout/switching_graph/on");
    let want_warm = selected("layout/warm_solve/off") || selected("layout/warm_solve/on");
    if !(want_sg || want_warm) {
        return;
    }
    let sizes: &[usize] = if quick {
        &[100_000]
    } else {
        &[100_000, 1_000_000]
    };
    for &n in sizes {
        let inst = workloads::clustered_scattered(n);

        // The layout pass itself — cold, run once per instance (snapshots
        // persist the result), so its cost is an extra field, not a lap.
        let pass_start = std::time::Instant::now();
        let relabeled =
            pm_instances::layout::optimize_layout(&inst).expect("valid instance relabels");
        let layout_pass_us = pass_start.elapsed().as_micros() as u64;

        // Correctness once per size, untimed: the twin's solve, mapped back
        // through the inverse permutation, must be popular on the ORIGINAL.
        let mut rs = RelabeledSolver::new(inst.num_applicants(), inst.num_posts());
        let mapped = rs.solve(&relabeled).expect("solvable workload").clone();
        assert!(
            is_popular_characterization(&inst, &mapped),
            "layout-path answer is not popular on the original instance at n = {n}"
        );
        drop(rs);

        if want_sg {
            for (workload, subject) in [
                ("layout/switching_graph/off", &inst),
                ("layout/switching_graph/on", relabeled.instance()),
            ] {
                let tracker = DepthTracker::new();
                let run = popular_matching_run(subject, &tracker).expect("solvable workload");
                let sg_tracker = DepthTracker::new();
                {
                    let sg = SwitchingGraph::build(&run.reduced, &run.matching, &sg_tracker);
                    let _ = sg.components(&sg_tracker);
                    let _ = sg.margins_to_sink(&sg_tracker);
                }
                let stats = sg_tracker.stats();
                let wall_ms_by_threads = sweep_threads(threads, reps, || {
                    let tr = DepthTracker::new();
                    let sg = SwitchingGraph::build(&run.reduced, &run.matching, &tr);
                    let comps = sg.components(&tr);
                    let margins = sg.margins_to_sink(&tr);
                    std::hint::black_box((comps.len(), margins.len()))
                });
                let mut extra = vec![("bytes_per_entity", instance_bytes_per_entity(subject))];
                if workload.ends_with("/on") {
                    extra.push(("layout_pass_us", layout_pass_us));
                }
                results.push(JsonResult {
                    workload,
                    n,
                    wall_ms_by_threads,
                    pram: Some((stats.depth, stats.work)),
                    extra,
                });
            }
        }

        if want_warm {
            let requests: usize = if n >= 1_000_000 {
                2
            } else if quick {
                4
            } else {
                8
            };

            // Off: plain warm solves on the scattered original.
            let mut solver = PopularSolver::new(inst.num_applicants(), inst.num_posts());
            solver.solve(&inst).expect("solvable workload");
            let wall_off: Vec<(usize, f64)> = sweep_threads(threads, reps, || {
                for _ in 0..requests {
                    std::hint::black_box(solver.solve(&inst).expect("solvable").num_applicants());
                }
            })
            .into_iter()
            .map(|(t, total_ms)| (t, total_ms / requests as f64))
            .collect();
            drop(solver);
            results.push(JsonResult {
                workload: "layout/warm_solve/off",
                n,
                wall_ms_by_threads: wall_off,
                pram: None,
                extra: vec![
                    ("requests", requests as u64),
                    ("bytes_per_entity", instance_bytes_per_entity(&inst)),
                ],
            });

            // On: warm solves through the layout, answers in original ids.
            // Zero-allocation gate at width 1, like `served/warm_solve`.
            let mut rs = RelabeledSolver::new(inst.num_applicants(), inst.num_posts());
            let pool1 = rayon::ThreadPoolBuilder::new()
                .num_threads(1)
                .build()
                .expect("shim pools always build");
            let mut warmups = 0u32;
            loop {
                let before = allocation_count();
                pool1.install(|| {
                    std::hint::black_box(rs.solve(&relabeled).expect("solvable").num_applicants());
                });
                warmups += 1;
                if allocation_count() == before || warmups >= 10 {
                    break;
                }
            }
            let before = allocation_count();
            pool1.install(|| {
                for _ in 0..3 {
                    std::hint::black_box(rs.solve(&relabeled).expect("solvable").num_applicants());
                }
            });
            let allocs = allocation_count() - before;
            if allocs != 0 {
                eprintln!(
                    "ZERO-ALLOC GATE FAILED: warm layout solve (RelabeledSolver) performed \
                     {allocs} allocations over 3 solves at n = {n} after {warmups} warm-ups \
                     (expected 0)"
                );
                std::process::exit(1);
            }
            eprintln!(
                "zero-alloc gate passed at n = {n} \
                 (0 allocations across 3 warm layout solves, {warmups} warm-ups to steady state)"
            );

            let wall_on: Vec<(usize, f64)> = sweep_threads(threads, reps, || {
                for _ in 0..requests {
                    std::hint::black_box(rs.solve(&relabeled).expect("solvable").num_applicants());
                }
            })
            .into_iter()
            .map(|(t, total_ms)| (t, total_ms / requests as f64))
            .collect();
            results.push(JsonResult {
                workload: "layout/warm_solve/on",
                n,
                wall_ms_by_threads: wall_on,
                pram: None,
                extra: vec![
                    ("requests", requests as u64),
                    ("allocs_per_solve", allocs),
                    ("layout_pass_us", layout_pass_us),
                    (
                        "bytes_per_entity",
                        instance_bytes_per_entity(relabeled.instance()),
                    ),
                ],
            });
        }
    }
}

/// The `served/` workload family: warm repeated solves on one reused
/// [`PopularSolver`], the cold free-function path on the same request
/// stream, and batched throughput — all reported as amortized per-request
/// milliseconds.  Also runs the zero-allocation gate: a width-1 warm solve
/// under the counting allocator must allocate exactly zero times, or the
/// harness exits non-zero (the CI regression gate).
fn served_trajectory(
    quick: bool,
    threads: &[usize],
    reps: usize,
    selected: &dyn Fn(&str) -> bool,
    results: &mut Vec<JsonResult>,
) {
    let served_sizes: &[usize] = if quick {
        &[10_000, 100_000]
    } else {
        &[10_000, 100_000, 1_000_000]
    };

    if selected("served/warm_solve/uniform") {
        for &n in served_sizes {
            let inst = workloads::solvable_uniform(n);
            let requests: usize = if n >= 1_000_000 {
                2
            } else if quick {
                4
            } else {
                8
            };
            let mut solver = PopularSolver::new(inst.num_applicants(), inst.num_posts());

            // Zero-allocation gate, width 1: warm until the pooled buffers
            // reach steady state (capacity growth settles within a few
            // requests; 10 is far beyond it), then three measured solves
            // must not touch the allocator at all.
            let pool1 = rayon::ThreadPoolBuilder::new()
                .num_threads(1)
                .build()
                .expect("shim pools always build");
            let mut warmups = 0u32;
            loop {
                let before = allocation_count();
                pool1.install(|| {
                    std::hint::black_box(solver.solve(&inst).expect("solvable").num_applicants());
                });
                warmups += 1;
                if allocation_count() == before || warmups >= 10 {
                    break;
                }
            }
            let before = allocation_count();
            pool1.install(|| {
                for _ in 0..3 {
                    std::hint::black_box(solver.solve(&inst).expect("solvable").num_applicants());
                }
            });
            let allocs = allocation_count() - before;
            if allocs != 0 {
                eprintln!(
                    "ZERO-ALLOC GATE FAILED: warm PopularSolver::solve performed {allocs} \
                     allocations over 3 solves at n = {n} after {warmups} warm-ups (expected 0)"
                );
                std::process::exit(1);
            }
            eprintln!(
                "zero-alloc gate passed at n = {n} \
                 (0 allocations across 3 warm solves, {warmups} warm-ups to steady state)"
            );

            let wall_ms_by_threads: Vec<(usize, f64)> = sweep_threads(threads, reps, || {
                for _ in 0..requests {
                    std::hint::black_box(solver.solve(&inst).expect("solvable").num_applicants());
                }
            })
            .into_iter()
            .map(|(t, total_ms)| (t, total_ms / requests as f64))
            .collect();
            results.push(JsonResult {
                workload: "served/warm_solve/uniform",
                n,
                wall_ms_by_threads,
                pram: None,
                // `allocs` is provably 0 here (the gate above exits
                // otherwise); recording the measured value keeps the JSON
                // an observation rather than a constant.
                extra: vec![
                    ("requests", requests as u64),
                    ("allocs_per_solve", allocs),
                    ("bytes_per_entity", instance_bytes_per_entity(&inst)),
                ],
            });
        }
    }

    if selected("served/cold_solve/uniform") {
        for &n in served_sizes {
            let inst = workloads::solvable_uniform(n);
            let requests: usize = if n >= 1_000_000 {
                2
            } else if quick {
                4
            } else {
                8
            };
            let wall_ms_by_threads: Vec<(usize, f64)> = sweep_threads(threads, reps, || {
                for _ in 0..requests {
                    let tr = DepthTracker::new();
                    std::hint::black_box(
                        pm_popular::algorithm1::popular_matching_nc(&inst, &tr)
                            .expect("solvable")
                            .num_applicants(),
                    );
                }
            })
            .into_iter()
            .map(|(t, total_ms)| (t, total_ms / requests as f64))
            .collect();
            results.push(JsonResult {
                workload: "served/cold_solve/uniform",
                n,
                wall_ms_by_threads,
                pram: None,
                extra: vec![
                    ("requests", requests as u64),
                    ("bytes_per_entity", instance_bytes_per_entity(&inst)),
                ],
            });
        }
    }

    if selected("served/batch/uniform") {
        let (batch_n, batch_size): (usize, usize) = if quick { (10_000, 4) } else { (100_000, 8) };
        let insts = workloads::batch_instances(batch_n, batch_size);
        let mut solver = PopularSolver::new(batch_n, batch_n);
        let wall_ms_by_threads: Vec<(usize, f64)> = sweep_threads(threads, reps, || {
            let out = solver.solve_batch(&insts);
            debug_assert!(out.iter().all(Result::is_ok));
            std::hint::black_box(out.len())
        })
        .into_iter()
        .map(|(t, total_ms)| (t, total_ms / batch_size as f64))
        .collect();
        let batch_bytes: usize = insts.iter().map(PrefInstance::heap_bytes).sum();
        let batch_entities: usize = insts
            .iter()
            .map(|i| i.num_applicants() + i.total_posts())
            .sum();
        results.push(JsonResult {
            workload: "served/batch/uniform",
            n: batch_n,
            wall_ms_by_threads,
            pram: None,
            extra: vec![
                ("batch", batch_size as u64),
                (
                    "bytes_per_entity",
                    bytes_per_entity(batch_bytes, batch_entities),
                ),
            ],
        });
    }
}

/// Fraction of a full warm solve the amortized per-delta cost of pure-edit
/// churn may reach before the harness exits non-zero (the incremental
/// regression gate CI runs on every push).  Dirty-component re-solves on
/// star-shaped components are microseconds against a full solve's hundreds
/// of milliseconds at n = 10^6, so 20% is a loose tripwire: it only fires
/// when the delta path has collapsed into near-constant full re-solves.
const INCREMENTAL_GATE_FRACTION: f64 = 0.20;

/// The `served/incremental/` workload family (PR 8): churn streams against
/// a warm [`DeltaSolver`], reported as amortized per-delta milliseconds —
///
/// * `served/incremental/edit_churn` — pure `EditPrefList` deltas with the
///   first choice pinned (no f-census flips), the regime the incremental
///   layer is built for: every apply-and-flush round re-solves only the
///   edited applicant's component and splices it into the cached global
///   matching.  Runs two gates at width 1: the **zero-allocation gate**
///   (warm apply+flush rounds on clean shards must not touch the
///   allocator) and the **incremental gate** (amortized per-delta cost must
///   stay under [`INCREMENTAL_GATE_FRACTION`] of a full warm solve).
/// * `served/incremental/mixed_churn` — the honest mix (edits, applicant
///   add/remove, post add/remove); post-set changes force full rebuilds by
///   design, so this family records what heterogeneous churn actually
///   costs, fallbacks included.  The stream mutates the instance, so each
///   measured pass reinstalls a fresh solver (untimed) and is timed once.
/// * `served/incremental/server_churn` — the same edit stream through the
///   fault-tolerant [`Server`] delta path (bounded queue, scheduling tick,
///   coalescing, health gate), measured at width 1 with the server's
///   delta counters recorded alongside.
fn incremental_trajectory(
    quick: bool,
    threads: &[usize],
    reps: usize,
    selected: &dyn Fn(&str) -> bool,
    results: &mut Vec<JsonResult>,
) {
    let inc_sizes: &[usize] = if quick {
        &[10_000, 100_000]
    } else {
        &[10_000, 100_000, 1_000_000]
    };
    let deltas: usize = if quick { 32 } else { 64 };

    if selected("served/incremental/edit_churn") {
        for &n in inc_sizes {
            let inst = workloads::solvable_uniform(n);
            // The stream and its reversed-tails twin: a measured pass
            // applies both, so every edit lands on a list the previous
            // half-pass changed away — replaying a single stream would time
            // no-op applies on clean shards instead of shard re-solves.
            let stream = workloads::edit_churn_stream(&inst, deltas);
            let streams = [workloads::resampled_twin(&inst, &stream), stream];
            let pass_deltas = 2 * deltas;
            let pool1 = rayon::ThreadPoolBuilder::new()
                .num_threads(1)
                .build()
                .expect("shim pools always build");

            // The full-warm-solve reference the incremental gate compares
            // against: same instance, same width, steady-state solver.
            let mut ref_solver = PopularSolver::new(inst.num_applicants(), inst.num_posts());
            let full_warm_ms = pool1.install(|| {
                std::hint::black_box(ref_solver.solve(&inst).expect("solvable").num_applicants());
                let (_, t) = time_best(reps, || {
                    std::hint::black_box(
                        ref_solver.solve(&inst).expect("solvable").num_applicants(),
                    )
                });
                t.as_secs_f64() * 1e3
            });
            drop(ref_solver);

            let mut ds = pool1
                .install(|| DeltaSolver::install(&inst, DeltaMode::Popular))
                .expect("solvable workload");

            // Zero-allocation gate, width 1: replay the stream until the
            // pooled buffers (dirty lists, component scratch, sub-instance
            // slices) reach steady state, then three full apply+flush
            // passes must not allocate at all.
            let mut warmups = 0u32;
            loop {
                let before = allocation_count();
                pool1.install(|| {
                    for d in streams.iter().flatten() {
                        ds.apply(d).expect("edit churn deltas are valid");
                        std::hint::black_box(ds.flush().expect("solvable").num_applicants());
                    }
                });
                warmups += 1;
                if allocation_count() == before || warmups >= 10 {
                    break;
                }
            }
            let before = allocation_count();
            pool1.install(|| {
                for _ in 0..3 {
                    for d in streams.iter().flatten() {
                        ds.apply(d).expect("edit churn deltas are valid");
                        std::hint::black_box(ds.flush().expect("solvable").num_applicants());
                    }
                }
            });
            let allocs = allocation_count() - before;
            if allocs != 0 {
                eprintln!(
                    "ZERO-ALLOC GATE FAILED: warm delta apply+flush performed {allocs} \
                     allocations over 3 x {pass_deltas} deltas at n = {n} after {warmups} \
                     warm-up passes (expected 0)"
                );
                std::process::exit(1);
            }
            eprintln!(
                "zero-alloc gate passed at n = {n} \
                 (0 allocations across 3 warm churn passes, {warmups} warm-ups to steady state)"
            );

            let wall_ms_by_threads: Vec<(usize, f64)> = sweep_threads(threads, reps, || {
                for d in streams.iter().flatten() {
                    ds.apply(d).expect("edit churn deltas are valid");
                    std::hint::black_box(ds.flush().expect("solvable").num_applicants());
                }
            })
            .into_iter()
            .map(|(t, total_ms)| (t, total_ms / pass_deltas as f64))
            .collect();

            let amortized_ms = wall_ms_by_threads[0].1;
            if amortized_ms > INCREMENTAL_GATE_FRACTION * full_warm_ms {
                eprintln!(
                    "INCREMENTAL GATE FAILED: amortized per-delta cost {amortized_ms:.3} ms \
                     exceeds {INCREMENTAL_GATE_FRACTION} x full warm solve ({full_warm_ms:.3} ms) \
                     at n = {n} — the delta path is re-solving from scratch"
                );
                std::process::exit(1);
            }
            eprintln!(
                "incremental gate passed at n = {n} ({amortized_ms:.3} ms/delta vs \
                 {full_warm_ms:.3} ms full warm solve)"
            );

            let s = ds.stats();
            results.push(JsonResult {
                workload: "served/incremental/edit_churn",
                n,
                wall_ms_by_threads,
                pram: None,
                extra: vec![
                    ("deltas", pass_deltas as u64),
                    ("full_warm_solve_us", (full_warm_ms * 1e3) as u64),
                    ("allocs_per_pass", allocs),
                    ("shard_solves", s.shard_solves),
                    ("full_solves", s.full_solves),
                    ("fallback_full_solves", s.fallback_full_solves),
                    ("spliced_applicants", s.spliced_applicants),
                ],
            });
        }
    }

    if selected("served/incremental/mixed_churn") {
        let mixed_sizes: &[usize] = if quick { &[10_000] } else { &[10_000, 100_000] };
        for &n in mixed_sizes {
            let inst = workloads::solvable_uniform(n);
            let stream = workloads::mixed_churn_stream(&inst, deltas);

            // The stream mutates the instance (adds/removes), so it cannot
            // be replayed on the same solver: each width reinstalls a fresh
            // solver outside the timed region and times one pass.
            let mut infeasible_flushes = 0u64;
            let mut last_stats = None;
            let wall_ms_by_threads: Vec<(usize, f64)> = threads
                .iter()
                .map(|&t| {
                    let pool = rayon::ThreadPoolBuilder::new()
                        .num_threads(t)
                        .build()
                        .expect("shim pools always build");
                    let elapsed = pool.install(|| {
                        let mut ds = DeltaSolver::install(&inst, DeltaMode::Popular)
                            .expect("solvable workload");
                        infeasible_flushes = 0;
                        let start = std::time::Instant::now();
                        for d in &stream {
                            ds.apply(d).expect("mirror-validated deltas are valid");
                            match ds.flush() {
                                Ok(m) => {
                                    std::hint::black_box(m.num_applicants());
                                }
                                Err(PopularError::NoPopularMatching) => infeasible_flushes += 1,
                                Err(e) => panic!("mixed churn flush failed: {e}"),
                            }
                        }
                        let elapsed = start.elapsed();
                        last_stats = Some(ds.stats());
                        elapsed
                    });
                    (t, elapsed.as_secs_f64() * 1e3 / deltas as f64)
                })
                .collect();

            let s = last_stats.expect("at least one width measured");
            results.push(JsonResult {
                workload: "served/incremental/mixed_churn",
                n,
                wall_ms_by_threads,
                pram: None,
                extra: vec![
                    ("deltas", deltas as u64),
                    ("infeasible_flushes", infeasible_flushes),
                    ("shard_solves", s.shard_solves),
                    ("full_solves", s.full_solves),
                    ("fallback_full_solves", s.fallback_full_solves),
                    ("spliced_applicants", s.spliced_applicants),
                ],
            });
        }
    }

    if selected("served/incremental/server_churn") {
        let server_sizes: &[usize] = if quick { &[10_000] } else { &[10_000, 100_000] };
        for &n in server_sizes {
            let inst = workloads::solvable_uniform(n);
            // Same stream/reversed-twin alternation as `edit_churn`: each
            // measured round submits both, so replays stay genuine changes.
            let stream = workloads::edit_churn_stream(&inst, deltas);
            let streams = [workloads::resampled_twin(&inst, &stream), stream];
            let pass_deltas = 2 * deltas;
            let server = Server::start(ServerConfig {
                workers: 1,
                queue_capacity: deltas,
                faults: Spec::none(),
                ..ServerConfig::default()
            });
            server
                .install_delta(1, &inst, SolveMode::Popular)
                .expect("solvable workload");

            // One burst: submit the whole stream, then wait for every
            // ticket.  The single worker drains the queue in coalesced
            // rounds, so this measures the full tick path — queue, drain,
            // apply, one flush per round, response fan-out.
            let burst = || {
                for stream in &streams {
                    let tickets: Vec<_> = stream
                        .iter()
                        .map(|d| {
                            server
                                .submit_delta(DeltaRequest::new(1, d.clone()))
                                .expect("burst fits the pending capacity")
                        })
                        .collect();
                    for t in tickets {
                        let resp = t.wait().expect("edit churn deltas solve cleanly");
                        std::hint::black_box(resp.matching.num_applicants());
                    }
                }
            };
            burst();
            let (_, t) = time_best(reps, burst);

            let s = server.stats();
            let d = server.delta_stats(1).expect("installed above");
            results.push(JsonResult {
                workload: "served/incremental/server_churn",
                n,
                wall_ms_by_threads: vec![(1, t.as_secs_f64() * 1e3 / pass_deltas as f64)],
                pram: None,
                extra: vec![
                    ("deltas", pass_deltas as u64),
                    ("served", s.served),
                    ("delta_ticks", s.delta_ticks),
                    ("deltas_coalesced", s.deltas_coalesced),
                    ("degraded_responses", s.degraded_responses),
                    ("panics_recovered", s.panics_recovered),
                    ("shard_solves", d.shard_solves),
                    ("full_solves", d.full_solves),
                    ("fallback_full_solves", d.fallback_full_solves),
                ],
            });
            server.shutdown();
        }
    }
}

/// The server-routed workload families (PR 7): the same uniform request
/// stream as `served/warm_solve`, but travelling the full fault-tolerant
/// path — bounded queue, deadline check, health gate, `catch_unwind` —
/// so the trajectory records what robustness costs per request.
///
/// * `served/server_warm/uniform` — a burst of requests through a
///   one-worker [`Server`] with injection explicitly inert.  Runs the
///   **zero-rejected gate**: at nominal load (burst ≤ queue capacity)
///   nothing may be rejected or shed, or the harness exits non-zero.
/// * `served/degraded/uniform` — the same burst against a force-degraded
///   instance id: every answer is the serial-dictatorship fallback, timing
///   the degraded path end to end.
/// * `faults/chaos/uniform` — the burst under `panic:0.05,delay:1ms`
///   injection (or `PM_FAULTS` when set).  Only runs when the `faults`
///   feature is compiled in (`--features faults`); skipped with a notice
///   otherwise, so the committed trajectory stays injection-free.
///
/// The server owns its worker threads (the executor sweep does not apply),
/// so all three are measured at width 1 and report the server counters
/// (served / rejected / shed / panics_recovered / degraded_responses) as
/// extra fields.
fn server_trajectory(
    quick: bool,
    reps: usize,
    selected: &dyn Fn(&str) -> bool,
    results: &mut Vec<JsonResult>,
) {
    use std::sync::Arc;

    let server_sizes: &[usize] = if quick { &[10_000] } else { &[10_000, 100_000] };
    let requests: usize = if quick { 8 } else { 16 };

    // One burst of `requests` submits, then wait for every ticket; returns
    // the degraded-answer count observed by the client side.
    let burst = |server: &Server, inst: &Arc<PrefInstance>, id: u64| -> u64 {
        let tickets: Vec<_> = (0..requests)
            .map(|_| {
                server
                    .submit(Request::new(Arc::clone(inst), id))
                    .expect("burst fits the queue capacity")
            })
            .collect();
        let mut degraded = 0u64;
        for t in tickets {
            match t.wait() {
                Ok(resp) => degraded += u64::from(resp.is_degraded()),
                Err(ServeError::Faulted) => {}
                Err(e) => panic!("server burst failed: {e}"),
            }
        }
        degraded
    };
    let stats_extra = |server: &Server| -> Vec<(&'static str, u64)> {
        let s = server.stats();
        vec![
            ("requests", requests as u64),
            ("served", s.served),
            ("rejected", s.rejected),
            ("shed", s.shed),
            ("panics_recovered", s.panics_recovered),
            ("degraded_responses", s.degraded_responses),
        ]
    };

    if selected("served/server_warm/uniform") {
        for &n in server_sizes {
            let inst = Arc::new(workloads::solvable_uniform(n));
            let server = Server::start(ServerConfig {
                workers: 1,
                queue_capacity: requests,
                faults: Spec::none(),
                ..ServerConfig::default()
            });

            // Warm the worker's solver so the measured bursts are the
            // steady serving state, like `served/warm_solve`.
            burst(&server, &inst, 1);
            let (_, t) = time_best(reps, || burst(&server, &inst, 1));

            // Zero-rejected gate: a burst that fits the queue must never be
            // rejected or shed at nominal, injection-free load.
            let s = server.stats();
            if s.rejected != 0 || s.shed != 0 {
                eprintln!(
                    "ZERO-REJECTED GATE FAILED: served/server_warm rejected {} and shed {} \
                     requests at nominal load, n = {n} (expected 0 / 0)",
                    s.rejected, s.shed
                );
                std::process::exit(1);
            }
            eprintln!(
                "zero-rejected gate passed at n = {n} ({} requests served)",
                s.served
            );

            results.push(JsonResult {
                workload: "served/server_warm/uniform",
                n,
                wall_ms_by_threads: vec![(1, t.as_secs_f64() * 1e3 / requests as f64)],
                pram: None,
                extra: stats_extra(&server),
            });
            server.shutdown();
        }
    }

    if selected("served/degraded/uniform") {
        for &n in server_sizes {
            let inst = Arc::new(workloads::solvable_uniform(n));
            let server = Server::start(ServerConfig {
                workers: 1,
                queue_capacity: requests,
                backoff_max: std::time::Duration::from_secs(3600),
                faults: Spec::none(),
                ..ServerConfig::default()
            });
            server.force_degrade(1);

            let degraded = burst(&server, &inst, 1);
            assert_eq!(
                degraded, requests as u64,
                "a force-degraded id must answer every request degraded"
            );
            let (_, t) = time_best(reps, || burst(&server, &inst, 1));

            results.push(JsonResult {
                workload: "served/degraded/uniform",
                n,
                wall_ms_by_threads: vec![(1, t.as_secs_f64() * 1e3 / requests as f64)],
                pram: None,
                extra: stats_extra(&server),
            });
            server.shutdown();
        }
    }

    if selected("faults/chaos/uniform") {
        if !Spec::compiled_in() {
            eprintln!(
                "faults/chaos/uniform skipped: fail points compiled out \
                 (rebuild with `--features faults` to measure under injection)"
            );
        } else {
            for &n in server_sizes {
                let inst = Arc::new(workloads::solvable_uniform(n));
                let spec = match std::env::var(pm_serve::faults::ENV_VAR) {
                    Ok(s) if !s.trim().is_empty() => Spec::from_env(),
                    _ => Spec::parse("panic:0.05,delay:1ms").expect("built-in spec parses"),
                };
                let server = Server::start(ServerConfig {
                    workers: 2,
                    queue_capacity: requests,
                    faults: spec,
                    ..ServerConfig::default()
                });

                burst(&server, &inst, 1);
                let (_, t) = time_best(reps, || burst(&server, &inst, 1));

                results.push(JsonResult {
                    workload: "faults/chaos/uniform",
                    n,
                    wall_ms_by_threads: vec![(1, t.as_secs_f64() * 1e3 / requests as f64)],
                    pram: None,
                    extra: stats_extra(&server),
                });
                server.shutdown();
            }
        }
    }
}

/// The `cold/` workload family: the three ways a `PrefInstance` can come
/// into existence, measured end to end on the same uniform workload —
///
/// * `cold/nested_build/uniform` — the nested `Vec<Vec<usize>>` path
///   (`PrefInstance::new_strict`), including the per-applicant vector
///   materialisation the nested API forces on every producer (modelled by
///   cloning the lists inside the timed closure);
/// * `cold/text_parse/uniform` — the streaming two-pass text parser;
/// * `cold/snapshot_load/uniform` — the binary CSR snapshot loader.
///
/// Ingest is sequential, so these are measured at width 1 only (a thread
/// sweep would record noise).  The snapshot load also runs an allocation
/// gate under the counting allocator: one load must stay within
/// [`COLD_ALLOC_BOUND`] allocations — essentially one per flat buffer plus
/// the file read — or the harness exits non-zero.  A regression here means
/// the loader started restructuring instead of filling flat buffers.
const COLD_ALLOC_BOUND: u64 = 16;

fn cold_trajectory(
    quick: bool,
    reps: usize,
    selected: &dyn Fn(&str) -> bool,
    results: &mut Vec<JsonResult>,
) {
    let want_nested = selected("cold/nested_build/uniform");
    let want_text = selected("cold/text_parse/uniform");
    let want_snapshot = selected("cold/snapshot_load/uniform");
    if !(want_nested || want_text || want_snapshot) {
        return;
    }
    let cold_sizes: &[usize] = if quick {
        &[100_000]
    } else {
        &[100_000, 1_000_000]
    };

    for &n in cold_sizes {
        let inst = workloads::solvable_uniform(n);

        if want_nested {
            let lists: Vec<Vec<usize>> = (0..inst.num_applicants())
                .map(|a| inst.strict_list(a).expect("uniform workload is strict"))
                .collect();
            let num_posts = inst.num_posts();
            let (built, t) = time_best(reps, || {
                PrefInstance::new_strict(num_posts, lists.clone()).expect("valid workload")
            });
            assert_eq!(built, inst, "nested build must reproduce the instance");
            results.push(JsonResult {
                workload: "cold/nested_build/uniform",
                n,
                wall_ms_by_threads: vec![(1, t.as_secs_f64() * 1e3)],
                pram: None,
                extra: vec![("bytes_per_entity", instance_bytes_per_entity(&inst))],
            });
        }

        if want_text {
            let text = pm_instances::io::text(&inst).to_string();
            let (parsed, t) = time_best(reps, || {
                pm_instances::io::parse(&text).expect("rendered text parses")
            });
            assert_eq!(parsed, inst, "text parse must reproduce the instance");
            results.push(JsonResult {
                workload: "cold/text_parse/uniform",
                n,
                wall_ms_by_threads: vec![(1, t.as_secs_f64() * 1e3)],
                pram: None,
                extra: vec![("bytes_per_entity", instance_bytes_per_entity(&inst))],
            });
        }

        if want_snapshot {
            let path = std::env::temp_dir().join(format!("pm_bench_cold_{n}.pmsnap"));
            pm_instances::snapshot::write_file(&inst, &path).expect("snapshot write");

            // Allocation gate: one load, counted exactly.
            let before = allocation_count();
            let loaded = pm_instances::snapshot::read_file(&path).expect("snapshot read");
            let allocs = allocation_count() - before;
            assert_eq!(loaded, inst, "snapshot load must reproduce the instance");
            drop(loaded);
            if allocs > COLD_ALLOC_BOUND {
                eprintln!(
                    "COLD-ALLOC GATE FAILED: snapshot_load performed {allocs} allocations \
                     at n = {n} (bound {COLD_ALLOC_BOUND}) — the loader is restructuring \
                     instead of filling flat buffers"
                );
                std::process::exit(1);
            }
            eprintln!(
                "cold-alloc gate passed at n = {n} \
                 ({allocs} allocations per snapshot load, bound {COLD_ALLOC_BOUND})"
            );

            let (loaded, t) = time_best(reps, || {
                pm_instances::snapshot::read_file(&path).expect("snapshot read")
            });
            std::fs::remove_file(&path).ok();
            results.push(JsonResult {
                workload: "cold/snapshot_load/uniform",
                n,
                wall_ms_by_threads: vec![(1, t.as_secs_f64() * 1e3)],
                pram: None,
                extra: vec![
                    ("allocs_per_load", allocs),
                    ("bytes_per_entity", instance_bytes_per_entity(&loaded)),
                ],
            });
        }
    }
}

fn render_json(
    quick: bool,
    threads: &[usize],
    results: &[JsonResult],
    baseline: Option<&str>,
) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": 6,\n");
    out.push_str("  \"harness\": \"pm_bench --json\",\n");
    out.push_str(&format!("  \"quick\": {quick},\n"));
    out.push_str(&format!(
        "  \"rayon_threads\": {},\n",
        rayon::current_num_threads()
    ));
    // The effective tuning knobs of this run (PM_CHUNK_BYTES /
    // PM_PREFETCH_DIST env overrides land here), so trajectory numbers are
    // reproducible without knowing the runner's environment.
    out.push_str(&format!(
        "  \"chunk_bytes\": {},\n",
        pm_pram::tune::chunk_bytes()
    ));
    out.push_str(&format!(
        "  \"prefetch_dist\": {},\n",
        pm_pram::tune::prefetch_dist()
    ));
    out.push_str(&format!(
        "  \"prefetch_compiled\": {},\n",
        cfg!(feature = "prefetch")
    ));
    out.push_str(&format!(
        "  \"thread_sweep\": [{}],\n",
        threads
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(", ")
    ));
    out.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        let mut pram = match r.pram {
            Some((depth, work)) => format!(", \"depth\": {depth}, \"work\": {work}"),
            None => String::new(),
        };
        for (key, value) in &r.extra {
            pram.push_str(&format!(", \"{key}\": {value}"));
        }
        // `wall_ms` stays the 1-thread number so the trajectory remains
        // comparable with the sequential-shim history of this file.
        let by_threads = r
            .wall_ms_by_threads
            .iter()
            .map(|(t, ms)| format!("\"{t}\": {ms:.3}"))
            .collect::<Vec<_>>()
            .join(", ");
        out.push_str(&format!(
            "    {{\"workload\": \"{}\", \"n\": {}, \"wall_ms\": {:.3}, \
             \"wall_ms_by_threads\": {{{}}}, \"speedup_vs_1\": {:.2}{}}}{}\n",
            r.workload,
            r.n,
            r.wall_ms_1(),
            by_threads,
            r.speedup_vs_1(),
            pram,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]");
    if let Some(b) = baseline {
        out.push_str(",\n  \"baseline\": ");
        out.push_str(b);
    }
    out.push_str("\n}\n");
    out
}

/// Extracts the balanced-brace JSON object bound to the given top-level key
/// from `text`, e.g. `extract_object(s, "baseline")` returns the `{...}`
/// after `"baseline":`.  Good enough for the harness's own output format
/// (no braces inside strings).
fn extract_object(text: &str, key: &str) -> Option<String> {
    let at = text.find(&format!("\"{key}\""))?;
    let start = at + text[at..].find('{')?;
    let mut depth = 0usize;
    for (i, c) in text[start..].char_indices() {
        match c {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(text[start..=start + i].to_string());
                }
            }
            _ => {}
        }
    }
    None
}

// ------------------------------------------------------------------ utils

/// Resident heap bytes of an instance's flat arrays per entity (applicants
/// plus extended posts), rounded to the nearest byte — the peak-footprint
/// estimate of the workload's *input* the trajectory file records so the
/// 32-bit index narrowing (DESIGN.md §7) is visible as data, not prose.
fn instance_bytes_per_entity(inst: &PrefInstance) -> u64 {
    bytes_per_entity(
        inst.heap_bytes(),
        inst.num_applicants() + inst.total_posts(),
    )
}

fn bytes_per_entity(bytes: usize, entities: usize) -> u64 {
    (bytes as u64 + entities as u64 / 2) / (entities as u64).max(1)
}

fn post(inst: &PrefInstance, p: usize) -> String {
    if inst.is_last_resort(p) {
        format!("l(a{})", p - inst.num_posts() + 1)
    } else {
        format!("p{}", p + 1)
    }
}
