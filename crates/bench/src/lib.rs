//! Shared utilities for the benchmark harness: wall-clock timing, text
//! tables, and the canonical workload definitions used by both the Criterion
//! benches and the `harness` binary so that EXPERIMENTS.md, the benches and
//! the tables all measure exactly the same inputs.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub mod workloads;

/// Runs `f` once and returns its result together with the elapsed wall time.
pub fn time<R>(f: impl FnOnce() -> R) -> (R, Duration) {
    let start = Instant::now();
    let r = f();
    (r, start.elapsed())
}

/// Runs `f` `reps` times and returns the best (minimum) wall time together
/// with the last result — the robust "best of N" protocol the harness uses.
pub fn time_best<R>(reps: usize, mut f: impl FnMut() -> R) -> (R, Duration) {
    assert!(reps > 0);
    let mut best = Duration::MAX;
    let mut out = None;
    for _ in 0..reps {
        let (r, d) = time(&mut f);
        if d < best {
            best = d;
        }
        out = Some(r);
    }
    (out.expect("reps > 0"), best)
}

/// Formats a duration in milliseconds with three decimals.
pub fn ms(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64() * 1e3)
}

/// A fixed-width text table printed to stdout by the harness binary; the
/// same rows are pasted into EXPERIMENTS.md.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Self {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must have as many cells as there are headers).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders the table as a GitHub-flavoured Markdown table.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("### {}\n\n", self.title));
        out.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        out.push_str(&format!(
            "|{}\n",
            self.headers.iter().map(|_| "---|").collect::<String>()
        ));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out
    }

    /// Prints the Markdown rendering to stdout.
    pub fn print(&self) {
        println!("{}", self.to_markdown());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_helpers() {
        let (v, d) = time(|| 21 * 2);
        assert_eq!(v, 42);
        assert!(d < Duration::from_secs(1));
        let (v, d) = time_best(3, || 7);
        assert_eq!(v, 7);
        assert!(d < Duration::from_secs(1));
        assert!(ms(Duration::from_millis(2)).starts_with("2.0"));
    }

    #[test]
    fn table_rendering() {
        let mut t = Table::new("E0 — demo", &["n", "value"]);
        t.row(vec!["10".into(), "3.5".into()]);
        let md = t.to_markdown();
        assert!(md.contains("### E0 — demo"));
        assert!(md.contains("| n | value |"));
        assert!(md.contains("| 10 | 3.5 |"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_is_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["1".into()]);
    }
}
