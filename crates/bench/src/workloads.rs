//! Canonical workloads for every experiment, shared between the Criterion
//! benches and the harness binary (same generators, same seeds, same
//! parameters — so EXPERIMENTS.md, `cargo bench` and the harness tables all
//! describe the same inputs).

use pm_instances::generators::{self, GeneratorConfig};
use pm_instances::ChurnConfig;
use pm_popular::instance::PrefInstance;
use pm_stable::instance::SmInstance;

/// The base RNG seed used by all workloads.
pub const SEED: u64 = 20_200_518; // IPDPS 2020 week, for flavour

/// E4/E5 — solvable uniform instances: every applicant's first choice is
/// distinct (so a popular matching always exists) and the remaining list is
/// uniform.  `list_len = 5`.
pub fn solvable_uniform(n: usize) -> PrefInstance {
    let cfg = GeneratorConfig {
        num_applicants: n,
        num_posts: n + n / 8 + 1,
        list_len: 5,
        seed: SEED ^ n as u64,
    };
    generators::solvable(&cfg)
}

/// E5 — master-list (high contention) instances; popular matchings often do
/// not exist here, which is itself part of the measurement (feasibility rate).
pub fn contended(n: usize) -> PrefInstance {
    let cfg = GeneratorConfig {
        num_applicants: n,
        num_posts: n,
        list_len: 5,
        seed: SEED ^ (n as u64).rotate_left(17),
    };
    generators::master_list(&cfg, 8)
}

/// E6/E8 — instances with a tunable `A₁` population (applicants whose only
/// alternative is their last resort), the regime where maximum-cardinality /
/// fair / rank-maximal popular matchings differ from arbitrary ones.
pub fn pressured(n: usize, a1_fraction: f64) -> PrefInstance {
    let cfg = GeneratorConfig {
        num_applicants: n,
        num_posts: n + n / 8 + 1,
        list_len: 4,
        seed: SEED ^ 0xA1A1 ^ n as u64,
    };
    generators::last_resort_pressure(&cfg, a1_fraction)
}

/// E6 — the "paired pressure" family: `n_pairs` hot posts, each the first
/// choice of one *risky* applicant (whose list is just that post, so
/// `s = l(a)`) and one *safe* applicant (who also likes a private cold
/// post).  Every hot post must be matched in any popular matching, but it
/// can go to either fan, so popular matchings of sizes between `n_pairs`
/// and `2·n_pairs` exist — exactly the spread Algorithm 3 must close.
pub fn paired_pressure(n_pairs: usize) -> PrefInstance {
    let num_posts = 2 * n_pairs;
    let mut lists = Vec::with_capacity(2 * n_pairs);
    for j in 0..n_pairs {
        lists.push(vec![j]); // risky applicant: only the hot post
        lists.push(vec![j, n_pairs + j]); // safe applicant: hot post then cold post
    }
    PrefInstance::new_strict(num_posts, lists).expect("paired instance is valid")
}

/// E4 — the worst-case peeling family: an instance whose reduced graph is a
/// complete binary tree of the given depth (`n ≈ 2^(depth+1)` applicants),
/// which Algorithm 2 peels one level per round.
pub fn peeling_tree(depth: usize) -> PrefInstance {
    generators::binary_tree_instance(depth)
}

/// E16 / served — `count` independent solvable-uniform instances of size
/// `n` with distinct seeds: the request stream of the batched serving
/// workload (`PopularSolver::solve_batch`).
pub fn batch_instances(n: usize, count: usize) -> Vec<PrefInstance> {
    (0..count as u64)
        .map(|i| {
            let cfg = GeneratorConfig {
                num_applicants: n,
                num_posts: n + n / 8 + 1,
                list_len: 5,
                seed: SEED ^ (n as u64) ^ ((i + 1) << 32),
            };
            generators::solvable(&cfg)
        })
        .collect()
}

/// E23 — the layout A/B workload: community-structured solvable instances
/// whose post ids are scattered by a random bijection (see
/// `pm_instances::generators::clustered_scattered`).  The referential
/// locality is there — each applicant stays inside a 256-post community —
/// but the address locality is destroyed, which is exactly what the
/// `pm_instances::layout` pass recovers; the `layout/*` families measure
/// the same pipeline with and without it.
pub fn clustered_scattered(n: usize) -> PrefInstance {
    let cfg = GeneratorConfig {
        num_applicants: n,
        num_posts: n + n / 8 + 1,
        list_len: 5,
        seed: SEED ^ 0x1A07 ^ n as u64,
    };
    generators::clustered_scattered(&cfg, 256)
}

/// E7 — random directed pseudoforests with 10% sinks.
pub fn pseudoforest(n: usize) -> pm_graph::FunctionalGraph {
    generators::random_functional_graph(n, 0.1, SEED ^ 0x7777 ^ n as u64)
}

/// E9 — random bipartite graphs with expected degree ≈ 4.
pub fn bipartite(n: usize) -> pm_graph::BipartiteGraph {
    let density = 4.0 / n as f64;
    generators::random_bipartite(n, n, density, SEED ^ 0x9999 ^ n as u64)
}

/// E10 — random stable marriage instances with complete lists.
pub fn stable_marriage(n: usize) -> SmInstance {
    generators::random_sm_instance(n, SEED ^ 0x1010 ^ n as u64)
}

/// E21 — a pure-edit churn stream against `inst` (first choices pinned, so
/// no delta flips a post's f-status; see `pm_instances::churn`).  The
/// canonical input of the `served/incremental/edit_churn` workload and the
/// warm-delta zero-allocation gate.  The harness alternates this stream
/// with its [`resampled_twin`] so that endless replay stays statistically
/// identical to fresh churn (a straight repeat would re-apply tails the
/// instance already has, timing no-ops on clean shards).
pub fn edit_churn_stream(inst: &PrefInstance, deltas: usize) -> Vec<pm_popular::delta::Delta> {
    let cfg = ChurnConfig {
        deltas,
        seed: SEED ^ 0xDE17A ^ inst.num_applicants() as u64,
    };
    pm_instances::churn::edit_churn(inst, &cfg)
}

/// The alternation twin of [`edit_churn_stream`]: same applicants, freshly
/// resampled tails (see `pm_instances::churn::resampled_twin`).
pub fn resampled_twin(
    inst: &PrefInstance,
    stream: &[pm_popular::delta::Delta],
) -> Vec<pm_popular::delta::Delta> {
    pm_instances::churn::resampled_twin(inst, stream, SEED ^ 0x7717)
}

/// E21 — a mixed churn stream (edits, applicant add/remove, post
/// add/remove) against `inst`, mirror-validated so every delta is legal in
/// order.  The canonical input of `served/incremental/mixed_churn`.
pub fn mixed_churn_stream(inst: &PrefInstance, deltas: usize) -> Vec<pm_popular::delta::Delta> {
    let cfg = ChurnConfig {
        deltas,
        seed: SEED ^ 0x1117A ^ inst.num_applicants() as u64,
    };
    pm_instances::churn::mixed_churn(inst, &cfg)
}

/// The instance-size sweep used by the wall-clock experiments in the
/// harness.  Criterion benches use a subset to keep `cargo bench` short.
pub fn harness_sizes() -> Vec<usize> {
    vec![1_000, 4_000, 16_000, 64_000, 256_000]
}

/// The size sweep for the (more expensive) pseudoforest method comparison.
pub fn pseudoforest_sizes() -> Vec<usize> {
    vec![64, 256, 1_024, 4_096]
}

/// The size sweep for the stable-marriage experiments (quadratic-size
/// inputs, so smaller n).
pub fn stable_sizes() -> Vec<usize> {
    vec![64, 256, 1_024, 2_048]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_have_expected_shapes() {
        let inst = solvable_uniform(500);
        assert_eq!(inst.num_applicants(), 500);
        let c = contended(200);
        assert_eq!(c.num_applicants(), 200);
        let p = pressured(100, 0.5);
        assert_eq!(p.num_applicants(), 100);
        assert_eq!(pseudoforest(50).n(), 50);
        assert_eq!(bipartite(64).n_left(), 64);
        assert_eq!(stable_marriage(16).n(), 16);
        assert!(!harness_sizes().is_empty());
    }

    #[test]
    fn workloads_are_deterministic() {
        assert_eq!(solvable_uniform(100), solvable_uniform(100));
        assert_eq!(contended(100), contended(100));
    }
}
