//! Criterion benches for experiment E7 and the PRAM substrates: the four
//! pseudoforest cycle finders of Section IV-A, connected components, prefix
//! scans and pointer jumping.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use pm_bench::workloads;
use pm_graph::connected::{connected_components_parallel, connected_components_union_find};
use pm_graph::cycle::{
    cycle_vertices_via_cc, cycle_vertices_via_closure, cycle_vertices_via_rank, undirected_view,
};
use pm_pram::pointer::pointer_jump_roots;
use pm_pram::scan::prefix_sum_exclusive;
use pm_pram::DepthTracker;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
}

/// E7 — the four cycle-finding methods on random pseudoforests.
fn bench_cycle_finding(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_pseudoforest_cycles");
    for &n in &[256usize, 1_024] {
        let fg = workloads::pseudoforest(n);
        let ug = undirected_view(&fg);

        group.bench_with_input(BenchmarkId::new("pointer_doubling", n), &fg, |b, fg| {
            b.iter(|| {
                let tracker = DepthTracker::new();
                fg.on_cycle_parallel(&tracker)
            })
        });
        group.bench_with_input(BenchmarkId::new("transitive_closure", n), &fg, |b, fg| {
            b.iter(|| {
                let tracker = DepthTracker::new();
                cycle_vertices_via_closure(fg, &tracker)
            })
        });
        group.bench_with_input(BenchmarkId::new("sequential_walk", n), &fg, |b, fg| {
            b.iter(|| fg.on_cycle_sequential())
        });
        // The rank and component-counting oracles are O(m) rank/CC calls; they
        // are only benched at the smaller sizes to keep `cargo bench` short.
        if n <= 1_024 {
            group.bench_with_input(BenchmarkId::new("incidence_rank", n), &ug, |b, ug| {
                b.iter(|| {
                    let tracker = DepthTracker::new();
                    cycle_vertices_via_rank(&workloads::pseudoforest(n), &tracker).len()
                        + ug.num_edges()
                })
            });
            group.bench_with_input(BenchmarkId::new("component_counting", n), &fg, |b, fg| {
                b.iter(|| {
                    let tracker = DepthTracker::new();
                    cycle_vertices_via_cc(fg, &tracker)
                })
            });
        }
    }
    group.finish();
}

/// Connected components: the parallel hooking/shortcutting algorithm vs
/// union–find (the Theorem 8 substrate).
fn bench_connected_components(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate_connected_components");
    {
        let n = 100_000usize;
        // A long path plus random chords: worst case diameter for naive label
        // propagation, easy for hooking + shortcutting.
        let mut edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        edges.extend((0..n / 10).map(|i| (i * 7 % n, (i * 13 + 1) % n)));
        group.bench_with_input(
            BenchmarkId::new("parallel_hooking", n),
            &edges,
            |b, edges| {
                b.iter(|| {
                    let tracker = DepthTracker::new();
                    connected_components_parallel(n, edges, &tracker).count
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("union_find", n), &edges, |b, edges| {
            b.iter(|| connected_components_union_find(n, edges).count)
        });
    }
    group.finish();
}

/// PRAM primitives: prefix sums and pointer jumping.
fn bench_primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate_primitives");
    {
        let n = 1_000_000usize;
        let xs: Vec<u64> = (0..n as u64).map(|i| i % 97).collect();
        group.bench_with_input(BenchmarkId::new("prefix_sum", n), &xs, |b, xs| {
            b.iter(|| {
                let tracker = DepthTracker::new();
                prefix_sum_exclusive(xs, &tracker).1
            })
        });
        let parent: Vec<usize> = (0..n).map(|i| i.saturating_sub(1)).collect();
        group.bench_with_input(
            BenchmarkId::new("pointer_jumping_path", n),
            &parent,
            |b, parent| {
                b.iter(|| {
                    let tracker = DepthTracker::new();
                    pointer_jump_roots(parent, &tracker).rounds
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_cycle_finding, bench_connected_components, bench_primitives
}
criterion_main!(benches);
