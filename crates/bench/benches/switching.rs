//! Criterion benches for experiments E6/E8: the switching graph, Algorithm 3
//! (maximum-cardinality popular matching) and the weighted optimal variants.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use pm_bench::workloads;
use pm_popular::algorithm1::popular_matching_run;
use pm_popular::max_cardinality::{
    improve_to_maximum_cardinality, maximum_cardinality_popular_matching_sequential,
};
use pm_popular::optimal::{fair_popular_matching, rank_maximal_popular_matching};
use pm_popular::switching::SwitchingGraph;
use pm_pram::DepthTracker;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
}

/// E6 — Algorithm 3 on instances with a large A1 population.
fn bench_max_cardinality(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_max_cardinality");
    for &n in &[10_000usize, 50_000] {
        let inst = workloads::pressured(n, 0.4);
        let tracker = DepthTracker::new();
        let run = popular_matching_run(&inst, &tracker).unwrap();

        group.bench_with_input(
            BenchmarkId::new("algorithm3_improve", n),
            &(&run.reduced, &run.matching),
            |b, (reduced, matching)| {
                b.iter(|| {
                    let tracker = DepthTracker::new();
                    improve_to_maximum_cardinality(reduced, matching, &tracker)
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("sequential_end_to_end", n),
            &inst,
            |b, inst| b.iter(|| maximum_cardinality_popular_matching_sequential(inst).unwrap()),
        );
    }
    group.finish();
}

/// E6 — building the switching graph and decomposing it into components.
fn bench_switching_graph(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_switching_graph");
    {
        let n = 50_000usize;
        let inst = workloads::pressured(n, 0.4);
        let tracker = DepthTracker::new();
        let run = popular_matching_run(&inst, &tracker).unwrap();
        group.bench_with_input(
            BenchmarkId::new("build_and_decompose", n),
            &(&run.reduced, &run.matching),
            |b, (reduced, matching)| {
                b.iter(|| {
                    let tracker = DepthTracker::new();
                    let sg = SwitchingGraph::build(reduced, matching, &tracker);
                    (
                        sg.components(&tracker).len(),
                        sg.margins_to_sink(&tracker).len(),
                    )
                })
            },
        );
    }
    group.finish();
}

/// E8 — rank-maximal and fair popular matchings (big-integer weights).
fn bench_optimal(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_optimal");
    for &n in &[10_000usize, 50_000] {
        let inst = workloads::pressured(n, 0.4);
        group.bench_with_input(BenchmarkId::new("rank_maximal", n), &inst, |b, inst| {
            b.iter(|| {
                let tracker = DepthTracker::new();
                rank_maximal_popular_matching(inst, &tracker).unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("fair", n), &inst, |b, inst| {
            b.iter(|| {
                let tracker = DepthTracker::new();
                fair_popular_matching(inst, &tracker).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_max_cardinality, bench_switching_graph, bench_optimal
}
criterion_main!(benches);
