//! Criterion benches for experiments E9 (ties reduction / Hopcroft–Karp) and
//! E10 (Algorithm 4, the next stable matching).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use pm_bench::workloads;
use pm_matching::gale_shapley::gale_shapley_man_optimal;
use pm_matching::hopcroft_karp::hopcroft_karp;
use pm_pram::DepthTracker;
use pm_stable::next::{next_stable_matchings, reduced_men_lists};
use pm_stable::rotations::exposed_rotations_sequential;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
}

/// E9 — the maximum-matching oracle of the ties reduction.
fn bench_ties(c: &mut Criterion) {
    let mut group = c.benchmark_group("e9_ties_reduction");
    for &n in &[10_000usize, 50_000] {
        let g = workloads::bipartite(n);
        group.bench_with_input(BenchmarkId::new("hopcroft_karp", n), &g, |b, g| {
            b.iter(|| hopcroft_karp(g).size())
        });
    }
    group.finish();
}

/// E10 — Algorithm 4 vs the sequential rotation finder at the man-optimal
/// matching of random instances.
fn bench_next_stable(c: &mut Criterion) {
    let mut group = c.benchmark_group("e10_next_stable");
    for &n in &[256usize, 1_024] {
        let inst = workloads::stable_marriage(n);
        let m0 = inst.man_optimal();

        group.bench_with_input(
            BenchmarkId::new("algorithm4", n),
            &(&inst, &m0),
            |b, (inst, m0)| {
                b.iter(|| {
                    let tracker = DepthTracker::new();
                    next_stable_matchings(inst, m0, &tracker)
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("sequential_rotations", n),
            &(&inst, &m0),
            |b, (inst, m0)| b.iter(|| exposed_rotations_sequential(inst, m0)),
        );
        group.bench_with_input(
            BenchmarkId::new("reduced_lists_only", n),
            &(&inst, &m0),
            |b, (inst, m0)| {
                b.iter(|| {
                    let tracker = DepthTracker::new();
                    reduced_men_lists(inst, m0, &tracker).len()
                })
            },
        );
    }
    group.finish();
}

/// The Gale–Shapley substrate (not an NC algorithm — the paper's point is
/// exactly that this step is hard to parallelise; measured for context).
fn bench_gale_shapley(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate_gale_shapley");
    for &n in &[1_024usize, 2_048] {
        let inst = workloads::stable_marriage(n);
        group.bench_with_input(BenchmarkId::new("man_optimal", n), &inst, |b, inst| {
            b.iter(|| gale_shapley_man_optimal(inst.men_prefs(), inst.women_prefs()))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_ties, bench_next_stable, bench_gale_shapley
}
criterion_main!(benches);
