//! Criterion benches for experiments E4/E5: the NC popular matching
//! algorithm (Algorithm 1 + Algorithm 2) against the sequential baseline,
//! plus the reduced-graph construction on its own.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use pm_bench::workloads;
use pm_popular::algorithm1::popular_matching_nc;
use pm_popular::algorithm2::applicant_complete_matching;
use pm_popular::reduced::ReducedGraph;
use pm_popular::sequential::popular_matching_sequential;
use pm_pram::DepthTracker;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
}

/// E5 — Algorithm 1 (parallel) vs the sequential baseline on solvable
/// uniform instances.
fn bench_popular_matching(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_popular_matching");
    for &n in &[10_000usize, 50_000] {
        let inst = workloads::solvable_uniform(n);
        group.bench_with_input(BenchmarkId::new("nc_algorithm1", n), &inst, |b, inst| {
            b.iter(|| {
                let tracker = DepthTracker::new();
                popular_matching_nc(inst, &tracker).unwrap()
            })
        });
        group.bench_with_input(
            BenchmarkId::new("sequential_baseline", n),
            &inst,
            |b, inst| b.iter(|| popular_matching_sequential(inst).unwrap()),
        );
    }
    group.finish();
}

/// E4 — Algorithm 2 alone (the degree-1 peeling + even-cycle finish) on the
/// binary-tree worst case and on uniform instances.
fn bench_algorithm2(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_algorithm2");
    for &depth in &[10usize, 14] {
        let inst = workloads::peeling_tree(depth);
        let tracker = DepthTracker::new();
        let reduced = ReducedGraph::build_parallel(&inst, &tracker).unwrap();
        group.bench_with_input(
            BenchmarkId::new("binary_tree_depth", depth),
            &reduced,
            |b, reduced| {
                b.iter(|| {
                    let tracker = DepthTracker::new();
                    applicant_complete_matching(reduced, &tracker)
                })
            },
        );
    }
    {
        let n = 50_000usize;
        let inst = workloads::solvable_uniform(n);
        let tracker = DepthTracker::new();
        let reduced = ReducedGraph::build_parallel(&inst, &tracker).unwrap();
        group.bench_with_input(BenchmarkId::new("uniform", n), &reduced, |b, reduced| {
            b.iter(|| {
                let tracker = DepthTracker::new();
                applicant_complete_matching(reduced, &tracker)
            })
        });
    }
    group.finish();
}

/// Reduced-graph construction (parallel vs sequential), the first step of
/// Algorithm 1.
fn bench_reduced_graph(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_reduced_graph");
    {
        let n = 50_000usize;
        let inst = workloads::solvable_uniform(n);
        group.bench_with_input(BenchmarkId::new("parallel", n), &inst, |b, inst| {
            b.iter(|| {
                let tracker = DepthTracker::new();
                ReducedGraph::build_parallel(inst, &tracker).unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("sequential", n), &inst, |b, inst| {
            b.iter(|| ReducedGraph::build_sequential(inst).unwrap())
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_popular_matching, bench_algorithm2, bench_reduced_graph
}
criterion_main!(benches);
