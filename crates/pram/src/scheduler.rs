//! Round-synchronous execution helper.
//!
//! PRAM algorithms are naturally written as a loop of *rounds*: in each
//! round every processor reads shared memory as it was at the start of the
//! round, computes, and writes.  [`RoundScheduler`] packages that pattern —
//! double-buffered state plus automatic depth accounting — so the algorithm
//! crates (`pm_popular`, `pm_stable`, `pm_graph`) can express their loops
//! declaratively and the benchmark harness can read the realised round
//! counts straight off the tracker.

use crate::tracker::DepthTracker;

/// Controls a round-synchronous loop over a state of type `S`.
///
/// The scheduler owns the state and, on every [`step`](RoundScheduler::step),
/// hands the caller an immutable view of the *previous* state together with a
/// mutable scratch state to fill in; afterwards the scratch becomes current.
/// This mirrors the CREW PRAM convention that all reads in a round observe
/// the memory as of the beginning of the round.
#[derive(Debug)]
pub struct RoundScheduler<'a, S> {
    current: S,
    scratch: S,
    tracker: &'a DepthTracker,
    rounds: u64,
    max_rounds: u64,
}

impl<'a, S: Clone> RoundScheduler<'a, S> {
    /// Creates a scheduler with the given initial state.  `max_rounds` is a
    /// hard safety limit; exceeding it indicates the algorithm failed to
    /// converge (a bug) and [`step`](RoundScheduler::step) will panic.
    pub fn new(initial: S, max_rounds: u64, tracker: &'a DepthTracker) -> Self {
        let scratch = initial.clone();
        Self::from_buffers(initial, scratch, max_rounds, tracker)
    }

    /// Executes one synchronous round.  `f` receives the state at the start
    /// of the round and a mutable scratch (initialised to a clone of that
    /// state) and returns `true` to continue iterating or `false` when the
    /// algorithm has converged.
    ///
    /// Returns `false` once the loop should stop.
    pub fn step<F>(&mut self, work: u64, f: F) -> bool
    where
        F: FnOnce(&S, &mut S) -> bool,
    {
        assert!(
            self.rounds < self.max_rounds,
            "round-synchronous loop exceeded its bound of {} rounds",
            self.max_rounds
        );
        self.rounds += 1;
        self.tracker.round();
        self.tracker.work(work);
        self.scratch.clone_from(&self.current);
        let cont = f(&self.current, &mut self.scratch);
        std::mem::swap(&mut self.current, &mut self.scratch);
        cont
    }
}

impl<'a, S> RoundScheduler<'a, S> {
    /// Creates a scheduler from two caller-provided buffers — the initial
    /// state and a scratch of the same shape — without cloning either.
    /// This is the workspace entry point: hand in two checked-out buffers
    /// and the whole round loop runs allocation-free (use
    /// [`step_overwrite`](RoundScheduler::step_overwrite), whose contract
    /// matches an arbitrary scratch; [`step`](RoundScheduler::step) also
    /// works since it refreshes the scratch with `clone_from`, which reuses
    /// the buffer's capacity).
    pub fn from_buffers(
        initial: S,
        scratch: S,
        max_rounds: u64,
        tracker: &'a DepthTracker,
    ) -> Self {
        Self {
            current: initial,
            scratch,
            tracker,
            rounds: 0,
            max_rounds,
        }
    }

    /// Like [`step`](RoundScheduler::step), but the scratch state is handed
    /// over **as-is** (holding whatever the round before last produced)
    /// instead of being refreshed with a full `clone_from` of the current
    /// state.  Rounds that overwrite every cell they later read — pointer
    /// doubling, dense relabelling, anything of the form `next[i] =
    /// g(prev, i)` for all `i` — pay for the clone without ever observing
    /// it; this variant skips that O(|S|) copy so the two buffers are reused
    /// allocation-free for the whole loop.
    ///
    /// The caller contract is strict: `f` must treat the scratch as
    /// uninitialised and assign every location it (or any later round) will
    /// read.  If a round only updates *some* cells, use
    /// [`step`](RoundScheduler::step), which guarantees the untouched cells
    /// carry over from the current state.
    pub fn step_overwrite<F>(&mut self, work: u64, f: F) -> bool
    where
        F: FnOnce(&S, &mut S) -> bool,
    {
        assert!(
            self.rounds < self.max_rounds,
            "round-synchronous loop exceeded its bound of {} rounds",
            self.max_rounds
        );
        self.rounds += 1;
        self.tracker.round();
        self.tracker.work(work);
        let cont = f(&self.current, &mut self.scratch);
        std::mem::swap(&mut self.current, &mut self.scratch);
        cont
    }

    /// Runs `f` until it signals convergence and returns the final state.
    pub fn run_to_fixpoint<F>(mut self, work_per_round: u64, mut f: F) -> (S, u64)
    where
        S: Clone,
        F: FnMut(&S, &mut S) -> bool,
    {
        while self.step(work_per_round, &mut f) {}
        (self.current, self.rounds)
    }

    /// Number of rounds executed so far.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// The current state.
    pub fn state(&self) -> &S {
        &self.current
    }

    /// Consumes the scheduler and returns the current state and round count.
    pub fn into_state(self) -> (S, u64) {
        (self.current, self.rounds)
    }

    /// Consumes the scheduler and returns the current state, the scratch
    /// state and the round count — so both workspace-checked-out buffers of
    /// a [`from_buffers`](RoundScheduler::from_buffers) loop can be handed
    /// back to their pool.
    pub fn into_buffers(self) -> (S, S, u64) {
        (self.current, self.scratch, self.rounds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_rounds_and_stops() {
        let t = DepthTracker::new();
        // Repeatedly halve every entry until all are zero.
        let state: Vec<u64> = vec![8, 5, 16, 1];
        let sched = RoundScheduler::new(state, 64, &t);
        let (final_state, rounds) = sched.run_to_fixpoint(4, |prev, next| {
            for (n, p) in next.iter_mut().zip(prev.iter()) {
                *n = p / 2;
            }
            next.iter().any(|&x| x > 0)
        });
        assert_eq!(final_state, vec![0, 0, 0, 0]);
        assert_eq!(rounds, 5); // 16 -> 8 -> 4 -> 2 -> 1 -> 0
        assert_eq!(t.stats().depth, 5);
        assert_eq!(t.stats().work, 20);
    }

    #[test]
    fn reads_see_start_of_round_state() {
        let t = DepthTracker::new();
        // Shift-left by one each round; if reads saw partially-updated state
        // the result would differ.
        let state = vec![1u64, 2, 3, 4];
        let mut sched = RoundScheduler::new(state, 10, &t);
        sched.step(4, |prev, next| {
            for i in 0..prev.len() {
                next[i] = if i + 1 < prev.len() { prev[i + 1] } else { 0 };
            }
            false
        });
        assert_eq!(sched.state(), &vec![2, 3, 4, 0]);
    }

    #[test]
    fn step_overwrite_matches_step_when_every_cell_is_written() {
        // The same shift-left loop, run once with the cloning step and once
        // with the overwrite step: identical results, identical accounting.
        let run = |overwrite: bool| {
            let t = DepthTracker::new();
            let mut sched = RoundScheduler::new(vec![1u64, 2, 3, 4], 10, &t);
            for _ in 0..3 {
                let f = |prev: &Vec<u64>, next: &mut Vec<u64>| {
                    for i in 0..prev.len() {
                        next[i] = if i + 1 < prev.len() { prev[i + 1] } else { 0 };
                    }
                    true
                };
                if overwrite {
                    sched.step_overwrite(4, f);
                } else {
                    sched.step(4, f);
                }
            }
            let depth = t.stats().depth;
            let (state, rounds) = sched.into_state();
            (state, rounds, depth)
        };
        assert_eq!(run(false), run(true));
        assert_eq!(run(true), (vec![4, 0, 0, 0], 3, 3));
    }

    #[test]
    fn from_buffers_needs_no_clone_and_reuses_state() {
        // A state type without Clone still drives overwrite rounds.
        #[derive(Debug, PartialEq)]
        struct NoClone(Vec<u64>);
        let t = DepthTracker::new();
        let mut sched =
            RoundScheduler::from_buffers(NoClone(vec![1, 2, 3]), NoClone(vec![0; 3]), 10, &t);
        for _ in 0..2 {
            sched.step_overwrite(3, |prev, next| {
                for (n, p) in next.0.iter_mut().zip(prev.0.iter()) {
                    *n = p * 2;
                }
                true
            });
        }
        assert_eq!(sched.into_state().0, NoClone(vec![4, 8, 12]));
    }

    #[test]
    #[should_panic(expected = "exceeded its bound")]
    fn exceeding_round_bound_panics() {
        let t = DepthTracker::new();
        let sched = RoundScheduler::new(0u64, 3, &t);
        let _ = sched.run_to_fixpoint(1, |_, _| true);
    }
}
